//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the surface the workspace's benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of statistical sampling it runs each benchmark body a small
//! fixed number of times and reports the best observed wall-clock time —
//! enough to smoke-test the benches and get a rough relative ordering,
//! without upstream criterion's warm-up and analysis machinery.

use std::time::Instant;

/// Number of timed runs per benchmark (the best is reported).
const RUNS: u32 = 3;

/// Opaque benchmark identifier (`name`, optional parameter).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `group/name/param` style id.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id distinguished only by its parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the body.
pub struct Bencher {
    best_nanos: u128,
}

impl Bencher {
    /// Runs `body` a few times, recording the fastest run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        for _ in 0..RUNS {
            let start = Instant::now();
            let out = body();
            let elapsed = start.elapsed().as_nanos();
            std::mem::drop(out); // drop outside the timed section, like upstream
            self.best_nanos = self.best_nanos.min(elapsed);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub always runs a fixed number
    /// of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            best_nanos: u128::MAX,
        };
        f(&mut b);
        report(&self.name, &id.name, b.best_nanos);
        self
    }

    /// Times `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            best_nanos: u128::MAX,
        };
        f(&mut b, input);
        report(&self.name, &id.name, b.best_nanos);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

fn report(group: &str, bench: &str, nanos: u128) {
    if nanos == u128::MAX {
        println!("{group}/{bench}: no measurement");
    } else if nanos >= 1_000_000 {
        println!("{group}/{bench}: {:.3} ms", nanos as f64 / 1e6);
    } else {
        println!("{group}/{bench}: {:.3} µs", nanos as f64 / 1e3);
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Times `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Identity function that defeats trivial constant-folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring upstream criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, mirroring upstream criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; ignore all arguments.
            $( $group(); )+
        }
    };
}
