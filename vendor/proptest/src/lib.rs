//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the surface this workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//! * range strategies over ints/floats, tuple strategies (2–6 elements),
//! * [`collection::vec`] with fixed or ranged lengths,
//! * [`Strategy::prop_map`], [`Strategy::prop_flat_map`],
//!   [`Strategy::prop_filter_map`],
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike upstream proptest there is no shrinking: a failing case
//! reports its case number and seed so it can be replayed by rerunning
//! the test (generation is fully deterministic per test name).

use rand::rngs::StdRng;

/// Generation source handed to strategies (deterministic per test).
pub type TestRng = StdRng;

/// A failing property. Produced by [`prop_assert!`] and friends.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (`#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Transform values, rejecting (and redrawing) when `f` returns
    /// `None`. `whence` documents why rejection can happen.
    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            f,
            whence,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F, U> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map rejected 10000 consecutive draws ({})",
            self.whence
        );
    }
}

/// Always produces a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};

    /// Length specification for [`vec()`]: a fixed `usize` or a
    /// `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi_exclusive {
                self.size.lo
            } else {
                rand::Rng::gen_range(rng, self.size.lo..self.size.hi_exclusive)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose elements come from `element` and whose length comes
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Execution of properties (used by the [`crate::proptest!`] expansion).

    use super::{ProptestConfig, Strategy, TestCaseError, TestRng};
    use rand::SeedableRng;

    /// Derives a stable per-test seed from the test's identity.
    pub fn seed_for(test_path: &str, case: u64) -> u64 {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Runs `body` against `cases` random draws from `strategy`,
    /// panicking (like `assert!`) on the first failure.
    pub fn run<S, F>(config: &ProptestConfig, test_path: &str, strategy: S, body: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases as u64 {
            let seed = seed_for(test_path, case);
            let mut rng = TestRng::seed_from_u64(seed);
            let value = strategy.generate(&mut rng);
            if let Err(e) = body(value) {
                panic!(
                    "proptest: property failed at case {case}/{} (seed {seed}): {e}",
                    config.cases
                );
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::collection;
    pub use crate::test_runner;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError};
}

/// Asserts a condition inside a property, returning a
/// [`TestCaseError`] (rather than panicking) so the runner can report
/// the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Declares property tests. Mirrors upstream proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, (a, b) in my_strategy()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each `fn` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let path = concat!(module_path!(), "::", stringify!($name));
            let strategy = ($($strategy,)+);
            $crate::test_runner::run(&config, path, strategy, |($($pat,)+)| {
                let _run = || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                };
                _run()
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
