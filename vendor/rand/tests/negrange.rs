#[test]
fn negative_and_zero_hi_ranges_stay_in_bounds() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..200_000 {
        let x: f64 = rng.gen_range(-0.87..-0.5);
        assert!((-0.87..-0.5).contains(&x), "{x}");
        let y: f64 = rng.gen_range(-2.0..0.0);
        assert!((-2.0..0.0).contains(&y), "{y}");
        let z: f32 = rng.gen_range(-1.0f32..-0.9999999);
        assert!((-1.0f32..-0.9999999).contains(&z), "{z}");
    }
    assert!(0.0f64.next_down().max(-1.0) < 0.0);
}
