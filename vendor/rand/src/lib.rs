//! Minimal, dependency-free stand-in for the `rand` crate (0.8 API).
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the surface the workspace uses: [`Rng::gen_range`]
//! over integer/float ranges (including `u128`), [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12, but every consumer in this
//! workspace only relies on determinism-for-a-seed, not on a specific
//! stream.

/// Low-level source of random `u64`s. All generators implement this.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let span = (hi as u128).wrapping_sub(lo as u128);
                let r = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                lo.wrapping_add((r % span) as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let r = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                lo.wrapping_add((r % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let span = hi - lo;
        let r = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        lo + r % span
    }
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
        if lo == 0 && hi == u128::MAX {
            return ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        }
        let span = hi - lo + 1;
        let r = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        lo + r % span
    }
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
                let u = unit_f64(rng) as $t; // in [0, 1)
                let v = lo + (hi - lo) * u;
                // lo + span*u can round up to exactly hi; step below it
                // (next_down, unlike bit tricks, is sign-correct).
                if v >= hi { hi.next_down().max(lo) } else { v }
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range {lo}..={hi}");
                let u = unit_f64(rng) as $t;
                (lo + (hi - lo) * u).clamp(lo, hi)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start at the all-zero state.
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(0.5..4.0);
            assert!((0.5..4.0).contains(&x));
            let y: usize = rng.gen_range(0..10);
            assert!(y < 10);
            let z: f64 = rng.gen_range(1.0..=100.0);
            assert!((1.0..=100.0).contains(&z));
            let w: u128 = rng.gen_range(0..7u128);
            assert!(w < 7);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
