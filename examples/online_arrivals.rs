//! Release times in action: a bursty arrival pattern on SWAN, showing
//! how the LP postpones late coflows, how compaction pulls work earlier,
//! and what the Stretch guarantee looks like with releases.
//!
//! ```sh
//! cargo run --release --example online_arrivals
//! ```

use coflow_suite::core::model::{Coflow, CoflowInstance, Flow};
use coflow_suite::core::routing::Routing;
use coflow_suite::core::solver::{Algorithm, Scheduler};
use coflow_suite::netgraph::topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let topo = topology::swan().scale_capacity(50.0); // 50 s slots
    let g = topo.graph;
    let nodes: Vec<_> = g.nodes().collect();
    let mut rng = StdRng::seed_from_u64(31);

    // Three waves of arrivals: slots 0, 6, and 12.
    let mut coflows = Vec::new();
    for wave in 0..3u32 {
        for _ in 0..4 {
            let a = nodes[rng.gen_range(0..nodes.len())];
            let mut b = nodes[rng.gen_range(0..nodes.len())];
            while b == a {
                b = nodes[rng.gen_range(0..nodes.len())];
            }
            coflows.push(Coflow::weighted(
                rng.gen_range(1.0..100.0),
                vec![Flow::released(a, b, rng.gen_range(200.0..2000.0), wave * 6)],
            ));
        }
    }
    let inst = CoflowInstance::new(g, coflows).expect("valid");

    for compaction in [false, true] {
        let report = Scheduler::new(Algorithm::LpHeuristic)
            .with_compaction(compaction)
            .solve(&inst, &Routing::FreePath)
            .expect("pipeline succeeds");
        println!(
            "compaction {}: LP bound {:>8.0}, heuristic cost {:>8.0}, makespan {}",
            if compaction { "on " } else { "off" },
            report.lower_bound,
            report.cost,
            report.validation.completions.makespan
        );
        if compaction {
            println!("\nper-wave completions (release -> completion slots):");
            for (j, c) in report.validation.completions.per_coflow.iter().enumerate() {
                let rel = inst.coflows[j].release();
                println!("  coflow {j:2} (released {rel:2}): done at {c}");
                assert!(*c > rel, "nothing can complete before its release");
            }
        }
    }
}
