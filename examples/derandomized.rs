//! Derandomizing Stretch: the exact best λ and the exact expected cost,
//! no sampling involved.
//!
//! The paper estimates "Best λ" and "Average λ" from 20 random draws
//! (§6.1). Both are computable from the LP schedule's completion
//! profiles — this example prints the exact values, checks Theorem 4.4's
//! `E[cost] ≤ 2·LP` inequality directly, and shows where sampling lands
//! in comparison.
//!
//! ```sh
//! cargo run --release --example derandomized
//! ```

use coflow_suite::core::derand::derandomize;
use coflow_suite::core::routing::Routing;
use coflow_suite::core::solver::{Algorithm, Scheduler};
use coflow_suite::core::stretch::{lambda_sweep, StretchOptions};
use coflow_suite::netgraph::topology;
use coflow_suite::workloads::{build_instance, WorkloadConfig, WorkloadKind};

fn main() {
    let topo = topology::swan();
    let cfg = WorkloadConfig {
        kind: WorkloadKind::Facebook,
        num_jobs: 12,
        seed: 2019,
        slot_seconds: 50.0,
        mean_interarrival_slots: 1.0,
        weighted: true,
        demand_scale: 0.02,
    };
    let inst = build_instance(&topo, &cfg).expect("workload placement validates");

    let lp = Scheduler::new(Algorithm::LpHeuristic)
        .relax(&inst, &Routing::FreePath)
        .expect("relaxation solves");
    println!("LP lower bound          {:>10.2}", lp.objective);
    println!("2 x LP (Theorem 4.4)    {:>10.2}\n", 2.0 * lp.objective);

    // ---- Exact, by enumeration and integration ----
    let d = derandomize(&inst, &lp.plan);
    println!("exact best λ            {:>10.6}", d.best_lambda);
    println!("exact best cost         {:>10.2}", d.best_cost);
    println!("λ = 1 heuristic cost    {:>10.2}", d.heuristic_cost);
    println!(
        "exact E[cost]           {:>10.2}  (± {:.1e})",
        d.expected_cost, d.expected_cost_error
    );
    println!(
        "candidates examined     {:>10}  (λ < {:.4} provably dominated)\n",
        d.candidates, d.cutoff
    );
    assert!(
        d.expected_cost - d.expected_cost_error <= 2.0 * lp.objective + 1e-6,
        "Theorem 4.4 violated?!"
    );
    println!("Theorem 4.4 check: E[cost] ≤ 2·LP holds exactly ✓\n");

    // ---- The paper's sampled estimate, for comparison ----
    let pure = StretchOptions { compact: false };
    let sweep = lambda_sweep(&inst, &lp.plan, 20, 7, pure);
    println!(
        "20-sample best λ cost   {:>10.2}",
        sweep.best().weighted_cost
    );
    println!("20-sample average       {:>10.2}", sweep.average());
    assert!(sweep.best().weighted_cost >= d.best_cost - 1e-9);
    println!(
        "\nsampling can only match the exact optimum, never beat it \
         (gap here: {:.2})",
        sweep.best().weighted_cost - d.best_cost
    );
}
