//! Quickstart: schedule a handful of coflows on the paper's Figure-2
//! network and print what happens.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use coflow_suite::core::model::{Coflow, CoflowInstance, Flow};
use coflow_suite::core::routing::Routing;
use coflow_suite::core::solver::{Algorithm, Scheduler};
use coflow_suite::netgraph::topology;

// `pub` so `tests/umbrella_smoke.rs` can include this file as a module
// and run it end to end.
pub fn main() {
    // The network of the paper's Figure 2: s, three relays, t; every
    // link bi-directed with capacity 1 per slot.
    let topo = topology::fig2_example();
    let g = topo.graph;
    let s = g.node_by_label("s").unwrap();
    let t = g.node_by_label("t").unwrap();
    let v1 = g.node_by_label("v1").unwrap();
    let v2 = g.node_by_label("v2").unwrap();
    let v3 = g.node_by_label("v3").unwrap();

    // Four coflows: three unit transfers from the relays, one 3-unit
    // transfer from s — exactly the instance of Figures 2–4.
    let inst = CoflowInstance::new(
        g,
        vec![
            Coflow::new(vec![Flow::new(v1, t, 1.0)]),
            Coflow::new(vec![Flow::new(v2, t, 1.0)]),
            Coflow::new(vec![Flow::new(v3, t, 1.0)]),
            Coflow::new(vec![Flow::new(s, t, 3.0)]),
        ],
    )
    .expect("valid instance");

    println!(
        "instance: {} coflows, {} flows, {} nodes, {} directed edges",
        inst.num_coflows(),
        inst.num_flows(),
        inst.graph.node_count(),
        inst.graph.edge_count()
    );

    // Free-path model with the λ=1 LP heuristic (best in practice).
    let report = Scheduler::new(Algorithm::LpHeuristic)
        .solve(&inst, &Routing::FreePath)
        .expect("pipeline succeeds");

    println!("LP lower bound : {:.3}", report.lower_bound);
    println!(
        "schedule cost  : {:.3} (optimal for this instance is 5)",
        report.cost
    );
    println!(
        "per-coflow completions: {:?}",
        report.validation.completions.per_coflow
    );
    println!(
        "peak link utilization : {:.0}%",
        report.validation.peak_utilization * 100.0
    );

    // Show the blue coflow's slot-by-slot transfers.
    println!("\nblue coflow (s -> t, demand 3) transfer plan:");
    for st in &report.schedule.flows[3][0] {
        let edges: Vec<String> = st
            .edges
            .iter()
            .map(|&(e, v)| {
                format!(
                    "{}->{}:{:.2}",
                    inst.graph.label(inst.graph.src(e)),
                    inst.graph.label(inst.graph.dst(e)),
                    v
                )
            })
            .collect();
        println!(
            "  slot {}: {:.2} units via [{}]",
            st.slot,
            st.volume,
            edges.join(", ")
        );
    }

    // And the randomized Stretch algorithm with 20 λ samples.
    let stretch = Scheduler::new(Algorithm::Stretch {
        samples: 20,
        seed: 42,
    })
    .solve(&inst, &Routing::FreePath)
    .expect("pipeline succeeds");
    let sweep = stretch.sweep.as_ref().unwrap();
    println!(
        "\nStretch over 20 λ samples: best {:.1} (λ={:.2}), average {:.1}",
        sweep.best().weighted_cost,
        sweep.best().lambda,
        sweep.average()
    );
}
