//! Geo-distributed analytics on Google's G-Scale-like WAN in the
//! free-path model: LP bound, λ=1 heuristic, randomized Stretch, Terra,
//! and the intermediate multi-path model — the paper's §6 story in one
//! program.
//!
//! ```sh
//! cargo run --release --example geo_free_path
//! ```

use coflow_suite::baselines::terra::terra_offline;
use coflow_suite::core::routing::{self, Routing};
use coflow_suite::core::solver::{Algorithm, Scheduler};
use coflow_suite::core::validate::{validate, Tolerance};
use coflow_suite::netgraph::topology;
use coflow_suite::workloads::{build_instance, WorkloadConfig, WorkloadKind};

fn main() {
    let topo = topology::gscale();
    let cfg = WorkloadConfig {
        kind: WorkloadKind::Facebook,
        num_jobs: 8,
        seed: 99,
        slot_seconds: 50.0,
        mean_interarrival_slots: 1.0,
        weighted: false, // Terra handles the unweighted case
        demand_scale: 1.0,
    };
    let inst = build_instance(&topo, &cfg).expect("valid instance");
    println!(
        "FB-shaped workload on G-Scale: {} coflows / {} flows",
        inst.num_coflows(),
        inst.num_flows()
    );

    // Free path: the paper's main model for Terra comparisons.
    let report = Scheduler::new(Algorithm::Stretch {
        samples: 20,
        seed: 5,
    })
    .solve(&inst, &Routing::FreePath)
    .expect("pipeline succeeds");
    let sweep = report.sweep.as_ref().unwrap();
    println!("\n-- free path (total completion time) --");
    println!("LP lower bound     : {:>8.1}", report.lower_bound);
    println!("best λ of 20       : {:>8.1}", report.unweighted_cost);
    println!("average λ          : {:>8.1}", sweep.average_unweighted());

    let heuristic = Scheduler::new(Algorithm::LpHeuristic)
        .solve(&inst, &Routing::FreePath)
        .expect("pipeline succeeds");
    println!("heuristic (λ=1.0)  : {:>8.1}", heuristic.unweighted_cost);

    let terra = terra_offline(&inst).expect("terra runs");
    let terra_cost = validate(
        &inst,
        &Routing::FreePath,
        &terra.schedule,
        Tolerance::default(),
    )
    .expect("feasible")
    .completions
    .unweighted_total;
    println!("Terra (SRTF)       : {:>8.1}", terra_cost);

    // The intermediate multi-path model (§2): 3 shortest paths per flow.
    let multi = routing::k_shortest_path_sets(&inst, 3).expect("paths exist");
    let mp = Scheduler::new(Algorithm::LpHeuristic)
        .solve(&inst, &multi)
        .expect("pipeline succeeds");
    println!("\n-- multi-path (k=3 candidate paths per flow) --");
    println!("LP lower bound     : {:>8.1}", mp.lower_bound);
    println!("heuristic (λ=1.0)  : {:>8.1}", mp.unweighted_cost);
    println!(
        "\nmulti-path comes within {:.1}% of free path with a {:.0}x smaller LP",
        100.0 * (mp.unweighted_cost / heuristic.unweighted_cost - 1.0),
        report.lp_size.cols as f64 / mp.lp_size.cols as f64
    );
}
