//! Single-path scheduling on Microsoft's SWAN-like WAN: our LP + λ=1
//! heuristic against the Jahanjou et al. baseline and a plain SJF
//! greedy, on a TPC-DS-shaped workload.
//!
//! ```sh
//! cargo run --release --example wan_single_path
//! ```

use coflow_suite::baselines::jahanjou::{jahanjou_schedule, JahanjouConfig};
use coflow_suite::baselines::sjf;
use coflow_suite::core::horizon::{horizon, HorizonMode};
use coflow_suite::core::routing;
use coflow_suite::core::solver::{Algorithm, Scheduler};
use coflow_suite::core::validate::{validate, Tolerance};
use coflow_suite::lp::SolverOptions;
use coflow_suite::netgraph::topology;
use coflow_suite::workloads::{build_instance, WorkloadConfig, WorkloadKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let topo = topology::swan();
    let cfg = WorkloadConfig {
        kind: WorkloadKind::TpcDs,
        num_jobs: 12,
        seed: 2024,
        slot_seconds: 50.0,
        mean_interarrival_slots: 1.0,
        weighted: true,
        demand_scale: 1.0,
    };
    let inst = build_instance(&topo, &cfg).expect("valid instance");
    println!(
        "TPC-DS on SWAN: {} coflows / {} flows (50 s slots)",
        inst.num_coflows(),
        inst.num_flows()
    );

    // The paper's single-path setup: a uniformly random shortest path
    // per flow.
    let mut rng = StdRng::seed_from_u64(7);
    let r = routing::random_shortest_paths(&inst, &mut rng).expect("paths exist");

    // Ours: time-indexed LP + λ=1 heuristic.
    let report = Scheduler::new(Algorithm::LpHeuristic)
        .with_horizon(HorizonMode::Greedy { margin: 1.25 })
        .solve(&inst, &r)
        .expect("pipeline succeeds");
    println!("\nLP lower bound        : {:>10.0}", report.lower_bound);
    println!("our heuristic (λ=1.0) : {:>10.0}", report.cost);

    // Jahanjou et al. at their optimized ε.
    let t = horizon(&inst, &r, HorizonMode::Greedy { margin: 1.25 }).unwrap();
    let jj = jahanjou_schedule(
        &inst,
        &r,
        t,
        &JahanjouConfig::default(),
        &SolverOptions::default(),
    )
    .expect("baseline runs");
    let jj_cost = validate(&inst, &r, &jj.schedule, Tolerance::default())
        .expect("feasible")
        .completions
        .weighted_total;
    println!("Jahanjou et al.       : {:>10.0}", jj_cost);

    // Plain weighted SJF greedy.
    let greedy = sjf::weighted_sjf(&inst, &r).expect("greedy runs");
    let greedy_cost = validate(&inst, &r, &greedy, Tolerance::default())
        .expect("feasible")
        .completions
        .weighted_total;
    println!("weighted SJF greedy   : {:>10.0}", greedy_cost);

    println!(
        "\nratios vs LP bound — ours {:.2}x, Jahanjou {:.2}x, SJF {:.2}x",
        report.cost / report.lower_bound,
        jj_cost / report.lower_bound,
        greedy_cost / report.lower_bound
    );
}
