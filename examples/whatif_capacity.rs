//! What-if analysis with warm-started re-solves: how do completion
//! times degrade as links lose capacity?
//!
//! Builds a workload on the Abilene backbone, then sweeps a uniform
//! capacity factor and a single-link brownout through the *same*
//! time-indexed LP, re-optimizing each point from the previous basis
//! with the dual simplex instead of solving from scratch.
//!
//! ```sh
//! cargo run --release --example whatif_capacity
//! ```

use coflow_suite::core::routing::Routing;
use coflow_suite::core::sensitivity::{capacity_sweep, Sensitivity};
use coflow_suite::lp::SolverOptions;
use coflow_suite::netgraph::topology;
use coflow_suite::workloads::{build_instance, WorkloadConfig, WorkloadKind};

fn main() {
    // Short slots (2 s) keep the links busy: a what-if analysis on an
    // uncontended network would show nothing.
    let topo = topology::abilene();
    let cfg = WorkloadConfig {
        kind: WorkloadKind::TpcH,
        num_jobs: 8,
        seed: 4,
        slot_seconds: 2.0,
        mean_interarrival_slots: 0.0,
        weighted: true,
        demand_scale: 0.05,
    };
    let inst = build_instance(&topo, &cfg).expect("workload placement validates");
    let opts = SolverOptions::default();
    let t = coflow_suite::core::horizon::horizon(
        &inst,
        &Routing::FreePath,
        coflow_suite::core::horizon::HorizonMode::Greedy { margin: 1.4 },
    )
    .expect("horizon");

    // ---- Uniform degradation sweep (warm-started) ----
    println!(
        "uniform capacity sweep on {} ({} coflows):\n",
        topo.name,
        inst.num_coflows()
    );
    println!("{:>8} {:>14} {:>10}", "factor", "LP bound", "pivots");
    let factors = [1.0, 0.9, 0.8, 0.7, 0.6, 0.5];
    let sweep = capacity_sweep(&inst, &Routing::FreePath, t, &factors, &opts).expect("sweep runs");
    let mut prev = 0.0;
    for pt in &sweep {
        match pt.lp_bound {
            Some(b) => {
                println!("{:>8.2} {:>14.2} {:>10}", pt.factor, b, pt.iterations);
                assert!(b >= prev - 1e-6, "less capacity cannot lower the bound");
                prev = b;
            }
            None => println!("{:>8.2} {:>14} {:>10}", pt.factor, "infeasible", "-"),
        }
    }

    // ---- Single-link brownout: which link hurts most? ----
    // Two answers: the brute force (one re-solve per link) and the
    // shadow prices that fall out of the baseline solve for free.
    let g = &inst.graph;
    let mut sens = Sensitivity::new(&inst, &Routing::FreePath, t).expect("builds");
    let base = sens.solve(&opts).expect("solves").objective;
    let prices = sens.shadow_prices().expect("just solved");
    println!("\nsingle-link brownout to 25% (baseline bound {base:.2}):\n");
    println!(
        "{:>28} {:>14} {:>10} {:>14}",
        "link", "LP bound", "Δ vs base", "shadow price"
    );
    // Probe each physical link (forward edge of each bi-directed pair).
    let mut worst: (f64, String) = (base, "none".into());
    for e in g.edges() {
        if e.src.index() > e.dst.index() {
            continue; // one direction per physical link is enough here
        }
        let rev = g.find_edge(e.dst, e.src).expect("bi-directed");
        sens.scale_all_capacities(1.0); // reset every edge
        sens.scale_edge_capacity(e.id, 0.25);
        sens.scale_edge_capacity(rev, 0.25);
        let bound = match sens.solve_or_infeasible(&opts).expect("no solver failure") {
            Some(lp) => lp.objective,
            None => f64::INFINITY,
        };
        let name = format!("{} <-> {}", g.label(e.src), g.label(e.dst));
        if bound > worst.0 {
            worst = (bound, name.clone());
        }
        let price = prices[e.id.index()] + prices[rev.index()];
        println!(
            "{name:>28} {bound:>14.2} {:>+10.2} {price:>14.3}",
            bound - base
        );
    }
    println!(
        "\nmost critical link: {} (bound {:.2}, +{:.1}% over baseline)",
        worst.1,
        worst.0,
        100.0 * (worst.0 - base) / base
    );
    println!(
        "shadow prices (last column) rank links from the baseline solve alone — \
         no re-solves needed."
    );
}
