//! Embedding the classic big-switch model into the graph model with the
//! paper's footnote-1 I/O gadget, and the §5 reduction from concurrent
//! open shop — coflow scheduling in networks subsumes both.
//!
//! ```sh
//! cargo run --release --example switch_gadget
//! ```

use coflow_suite::baselines::openshop::{
    coflow_schedule_cost_to_openshop, exact_optimum, permutation_to_coflow_schedule,
    to_coflow_instance, OpenShopInstance,
};
use coflow_suite::core::solver::{Algorithm, Scheduler};
use coflow_suite::core::validate::{validate, Tolerance};
use coflow_suite::netgraph::gadget::{with_io_gadget, IoLimit};
use coflow_suite::netgraph::maxflow::max_flow;
use coflow_suite::netgraph::topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- Part 1: the footnote-1 gadget enforces per-node I/O limits. ---
    let topo = topology::bipartite_switch(3, 10.0);
    let limits = vec![IoLimit::symmetric(1.0); topo.graph.node_count()];
    let gg = with_io_gadget(&topo.graph, &limits);
    let in0 = gg.inner[topo.sources[0].index()];
    let out2 = gg.inner[topo.sinks[2].index()];
    let mf = max_flow(&gg.graph, in0, out2);
    println!("3-port switch with unit port rates:");
    println!(
        "  max in0 -> out2 throughput after the gadget: {:.1} (port limit 1.0)",
        mf.value
    );

    // --- Part 2: the §5 reduction from concurrent open shop. ---
    let mut rng = StdRng::seed_from_u64(13);
    let os = OpenShopInstance::random(&mut rng, 3, 6, 4, 0.3, true);
    let (opt_cost, opt_order) = exact_optimum(&os);
    println!("\nconcurrent open shop: 3 machines, 6 jobs");
    println!("  exact optimum (permutation schedule): {opt_cost:.1}");

    // Forward: open shop -> coflow; the optimal permutation maps to a
    // coflow schedule of identical cost.
    let (inst, routing) = to_coflow_instance(&os).expect("reduction builds");
    let mapped = permutation_to_coflow_schedule(&os, &inst, &opt_order);
    let mapped_cost = validate(&inst, &routing, &mapped, Tolerance::default())
        .expect("feasible")
        .completions
        .weighted_total;
    println!("  mapped to coflow scheduling          : {mapped_cost:.1}");

    // Our pipeline on the reduced instance.
    let report = Scheduler::new(Algorithm::LpHeuristic)
        .solve(&inst, &routing)
        .expect("pipeline succeeds");
    println!(
        "  our LP bound {:.1} ≤ optimum {opt_cost:.1} ≤ our heuristic {:.1}",
        report.lower_bound, report.cost
    );

    // Backward: our coflow schedule maps to an open shop schedule of no
    // larger cost (the proof's exchange argument).
    let back = coflow_schedule_cost_to_openshop(&os, &report.schedule);
    println!("  our schedule mapped back to open shop: {back:.1}");
    assert!(back <= report.cost + 1e-6);
    assert!(back >= opt_cost - 1e-6);
    println!(
        "  approximation ratio achieved: {:.3}x (NP-hard to beat 2-ε in general)",
        back / opt_cost
    );
}
