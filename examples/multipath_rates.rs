//! The §2 "intermediate case": several candidate paths per flow with
//! per-path rates — between the single path and free path extremes.
//!
//! Solves the same workload on NSFNET under all three routing models and
//! shows the LP lower bound improving monotonically with routing
//! freedom, while the multi-path LP stays a fraction of the free-path
//! LP's size.
//!
//! ```sh
//! cargo run --release --example multipath_rates
//! ```

use coflow_suite::core::routing::{self, Routing};
use coflow_suite::core::solver::{Algorithm, Scheduler};
use coflow_suite::netgraph::topology;
use coflow_suite::workloads::{build_instance, WorkloadConfig, WorkloadKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Scale capacities down (slot_seconds = 5) so the workload actually
    // contends for links — an uncontended network makes every routing
    // model look identical.
    let topo = topology::nsfnet();
    let cfg = WorkloadConfig {
        kind: WorkloadKind::TpcH,
        num_jobs: 10,
        seed: 11,
        slot_seconds: 5.0,
        mean_interarrival_slots: 0.0,
        weighted: true,
        demand_scale: 0.05,
    };
    let inst = build_instance(&topo, &cfg).expect("workload placement validates");
    println!(
        "{} coflows / {} flows on {} ({} nodes, {} directed edges)\n",
        inst.num_coflows(),
        inst.num_flows(),
        topo.name,
        inst.graph.node_count(),
        inst.graph.edge_count()
    );

    let mut rng = StdRng::seed_from_u64(1);
    let single = routing::random_shortest_paths(&inst, &mut rng).expect("paths exist");
    let multi2 = routing::k_shortest_path_sets(&inst, 2).expect("paths exist");
    let multi4 = routing::k_shortest_path_sets(&inst, 4).expect("paths exist");

    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>10}",
        "routing model", "LP bound", "cost", "LP rows", "LP cols"
    );
    let mut bounds = Vec::new();
    for (name, routing) in [
        ("single path (random SP)", single),
        ("multi path (k = 2)", multi2),
        ("multi path (k = 4)", multi4),
        ("free path", Routing::FreePath),
    ] {
        let report = Scheduler::new(Algorithm::LpHeuristic)
            .solve(&inst, &routing)
            .expect("pipeline runs");
        println!(
            "{:<28} {:>10.2} {:>10.2} {:>12} {:>10}",
            name, report.lower_bound, report.cost, report.lp_size.rows, report.lp_size.cols
        );
        bounds.push(report.lower_bound);
    }

    // More routing freedom can only help the relaxation.
    for w in bounds.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-6 * (1.0 + w[0]),
            "more freedom must not worsen the bound: {bounds:?}"
        );
    }
    println!(
        "\nfreedom ordering holds: single ≥ multi(2) ≥ multi(4) ≥ free \
         ({:.2} ≥ {:.2} ≥ {:.2} ≥ {:.2})",
        bounds[0], bounds[1], bounds[2], bounds[3]
    );
}
