//! Algorithm shootout through the registry: run every registered
//! scheduler that accepts the free-path model on one instance and rank
//! them against the shared LP lower bound.
//!
//! Demonstrates the two halves of the unified solving API:
//!
//! * `registry::all()` — algorithms as data (name, capabilities,
//!   constructor), no per-algorithm dispatch code;
//! * `SolveContext` — the time-indexed LP is solved **once** and every
//!   LP-based solver reuses it from the cache.
//!
//! ```sh
//! cargo run --release --example algorithm_shootout
//! ```

use coflow_suite::baselines::registry::{self, AlgoParams, RoutingSupport};
use coflow_suite::core::routing::Routing;
use coflow_suite::core::solve::SolveContext;
use coflow_suite::netgraph::topology;
use coflow_suite::workloads::{build_instance, WorkloadConfig, WorkloadKind};

pub fn main() {
    // A small Facebook-shaped workload on SWAN (the paper's §6 setup).
    let topo = topology::swan();
    let cfg = WorkloadConfig {
        kind: WorkloadKind::Facebook,
        num_jobs: 8,
        seed: 17,
        slot_seconds: 50.0,
        mean_interarrival_slots: 1.0,
        weighted: true,
        demand_scale: 0.05,
    };
    let inst = build_instance(&topo, &cfg).expect("workload placement validates");
    println!(
        "instance: {} coflows / {} flows on {} — free path model\n",
        inst.num_coflows(),
        inst.num_flows(),
        topo.name
    );

    // One context for the whole shootout: the horizon and the
    // time-indexed LP are computed exactly once below, no matter how
    // many algorithms consume them.
    let mut ctx = SolveContext::new();
    let bound = ctx
        .time_indexed(&inst, &Routing::FreePath)
        .expect("LP solves")
        .objective;

    let params = AlgoParams {
        samples: 10,
        seed: 17,
        ..Default::default()
    };
    let mut ranking: Vec<(&str, f64)> = Vec::new();
    for entry in registry::all() {
        if entry.caps.routing == RoutingSupport::SinglePathOnly {
            continue; // needs fixed paths; this demo runs free-path
        }
        let out = entry
            .build(&params)
            .solve(&inst, &Routing::FreePath, &mut ctx)
            .expect("registered solvers run on their supported models");
        ranking.push((entry.name, out.cost));
    }
    ranking.sort_by(|a, b| a.1.total_cmp(&b.1));

    println!("{:<22} {:>10}  {:>6}", "algorithm", "cost", "ratio");
    println!("{:<22} {:>10.3}  {:>6}", "LP lower bound", bound, "—");
    for (name, cost) in &ranking {
        println!("{name:<22} {cost:>10.3}  {:>6.3}", cost / bound);
    }
    let (winner, best) = &ranking[0];
    assert!(*best >= bound - 1e-6, "no algorithm may beat the LP bound");
    println!(
        "\nwinner: {winner} at {:.3}× the LP lower bound",
        best / bound
    );
}
