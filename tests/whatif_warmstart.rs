//! Cross-crate tests for warm-started what-if analysis on realistic
//! workloads: capacity sweeps and weight changes through one model,
//! checked against fresh solves.

use coflow_suite::core::routing::Routing;
use coflow_suite::core::sensitivity::{capacity_sweep, Sensitivity};
use coflow_suite::core::solver::{Algorithm, Scheduler};
use coflow_suite::lp::SolverOptions;
use coflow_suite::netgraph::topology;
use coflow_suite::workloads::{build_instance, WorkloadConfig, WorkloadKind};

fn workload(seed: u64, slot_seconds: f64) -> coflow_suite::core::model::CoflowInstance {
    let topo = topology::swan();
    build_instance(
        &topo,
        &WorkloadConfig {
            kind: WorkloadKind::Facebook,
            num_jobs: 6,
            seed,
            slot_seconds,
            mean_interarrival_slots: 0.5,
            weighted: true,
            demand_scale: 1.0,
        },
    )
    .unwrap()
}

fn horizon_for(inst: &coflow_suite::core::model::CoflowInstance) -> u32 {
    coflow_suite::core::horizon::horizon(
        inst,
        &Routing::FreePath,
        coflow_suite::core::horizon::HorizonMode::Greedy { margin: 1.4 },
    )
    .unwrap()
}

#[test]
fn warm_sweep_matches_fresh_solves_on_a_workload() {
    let inst = workload(3, 50.0);
    let t = horizon_for(&inst);
    let opts = SolverOptions::default();
    let factors = [1.0, 0.85, 0.7];
    let sweep = capacity_sweep(&inst, &Routing::FreePath, t, &factors, &opts).unwrap();
    for pt in &sweep {
        let Some(warm) = pt.lp_bound else { continue };
        // Fresh reference: rebuild the workload on a rescaled topology.
        let topo = topology::swan().scale_capacity(pt.factor);
        let fresh_inst = build_instance(
            &topo,
            &WorkloadConfig {
                kind: WorkloadKind::Facebook,
                num_jobs: 6,
                seed: 3,
                slot_seconds: 50.0,
                mean_interarrival_slots: 0.5,
                weighted: true,
                demand_scale: 1.0,
            },
        )
        .unwrap();
        let fresh = coflow_suite::core::timeidx::solve_time_indexed(
            &fresh_inst,
            &Routing::FreePath,
            t,
            &opts,
        )
        .unwrap();
        assert!(
            (warm - fresh.objective).abs() < 1e-5 * (1.0 + fresh.objective),
            "factor {}: warm {} vs fresh {}",
            pt.factor,
            warm,
            fresh.objective
        );
    }
}

#[test]
fn degradation_is_monotone_and_eventually_infeasible() {
    // Contended instance (short slots) driven to starvation.
    let inst = workload(5, 5.0);
    let t = horizon_for(&inst);
    let opts = SolverOptions::default();
    let factors = [1.0, 0.6, 0.3, 0.02];
    let sweep = capacity_sweep(&inst, &Routing::FreePath, t, &factors, &opts).unwrap();
    let mut prev = 0.0;
    for pt in &sweep {
        if let Some(b) = pt.lp_bound {
            assert!(b >= prev - 1e-6, "bound decreased under degradation");
            prev = b;
        }
    }
    assert!(
        sweep.last().unwrap().lp_bound.is_none(),
        "2% capacity within the same horizon should starve the demands"
    );
}

#[test]
fn weight_bump_is_consistent_with_a_rebuilt_objective() {
    let inst = workload(7, 50.0);
    let t = horizon_for(&inst);
    let opts = SolverOptions::default();
    let mut sens = Sensitivity::new(&inst, &Routing::FreePath, t).unwrap();
    let base = sens.solve(&opts).unwrap();
    // Triple coflow 0's weight through the analyzer...
    let w_new = inst.coflows[0].weight * 3.0;
    sens.set_weight(0, w_new);
    let bumped = sens.solve(&opts).unwrap();
    // ...and verify against an instance rebuilt with that weight.
    let mut coflows = inst.coflows.clone();
    coflows[0].weight = w_new;
    let rebuilt =
        coflow_suite::core::model::CoflowInstance::new(inst.graph.clone(), coflows).unwrap();
    let fresh =
        coflow_suite::core::timeidx::solve_time_indexed(&rebuilt, &Routing::FreePath, t, &opts)
            .unwrap();
    assert!(
        (bumped.objective - fresh.objective).abs() < 1e-5 * (1.0 + fresh.objective),
        "warm re-weighted {} vs fresh {}",
        bumped.objective,
        fresh.objective
    );
    assert!(bumped.objective >= base.objective - 1e-6);
}

#[test]
fn warm_chain_never_costs_more_pivots_than_cold_chain() {
    let inst = workload(11, 10.0);
    let t = horizon_for(&inst);
    let opts = SolverOptions::default();
    let factors = [0.95, 0.9, 0.85, 0.8];
    let mut warm = Sensitivity::new(&inst, &Routing::FreePath, t).unwrap();
    warm.solve(&opts).unwrap();
    let mut warm_total = 0;
    for &f in &factors {
        warm.scale_all_capacities(f);
        warm.solve(&opts).unwrap();
        warm_total += warm.last_iterations();
    }
    let mut cold = Sensitivity::new(&inst, &Routing::FreePath, t).unwrap();
    cold.solve(&opts).unwrap();
    let mut cold_total = 0;
    for &f in &factors {
        cold.scale_all_capacities(f);
        cold.reset_basis();
        cold.solve(&opts).unwrap();
        cold_total += cold.last_iterations();
    }
    assert!(
        warm_total <= cold_total,
        "warm chain {warm_total} pivots vs cold {cold_total}"
    );
}

#[test]
fn lp_bound_from_sensitivity_matches_the_scheduler() {
    let inst = workload(13, 50.0);
    let t = horizon_for(&inst);
    let opts = SolverOptions::default();
    let mut sens = Sensitivity::new(&inst, &Routing::FreePath, t).unwrap();
    let via_sens = sens.solve(&opts).unwrap().objective;
    let via_sched = Scheduler::new(Algorithm::LpHeuristic)
        .with_horizon(coflow_suite::core::horizon::HorizonMode::Fixed(t))
        .relax(&inst, &Routing::FreePath)
        .unwrap()
        .objective;
    assert!(
        (via_sens - via_sched).abs() < 1e-5 * (1.0 + via_sched),
        "sensitivity {} vs scheduler {}",
        via_sens,
        via_sched
    );
}
