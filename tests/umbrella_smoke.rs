//! Smoke tests for the `coflow_suite` umbrella crate: every re-export
//! must resolve and be usable, and the quickstart example must run to
//! completion.

// Compile the real example file as a module so the test exercises the
// exact code `cargo run --example quickstart` runs.
#[path = "../examples/quickstart.rs"]
mod quickstart;

/// Each re-exported crate resolves and exposes a representative item.
#[test]
fn reexports_resolve() {
    // netgraph
    let topo = coflow_suite::netgraph::topology::fig2_example();
    assert!(topo.graph.node_count() > 0);

    // lp
    let mut m = coflow_suite::lp::Model::new(coflow_suite::lp::Sense::Minimize);
    let x = m.add_nonneg("x", 1.0);
    m.add_constraint([(x, 1.0)], coflow_suite::lp::Cmp::Ge, 2.0);
    let sol = m.solve().expect("trivial LP solves");
    assert!((sol.objective - 2.0).abs() < 1e-9);

    // core
    use coflow_suite::core::model::{Coflow, CoflowInstance, Flow};
    let g = coflow_suite::netgraph::topology::fig2_example().graph;
    let s = g.node_by_label("s").unwrap();
    let t = g.node_by_label("t").unwrap();
    let inst = CoflowInstance::new(g, vec![Coflow::new(vec![Flow::new(s, t, 1.0)])])
        .expect("valid instance");
    assert_eq!(inst.num_coflows(), 1);

    // workloads
    use coflow_suite::workloads::{build_instance, WorkloadConfig, WorkloadKind};
    let topo = coflow_suite::netgraph::topology::swan();
    let wl = WorkloadConfig {
        kind: WorkloadKind::Facebook,
        num_jobs: 3,
        seed: 1,
        slot_seconds: 50.0,
        mean_interarrival_slots: 1.0,
        weighted: true,
        demand_scale: 1.0,
    };
    let generated = build_instance(&topo, &wl).expect("workload builds");
    assert_eq!(generated.num_coflows(), 3);

    // baselines
    let terra = coflow_suite::baselines::terra::terra_offline(&inst).expect("terra runs");
    assert!(!terra.schedule.flows.is_empty());
}

/// `examples/quickstart.rs` runs to completion (it asserts internally
/// via `expect`s and exercises the full pipeline).
#[test]
fn quickstart_runs_to_completion() {
    quickstart::main();
}
