//! The full pipeline on the out-of-paper topologies (Abilene, NSFNET,
//! Waxman): the algorithms must be topology-agnostic — same invariants,
//! no WAN-specific assumptions baked in.

use coflow_suite::core::routing::{self, Routing};
use coflow_suite::core::solver::{Algorithm, Scheduler};
use coflow_suite::core::validate::{validate, Tolerance};
use coflow_suite::netgraph::random::{waxman, WaxmanParams};
use coflow_suite::netgraph::topology::{self, Topology};
use coflow_suite::workloads::{build_instance, WorkloadConfig, WorkloadKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        kind: WorkloadKind::Facebook,
        num_jobs: 5,
        seed,
        slot_seconds: 20.0,
        mean_interarrival_slots: 0.5,
        weighted: true,
        demand_scale: 1.0,
    }
}

fn pipeline_invariants(topo: &Topology, seed: u64) {
    let inst = build_instance(topo, &cfg(seed)).expect("placement validates");
    // Free path.
    let free = Scheduler::new(Algorithm::LpHeuristic)
        .solve(&inst, &Routing::FreePath)
        .expect("free-path pipeline");
    assert!(free.cost >= free.lower_bound - 1e-6, "{}", topo.name);
    // Single path.
    let mut rng = StdRng::seed_from_u64(seed);
    let r = routing::random_shortest_paths(&inst, &mut rng).expect("paths exist");
    let single = Scheduler::new(Algorithm::LpHeuristic)
        .solve(&inst, &r)
        .expect("single-path pipeline");
    assert!(single.cost >= single.lower_bound - 1e-6, "{}", topo.name);
    // Routing freedom only helps the relaxation.
    assert!(
        free.lower_bound <= single.lower_bound + 1e-6 * (1.0 + single.lower_bound),
        "{}: free bound {} above single bound {}",
        topo.name,
        free.lower_bound,
        single.lower_bound
    );
    // The primal-dual ordering runs wherever fixed paths exist.
    let pd = coflow_suite::baselines::primal_dual::primal_dual(&inst, &r).expect("bssi runs");
    let rep = validate(&inst, &r, &pd, Tolerance::default()).expect("feasible");
    assert!(rep.completions.weighted_total >= single.lower_bound - 1e-6);
}

#[test]
fn abilene_full_pipeline() {
    pipeline_invariants(&topology::abilene(), 21);
}

#[test]
fn nsfnet_full_pipeline() {
    pipeline_invariants(&topology::nsfnet(), 22);
}

#[test]
fn waxman_full_pipeline() {
    let mut rng = StdRng::seed_from_u64(23);
    let (topo, _) = waxman(12, WaxmanParams::default(), &mut rng);
    pipeline_invariants(&topo, 23);
}

#[test]
fn dumbbell_waist_dominates_completion_times() {
    // Every flow crosses the thin waist; the LP bound must reflect the
    // serialization the waist forces (≥ total demand / waist capacity).
    use coflow_suite::core::model::{Coflow, CoflowInstance, Flow};
    let topo = coflow_suite::netgraph::random::dumbbell(3, 100.0, 1.0);
    let g = topo.graph;
    let coflows: Vec<Coflow> = (0..3)
        .map(|k| {
            Coflow::new(vec![Flow::new(
                topo.sources[k],
                topo.sinks[(k + 1) % 3],
                2.0,
            )])
        })
        .collect();
    let inst = CoflowInstance::new(g, coflows).unwrap();
    let report = Scheduler::new(Algorithm::LpHeuristic)
        .solve(&inst, &Routing::FreePath)
        .unwrap();
    // 6 units through a capacity-1 waist: makespan ≥ 6, and the average
    // completion is ≥ the serialization lower bound Σ_k k·(2/1)/n-ish;
    // the simple check: no coflow can finish before slot 2, the last
    // not before slot 6.
    let makespan = report.validation.completions.makespan;
    assert!(makespan >= 6, "waist ignored: makespan {makespan}");
    assert!(report.lower_bound >= 2.0 + 4.0 + 6.0 - 1e-6 - 3.0); // LP may overlap partially
}
