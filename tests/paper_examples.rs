//! Integration tests reproducing the paper's worked examples: the
//! Figure 2 instance with its optimal single-path cost 7 (Figure 3) and
//! optimal free-path cost 5 (Figure 4).

use coflow_suite::core::model::{Coflow, CoflowInstance, Flow};
use coflow_suite::core::routing::Routing;
use coflow_suite::core::solver::{Algorithm, Scheduler};
use coflow_suite::core::validate::{validate, Tolerance};
use coflow_suite::netgraph::{topology, Path};

/// The Figure-2 instance: coflows red (v1→t), green (v2→t), orange
/// (v3→t) of demand 1 and blue (s→t) of demand 3, all unit weight.
fn fig2_instance() -> CoflowInstance {
    let topo = topology::fig2_example();
    let g = topo.graph;
    let s = g.node_by_label("s").unwrap();
    let t = g.node_by_label("t").unwrap();
    let v1 = g.node_by_label("v1").unwrap();
    let v2 = g.node_by_label("v2").unwrap();
    let v3 = g.node_by_label("v3").unwrap();
    CoflowInstance::new(
        g,
        vec![
            Coflow::new(vec![Flow::new(v1, t, 1.0)]),
            Coflow::new(vec![Flow::new(v2, t, 1.0)]),
            Coflow::new(vec![Flow::new(v3, t, 1.0)]),
            Coflow::new(vec![Flow::new(s, t, 3.0)]),
        ],
    )
    .unwrap()
}

/// Figure 3's path assignment: each relay coflow takes its direct edge;
/// blue goes s→v2→t, sharing the middle hop with green.
fn fig3_routing(inst: &CoflowInstance) -> Routing {
    let g = &inst.graph;
    let s = g.node_by_label("s").unwrap();
    let t = g.node_by_label("t").unwrap();
    let v1 = g.node_by_label("v1").unwrap();
    let v2 = g.node_by_label("v2").unwrap();
    let v3 = g.node_by_label("v3").unwrap();
    Routing::SinglePath(vec![
        vec![Path::from_nodes(g, &[v1, t]).unwrap()],
        vec![Path::from_nodes(g, &[v2, t]).unwrap()],
        vec![Path::from_nodes(g, &[v3, t]).unwrap()],
        vec![Path::from_nodes(g, &[s, v2, t]).unwrap()],
    ])
}

#[test]
fn figure3_single_path_optimum_is_seven() {
    let inst = fig2_instance();
    let routing = fig3_routing(&inst);
    let report = Scheduler::new(Algorithm::LpHeuristic)
        .solve(&inst, &routing)
        .unwrap();
    // The LP lower-bounds the optimal 7; the rounded schedule must be
    // feasible and cannot beat the optimum.
    assert!(
        report.lower_bound <= 7.0 + 1e-6,
        "LP {}",
        report.lower_bound
    );
    assert!(
        report.cost >= 7.0 - 1e-6,
        "cost {} below optimum",
        report.cost
    );
    // And the heuristic actually achieves the optimum here.
    assert!(report.cost <= 7.0 + 1e-6, "cost {}", report.cost);
    validate(&inst, &routing, &report.schedule, Tolerance::default()).unwrap();
}

#[test]
fn figure4_free_path_optimum_is_five() {
    let inst = fig2_instance();
    let report = Scheduler::new(Algorithm::LpHeuristic)
        .solve(&inst, &Routing::FreePath)
        .unwrap();
    assert!(report.lower_bound <= 5.0 + 1e-6);
    assert!(report.cost >= 5.0 - 1e-6);
    assert!(
        report.cost <= 5.0 + 1e-6,
        "heuristic should hit 5, got {}",
        report.cost
    );
    // Figure 4's structure: the three unit coflows complete in slot 1,
    // blue in slot 2.
    let c = &report.validation.completions.per_coflow;
    assert_eq!(&c[..3], &[1, 1, 1]);
    assert_eq!(c[3], 2);
}

#[test]
fn free_path_strictly_beats_single_path_on_fig2() {
    // The gap between Figures 3 and 4 (7 vs 5) is the value of routing
    // flexibility; both our relaxations must exhibit it.
    let inst = fig2_instance();
    let single = Scheduler::new(Algorithm::LpHeuristic)
        .solve(&inst, &fig3_routing(&inst))
        .unwrap();
    let free = Scheduler::new(Algorithm::LpHeuristic)
        .solve(&inst, &Routing::FreePath)
        .unwrap();
    assert!(
        free.cost < single.cost,
        "free {} !< single {}",
        free.cost,
        single.cost
    );
}

#[test]
fn figure1_style_wan_splitting() {
    // The paper's Figure 1 narrative: in the free-path model two flows
    // can share capacity and split over parallel routes, finishing in 2
    // time units where the fixed-path schedule needs 3. Reconstructed on
    // a 5-node WAN with the same character (exact capacities are not
    // machine-readable from the figure).
    let topo = topology::fig2_example();
    let g = topo.graph;
    let s = g.node_by_label("s").unwrap();
    let t = g.node_by_label("t").unwrap();
    let v1 = g.node_by_label("v1").unwrap();
    // One coflow with two flows: s -> t (demand 4) and v1 -> t (demand 1).
    let inst = CoflowInstance::new(
        g,
        vec![Coflow::new(vec![
            Flow::new(s, t, 4.0),
            Flow::new(v1, t, 1.0),
        ])],
    )
    .unwrap();
    let free = Scheduler::new(Algorithm::LpHeuristic)
        .solve(&inst, &Routing::FreePath)
        .unwrap();
    // Max joint throughput is bounded by t's ingress (3/slot); 5 units
    // need ceil(5/3) = 2 slots and the LP schedule achieves it.
    assert_eq!(free.validation.completions.per_coflow, vec![2]);
}
