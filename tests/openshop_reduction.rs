//! Integration tests of the §5 hardness reduction: concurrent open shop
//! and coflow scheduling are cost-equivalent under the paper's mapping,
//! and our algorithms respect the implied bounds against exact optima.

use coflow_suite::baselines::openshop::{
    coflow_schedule_cost_to_openshop, exact_optimum, permutation_to_coflow_schedule,
    to_coflow_instance, OpenShopInstance,
};
use coflow_suite::core::solver::{Algorithm, Scheduler};
use coflow_suite::core::validate::{validate, Tolerance};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn optimum_costs_transfer_in_both_directions() {
    let mut rng = StdRng::seed_from_u64(2019);
    for trial in 0..12 {
        let os = OpenShopInstance::random(&mut rng, 3, 5, 4, 0.3, true);
        let (opt, order) = exact_optimum(&os);
        let (inst, routing) = to_coflow_instance(&os).unwrap();

        // Open shop -> coflow: equal cost, feasible.
        let sched = permutation_to_coflow_schedule(&os, &inst, &order);
        let rep = validate(&inst, &routing, &sched, Tolerance::default())
            .unwrap_or_else(|e| panic!("trial {trial}: {e}"));
        assert!(
            (rep.completions.weighted_total - opt).abs() < 1e-9,
            "trial {trial}: {} != {opt}",
            rep.completions.weighted_total
        );

        // Coflow -> open shop from that same schedule: cannot increase,
        // cannot beat the optimum => exactly opt.
        let back = coflow_schedule_cost_to_openshop(&os, &sched);
        assert!((back - opt).abs() < 1e-9, "trial {trial}: back {back}");
    }
}

#[test]
fn lp_bound_sandwiches_the_exact_optimum() {
    let mut rng = StdRng::seed_from_u64(4242);
    for trial in 0..8 {
        let os = OpenShopInstance::random(&mut rng, 2, 4, 3, 0.25, true);
        let (opt, _) = exact_optimum(&os);
        let (inst, routing) = to_coflow_instance(&os).unwrap();
        let report = Scheduler::new(Algorithm::LpHeuristic)
            .solve(&inst, &routing)
            .unwrap();
        // LP lower bound <= exact optimum <= any feasible schedule.
        assert!(
            report.lower_bound <= opt + 1e-6,
            "trial {trial}: LP {} > OPT {opt}",
            report.lower_bound
        );
        assert!(
            report.cost >= opt - 1e-6,
            "trial {trial}: heuristic {} beats OPT {opt}",
            report.cost
        );
        // Mapping our schedule back can only help, and stays >= OPT.
        let back = coflow_schedule_cost_to_openshop(&os, &report.schedule);
        assert!(back <= report.cost + 1e-6);
        assert!(back >= opt - 1e-6);
    }
}

#[test]
fn our_algorithms_stay_near_exact_optima() {
    // Empirical approximation quality on reduced instances: the λ=1
    // heuristic lands within 1.6x of the exact optimum on this seed set
    // (the theoretical guarantee for Stretch is 2x in expectation).
    let mut rng = StdRng::seed_from_u64(7);
    let mut worst: f64 = 1.0;
    for _ in 0..8 {
        let os = OpenShopInstance::random(&mut rng, 3, 5, 4, 0.3, false);
        let (opt, _) = exact_optimum(&os);
        let (inst, routing) = to_coflow_instance(&os).unwrap();
        let report = Scheduler::new(Algorithm::LpHeuristic)
            .solve(&inst, &routing)
            .unwrap();
        let back = coflow_schedule_cost_to_openshop(&os, &report.schedule);
        worst = worst.max(back / opt);
    }
    assert!(
        worst <= 1.6,
        "heuristic wandered to {worst}x of optimum on the fixed seeds"
    );
}
