//! End-to-end pipeline tests: every workload kind on both WAN
//! topologies, through the relaxation, the rounding algorithms, and the
//! baselines, with full feasibility validation at each step.

use coflow_suite::baselines::{sjf, terra};
use coflow_suite::core::routing::{self, Routing};
use coflow_suite::core::solver::{Algorithm, Scheduler};
use coflow_suite::core::validate::{validate, Tolerance};
use coflow_suite::netgraph::topology;
use coflow_suite::workloads::{build_instance, WorkloadConfig, WorkloadKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg(kind: WorkloadKind, weighted: bool) -> WorkloadConfig {
    WorkloadConfig {
        kind,
        num_jobs: 6,
        seed: 77,
        slot_seconds: 50.0,
        mean_interarrival_slots: 1.0,
        weighted,
        demand_scale: 1.0,
    }
}

#[test]
fn all_workloads_free_path_on_swan() {
    let topo = topology::swan();
    for kind in WorkloadKind::ALL {
        let inst = build_instance(&topo, &cfg(kind, true)).unwrap();
        let report = Scheduler::new(Algorithm::LpHeuristic)
            .solve(&inst, &Routing::FreePath)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert!(
            report.cost >= report.lower_bound - 1e-6,
            "{}: cost below LP bound",
            kind.name()
        );
        // The whole schedule was validated inside solve(); re-validate
        // here as an independent check.
        validate(
            &inst,
            &Routing::FreePath,
            &report.schedule,
            Tolerance::default(),
        )
        .unwrap();
    }
}

#[test]
fn all_workloads_single_path_on_gscale() {
    let topo = topology::gscale();
    for kind in WorkloadKind::ALL {
        let inst = build_instance(&topo, &cfg(kind, true)).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let r = routing::random_shortest_paths(&inst, &mut rng).unwrap();
        let report = Scheduler::new(Algorithm::LpHeuristic)
            .solve(&inst, &r)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert!(report.cost >= report.lower_bound - 1e-6);

        // SJF greedy is feasible and no better than the LP bound.
        let greedy = sjf::weighted_sjf(&inst, &r).unwrap();
        let rep = validate(&inst, &r, &greedy, Tolerance::default()).unwrap();
        assert!(rep.completions.weighted_total >= report.lower_bound - 1e-6);
    }
}

#[test]
fn terra_beats_nothing_below_the_bound() {
    let topo = topology::swan();
    let inst = build_instance(&topo, &cfg(WorkloadKind::Facebook, false)).unwrap();
    let report = Scheduler::new(Algorithm::LpHeuristic)
        .solve(&inst, &Routing::FreePath)
        .unwrap();
    let out = terra::terra_offline(&inst).unwrap();
    let rep = validate(
        &inst,
        &Routing::FreePath,
        &out.schedule,
        Tolerance::default(),
    )
    .unwrap();
    assert!(
        rep.completions.unweighted_total >= report.lower_bound - 1e-6,
        "Terra {} beats the LP bound {}",
        rep.completions.unweighted_total,
        report.lower_bound
    );
}

#[test]
fn multipath_pipeline_end_to_end() {
    let topo = topology::gscale();
    let inst = build_instance(&topo, &cfg(WorkloadKind::BigBench, true)).unwrap();
    let r = routing::k_shortest_path_sets(&inst, 3).unwrap();
    let report = Scheduler::new(Algorithm::Stretch {
        samples: 6,
        seed: 3,
    })
    .solve(&inst, &r)
    .unwrap();
    assert!(report.sweep.is_some());
    assert!(report.cost >= report.lower_bound - 1e-6);
}

#[test]
fn pipeline_is_deterministic_for_fixed_seeds() {
    let topo = topology::swan();
    let inst = build_instance(&topo, &cfg(WorkloadKind::TpcH, true)).unwrap();
    let run = || {
        Scheduler::new(Algorithm::Stretch {
            samples: 5,
            seed: 11,
        })
        .solve(&inst, &Routing::FreePath)
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.lower_bound, b.lower_bound);
    assert_eq!(a.cost, b.cost);
    let sa = a.sweep.unwrap();
    let sb = b.sweep.unwrap();
    for (x, y) in sa.samples.iter().zip(&sb.samples) {
        assert_eq!(x.lambda, y.lambda);
        assert_eq!(x.weighted_cost, y.weighted_cost);
    }
}
