//! Cross-algorithm registry properties: **every** registered solver, on
//! random SWAN/Facebook-style workload instances, must
//!
//! 1. produce a schedule that independently passes `validate`, and
//! 2. cost at least the time-indexed LP lower bound of its routing
//!    model (no algorithm beats the relaxation of its own search
//!    space), and
//! 3. flag itself `lp_based` whenever it reports an LP bound.
//!
//! This is the safety net behind the registry's "add an algorithm in
//! one entry" promise: a new entry is covered here automatically, with
//! no figure or CLI changes.

use coflow_suite::baselines::registry::{self, AlgoParams, RoutingSupport};
use coflow_suite::core::routing::{self, Routing};
use coflow_suite::core::solve::SolveContext;
use coflow_suite::core::validate::{validate, Tolerance};
use coflow_suite::netgraph::topology;
use coflow_suite::workloads::{build_instance, WorkloadConfig, WorkloadKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random workload instances in the style of the paper's §6 setup:
/// Facebook-shaped (and one TPC-DS-shaped) job mixes placed on SWAN.
/// Unit weights, so weight-agnostic algorithms (Terra, plain SJF) are
/// judged on the same objective as everyone else.
fn instances() -> Vec<coflow_suite::core::model::CoflowInstance> {
    let mut out = Vec::new();
    for (kind, seed) in [
        (WorkloadKind::Facebook, 41),
        (WorkloadKind::Facebook, 42),
        (WorkloadKind::TpcDs, 43),
    ] {
        let topo = topology::swan();
        let cfg = WorkloadConfig {
            kind,
            num_jobs: 5,
            seed,
            slot_seconds: 50.0,
            mean_interarrival_slots: 0.5,
            weighted: false,
            demand_scale: 0.02,
        };
        out.push(build_instance(&topo, &cfg).expect("workload placement validates"));
    }
    out
}

#[test]
fn every_registered_solver_validates_and_respects_the_lp_bound() {
    for (n, inst) in instances().into_iter().enumerate() {
        // One routing per support class; contexts are shared per
        // routing so the reference LP is solved once per instance.
        let mut rng = StdRng::seed_from_u64(7 + n as u64);
        let single = routing::random_shortest_paths(&inst, &mut rng).expect("paths exist");
        let free = Routing::FreePath;
        let mut free_ctx = SolveContext::new();
        let mut single_ctx = SolveContext::new();
        let free_bound = free_ctx
            .time_indexed(&inst, &free)
            .expect("LP solves")
            .objective;
        let single_bound = single_ctx
            .time_indexed(&inst, &single)
            .expect("LP solves")
            .objective;

        let params = AlgoParams {
            samples: 3,
            seed: 5,
            ..Default::default()
        };
        for entry in registry::all() {
            let (routing, ctx, bound) = match entry.caps.routing {
                RoutingSupport::SinglePathOnly => (&single, &mut single_ctx, single_bound),
                RoutingSupport::FreePathOnly | RoutingSupport::Any => {
                    (&free, &mut free_ctx, free_bound)
                }
            };
            let out = entry
                .build(&params)
                .solve(&inst, routing, ctx)
                .unwrap_or_else(|e| panic!("instance {n}, {}: {e}", entry.name));

            // Independent feasibility audit of the returned schedule.
            let rep = validate(&inst, routing, &out.schedule, Tolerance::default())
                .unwrap_or_else(|e| panic!("instance {n}, {}: invalid schedule: {e}", entry.name));
            assert_eq!(
                rep.completions.weighted_total, out.cost,
                "instance {n}, {}: reported cost disagrees with validation",
                entry.name
            );

            // No algorithm beats the LP relaxation of its search space.
            let tol = 1e-6 * (1.0 + bound.abs());
            assert!(
                out.cost >= bound - tol,
                "instance {n}, {}: cost {} beats the LP bound {bound}",
                entry.name,
                out.cost
            );
            // Own-bound honesty: only time-indexed relaxations are exact
            // lower bounds (interval LPs can overshoot the optimum by
            // their interval resolution — that is why the figure
            // binaries also anchor on the time-indexed column), but any
            // reported bound implies the lp_based capability flag.
            if out.lower_bound.is_some() {
                assert!(
                    entry.caps.lp_based,
                    "{}: reports an LP bound but is not flagged lp_based",
                    entry.name
                );
            }
        }
    }
}

#[test]
fn lp_free_is_the_complement_of_lp_based() {
    // The two flags answer the same question from opposite sides —
    // "does this entry run an LP?" — so exactly one must be set. The
    // service's fallback tier filters on `lp_free`; an entry lying here
    // would let an overloaded daemon degrade onto an LP.
    for entry in registry::all() {
        assert!(
            entry.caps.lp_free != entry.caps.lp_based,
            "{}: lp_free ({}) must be the complement of lp_based ({})",
            entry.name,
            entry.caps.lp_free,
            entry.caps.lp_based
        );
    }
}

#[test]
fn deadline_awareness_is_declared_by_the_dcoflow_family() {
    // Deadline-aware entries exist (the DCoflow variants), are LP-free,
    // and advertise themselves; every other entry schedules
    // deadline-blind and must say so.
    let aware: Vec<&str> = registry::all()
        .iter()
        .filter(|e| e.caps.deadline_aware)
        .map(|e| e.name)
        .collect();
    assert_eq!(aware, ["dcoflow-min-link", "dcoflow-min-sum-neg"]);
    for entry in registry::all() {
        if entry.caps.deadline_aware {
            assert!(
                entry.caps.lp_free,
                "{}: deadline admission control lives in the LP-free tier",
                entry.name
            );
        }
    }
}

#[test]
fn capability_flags_are_honest_about_routing() {
    // Algorithms declaring a routing restriction must reject the other
    // model instead of silently mis-scheduling.
    let all_instances = instances();
    let inst = &all_instances[0];
    let mut rng = StdRng::seed_from_u64(99);
    let single = routing::random_shortest_paths(inst, &mut rng).expect("paths exist");
    let params = AlgoParams::default();
    for entry in registry::all() {
        let wrong = match entry.caps.routing {
            RoutingSupport::SinglePathOnly => Routing::FreePath,
            RoutingSupport::FreePathOnly => single.clone(),
            RoutingSupport::Any => continue,
        };
        let mut ctx = SolveContext::new();
        let err = entry.build(&params).solve(inst, &wrong, &mut ctx);
        assert!(
            err.is_err(),
            "{}: accepted a routing model outside its declared support",
            entry.name
        );
    }
}
