//! Warm-started re-solves must be invisible in the *results*: on
//! randomized SWAN and switch workloads, every epoch re-solve of the
//! online pipeline and every ε point of a chained interval sweep must
//! land on the same objective the cold path finds (to LP tolerance), and
//! the executed schedules must independently validate.
//!
//! This extends the cross-algorithm pattern of `registry_properties.rs`
//! down one layer: where that test audits algorithm *outcomes*, this one
//! audits the warm-start machinery itself — the shadow cold probe solves
//! each epoch's exact model from the all-slack crash basis, so the
//! comparison is on identical LPs, not merely similar ones.

use coflow_suite::core::interval::{solve_interval, solve_interval_chained, IntervalChain};
use coflow_suite::core::model::CoflowInstance;
use coflow_suite::core::online::{online_heuristic_with, OnlineOptions};
use coflow_suite::core::routing::Routing;
use coflow_suite::core::validate::{validate, Tolerance};
use coflow_suite::lp::{LpEngine, SolverOptions};
use coflow_suite::netgraph::topology;
use coflow_suite::workloads::{build_instance, WorkloadConfig, WorkloadKind};

/// Both production engines with the workloads each can afford: every
/// equivalence below must hold whether the LPs run on the sparse
/// revised simplex (full instance set) or the dense tableau (the
/// smaller switch instances — the tableau is O(rows·cols) per pivot,
/// so the SWAN replays would dominate the whole suite's runtime).
fn engine_runs() -> [(SolverOptions, Vec<(&'static str, CoflowInstance)>); 2] {
    let all = instances();
    let small = instances()
        .into_iter()
        .filter(|(label, _)| *label == "switch")
        .collect();
    [
        (SolverOptions::default(), all),
        (
            SolverOptions {
                engine: LpEngine::Dense,
                ..Default::default()
            },
            small,
        ),
    ]
}

/// Randomized workloads on the two fabrics the suite cares about: the
/// SWAN WAN and the big switch (via dense port-to-port traffic).
fn instances() -> Vec<(&'static str, CoflowInstance)> {
    let mut out = Vec::new();
    for (seed, kind) in [(11, WorkloadKind::Facebook), (12, WorkloadKind::TpcDs)] {
        let topo = topology::swan();
        let cfg = WorkloadConfig {
            kind,
            num_jobs: 5,
            seed,
            slot_seconds: 50.0,
            mean_interarrival_slots: 0.8,
            weighted: true,
            demand_scale: 0.02,
        };
        out.push(("swan", build_instance(&topo, &cfg).expect("builds")));
    }
    for seed in [13, 14] {
        let topo = topology::bipartite_switch(6, 2.0);
        let cfg = WorkloadConfig {
            kind: WorkloadKind::Facebook,
            num_jobs: 4,
            seed,
            slot_seconds: 50.0,
            mean_interarrival_slots: 1.0,
            weighted: false,
            demand_scale: 0.02,
        };
        out.push(("switch", build_instance(&topo, &cfg).expect("builds")));
    }
    out
}

#[test]
fn warm_epoch_resolves_match_cold_objectives_and_validate() {
    for (lp_opts, instances) in engine_runs() {
        for (label, inst) in instances {
            let run = online_heuristic_with(
                &inst,
                &Routing::FreePath,
                &lp_opts,
                &OnlineOptions {
                    cold: false,
                    shadow_cold: true,
                },
            )
            .unwrap_or_else(|e| panic!("{label}: online run failed: {e}"));

            // Per-epoch: the warm solve and the all-slack solve of the
            // same model agree on the optimum.
            let cold = run.cold_objectives.as_ref().expect("shadow mode records");
            assert_eq!(cold.len(), run.epoch_objectives.len());
            for (k, (w, c)) in run.epoch_objectives.iter().zip(cold).enumerate() {
                assert!(
                    (w - c).abs() <= 1e-6 * (1.0 + c.abs()),
                    "{label}: epoch {k} warm objective {w} vs cold {c}"
                );
            }
            // The executed schedule independently validates.
            validate(
                &inst,
                &Routing::FreePath,
                &run.schedule,
                Tolerance::default(),
            )
            .unwrap_or_else(|e| panic!("{label}: warm online schedule invalid: {e}"));
            // Effort accounting is populated (the dense tableau does not
            // count simplex iterations, so only the sparse engine
            // reports them).
            if lp_opts.engine == LpEngine::Sparse {
                assert!(run.lp_iterations > 0);
            }
            assert_eq!(run.epoch_objectives.len(), run.resolves);
        }
    }
}

#[test]
fn warm_and_cold_trajectories_both_produce_valid_schedules() {
    // The --cold escape hatch follows its own (cold-solved) trajectory;
    // both trajectories must validate and respect the same LP bound.
    for (lp_opts, instances) in engine_runs() {
        for (label, inst) in instances {
            let mut costs = Vec::new();
            for cold in [false, true] {
                let run = online_heuristic_with(
                    &inst,
                    &Routing::FreePath,
                    &lp_opts,
                    &OnlineOptions {
                        cold,
                        shadow_cold: false,
                    },
                )
                .unwrap_or_else(|e| panic!("{label}: cold={cold} run failed: {e}"));
                let rep = validate(
                    &inst,
                    &Routing::FreePath,
                    &run.schedule,
                    Tolerance::default(),
                )
                .unwrap_or_else(|e| panic!("{label}: cold={cold} schedule invalid: {e}"));
                costs.push(rep.completions.weighted_total);
            }
            // Shared lower bound: the offline time-indexed relaxation.
            let mut ctx = coflow_suite::core::solve::SolveContext::new();
            let bound = ctx
                .time_indexed(&inst, &Routing::FreePath)
                .expect("LP solves")
                .objective;
            for (cost, mode) in costs.iter().zip(["warm", "cold"]) {
                assert!(
                    *cost >= bound - 1e-6 * (1.0 + bound.abs()),
                    "{label}: {mode} trajectory cost {cost} beats the LP bound {bound}"
                );
            }
        }
    }
}

#[test]
fn chained_interval_sweeps_match_cold_and_discretize_validly() {
    for (lp_opts, instances) in engine_runs() {
        for (label, inst) in instances {
            let horizon = coflow_suite::core::horizon::horizon(
                &inst,
                &Routing::FreePath,
                coflow_suite::core::horizon::HorizonMode::Greedy { margin: 1.25 },
            )
            .expect("horizon");
            let mut chain: Option<IntervalChain> = None;
            for k in 1..=5 {
                let eps = k as f64 * 0.2;
                let cold = solve_interval(&inst, &Routing::FreePath, horizon, eps, &lp_opts)
                    .unwrap_or_else(|e| panic!("{label}: cold ε={eps} failed: {e}"));
                let (warm, next) = solve_interval_chained(
                    &inst,
                    &Routing::FreePath,
                    horizon,
                    eps,
                    &lp_opts,
                    chain.as_ref(),
                )
                .unwrap_or_else(|e| panic!("{label}: chained ε={eps} failed: {e}"));
                assert!(
                    (warm.lp.objective - cold.lp.objective).abs()
                        <= 1e-6 * (1.0 + cold.lp.objective.abs()),
                    "{label}: ε={eps} chained {} vs cold {}",
                    warm.lp.objective,
                    cold.lp.objective
                );
                // The warm point's uniform-rate plan is a real schedule.
                let sched = warm.lp.plan.discretize();
                let rep = validate(&inst, &Routing::FreePath, &sched, Tolerance::default())
                    .unwrap_or_else(|e| panic!("{label}: ε={eps} chained plan invalid: {e}"));
                assert!(rep.peak_utilization <= 1.0 + 1e-6);
                chain = Some(next);
            }
        }
    }
}
