//! Cross-crate tests for derandomized Stretch on realistic workloads:
//! the exact best-λ/expectation machinery against the paper's sampled
//! estimates, end to end from the workload generator.

use coflow_suite::core::derand::{coflow_profiles, derandomize, profile_cost};
use coflow_suite::core::routing::Routing;
use coflow_suite::core::solver::{Algorithm, Scheduler};
use coflow_suite::core::stretch::{lambda_sweep, stretch_schedule, StretchOptions};
use coflow_suite::core::validate::{validate, Tolerance};
use coflow_suite::netgraph::topology;
use coflow_suite::workloads::{build_instance, WorkloadConfig, WorkloadKind};

fn workload(kind: WorkloadKind, seed: u64) -> coflow_suite::core::model::CoflowInstance {
    let topo = topology::swan();
    build_instance(
        &topo,
        &WorkloadConfig {
            kind,
            num_jobs: 6,
            seed,
            slot_seconds: 50.0,
            mean_interarrival_slots: 1.0,
            weighted: true,
            demand_scale: 1.0,
        },
    )
    .unwrap()
}

#[test]
fn exact_best_dominates_sampling_on_every_workload() {
    let pure = StretchOptions { compact: false };
    for kind in WorkloadKind::ALL {
        let inst = workload(kind, 13);
        let lp = Scheduler::new(Algorithm::LpHeuristic)
            .relax(&inst, &Routing::FreePath)
            .unwrap();
        let d = derandomize(&inst, &lp.plan);
        let sweep = lambda_sweep(&inst, &lp.plan, 20, 7, pure);
        assert!(
            d.best_cost <= sweep.best().weighted_cost + 1e-9,
            "{}: exact {} vs sampled best {}",
            kind.name(),
            d.best_cost,
            sweep.best().weighted_cost
        );
        assert!(
            d.expected_cost - d.expected_cost_error <= 2.0 * lp.objective + 1e-6,
            "{}: Theorem 4.4 violated: E = {} vs 2·LP = {}",
            kind.name(),
            d.expected_cost,
            2.0 * lp.objective
        );
        assert!(d.expected_cost + d.expected_cost_error >= lp.objective - 1e-6);
    }
}

#[test]
fn materialized_best_lambda_schedule_is_feasible_and_matches() {
    let inst = workload(WorkloadKind::Facebook, 29);
    let lp = Scheduler::new(Algorithm::LpHeuristic)
        .relax(&inst, &Routing::FreePath)
        .unwrap();
    let d = derandomize(&inst, &lp.plan);
    let sched = stretch_schedule(
        &inst,
        &lp.plan,
        d.best_lambda,
        StretchOptions { compact: false },
    );
    let rep = validate(&inst, &Routing::FreePath, &sched, Tolerance::default()).unwrap();
    assert!(
        (rep.completions.weighted_total - d.best_cost).abs() < 1e-6 * (1.0 + d.best_cost),
        "profile cost {} vs schedule cost {}",
        d.best_cost,
        rep.completions.weighted_total
    );
    assert!(rep.peak_utilization <= 1.0 + 1e-6);
}

#[test]
fn profile_cost_agrees_with_schedules_across_lambdas() {
    let inst = workload(WorkloadKind::TpcH, 41);
    let lp = Scheduler::new(Algorithm::LpHeuristic)
        .relax(&inst, &Routing::FreePath)
        .unwrap();
    let profiles = coflow_profiles(&inst, &lp.plan);
    for &lambda in &[0.231, 0.417, 0.583, 0.7749, 0.91, 1.0] {
        let via_profile = profile_cost(&inst, &profiles, lambda);
        let sched = stretch_schedule(&inst, &lp.plan, lambda, StretchOptions { compact: false });
        let via_schedule = sched.completions(&inst).unwrap().weighted_total;
        assert!(
            (via_profile - via_schedule).abs() < 1e-6 * (1.0 + via_schedule),
            "λ={lambda}: profile {via_profile} vs schedule {via_schedule}"
        );
    }
}

#[test]
fn compaction_can_only_improve_on_the_derand_optimum() {
    // The derand optimum is over *pure* stretches; compacting the same
    // λ must do at least as well (the §6.1 trick is never harmful).
    let inst = workload(WorkloadKind::BigBench, 53);
    let lp = Scheduler::new(Algorithm::LpHeuristic)
        .relax(&inst, &Routing::FreePath)
        .unwrap();
    let d = derandomize(&inst, &lp.plan);
    let compacted = stretch_schedule(
        &inst,
        &lp.plan,
        d.best_lambda,
        StretchOptions { compact: true },
    );
    let cost = compacted.completions(&inst).unwrap().weighted_total;
    assert!(
        cost <= d.best_cost + 1e-9,
        "compaction worsened {} -> {cost}",
        d.best_cost
    );
}
