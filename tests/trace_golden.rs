//! Golden regression anchors for the bundled FB2010-format sample
//! trace: replaying it must cost *exactly* the recorded totals, run
//! after run.
//!
//! The replay path is deterministic end-to-end — fixture → parser →
//! gadgeted switch instance → LP/combinatorial solve → validated
//! schedule — and completion times are integral slot counts, so total
//! costs under unit weights are exact small integers. Any drift in the
//! parser, the normalization defaults, the gadget construction, the LP
//! pipeline, or the baselines shows up here as a changed constant, not
//! as a silent shape change in the figures.

use coflow_suite::baselines::registry::{self, AlgoParams};
use coflow_suite::core::routing::{self, Routing};
use coflow_suite::core::solve::{SolveContext, SolveOutcome};
use coflow_suite::core::validate::{validate, Tolerance};
use coflow_suite::workloads::trace::{ReplayOptions, Trace, FB2010_SAMPLE};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The recorded golden costs (total completion time, unit weights) of
/// replaying the full 20-coflow fixture with default [`ReplayOptions`].
const HEURISTIC_COST: f64 = 82.0;
const PRIMAL_DUAL_COST: f64 = 80.0;

/// Routing seed for the single-path replay (primal-dual needs fixed
/// paths; on the gadgeted switch every flow's shortest path is unique,
/// so the seed cannot actually change the paths).
const PATH_SEED: u64 = 1;

fn replay(algo: &str) -> SolveOutcome {
    let trace = Trace::parse(FB2010_SAMPLE).expect("fixture parses");
    let inst = trace
        .switch_instance(&ReplayOptions::default())
        .expect("fixture replays");
    let entry = registry::by_name(algo).expect("registered");
    let routing = match entry.caps.routing {
        registry::RoutingSupport::SinglePathOnly => {
            let mut rng = StdRng::seed_from_u64(PATH_SEED);
            routing::random_shortest_paths(&inst, &mut rng).expect("paths exist")
        }
        _ => Routing::FreePath,
    };
    let mut ctx = SolveContext::new();
    let out = entry
        .build(&AlgoParams::default())
        .solve(&inst, &routing, &mut ctx)
        .unwrap_or_else(|e| panic!("{algo}: {e}"));
    // Independent feasibility audit — golden numbers must come from
    // schedules that actually transmit every byte.
    validate(&inst, &routing, &out.schedule, Tolerance::default())
        .unwrap_or_else(|e| panic!("{algo}: invalid schedule: {e}"));
    out
}

#[test]
fn lp_pipeline_replay_matches_the_golden_cost() {
    let out = replay("heuristic");
    assert_eq!(
        out.cost, HEURISTIC_COST,
        "heuristic replay cost drifted from the golden anchor"
    );
    // Unit weights: the weighted and unweighted objectives coincide.
    assert_eq!(out.unweighted_cost, HEURISTIC_COST);
    // The LP bound must stay a true lower bound on the golden cost.
    let lb = out.lower_bound.expect("LP pipeline reports its bound");
    assert!(lb <= HEURISTIC_COST && lb > 0.0, "bound {lb}");
}

#[test]
fn primal_dual_replay_matches_the_golden_cost() {
    let out = replay("primal-dual");
    assert_eq!(
        out.cost, PRIMAL_DUAL_COST,
        "sincronia-style primal-dual replay cost drifted from the golden anchor"
    );
}

#[test]
fn replay_is_byte_stable_across_runs() {
    // Two independent end-to-end replays (fresh parse, fresh instance,
    // fresh context) must agree bit-for-bit — the determinism half of
    // the golden contract, including the LP's floating-point objective.
    for algo in ["heuristic", "primal-dual"] {
        let a = replay(algo);
        let b = replay(algo);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{algo} cost drifted");
        assert_eq!(
            a.lower_bound.map(f64::to_bits),
            b.lower_bound.map(f64::to_bits),
            "{algo} LP bound drifted"
        );
        assert_eq!(
            a.validation.completions.makespan, b.validation.completions.makespan,
            "{algo} makespan drifted"
        );
    }
}
