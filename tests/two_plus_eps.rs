//! Theorem 4.5's (2+ε)-approximation: Stretch applied to the
//! geometric-interval relaxation. The rate-plan abstraction makes this
//! literally a composition — `solve_interval(...).lp.plan` piped through
//! `stretch_schedule` — and these tests verify the composed algorithm's
//! guarantee and feasibility, including super-polynomially large
//! demands where the unit-slot LP would be impossibly big.

use coflow_suite::core::model::{Coflow, CoflowInstance, Flow};
use coflow_suite::core::routing::Routing;
use coflow_suite::core::stretch::{stretch_schedule, StretchOptions};
use coflow_suite::core::validate::{validate, Tolerance};
use coflow_suite::lp::SolverOptions;
use coflow_suite::netgraph::topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_instance(seed: u64, demand_scale: f64) -> CoflowInstance {
    let topo = topology::swan().scale_capacity(5.0);
    let g = topo.graph;
    let nodes: Vec<_> = g.nodes().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let coflows = (0..5)
        .map(|_| {
            let a = nodes[rng.gen_range(0..nodes.len())];
            let mut b = nodes[rng.gen_range(0..nodes.len())];
            while b == a {
                b = nodes[rng.gen_range(0..nodes.len())];
            }
            Coflow::weighted(
                rng.gen_range(1.0..20.0),
                vec![Flow::new(a, b, rng.gen_range(10.0..50.0) * demand_scale)],
            )
        })
        .collect();
    CoflowInstance::new(g, coflows).unwrap()
}

#[test]
fn interval_stretch_expectation_within_two_plus_eps() {
    let epsilon = 0.3;
    for seed in [21u64, 22] {
        let inst = random_instance(seed, 1.0);
        let t = coflow_suite::core::horizon::horizon(
            &inst,
            &Routing::FreePath,
            coflow_suite::core::horizon::HorizonMode::Greedy { margin: 1.3 },
        )
        .unwrap();
        let rel = coflow_suite::core::interval::solve_interval(
            &inst,
            &Routing::FreePath,
            t,
            epsilon,
            &SolverOptions::default(),
        )
        .unwrap();
        // Grid-integrate E_λ[cost(stretch(interval plan, λ))].
        let lo = 0.02;
        let grid = 120;
        let mut expectation = 0.0;
        for k in 0..grid {
            let lambda = lo + (1.0 - lo) * (k as f64 + 0.5) / grid as f64;
            let sched = stretch_schedule(
                &inst,
                &rel.lp.plan,
                lambda,
                StretchOptions { compact: false },
            );
            let cost = sched.completions(&inst).expect("complete").weighted_total;
            expectation += 2.0 * lambda * cost * (1.0 - lo) / grid as f64;
        }
        let w_sum: f64 = inst.coflows.iter().map(|c| c.weight).sum();
        let horizon_cont = *rel.boundaries.last().unwrap();
        expectation += w_sum * (horizon_cont * 2.0 * lo + lo * lo); // tail bound
                                                                    // Lemma A.4: E ≤ 2(1+ε)·C*; plus one ceiling slot per coflow.
        let bound = 2.0 * (1.0 + epsilon) * rel.lp.objective + w_sum;
        assert!(
            expectation <= bound + 1e-6,
            "seed {seed}: E[cost] {expectation} > 2(1+ε)·LP + slack = {bound}"
        );
    }
}

#[test]
fn huge_demands_solve_via_intervals_only() {
    // Demands scaled 2000x: the unit-slot horizon climbs to the
    // thousands; the interval LP needs only O(log T) periods.
    let inst = random_instance(33, 2000.0);
    let t = coflow_suite::core::horizon::horizon(
        &inst,
        &Routing::FreePath,
        coflow_suite::core::horizon::HorizonMode::Greedy { margin: 1.2 },
    )
    .unwrap();
    assert!(t > 500, "demands should force a long horizon, got {t}");
    let rel = coflow_suite::core::interval::solve_interval(
        &inst,
        &Routing::FreePath,
        t,
        0.25,
        &SolverOptions::default(),
    )
    .unwrap();
    // Interval count is logarithmic in t.
    let nk = rel.boundaries.len() - 1;
    assert!(
        nk <= ((t as f64).ln() / 0.25_f64.ln_1p()).ceil() as usize + 4,
        "needed {nk} intervals for horizon {t}"
    );
    // Rounded schedules at several λ remain feasible and complete.
    for lambda in [0.4, 0.8, 1.0] {
        let sched = stretch_schedule(&inst, &rel.lp.plan, lambda, StretchOptions::default());
        let rep = validate(&inst, &Routing::FreePath, &sched, Tolerance::default()).unwrap();
        assert!(rep.completions.weighted_total >= rel.lp.objective - 1e-6);
    }
}

#[test]
fn interval_heuristic_tracks_unit_slot_heuristic() {
    // At small ε the interval pipeline should land within ~(1+ε)-ish of
    // the unit-slot pipeline (sanity that nothing is off by a factor).
    let inst = random_instance(44, 1.0);
    let t = coflow_suite::core::horizon::horizon(
        &inst,
        &Routing::FreePath,
        coflow_suite::core::horizon::HorizonMode::Greedy { margin: 1.3 },
    )
    .unwrap();
    let unit = coflow_suite::core::timeidx::solve_time_indexed(
        &inst,
        &Routing::FreePath,
        t,
        &SolverOptions::default(),
    )
    .unwrap();
    let rel = coflow_suite::core::interval::solve_interval(
        &inst,
        &Routing::FreePath,
        t,
        0.1,
        &SolverOptions::default(),
    )
    .unwrap();
    let unit_cost = stretch_schedule(&inst, &unit.plan, 1.0, StretchOptions::default())
        .completions(&inst)
        .unwrap()
        .weighted_total;
    let iv_cost = stretch_schedule(&inst, &rel.lp.plan, 1.0, StretchOptions::default())
        .completions(&inst)
        .unwrap()
        .weighted_total;
    assert!(
        iv_cost <= unit_cost * 1.6 + 1e-6,
        "interval heuristic {iv_cost} vs unit-slot {unit_cost}"
    );
}
