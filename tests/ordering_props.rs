//! Property tests pinning the LP-free ordering family (Sincronia + the
//! DCoflow variants) end to end:
//!
//! 1. `sincronia_order` always returns a valid permutation, even on
//!    degenerate (all-zero, tied) load matrices;
//! 2. the registry's ordering entries produce schedules that validate
//!    and stay within 4× of the time-indexed LP lower bound on random
//!    switch workloads (Sincronia's approximation guarantee, checked
//!    here as a regression envelope on fixed seeds);
//! 3. the deadline-aware DCoflow schedules never finish an *admitted*
//!    coflow past its deadline — admission control is a guarantee, not
//!    a heuristic (the demote-and-refill fixed point in
//!    `dcoflow_schedule` is what makes this provable).

use coflow_suite::baselines::ordering::{dcoflow_schedule, sincronia_order, DcoflowVariant};
use coflow_suite::baselines::registry;
use coflow_suite::core::loads::apply_deadline_slack;
use coflow_suite::core::model::{Coflow, CoflowInstance, Flow};
use coflow_suite::core::routing::Routing;
use coflow_suite::core::solve::SolveContext;
use coflow_suite::core::validate::{validate, Tolerance};
use coflow_suite::netgraph::gadget::{with_io_gadget, IoLimit};
use coflow_suite::netgraph::topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random `ports × ports` big-switch instance (bipartite switch +
/// unit I/O gadget) with `n` coflows of 1–3 flows each and integer
/// demands 1–3 — loads large enough that slotting effects stay small
/// relative to the LP bound.
fn random_switch_instance(ports: usize, n: usize, rng: &mut StdRng) -> CoflowInstance {
    let topo = topology::bipartite_switch(ports, 1.0);
    let limits = vec![IoLimit::symmetric(1.0); topo.graph.node_count()];
    let gg = with_io_gadget(&topo.graph, &limits);
    let ins: Vec<_> = topo.sources.iter().map(|&v| gg.inner[v.index()]).collect();
    let outs: Vec<_> = topo.sinks.iter().map(|&v| gg.inner[v.index()]).collect();
    let coflows: Vec<Coflow> = (0..n)
        .map(|_| {
            let flows: Vec<Flow> = (0..rng.gen_range(1..=3))
                .map(|_| {
                    Flow::new(
                        ins[rng.gen_range(0..ports)],
                        outs[rng.gen_range(0..ports)],
                        rng.gen_range(1..=3) as f64,
                    )
                })
                .collect();
            Coflow::weighted(rng.gen_range(1..=4) as f64, flows)
        })
        .collect();
    CoflowInstance::new(gg.graph, coflows).expect("random switch instance validates")
}

#[test]
fn sincronia_order_is_always_a_valid_permutation() {
    let mut rng = StdRng::seed_from_u64(20260808);
    for round in 0..100 {
        let n = rng.gen_range(1..=8);
        let links = rng.gen_range(1..=6);
        let loads: Vec<Vec<f64>> = (0..links)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        if rng.gen_bool(0.4) {
                            0.0
                        } else {
                            rng.gen_range(1..=5) as f64
                        }
                    })
                    .collect()
            })
            .collect();
        let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(1..=4) as f64).collect();
        let order = sincronia_order(&loads, &weights);
        let mut seen = vec![false; n];
        assert_eq!(order.len(), n, "round {round}: wrong length");
        for &j in &order {
            assert!(!seen[j], "round {round}: {j} placed twice in {order:?}");
            seen[j] = true;
        }
    }
}

#[test]
fn ordering_entries_validate_and_stay_within_4x_of_the_lp_bound() {
    const FAMILY: [&str; 3] = ["sincronia", "dcoflow-min-link", "dcoflow-min-sum-neg"];
    let params = registry::AlgoParams::default();
    for seed in [11, 12, 13] {
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = random_switch_instance(4, 6, &mut rng);
        let mut ctx = SolveContext::new();
        let bound = ctx
            .time_indexed(&inst, &Routing::FreePath)
            .expect("LP solves")
            .objective;
        for entry in registry::all().iter().filter(|e| FAMILY.contains(&e.name)) {
            assert!(
                entry.caps.lp_free && !entry.caps.lp_based,
                "{}: the ordering family is the LP-free tier",
                entry.name
            );
            let out = entry
                .build(&params)
                .solve(&inst, &Routing::FreePath, &mut ctx)
                .unwrap_or_else(|e| panic!("seed {seed}, {}: {e}", entry.name));
            let rep = validate(
                &inst,
                &Routing::FreePath,
                &out.schedule,
                Tolerance::default(),
            )
            .unwrap_or_else(|e| panic!("seed {seed}, {}: invalid schedule: {e}", entry.name));
            assert_eq!(rep.completions.weighted_total, out.cost, "{}", entry.name);
            assert!(
                out.cost <= 4.0 * bound + 1e-6,
                "seed {seed}, {}: cost {} exceeds 4× the LP bound {bound}",
                entry.name,
                out.cost
            );
            // LP-free entries report no LP lower bound.
            assert!(out.lower_bound.is_none(), "{}", entry.name);
        }
    }
}

#[test]
fn admitted_coflows_never_finish_past_their_deadline() {
    for seed in [21, 22, 23, 24] {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inst = random_switch_instance(4, 6, &mut rng);
        // Tight deadlines (each coflow's own isolation bottleneck):
        // contention guarantees the admission control has real work.
        apply_deadline_slack(&mut inst, 1.0);
        for variant in [DcoflowVariant::MinLink, DcoflowVariant::MinSumNegative] {
            let (schedule, admitted) = dcoflow_schedule(&inst, &Routing::FreePath, variant)
                .expect("dcoflow schedules the instance");
            let completions = schedule
                .completions(&inst)
                .expect("dcoflow schedule completes all work");
            for (j, (&ok, &c)) in admitted.iter().zip(&completions.per_coflow).enumerate() {
                let d = inst.coflows[j].deadline.expect("slack set every deadline");
                if ok {
                    assert!(
                        c <= d,
                        "seed {seed}, {variant:?}: admitted coflow {j} finished at {c} > deadline {d}"
                    );
                }
            }
            // The full schedule (admitted + rejected tail) still
            // validates: rejection is a priority decision, not a drop.
            validate(&inst, &Routing::FreePath, &schedule, Tolerance::default())
                .expect("rejected-tail schedule validates");
        }
    }
}
