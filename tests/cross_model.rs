//! Cross-model invariants: relaxation values must order consistently
//! with the models' expressive power — free path ≤ multi path ≤ single
//! path, when the path sets nest.

use coflow_suite::core::model::{Coflow, CoflowInstance, Flow};
use coflow_suite::core::routing::Routing;
use coflow_suite::core::timeidx::solve_time_indexed;
use coflow_suite::lp::SolverOptions;
use coflow_suite::netgraph::ksp::{k_shortest_paths, PathCost};
use coflow_suite::netgraph::topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds nested routings for the same instance: single = first of each
/// flow's k-shortest paths; multi = all k of them.
fn nested_routings(inst: &CoflowInstance, k: usize) -> (Routing, Routing) {
    let mut single = Vec::new();
    let mut multi = Vec::new();
    for cf in &inst.coflows {
        let mut srow = Vec::new();
        let mut mrow = Vec::new();
        for f in &cf.flows {
            let paths = k_shortest_paths(&inst.graph, f.src, f.dst, k, PathCost::Hops)
                .expect("paths exist");
            srow.push(paths[0].clone());
            mrow.push(paths);
        }
        single.push(srow);
        multi.push(mrow);
    }
    (Routing::SinglePath(single), Routing::MultiPath(multi))
}

fn random_instance(seed: u64) -> CoflowInstance {
    let topo = topology::gscale().scale_capacity(2.0);
    let g = topo.graph;
    let nodes: Vec<_> = g.nodes().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let coflows = (0..4)
        .map(|_| {
            let a = nodes[rng.gen_range(0..nodes.len())];
            let mut b = nodes[rng.gen_range(0..nodes.len())];
            while b == a {
                b = nodes[rng.gen_range(0..nodes.len())];
            }
            Coflow::weighted(
                rng.gen_range(1.0..10.0),
                vec![Flow::new(a, b, rng.gen_range(20.0..120.0))],
            )
        })
        .collect();
    CoflowInstance::new(g, coflows).unwrap()
}

#[test]
fn relaxation_values_order_by_model_power() {
    for seed in [10u64, 20, 30] {
        let inst = random_instance(seed);
        let (single, multi) = nested_routings(&inst, 3);
        // One shared horizon large enough for the weakest model.
        let t = coflow_suite::core::horizon::horizon(
            &inst,
            &single,
            coflow_suite::core::horizon::HorizonMode::Greedy { margin: 1.5 },
        )
        .unwrap();
        let opts = SolverOptions::default();
        let lp_single = solve_time_indexed(&inst, &single, t, &opts).unwrap();
        let lp_multi = solve_time_indexed(&inst, &multi, t, &opts).unwrap();
        let lp_free = solve_time_indexed(&inst, &Routing::FreePath, t, &opts).unwrap();
        let tol = 1e-6 * (1.0 + lp_single.objective.abs());
        assert!(
            lp_multi.objective <= lp_single.objective + tol,
            "seed {seed}: multi {} > single {}",
            lp_multi.objective,
            lp_single.objective
        );
        assert!(
            lp_free.objective <= lp_multi.objective + tol,
            "seed {seed}: free {} > multi {}",
            lp_free.objective,
            lp_multi.objective
        );
    }
}

#[test]
fn interval_bound_is_weaker_but_cheaper() {
    // The ε-interval LP must be no tighter than the unit-slot LP when
    // its start rule is not binding (no releases) and should be much
    // smaller at large ε.
    let inst = random_instance(40);
    let (single, _) = nested_routings(&inst, 2);
    let t = coflow_suite::core::horizon::horizon(
        &inst,
        &single,
        coflow_suite::core::horizon::HorizonMode::Greedy { margin: 1.5 },
    )
    .unwrap();
    let opts = SolverOptions::default();
    let unit = solve_time_indexed(&inst, &single, t, &opts).unwrap();
    let coarse =
        coflow_suite::core::interval::solve_interval(&inst, &single, t, 0.8, &opts).unwrap();
    assert!(
        coarse.lp.objective <= unit.objective + 1e-6 * (1.0 + unit.objective),
        "coarse {} should not exceed unit-slot bound {}",
        coarse.lp.objective,
        unit.objective
    );
    assert!(
        coarse.lp.size.cols < unit.size.cols,
        "interval LP should be smaller: {} vs {}",
        coarse.lp.size.cols,
        unit.size.cols
    );
}
