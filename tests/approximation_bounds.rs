//! Integration tests of Theorem 4.4's guarantee: the expected weighted
//! completion time of the stretched schedule is at most twice the LP
//! optimum. The expectation over λ ~ 2v is computed by deterministic
//! grid integration (the sample mean of 1/λ has infinite variance, so
//! Monte-Carlo checks would flake).

use coflow_suite::core::model::{Coflow, CoflowInstance, Flow};
use coflow_suite::core::routing::{self, Routing};
use coflow_suite::core::stretch::{stretch_schedule, StretchOptions};
use coflow_suite::core::timeidx::solve_time_indexed;
use coflow_suite::lp::SolverOptions;
use coflow_suite::netgraph::topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// E_λ[cost(stretch(λ))] over λ∈[lo,1] by midpoint rule, plus an upper
/// bound on the [0,lo] tail (cost(λ) ≤ Σw·(T/λ+1) ⇒ tail ≤ Σw·(2·lo·T)).
fn expected_stretch_cost(
    inst: &CoflowInstance,
    plan: &coflow_suite::core::rateplan::RatePlan,
    horizon: u32,
    grid: usize,
) -> f64 {
    let lo = 0.02;
    let mut expectation = 0.0;
    for k in 0..grid {
        let lambda = lo + (1.0 - lo) * (k as f64 + 0.5) / grid as f64;
        let sched = stretch_schedule(inst, plan, lambda, StretchOptions { compact: false });
        let cost = sched
            .completions(inst)
            .expect("stretched schedules complete")
            .weighted_total;
        expectation += 2.0 * lambda * cost * (1.0 - lo) / grid as f64;
    }
    let w_sum: f64 = inst.coflows.iter().map(|c| c.weight).sum();
    expectation + w_sum * (horizon as f64 * 2.0 * lo + lo * lo)
}

fn random_instance(seed: u64, n: usize) -> CoflowInstance {
    let topo = topology::swan().scale_capacity(5.0);
    let g = topo.graph;
    let nodes: Vec<_> = g.nodes().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let coflows = (0..n)
        .map(|_| {
            let flows = (0..rng.gen_range(1..=3))
                .map(|_| {
                    let a = nodes[rng.gen_range(0..nodes.len())];
                    let mut b = nodes[rng.gen_range(0..nodes.len())];
                    while b == a {
                        b = nodes[rng.gen_range(0..nodes.len())];
                    }
                    Flow::new(a, b, rng.gen_range(5.0..60.0))
                })
                .collect();
            Coflow::weighted(rng.gen_range(1.0..100.0), flows)
        })
        .collect();
    CoflowInstance::new(g, coflows).unwrap()
}

#[test]
fn stretch_expectation_within_twice_lp_free_path() {
    for seed in [1u64, 2, 3] {
        let inst = random_instance(seed, 5);
        let t = coflow_suite::core::horizon::horizon(
            &inst,
            &Routing::FreePath,
            coflow_suite::core::horizon::HorizonMode::Greedy { margin: 1.3 },
        )
        .unwrap();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, t, &SolverOptions::default()).unwrap();
        let expectation = expected_stretch_cost(&inst, &lp.plan, t, 160);
        // Theorem 4.4 plus at most one slot of ceiling per coflow.
        let w_sum: f64 = inst.coflows.iter().map(|c| c.weight).sum();
        assert!(
            expectation <= 2.0 * lp.objective + w_sum + 1e-6,
            "seed {seed}: E[cost] {expectation} vs 2·LP {} (+{w_sum} rounding)",
            2.0 * lp.objective
        );
    }
}

#[test]
fn stretch_expectation_within_twice_lp_single_path() {
    for seed in [4u64, 5] {
        let inst = random_instance(seed, 5);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xffff);
        let r = routing::random_shortest_paths(&inst, &mut rng).unwrap();
        let t = coflow_suite::core::horizon::horizon(
            &inst,
            &r,
            coflow_suite::core::horizon::HorizonMode::Greedy { margin: 1.3 },
        )
        .unwrap();
        let lp = solve_time_indexed(&inst, &r, t, &SolverOptions::default()).unwrap();
        let expectation = expected_stretch_cost(&inst, &lp.plan, t, 160);
        let w_sum: f64 = inst.coflows.iter().map(|c| c.weight).sum();
        assert!(
            expectation <= 2.0 * lp.objective + w_sum + 1e-6,
            "seed {seed}: E[cost] {expectation} vs 2·LP {}",
            2.0 * lp.objective
        );
    }
}

#[test]
fn every_lambda_yields_a_feasible_complete_schedule() {
    let inst = random_instance(9, 4);
    let t = coflow_suite::core::horizon::horizon(
        &inst,
        &Routing::FreePath,
        coflow_suite::core::horizon::HorizonMode::Greedy { margin: 1.3 },
    )
    .unwrap();
    let lp = solve_time_indexed(&inst, &Routing::FreePath, t, &SolverOptions::default()).unwrap();
    for k in 1..=25 {
        let lambda = k as f64 / 25.0;
        for compact in [false, true] {
            let sched = stretch_schedule(&inst, &lp.plan, lambda, StretchOptions { compact });
            coflow_suite::core::validate::validate(
                &inst,
                &Routing::FreePath,
                &sched,
                coflow_suite::core::validate::Tolerance::default(),
            )
            .unwrap_or_else(|e| panic!("λ={lambda}, compact={compact}: {e}"));
        }
    }
}
