//! Criterion benchmarks for the graph substrate: max-flow, shortest-path
//! DAG construction + uniform sampling, and Yen's k-shortest paths.

use coflow_netgraph::ksp::{k_shortest_paths, PathCost};
use coflow_netgraph::maxflow::max_flow;
use coflow_netgraph::shortest::ShortestPathDag;
use coflow_netgraph::topology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_maxflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxflow");
    let gs = topology::gscale();
    let src = gs.graph.node_by_label("Asia-1").unwrap();
    let dst = gs.graph.node_by_label("EU-2").unwrap();
    group.bench_function("gscale_asia_to_eu", |b| {
        b.iter(|| max_flow(&gs.graph, src, dst))
    });
    let mut rng = StdRng::seed_from_u64(7);
    for n in [50usize, 200] {
        let topo = topology::random_connected(n, 2 * n, (1.0, 100.0), &mut rng);
        let s = topo.graph.nodes().next().unwrap();
        let t = topo.graph.nodes().last().unwrap();
        group.bench_with_input(
            BenchmarkId::new("random", n),
            &(topo, s, t),
            |b, (topo, s, t)| b.iter(|| max_flow(&topo.graph, *s, *t)),
        );
    }
    group.finish();
}

fn bench_shortest_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("shortest_paths");
    let gs = topology::gscale();
    let src = gs.graph.node_by_label("Asia-2").unwrap();
    let dst = gs.graph.node_by_label("EU-1").unwrap();
    group.bench_function("dag_build_gscale", |b| {
        b.iter(|| ShortestPathDag::new(&gs.graph, src, dst).unwrap())
    });
    let dag = ShortestPathDag::new(&gs.graph, src, dst).unwrap();
    group.bench_function("uniform_sample", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| dag.sample_uniform(&gs.graph, &mut rng))
    });
    group.bench_function("yen_k4_gscale", |b| {
        b.iter(|| k_shortest_paths(&gs.graph, src, dst, 4, PathCost::Hops).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_maxflow, bench_shortest_paths);
criterion_main!(benches);
