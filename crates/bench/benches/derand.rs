//! Criterion benchmarks for derandomized Stretch: exact best-λ /
//! expectation against the paper's 20-sample Monte-Carlo sweep.

use coflow_core::model::CoflowInstance;
use coflow_core::rateplan::RatePlan;
use coflow_core::routing::Routing;
use coflow_core::stretch::{lambda_sweep, StretchOptions};
use coflow_core::timeidx::solve_time_indexed;
use coflow_lp::SolverOptions;
use coflow_netgraph::topology;
use coflow_workloads::{build_instance, WorkloadConfig, WorkloadKind};
use criterion::{criterion_group, criterion_main, Criterion};

fn prepared_plan(jobs: usize) -> (CoflowInstance, RatePlan) {
    let topo = topology::swan();
    let cfg = WorkloadConfig {
        kind: WorkloadKind::Facebook,
        num_jobs: jobs,
        seed: 5,
        slot_seconds: 50.0,
        mean_interarrival_slots: 1.0,
        weighted: true,
        demand_scale: 1.0,
    };
    let inst = build_instance(&topo, &cfg).expect("valid");
    let t = coflow_core::horizon::horizon(
        &inst,
        &Routing::FreePath,
        coflow_core::horizon::HorizonMode::Greedy { margin: 1.25 },
    )
    .expect("horizon");
    let lp = solve_time_indexed(&inst, &Routing::FreePath, t, &SolverOptions::default())
        .expect("solves");
    (inst, lp.plan)
}

fn bench_derand_vs_sweep(c: &mut Criterion) {
    let (inst, plan) = prepared_plan(10);
    let pure = StretchOptions { compact: false };
    let mut group = c.benchmark_group("derand");
    group.bench_function("exact_best_and_expectation", |b| {
        b.iter(|| coflow_core::derand::derandomize(&inst, &plan))
    });
    group.bench_function("sweep_20_samples", |b| {
        b.iter(|| lambda_sweep(&inst, &plan, 20, 7, pure))
    });
    group.finish();

    // Quality story next to the timing: the exact optimum vs sampling.
    let d = coflow_core::derand::derandomize(&inst, &plan);
    let sweep = lambda_sweep(&inst, &plan, 20, 7, pure);
    println!(
        "derand quality: exact best {:.1} (λ = {:.4}) vs 20-sample best {:.1}; \
         E[cost] {:.1} ± {:.1e} vs sample mean {:.1}",
        d.best_cost,
        d.best_lambda,
        sweep.best().weighted_cost,
        d.expected_cost,
        d.expected_cost_error,
        sweep.average()
    );
}

fn bench_profiles_scale_with_jobs(c: &mut Criterion) {
    let mut group = c.benchmark_group("derand_scaling");
    group.sample_size(20);
    for jobs in [5usize, 10, 20] {
        let (inst, plan) = prepared_plan(jobs);
        group.bench_function(format!("jobs_{jobs}"), |b| {
            b.iter(|| coflow_core::derand::derandomize(&inst, &plan))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_derand_vs_sweep,
    bench_profiles_scale_with_jobs
);
criterion_main!(benches);
