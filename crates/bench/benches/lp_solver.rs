//! Criterion benchmarks for the LP solver substrate, including the two
//! design ablations called out in `DESIGN.md` §6:
//!
//! * `pricing/…` — Devex vs Dantzig entering rules on a coflow LP;
//! * `bounds/…` — implicit variable bounds vs explicit `x ≤ 1` rows.

#![allow(clippy::needless_range_loop)] // parallel-array LP fixtures

use coflow_core::routing::Routing;
use coflow_core::timeidx::solve_time_indexed;
use coflow_lp::{Cmp, Model, Sense, SolverOptions};
use coflow_netgraph::topology;
use coflow_workloads::{build_instance, WorkloadConfig, WorkloadKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random transportation LP: `suppliers × consumers`, balanced.
fn transportation(suppliers: usize, consumers: usize, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Minimize);
    let mut vars = vec![vec![None; consumers]; suppliers];
    for (i, row) in vars.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = Some(m.add_nonneg(format!("x{i}_{j}"), rng.gen_range(1.0..20.0)));
        }
    }
    let supply = 10.0 * consumers as f64 / suppliers as f64;
    for row in vars.iter().take(suppliers) {
        m.add_constraint(row.iter().map(|v| (v.unwrap(), 1.0)), Cmp::Eq, supply);
    }
    for j in 0..consumers {
        m.add_constraint(
            (0..suppliers).map(|i| (vars[i][j].unwrap(), 1.0)),
            Cmp::Eq,
            10.0,
        );
    }
    m
}

fn bench_transportation_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_transportation");
    group.sample_size(10);
    for &(s, t) in &[(10usize, 15usize), (20, 30), (40, 60)] {
        let model = transportation(s, t, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{s}x{t}")),
            &model,
            |b, model| b.iter(|| model.solve().expect("solvable")),
        );
    }
    group.finish();
}

fn coflow_lp_model() -> (coflow_core::model::CoflowInstance, u32) {
    let topo = topology::swan();
    let cfg = WorkloadConfig {
        kind: WorkloadKind::Facebook,
        num_jobs: 8,
        seed: 3,
        slot_seconds: 50.0,
        mean_interarrival_slots: 1.0,
        weighted: true,
        demand_scale: 1.0,
    };
    let inst = build_instance(&topo, &cfg).expect("valid");
    let t = coflow_core::horizon::horizon(
        &inst,
        &Routing::FreePath,
        coflow_core::horizon::HorizonMode::Greedy { margin: 1.25 },
    )
    .expect("horizon");
    (inst, t)
}

fn bench_pricing_ablation(c: &mut Criterion) {
    let (inst, t) = coflow_lp_model();
    let mut group = c.benchmark_group("pricing");
    group.sample_size(10);
    for (name, pricing, block) in [
        ("devex_full", coflow_lp::Pricing::Devex, 0usize),
        ("devex_partial_4096", coflow_lp::Pricing::Devex, 4096),
        ("dantzig_full", coflow_lp::Pricing::Dantzig, 0),
    ] {
        let opts = SolverOptions {
            pricing,
            partial_pricing_block: block,
            ..Default::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| solve_time_indexed(&inst, &Routing::FreePath, t, &opts).expect("solves"))
        });
    }
    group.finish();
}

/// Ablation: the same box-constrained LP expressed with implicit bounds
/// (the solver's native form) vs explicit `x ≤ u` constraint rows.
fn bench_bounds_ablation(c: &mut Criterion) {
    let n = 300;
    let rows = 150;
    let mut rng = StdRng::seed_from_u64(9);
    let data: Vec<Vec<(usize, f64)>> = (0..rows)
        .map(|_| {
            (0..6)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0.2..2.0)))
                .collect()
        })
        .collect();
    let costs: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..-0.1)).collect();

    let build = |explicit_rows: bool| {
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..n)
            .map(|j| {
                if explicit_rows {
                    m.add_nonneg(format!("x{j}"), costs[j])
                } else {
                    m.add_var(format!("x{j}"), 0.0, 1.0, costs[j])
                }
            })
            .collect();
        if explicit_rows {
            for &v in &vars {
                m.add_constraint([(v, 1.0)], Cmp::Le, 1.0);
            }
        }
        for terms in &data {
            m.add_constraint(terms.iter().map(|&(j, a)| (vars[j], a)), Cmp::Le, 3.0);
        }
        m
    };
    let implicit = build(false);
    let explicit = build(true);
    // Same optimum; wildly different basis sizes.
    let oi = implicit.solve().expect("solvable").objective;
    let oe = explicit.solve().expect("solvable").objective;
    assert!((oi - oe).abs() < 1e-5 * (1.0 + oi.abs()));

    let mut group = c.benchmark_group("bounds");
    group.sample_size(10);
    group.bench_function("implicit_bounds", |b| {
        b.iter(|| implicit.solve().expect("ok"))
    });
    group.bench_function("explicit_rows", |b| {
        b.iter(|| explicit.solve().expect("ok"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_transportation_scaling,
    bench_pricing_ablation,
    bench_bounds_ablation
);
criterion_main!(benches);
