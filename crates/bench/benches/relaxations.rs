//! Criterion benchmarks comparing the two relaxations (time-indexed vs
//! geometric-interval) and the three transmission models — the size/
//! tightness trade-offs DESIGN.md calls out.

use coflow_core::interval::solve_interval;
use coflow_core::routing::{self, Routing};
use coflow_core::timeidx::solve_time_indexed;
use coflow_lp::SolverOptions;
use coflow_netgraph::topology;
use coflow_workloads::{build_instance, WorkloadConfig, WorkloadKind};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (
    coflow_core::model::CoflowInstance,
    Routing,
    Routing,
    Routing,
    u32,
) {
    let topo = topology::swan();
    let cfg = WorkloadConfig {
        kind: WorkloadKind::TpcDs,
        num_jobs: 8,
        seed: 11,
        slot_seconds: 50.0,
        mean_interarrival_slots: 1.0,
        weighted: true,
        demand_scale: 1.0,
    };
    let inst = build_instance(&topo, &cfg).expect("valid");
    let mut rng = StdRng::seed_from_u64(2);
    let single = routing::random_shortest_paths(&inst, &mut rng).expect("paths");
    let multi = routing::k_shortest_path_sets(&inst, 3).expect("paths");
    let t = coflow_core::horizon::horizon(
        &inst,
        &single,
        coflow_core::horizon::HorizonMode::Greedy { margin: 1.25 },
    )
    .expect("horizon");
    (inst, single, multi, Routing::FreePath, t)
}

fn bench_models(c: &mut Criterion) {
    let (inst, single, multi, free, t) = setup();
    let opts = SolverOptions::default();
    let mut group = c.benchmark_group("timeidx_models");
    group.sample_size(10);
    group.bench_function("single_path", |b| {
        b.iter(|| solve_time_indexed(&inst, &single, t, &opts).expect("solves"))
    });
    group.bench_function("multi_path_k3", |b| {
        b.iter(|| solve_time_indexed(&inst, &multi, t, &opts).expect("solves"))
    });
    group.bench_function("free_path", |b| {
        b.iter(|| solve_time_indexed(&inst, &free, t, &opts).expect("solves"))
    });
    group.finish();
}

fn bench_interval_vs_timeidx(c: &mut Criterion) {
    let (inst, single, _, _, t) = setup();
    let opts = SolverOptions::default();
    let mut group = c.benchmark_group("relaxation");
    group.sample_size(10);
    group.bench_function("time_indexed", |b| {
        b.iter(|| solve_time_indexed(&inst, &single, t, &opts).expect("solves"))
    });
    for eps in [0.2, 0.5436] {
        group.bench_function(format!("interval_eps_{eps}"), |b| {
            b.iter(|| solve_interval(&inst, &single, t, eps, &opts).expect("solves"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models, bench_interval_vs_timeidx);
criterion_main!(benches);
