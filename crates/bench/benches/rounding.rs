//! Criterion benchmarks for the rounding pipeline: Stretch transforms,
//! discretization, the λ sweep, and the compaction ablation.

use coflow_core::model::CoflowInstance;
use coflow_core::rateplan::RatePlan;
use coflow_core::routing::Routing;
use coflow_core::stretch::{lambda_sweep, stretch_schedule, StretchOptions};
use coflow_core::timeidx::solve_time_indexed;
use coflow_lp::SolverOptions;
use coflow_netgraph::topology;
use coflow_workloads::{build_instance, WorkloadConfig, WorkloadKind};
use criterion::{criterion_group, criterion_main, Criterion};

fn prepared_plan() -> (CoflowInstance, RatePlan) {
    let topo = topology::swan();
    let cfg = WorkloadConfig {
        kind: WorkloadKind::Facebook,
        num_jobs: 10,
        seed: 5,
        slot_seconds: 50.0,
        mean_interarrival_slots: 1.0,
        weighted: true,
        demand_scale: 1.0,
    };
    let inst = build_instance(&topo, &cfg).expect("valid");
    let t = coflow_core::horizon::horizon(
        &inst,
        &Routing::FreePath,
        coflow_core::horizon::HorizonMode::Greedy { margin: 1.25 },
    )
    .expect("horizon");
    let lp = solve_time_indexed(&inst, &Routing::FreePath, t, &SolverOptions::default())
        .expect("solves");
    (inst, lp.plan)
}

fn bench_stretch_round(c: &mut Criterion) {
    let (inst, plan) = prepared_plan();
    let mut group = c.benchmark_group("rounding");
    group.bench_function("stretch_lambda_0.5", |b| {
        b.iter(|| stretch_schedule(&inst, &plan, 0.5, StretchOptions::default()))
    });
    group.bench_function("heuristic_lambda_1.0", |b| {
        b.iter(|| stretch_schedule(&inst, &plan, 1.0, StretchOptions::default()))
    });
    group.finish();
}

fn bench_compaction_ablation(c: &mut Criterion) {
    let (inst, plan) = prepared_plan();
    let mut group = c.benchmark_group("stretch_compaction");
    for (name, compact) in [("with_compaction", true), ("without_compaction", false)] {
        group.bench_function(name, |b| {
            b.iter(|| stretch_schedule(&inst, &plan, 0.6, StretchOptions { compact }))
        });
    }
    // Also record the cost delta once, so the ablation's *quality* effect
    // lands in the bench output (criterion measures only time).
    let with = stretch_schedule(&inst, &plan, 0.6, StretchOptions { compact: true });
    let without = stretch_schedule(&inst, &plan, 0.6, StretchOptions { compact: false });
    let cw = with.completions(&inst).expect("complete").weighted_total;
    let cwo = without.completions(&inst).expect("complete").weighted_total;
    eprintln!("compaction quality: {cw:.1} (on) vs {cwo:.1} (off) weighted completion");
    group.finish();
}

fn bench_lambda_sweep(c: &mut Criterion) {
    let (inst, plan) = prepared_plan();
    let mut group = c.benchmark_group("lambda_sweep");
    group.sample_size(10);
    group.bench_function("sweep_20_samples", |b| {
        b.iter(|| lambda_sweep(&inst, &plan, 20, 1, StretchOptions::default()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stretch_round,
    bench_compaction_ablation,
    bench_lambda_sweep
);
criterion_main!(benches);
