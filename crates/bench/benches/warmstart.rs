//! Criterion benchmarks for warm-started LP re-solves: the capacity
//! sweep that motivates the dual simplex, measured cold vs warm.

use coflow_core::model::CoflowInstance;
use coflow_core::routing::Routing;
use coflow_core::sensitivity::Sensitivity;
use coflow_lp::{Cmp, Model, Sense, SolverOptions};
use coflow_netgraph::topology;
use coflow_workloads::{build_instance, WorkloadConfig, WorkloadKind};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn swan_instance() -> CoflowInstance {
    let topo = topology::swan();
    let cfg = WorkloadConfig {
        kind: WorkloadKind::Facebook,
        num_jobs: 8,
        seed: 9,
        slot_seconds: 50.0,
        mean_interarrival_slots: 0.5,
        weighted: true,
        demand_scale: 1.0,
    };
    build_instance(&topo, &cfg).expect("valid")
}

/// The headline comparison: n-point capacity sweep on the time-indexed
/// LP, with and without basis reuse.
fn bench_capacity_sweep(c: &mut Criterion) {
    let inst = swan_instance();
    let t = coflow_core::horizon::horizon(
        &inst,
        &Routing::FreePath,
        coflow_core::horizon::HorizonMode::Greedy { margin: 1.25 },
    )
    .expect("horizon");
    let opts = SolverOptions::default();
    let factors = [0.95, 0.9, 0.85, 0.8];

    let mut group = c.benchmark_group("warmstart_capacity_sweep");
    group.sample_size(10);
    group.bench_function("warm", |b| {
        b.iter(|| {
            let mut s = Sensitivity::new(&inst, &Routing::FreePath, t).expect("builds");
            s.solve(&opts).expect("base solves");
            for &f in &factors {
                s.scale_all_capacities(f);
                s.solve(&opts).expect("resolves");
            }
        })
    });
    group.bench_function("cold", |b| {
        b.iter(|| {
            let mut s = Sensitivity::new(&inst, &Routing::FreePath, t).expect("builds");
            s.solve(&opts).expect("base solves");
            for &f in &factors {
                s.scale_all_capacities(f);
                s.reset_basis();
                s.solve(&opts).expect("resolves");
            }
        })
    });
    group.finish();

    // Record the pivot-count ablation once (criterion measures time; the
    // iteration counts tell the algorithmic story).
    let mut warm = Sensitivity::new(&inst, &Routing::FreePath, t).expect("builds");
    warm.solve(&opts).expect("solves");
    let mut warm_iters = 0;
    for &f in &factors {
        warm.scale_all_capacities(f);
        warm.solve(&opts).expect("resolves");
        warm_iters += warm.last_iterations();
    }
    let mut cold = Sensitivity::new(&inst, &Routing::FreePath, t).expect("builds");
    cold.solve(&opts).expect("solves");
    let mut cold_iters = 0;
    for &f in &factors {
        cold.scale_all_capacities(f);
        cold.reset_basis();
        cold.solve(&opts).expect("resolves");
        cold_iters += cold.last_iterations();
    }
    println!(
        "warmstart_capacity_sweep pivots: warm {warm_iters} vs cold {cold_iters} \
         ({}x fewer)",
        cold_iters.max(1) / warm_iters.max(1)
    );
}

/// Raw LP level: dense random LP, single RHS nudge, warm vs cold.
fn bench_raw_lp_resolve(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(77);
    let n = 150;
    let mut model = Model::new(Sense::Minimize);
    let xs: Vec<_> = (0..n)
        .map(|j| model.add_var(format!("x{j}"), 0.0, 10.0, rng.gen_range(0.5..5.0)))
        .collect();
    let mut rows = Vec::new();
    for i in 0..n - 1 {
        rows.push(model.add_constraint(
            [(xs[i], 1.0), (xs[i + 1], 1.0), (xs[(i * 7 + 3) % n], 0.5)],
            Cmp::Ge,
            2.0 + (i % 5) as f64,
        ));
    }
    let opts = SolverOptions::default();
    let (_, basis) = model.solve_warm(None, &opts).expect("solves");
    let mid = rows[rows.len() / 2];

    let mut group = c.benchmark_group("warmstart_raw_lp");
    group.bench_function("warm_after_rhs_nudge", |b| {
        b.iter(|| {
            let mut m = model.clone();
            m.set_rhs(mid, 3.3);
            m.solve_warm(Some(&basis), &opts).expect("resolves")
        })
    });
    group.bench_function("cold_after_rhs_nudge", |b| {
        b.iter(|| {
            let mut m = model.clone();
            m.set_rhs(mid, 3.3);
            m.solve_with(&opts).expect("resolves")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_capacity_sweep, bench_raw_lp_resolve);
criterion_main!(benches);
