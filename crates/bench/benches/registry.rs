//! Dispatch-overhead benchmark for the algorithm registry: calling a
//! scheduler through `registry::build(name)` + the `CoflowSolver` trait
//! object must cost essentially the same as calling its free function
//! directly. The LP-free weighted-SJF baseline is the probe — its solve
//! is cheap enough (no LP) that any registry overhead would show up;
//! pure lookup+construction is measured separately and should be in the
//! nanoseconds.

use coflow_baselines::registry::{self, AlgoParams};
use coflow_baselines::sjf::weighted_sjf;
use coflow_core::model::CoflowInstance;
use coflow_core::routing::Routing;
use coflow_core::solve::SolveContext;
use coflow_core::validate::{validate, Tolerance};
use coflow_netgraph::topology;
use coflow_workloads::{build_instance, WorkloadConfig, WorkloadKind};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn instance() -> CoflowInstance {
    let topo = topology::swan();
    let cfg = WorkloadConfig {
        kind: WorkloadKind::Facebook,
        num_jobs: 10,
        seed: 5,
        slot_seconds: 50.0,
        mean_interarrival_slots: 1.0,
        weighted: true,
        demand_scale: 1.0,
    };
    build_instance(&topo, &cfg).expect("valid")
}

fn bench_dispatch_overhead(c: &mut Criterion) {
    let inst = instance();
    let params = AlgoParams::default();
    let mut group = c.benchmark_group("registry");

    // Direct call: free function + explicit validation (what the figure
    // harness did before the registry).
    group.bench_function("weighted_sjf_direct", |b| {
        b.iter(|| {
            let sched = weighted_sjf(&inst, &Routing::FreePath).expect("runs");
            validate(&inst, &Routing::FreePath, &sched, Tolerance::default()).expect("valid")
        })
    });

    // Same algorithm through name lookup, boxed construction, and the
    // trait object (validation included in the outcome).
    group.bench_function("weighted_sjf_via_registry", |b| {
        b.iter(|| {
            let solver = registry::build("weighted-sjf", &params).expect("registered");
            let mut ctx = SolveContext::new();
            solver
                .solve(&inst, &Routing::FreePath, &mut ctx)
                .expect("runs")
        })
    });

    // The registry machinery alone: lookup + boxed construction.
    group.bench_function("lookup_and_build", |b| {
        b.iter(|| registry::build(black_box("weighted-sjf"), &params).expect("registered"))
    });

    group.finish();
}

criterion_group!(benches, bench_dispatch_overhead);
criterion_main!(benches);
