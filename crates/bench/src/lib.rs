//! Experiment harnesses that regenerate every figure in the paper's
//! evaluation (§6, Figures 6–12), plus criterion micro-benchmarks for
//! the substrates.
//!
//! One binary per figure (`cargo run -p coflow-bench --release --bin
//! fig06_lambda_swan`, …). Each prints the same series the paper plots,
//! as an aligned text table, and writes a CSV under `target/figures/`.
//!
//! Default instance sizes are scaled down from the paper's 200 jobs so a
//! figure regenerates in minutes on a laptop with this repo's built-in
//! simplex (the paper used Gurobi on a dual-Xeon); pass `--jobs N` or
//! `--paper-scale` to go bigger. Shapes — who wins, by what factor —
//! are stable across scales; see `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod parallel;
pub mod runner;
pub mod table;

pub use cli::HarnessConfig;
pub use parallel::SweepPool;
pub use runner::{FigureResult, SeriesValue};
pub use table::{print_figure, write_csv};
