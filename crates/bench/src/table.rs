//! Table rendering and CSV output for figure results.

use crate::runner::FigureResult;
use std::io::Write;

/// Prints a figure's results as an aligned table mirroring the paper's
/// bar groups: one row per workload, one column per series.
pub fn print_figure(fig: &FigureResult) {
    println!("\n{}", fig.title);
    println!("{}", "=".repeat(fig.title.len()));
    if !fig.notes.is_empty() {
        println!("{}", fig.notes);
    }
    // Column widths.
    let mut headers: Vec<&str> = vec!["workload"];
    headers.extend(fig.series_names.iter().map(|s| s.as_str()));
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    let rows: Vec<Vec<String>> = fig
        .rows
        .iter()
        .map(|row| {
            let mut cells = vec![row.label.clone()];
            cells.extend(row.values.iter().map(|v| format_value(*v)));
            cells
        })
        .collect();
    for row in &rows {
        for (k, cell) in row.iter().enumerate() {
            widths[k] = widths[k].max(cell.len());
        }
    }
    let print_row = |cells: &[String]| {
        let mut line = String::new();
        for (k, cell) in cells.iter().enumerate() {
            if k == 0 {
                line.push_str(&format!("{:<w$}  ", cell, w = widths[0]));
            } else {
                line.push_str(&format!("{:>w$}  ", cell, w = widths[k]));
            }
        }
        println!("{}", line.trim_end());
    };
    print_row(
        &headers
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<String>>(),
    );
    for row in rows {
        print_row(&row);
    }
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

/// Writes the figure as CSV under `target/figures/<stem>.csv`; returns
/// the path written.
///
/// # Errors
///
/// I/O errors creating the directory or file.
pub fn write_csv(fig: &FigureResult, stem: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("target").join("figures");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{stem}.csv"));
    let file = std::fs::File::create(&path)?;
    let mut w = std::io::BufWriter::new(file);
    write!(w, "workload")?;
    for s in &fig.series_names {
        write!(w, ",{s}")?;
    }
    writeln!(w)?;
    for row in &fig.rows {
        write!(w, "{}", row.label)?;
        for v in &row.values {
            write!(w, ",{v}")?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{FigureResult, FigureRow, PointStats};

    fn sample() -> FigureResult {
        FigureResult {
            title: "Test figure".into(),
            notes: String::new(),
            series_names: vec!["LP".into(), "Heuristic".into()],
            rows: vec![
                FigureRow {
                    label: "FB".into(),
                    values: vec![1234.5, 2000.0],
                },
                FigureRow {
                    label: "TPC-DS".into(),
                    values: vec![10.25, f64::NAN],
                },
            ],
            stats: vec![PointStats::default(); 2],
        }
    }

    #[test]
    fn csv_roundtrip() {
        let fig = sample();
        let path = write_csv(&fig, "unit_test_fig").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), "workload,LP,Heuristic");
        assert!(lines.next().unwrap().starts_with("FB,1234.5,2000"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn formatting_rules() {
        // {:.0} uses round-half-to-even.
        assert_eq!(format_value(1234.5), "1234");
        assert_eq!(format_value(1234.6), "1235");
        assert_eq!(format_value(10.25), "10.2");
        assert_eq!(format_value(f64::NAN), "-");
    }
}
