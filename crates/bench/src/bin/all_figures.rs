//! Regenerates every figure (6–12) plus the three ablations in one run
//! with shared options, computing figures in parallel (one scoped
//! thread per figure — each figure's LP solves are independent).
//!
//! `cargo run -p coflow-bench --release --bin all_figures -- --jobs 16`

use coflow_bench::runner::{
    run_epsilon_figure, run_free_unweighted_figure, run_lambda_figure, run_online_ablation,
    run_ordering_ablation, run_single_path_figure, run_slot_length_ablation, FigureResult,
};
use coflow_bench::{print_figure, write_csv, HarnessConfig};
use coflow_netgraph::topology::{self, Topology};

type FigureJob = (&'static str, fn(&Topology, &HarnessConfig) -> FigureResult);

fn main() {
    let cfg = HarnessConfig::from_args(12);
    let swan = topology::swan();
    let gscale = topology::gscale();

    // Presentation order; each job owns its topology reference.
    let jobs: Vec<(FigureJob, &Topology)> = vec![
        (("fig06_lambda_swan", |t, c| run_lambda_figure(t, c, 6)), &swan),
        (("fig07_lambda_gscale", |t, c| run_lambda_figure(t, c, 7)), &gscale),
        (("fig08_epsilon", run_epsilon_figure), &swan),
        (("fig09_single_swan", |t, c| run_single_path_figure(t, c, 9)), &swan),
        (
            ("fig10_single_gscale", |t, c| run_single_path_figure(t, c, 10)),
            &gscale,
        ),
        (
            ("fig11_free_unweighted_swan", |t, c| {
                run_free_unweighted_figure(t, c, 11)
            }),
            &swan,
        ),
        (
            ("fig12_free_unweighted_gscale", |t, c| {
                run_free_unweighted_figure(t, c, 12)
            }),
            &gscale,
        ),
        (("ablation_slotlen", run_slot_length_ablation), &swan),
        (("ablation_ordering", run_ordering_ablation), &swan),
        (("ablation_online", run_online_ablation), &swan),
    ];

    // Fan out: figures are embarrassingly parallel (pure functions of
    // (topology, cfg)); join in order so output stays deterministic.
    let figures: Vec<(&'static str, FigureResult)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|&((stem, f), topo)| {
                let cfg = &cfg;
                scope.spawn(move |_| (stem, f(topo, cfg)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("figure worker panicked"))
            .collect()
    })
    .expect("crossbeam scope");

    for (stem, fig) in figures {
        print_figure(&fig);
        match write_csv(&fig, stem) {
            Ok(p) => println!("csv: {}", p.display()),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
        println!();
    }
}
