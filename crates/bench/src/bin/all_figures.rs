//! Regenerates every figure (6–12), the three ablations, and the two
//! scenario figures (scenario library + trace replay) in one run with
//! shared options.
//!
//! All twelve figures are described as [`FigureSpec`]s and handed to
//! one [`compute_figures`] call, which flattens their ~55 scenario
//! points into a single batch for the work-stealing [`SweepPool`] — a
//! slow point in one figure never idles workers that could be computing
//! another figure. Per-point seeded RNG keeps the output byte-identical
//! for a given `--seed`, regardless of worker count.
//!
//! `cargo run -p coflow-bench --release --bin all_figures -- --jobs 16`

use coflow_bench::parallel::SweepPool;
use coflow_bench::runner::{
    compute_figures, epsilon_figure_spec, free_unweighted_figure_spec, lambda_figure_spec,
    online_ablation_spec, ordering_ablation_spec, scenario_library_spec, single_path_figure_spec,
    slot_length_ablation_spec, trace_replay_spec, FigureSpec,
};
use coflow_bench::{print_figure, write_csv, HarnessConfig};
use coflow_netgraph::topology;

fn main() {
    let cfg = HarnessConfig::from_args(12);
    let swan = topology::swan();
    let gscale = topology::gscale();

    // Presentation order; stems are fixed by each spec.
    let specs: Vec<FigureSpec> = vec![
        lambda_figure_spec(&swan, &cfg, 6),
        lambda_figure_spec(&gscale, &cfg, 7),
        epsilon_figure_spec(&swan, &cfg),
        single_path_figure_spec(&swan, &cfg, 9),
        single_path_figure_spec(&gscale, &cfg, 10),
        free_unweighted_figure_spec(&swan, &cfg, 11),
        free_unweighted_figure_spec(&gscale, &cfg, 12),
        slot_length_ablation_spec(&swan, &cfg),
        ordering_ablation_spec(&swan, &cfg),
        online_ablation_spec(&swan, &cfg),
        scenario_library_spec(&swan, &cfg),
        trace_replay_spec(&cfg),
    ];

    let pool = SweepPool::new();
    if cfg.verbose {
        eprintln!(
            "[all_figures] {} figures, {} points, {} workers",
            specs.len(),
            specs.iter().map(|s| s.points.len()).sum::<usize>(),
            pool.workers()
        );
    }
    let figures = compute_figures(specs, &pool);

    for (stem, fig) in figures {
        print_figure(&fig);
        match write_csv(&fig, stem) {
            Ok(p) => println!("csv: {}", p.display()),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
        println!();
    }
}
