//! Ordering ablation (beyond the paper's figures): LP-based scheduling
//! vs the LP-free combinatorial orderings (§1.1's primal-dual /
//! Sincronia family) on the single-path model, four workloads on SWAN.

use coflow_bench::runner::{assert_sound, run_ordering_ablation};
use coflow_bench::{print_figure, write_csv, HarnessConfig};
use coflow_netgraph::topology;

fn main() {
    let cfg = HarnessConfig::from_args(40);
    let fig = run_ordering_ablation(&topology::swan(), &cfg);
    assert_sound(&fig, 0, &[1, 2, 3, 4]);
    print_figure(&fig);
    match write_csv(&fig, "ablation_ordering") {
        Ok(p) => println!("\ncsv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
