//! Figure 6: free-path model on SWAN, weighted — LP lower bound vs
//! Heuristic(λ=1.0) vs Best λ vs Average λ across the four workloads.

use coflow_bench::runner::{assert_sound, run_lambda_figure};
use coflow_bench::{print_figure, write_csv, HarnessConfig};
use coflow_netgraph::topology;

fn main() {
    let cfg = HarnessConfig::from_args(16);
    let fig = run_lambda_figure(&topology::swan(), &cfg, 6);
    assert_sound(&fig, 0, &[1, 2, 3]);
    print_figure(&fig);
    match write_csv(&fig, "fig06_lambda_swan") {
        Ok(p) => println!("\ncsv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
