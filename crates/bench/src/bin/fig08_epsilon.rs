//! Figure 8: free-path model on SWAN, workload FB — effect of the
//! geometric-interval parameter ε on the interval LP bound and its λ=1
//! heuristic.

use coflow_bench::runner::run_epsilon_figure;
use coflow_bench::{print_figure, write_csv, HarnessConfig};
use coflow_netgraph::topology;

fn main() {
    let cfg = HarnessConfig::from_args(14);
    let fig = run_epsilon_figure(&topology::swan(), &cfg);
    print_figure(&fig);
    match write_csv(&fig, "fig08_epsilon") {
        Ok(p) => println!("\ncsv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
