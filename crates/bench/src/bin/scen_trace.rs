//! Trace replay: growing prefixes of the bundled FB2010-format sample
//! trace on the I/O-gadgeted big switch — LP bound, heuristic, Best λ,
//! Terra, and SJF on total completion time.

use coflow_bench::runner::{assert_sound, run_trace_replay};
use coflow_bench::{print_figure, write_csv, HarnessConfig};

fn main() {
    let cfg = HarnessConfig::from_args(12);
    let fig = run_trace_replay(&cfg);
    assert_sound(&fig, 0, &[1, 2, 3, 4]);
    print_figure(&fig);
    match write_csv(&fig, "scen_trace") {
        Ok(p) => println!("\ncsv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
