//! Figure 11: free-path model, unit weights, on SWAN — LP bound,
//! heuristic, Best/Average λ, and Terra (total completion time).

use coflow_bench::runner::{assert_sound, run_free_unweighted_figure};
use coflow_bench::{print_figure, write_csv, HarnessConfig};
use coflow_netgraph::topology;

fn main() {
    let cfg = HarnessConfig::from_args(16);
    let fig = run_free_unweighted_figure(&topology::swan(), &cfg, 11);
    assert_sound(&fig, 0, &[1, 2, 3, 4]);
    print_figure(&fig);
    match write_csv(&fig, "fig11_free_unweighted_swan") {
        Ok(p) => println!("\ncsv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
