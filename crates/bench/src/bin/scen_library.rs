//! Scenario-library sweep: incast, broadcast, multi-stage shuffle,
//! ring all-reduce, and hot-spot skew on SWAN (free path, weighted) —
//! LP bound, heuristic, Best λ, and weighted SJF.

use coflow_bench::runner::{assert_sound, run_scenario_library};
use coflow_bench::{print_figure, write_csv, HarnessConfig};
use coflow_netgraph::topology;

fn main() {
    let cfg = HarnessConfig::from_args(12);
    let fig = run_scenario_library(&topology::swan(), &cfg);
    assert_sound(&fig, 0, &[1, 2, 3]);
    print_figure(&fig);
    match write_csv(&fig, "scen_library") {
        Ok(p) => println!("\ncsv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
