//! The tracked performance harness: runs a pinned suite of
//! warm-start-sensitive scenarios and emits `BENCH_PR10.json` — one
//! point of the repo's performance trajectory.
//!
//! Scenarios (all deterministic given `--seed`):
//!
//! 1. **online fb2010 replay** — the bundled FB2010-format trace on the
//!    gadgeted big switch, event-driven online re-solving. The run is
//!    instrumented with a *shadow cold solve*: every epoch's exact LP is
//!    additionally solved from the all-slack crash basis, so warm and
//!    cold iteration counts compare the *same* LP sequence and their
//!    objectives must agree to LP tolerance. A separate `--cold`
//!    trajectory run provides the end-to-end wall-clock A/B.
//! 2. **ε sweep** — the geometric-interval LP across an ε ladder,
//!    chained (each point crashes from the previous basis) vs cold.
//! 3. **online ablation** — the figure-harness online ablation at small
//!    scale, reporting per-point wall-clock and LP effort from the
//!    runner's [`PointStats`] capture.
//! 4. **scale sweep** — cold time-indexed LP solves over a
//!    ports × coflows × horizon-margin grid on the bipartite switch,
//!    plus the *full* bundled FB2010 trace as an offline LP. Each point
//!    records model dimensions and the sparse engine's FTRAN/BTRAN
//!    counters, so hyper-sparsity can be tracked as instances grow.
//! 5. **service replay** — four tenant fabrics streaming the bundled
//!    trace through the `coflow-service` daemon epoch loop concurrently
//!    on the shared runtime, each with a warm per-tenant resolver and
//!    the shadow cold probe. Reports coflows-admitted/sec and p50/p99
//!    epoch latency across all tenants' epochs.
//! 6. **ordering vs LP** — the LP-free Sincronia ordering against the
//!    sparse time-indexed LP on the largest scale-sweep point. Gates
//!    the ordering tier's bargain: cost within 4× of the LP bound
//!    (Sincronia's primal-dual guarantee on the big switch) at ≥ 10×
//!    the speed (full suite only; `--quick` checks the cost ratio on a
//!    small instance where the wall-clock gap is noise).
//! 7. **FT vs eta** — the same solver run twice, once with
//!    Forrest–Tomlin row-spike basis updates (the default) and once
//!    with the product-form eta file, on the online replay and the
//!    largest scale-sweep point. Gates the FT refactor's bargain:
//!    no more refactorizations, a strictly smaller update file
//!    (`update_nnz`, the fill ledger), wall clock within 1.0× + 25 ms
//!    of eta, and objectives equal to 1e-9 (the refactorization and
//!    fill gates are checked on the full suite only; `--quick`
//!    instances are too small to fill an update file meaningfully).
//! 8. **recovery overhead** — the fault-tolerance bargain. The bundled
//!    trace is streamed through the daemon session twice, with and
//!    without the write-ahead journal, for the steady-state cost; then
//!    a journaled run is crashed mid-stream (the in-process disconnect
//!    fault) and its journal is replayed, timing `read_journal` +
//!    `TenantEngine::restore` against a cold re-admission that
//!    re-solves every epoch. Gates (full suite only; `--quick` wall
//!    clocks are noise): journaling costs ≤ 1.10× + 25 ms over the
//!    plain run, and recovery is ≥ 10× faster than the cold re-solve.
//!
//! Exit is non-zero when the warm path fails its bar: iterations must be
//! strictly below cold in `--quick` mode, and at least 2× below on the
//! full online replay (the PR's acceptance criterion).
//!
//! With `--compare OLD.json` (an earlier emission, e.g. the committed
//! `BENCH_PR8.json`) the harness also prints a per-scenario diff and
//! fails on regressions: for every scenario name present in both files,
//! wall clock must stay under 2× + 25 ms of the baseline and warm
//! iterations under 1.5× + 100 (iteration counts are deterministic;
//! the wall bar is loose on purpose so only order-of-magnitude
//! slowdowns — the thing this harness exists to catch — trip it).
//!
//! Usage: `perf_report [--quick] [--seed S] [--output PATH]
//! [--compare OLD.json]`.

use coflow_baselines::registry::{self, AlgoParams};
use coflow_bench::runner::{compute_figures, online_ablation_spec, PointStats};
use coflow_bench::{HarnessConfig, SweepPool};
use coflow_core::horizon::{horizon, HorizonMode};
use coflow_core::interval::{solve_interval, solve_interval_chained, IntervalChain};
use coflow_core::online::{online_heuristic_with, OnlineOptions};
use coflow_core::routing::Routing;
use coflow_core::solve::SolveContext;
use coflow_core::timeidx::{solve_time_indexed, LpSize};
use coflow_lp::{BasisUpdate, SolveStats, SolverOptions};
use coflow_netgraph::topology;
use coflow_runtime::Runtime;
use coflow_service::engine::{EngineConfig, PortCoflow, ServiceOutcome, TenantEngine};
use coflow_service::metrics::{percentile, ServiceMetrics};
use coflow_workloads::trace::{ReplayOptions, Trace, FB2010_SAMPLE};
use coflow_workloads::{build_instance, WorkloadConfig, WorkloadKind};
use std::time::Instant;

/// One emitted scenario record.
struct Scenario {
    name: String,
    wall_ms: f64,
    wall_ms_cold: Option<f64>,
    iterations: u64,
    iterations_cold: Option<u64>,
    resolves: u64,
    objective_max_rel_diff: Option<f64>,
    size: Option<LpSize>,
    stats: Option<SolveStats>,
    /// Scenario-specific numeric fields, appended to the JSON object
    /// verbatim (e.g. the service replay's throughput and latency
    /// percentiles).
    extra: Vec<(String, f64)>,
}

impl Scenario {
    fn json(&self) -> String {
        let mut s = format!(
            "{{\"name\":\"{}\",\"wall_ms\":{:.3},\"iterations\":{},\"resolves\":{}",
            self.name, self.wall_ms, self.iterations, self.resolves
        );
        if let Some(w) = self.wall_ms_cold {
            s.push_str(&format!(",\"wall_ms_cold\":{w:.3}"));
        }
        if let Some(i) = self.iterations_cold {
            s.push_str(&format!(",\"iterations_cold\":{i}"));
            let speedup = i as f64 / (self.iterations.max(1)) as f64;
            s.push_str(&format!(",\"iteration_speedup\":{speedup:.3}"));
        }
        if let Some(d) = self.objective_max_rel_diff {
            s.push_str(&format!(",\"objective_max_rel_diff\":{d:.3e}"));
        }
        if let Some(sz) = self.size {
            s.push_str(&format!(
                ",\"rows\":{},\"cols\":{},\"nonzeros\":{}",
                sz.rows, sz.cols, sz.nonzeros
            ));
        }
        for (key, value) in &self.extra {
            s.push_str(&format!(",\"{key}\":{value:.3}"));
        }
        if let Some(st) = self.stats {
            s.push_str(&format!(
                ",\"lp_stats\":{{\"ftran_solves\":{},\"ftran_nnz\":{},\"btran_solves\":{},\
                 \"btran_nnz\":{},\"peak_alloc_bytes\":{},\"ft_updates\":{},\"spike_nnz\":{},\
                 \"update_nnz\":{},\"refactor_interval\":{},\"refactor_fill\":{},\
                 \"refactor_unstable\":{}}}",
                st.ftran_solves,
                st.ftran_nnz,
                st.btran_solves,
                st.btran_nnz,
                st.peak_alloc_bytes,
                st.ft_updates,
                st.spike_nnz,
                st.update_nnz,
                st.refactor_interval,
                st.refactor_fill,
                st.refactor_unstable
            ));
        }
        s.push('}');
        s
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed = 1u64;
    let mut output = String::from("BENCH_PR10.json");
    let mut compare: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed requires a value");
                    std::process::exit(2);
                });
            }
            "--output" => {
                i += 1;
                output = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--output requires a value");
                    std::process::exit(2);
                });
            }
            "--compare" => {
                i += 1;
                compare = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--compare requires a path");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: perf_report [--quick] [--seed S] [--output PATH] [--compare OLD.json]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}; see --help");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut scenarios = Vec::new();
    let mut failures = Vec::new();

    // ---- 1. Online fb2010 replay, warm vs cold ----
    let replay = online_fb2010(quick);
    let bar = if quick { 1.0 } else { 2.0 };
    let warm_it = replay.iterations.max(1) as f64;
    let cold_it = replay.iterations_cold.unwrap_or(0) as f64;
    println!(
        "online fb2010 replay: {} resolves, {warm_it} warm vs {cold_it} cold iterations ({:.2}x), \
         objective drift {:.2e}",
        replay.resolves,
        cold_it / warm_it,
        replay.objective_max_rel_diff.unwrap_or(0.0)
    );
    if cold_it <= bar * warm_it {
        failures.push(format!(
            "online fb2010 replay: cold {cold_it} iterations is not {bar}x warm {warm_it}"
        ));
    }
    if replay.objective_max_rel_diff.unwrap_or(0.0) > 1e-6 {
        failures.push("online fb2010 replay: warm/cold objectives diverged beyond 1e-6".into());
    }
    scenarios.push(replay);

    // ---- 2. ε sweep, chained vs cold ----
    let sweep = epsilon_sweep(quick, seed);
    println!(
        "epsilon sweep: {} points, {} chained vs {} cold iterations, objective drift {:.2e}",
        sweep.resolves,
        sweep.iterations,
        sweep.iterations_cold.unwrap_or(0),
        sweep.objective_max_rel_diff.unwrap_or(0.0)
    );
    if sweep.objective_max_rel_diff.unwrap_or(0.0) > 1e-6 {
        failures.push("epsilon sweep: chained/cold objectives diverged beyond 1e-6".into());
    }
    scenarios.push(sweep);

    // ---- 3. Online ablation through the figure harness ----
    for s in online_ablation(quick, seed) {
        println!(
            "online ablation [{}]: {:.0} ms, {} LP iterations, {} online solves",
            s.name, s.wall_ms, s.iterations, s.resolves
        );
        scenarios.push(s);
    }

    // ---- 4. Scale sweep: cold time-indexed LPs across the grid ----
    for s in scale_sweep(quick, seed) {
        let sz = s.size.unwrap_or_default();
        let st = s.stats.unwrap_or_default();
        println!(
            "scale sweep [{}]: {:.0} ms, {} iterations, {}x{} ({} nnz), \
             ftran avg nnz {:.1}, peak {} KiB",
            s.name,
            s.wall_ms,
            s.iterations,
            sz.rows,
            sz.cols,
            sz.nonzeros,
            st.ftran_nnz as f64 / st.ftran_solves.max(1) as f64,
            st.peak_alloc_bytes / 1024,
        );
        scenarios.push(s);
    }

    // ---- 5. Multi-tenant service replay ----
    let service = service_replay(quick);
    let warm_it = service.iterations.max(1) as f64;
    let cold_it = service.iterations_cold.unwrap_or(0) as f64;
    println!(
        "service replay: {} tenants x fb2010, {:.1} coflows/s, epoch p50 {:.1} ms p99 {:.1} ms, \
         {warm_it} warm vs {cold_it} cold iterations ({:.2}x)",
        SERVICE_TENANTS,
        service
            .extra
            .iter()
            .find(|(k, _)| k == "coflows_per_sec")
            .map_or(0.0, |(_, v)| *v),
        service
            .extra
            .iter()
            .find(|(k, _)| k == "epoch_ms_p50")
            .map_or(0.0, |(_, v)| *v),
        service
            .extra
            .iter()
            .find(|(k, _)| k == "epoch_ms_p99")
            .map_or(0.0, |(_, v)| *v),
        cold_it / warm_it,
    );
    if cold_it <= bar * warm_it {
        failures.push(format!(
            "service replay: cold {cold_it} iterations is not {bar}x warm {warm_it}"
        ));
    }
    if service.objective_max_rel_diff.unwrap_or(0.0) > 1e-9 {
        failures
            .push("service replay: tenant objectives diverged (engine is nondeterministic)".into());
    }
    scenarios.push(service);

    // ---- 6. LP-free ordering vs the sparse LP ----
    let ordering = ordering_vs_lp(quick, seed);
    let ratio = extra_field(&ordering, "cost_ratio");
    let speedup = extra_field(&ordering, "lp_speedup");
    println!(
        "ordering vs lp [{}]: {:.1} ms vs LP {:.1} ms ({speedup:.1}x), cost ratio {ratio:.3}",
        if quick { "quick" } else { "p32_c32" },
        ordering.wall_ms,
        ordering.wall_ms_cold.unwrap_or(0.0),
    );
    if ratio > 4.0 {
        failures.push(format!(
            "ordering vs lp: cost ratio {ratio:.3} exceeds the 4x Sincronia envelope"
        ));
    }
    // Wall clock is only meaningful at the full scale point; on the
    // --quick instance both sides finish in microseconds.
    if !quick && speedup < 10.0 {
        failures.push(format!(
            "ordering vs lp: LP-free tier is only {speedup:.1}x faster than the sparse LP"
        ));
    }
    scenarios.push(ordering);

    // ---- 7. Forrest–Tomlin vs eta-file basis updates ----
    for s in ft_vs_eta(quick, seed) {
        let ft_ref = extra_field(&s, "ft_refactors");
        let eta_ref = extra_field(&s, "eta_refactors");
        let ft_nnz = extra_field(&s, "ft_update_nnz");
        let eta_nnz = extra_field(&s, "eta_update_nnz");
        let eta_ms = s.wall_ms_cold.unwrap_or(0.0);
        println!(
            "ft vs eta [{}]: {:.1} ms vs {eta_ms:.1} ms eta, refactors {ft_ref:.0} vs \
             {eta_ref:.0}, update nnz {ft_nnz:.0} vs {eta_nnz:.0}, objective drift {:.2e}",
            s.name,
            s.wall_ms,
            s.objective_max_rel_diff.unwrap_or(0.0)
        );
        if s.objective_max_rel_diff.unwrap_or(0.0) > 1e-9 {
            failures.push(format!(
                "{}: FT and eta objectives diverged beyond 1e-9",
                s.name
            ));
        }
        // The refactorization and fill gates only bind at full scale:
        // on `--quick` instances the update file is a handful of
        // pivots, where FT's per-update spike + multiplier overhead
        // exceeds a short eta column and a single stability decline
        // dominates the refactor count. (The full-scale points are
        // where fill growth is the bottleneck the refactor exists
        // for.)
        if !quick && ft_ref > eta_ref {
            failures.push(format!(
                "{}: FT refactorized more than eta ({ft_ref:.0} vs {eta_ref:.0})",
                s.name
            ));
        }
        // Update-file fill is the refactor's raison d'être: FT must
        // write strictly less than eta at full scale.
        if !quick && ft_nnz >= eta_nnz && eta_nnz > 0.0 {
            failures.push(format!(
                "{}: FT update-file nnz {ft_nnz:.0} is not below eta's {eta_nnz:.0}",
                s.name
            ));
        }
        if s.wall_ms > eta_ms + 25.0 {
            failures.push(format!(
                "{}: FT wall {:.1} ms exceeds eta {eta_ms:.1} ms beyond the 25 ms slack",
                s.name, s.wall_ms
            ));
        }
        scenarios.push(s);
    }

    // ---- 8. Journal overhead + crash recovery speedup ----
    let recovery = recovery_overhead(quick);
    let plain_ms = recovery.wall_ms_cold.unwrap_or(0.0);
    let overhead = extra_field(&recovery, "journal_overhead");
    let recover_ms = extra_field(&recovery, "recover_ms");
    let cold_ms = extra_field(&recovery, "cold_ms");
    let speedup = extra_field(&recovery, "recovery_speedup");
    println!(
        "recovery overhead: journaled {:.1} ms vs plain {plain_ms:.1} ms ({overhead:.2}x), \
         recover {recover_ms:.2} ms vs cold re-solve {cold_ms:.1} ms ({speedup:.1}x)",
        recovery.wall_ms
    );
    if recovery.objective_max_rel_diff.unwrap_or(0.0) > 1e-9 {
        failures.push("recovery overhead: recovered state diverged from the cold re-solve".into());
    }
    // Wall-clock gates only bind at full scale; the --quick session is
    // over in a few milliseconds where fsync jitter dominates.
    if !quick && recovery.wall_ms > 1.10 * plain_ms + 25.0 {
        failures.push(format!(
            "recovery overhead: journaling costs {:.1} ms over plain {plain_ms:.1} ms \
             (beyond 1.10x + 25 ms)",
            recovery.wall_ms
        ));
    }
    if !quick && speedup < 10.0 {
        failures.push(format!(
            "recovery overhead: journal replay is only {speedup:.1}x faster than a cold re-solve"
        ));
    }
    scenarios.push(recovery);

    // ---- Compare against an earlier emission ----
    if let Some(path) = compare {
        let old = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        failures.extend(diff_against(&old, &scenarios));
    }

    // ---- Emit ----
    let body: Vec<String> = scenarios.iter().map(Scenario::json).collect();
    let json = format!(
        "{{\n  \"suite\": \"coflow warm-start perf\",\n  \"pr\": 10,\n  \"quick\": {quick},\n  \
         \"seed\": {seed},\n  \"scenarios\": [\n    {}\n  ]\n}}\n",
        body.join(",\n    ")
    );
    std::fs::write(&output, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {output}: {e}");
        std::process::exit(1);
    });
    println!("wrote {output}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}

/// Prints the per-scenario diff against an earlier emission and returns
/// the regressions that trip the gate (see module docs for the bars).
fn diff_against(old_json: &str, new: &[Scenario]) -> Vec<String> {
    let mut failures = Vec::new();
    println!(
        "{:<28} {:>12} {:>12} {:>8} {:>10} {:>12}",
        "compare", "old", "new", "ratio", "spike nnz", "refac i/f/u"
    );
    for s in new {
        // The FT counters of the new run (old emissions predating the
        // Forrest–Tomlin engine simply lack them; the new side is what
        // the trajectory tracks from here on).
        let (spike, causes) = s
            .stats
            .map_or((String::from("-"), String::from("-")), |st| {
                (
                    format!("{}", st.spike_nnz),
                    format!(
                        "{}/{}/{}",
                        st.refactor_interval, st.refactor_fill, st.refactor_unstable
                    ),
                )
            });
        let Some(obj) = scenario_object(old_json, &s.name) else {
            println!(
                "{:<28} {:>12} {:>12.1} {:>8} {:>10} {:>12}",
                s.name, "-", s.wall_ms, "new", spike, causes
            );
            continue;
        };
        let old_wall = num_field(obj, "wall_ms").unwrap_or(0.0);
        let old_iters = num_field(obj, "iterations").unwrap_or(0.0);
        let ratio = s.wall_ms / old_wall.max(1e-9);
        println!(
            "{:<28} {:>9.1} ms {:>9.1} ms {:>7.2}x {:>10} {:>12}",
            s.name, old_wall, s.wall_ms, ratio, spike, causes
        );
        if s.wall_ms > 2.0 * old_wall + 25.0 {
            failures.push(format!(
                "{}: wall clock regressed {old_wall:.1} ms -> {:.1} ms",
                s.name, s.wall_ms
            ));
        }
        if s.iterations as f64 > 1.5 * old_iters + 100.0 {
            failures.push(format!(
                "{}: iterations regressed {old_iters} -> {}",
                s.name, s.iterations
            ));
        }
    }
    failures
}

/// Slices the `{...}` object for scenario `name` out of an earlier
/// emission (our own writer's format: one object per scenario, names
/// unique, at most one level of nesting under `lp_stats`).
fn scenario_object<'a>(json: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("{{\"name\":\"{name}\"");
    let start = json.find(&tag)?;
    let mut depth = 0usize;
    for (off, ch) in json[start..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[start..=start + off]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts a top-level numeric field from a scenario object.
fn num_field(obj: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = obj.find(&tag)? + tag.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Scenario 1: the bundled trace replayed online, with the shadow cold
/// probe measuring the same LP sequence from the all-slack basis.
fn online_fb2010(quick: bool) -> Scenario {
    let trace = Trace::parse(FB2010_SAMPLE).expect("bundled fixture parses");
    let opts = ReplayOptions {
        limit: if quick { 8 } else { 0 },
        // Half-second slots double the arrival epochs of the fixture,
        // which is exactly the regime warm starts are for.
        ms_per_slot: 500.0,
        ..Default::default()
    };
    let inst = trace.switch_instance(&opts).expect("fixture replays");
    let lp_opts = SolverOptions::default();

    // Pure warm trajectory, timed (no probes inflating the clock).
    let t0 = Instant::now();
    let _warm_run = online_heuristic_with(
        &inst,
        &Routing::FreePath,
        &lp_opts,
        &OnlineOptions {
            cold: false,
            shadow_cold: false,
        },
    )
    .expect("online replay solves");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Instrumented warm trajectory with the shadow cold probe — the
    // iteration counts compare warm vs cold on identical LPs.
    let run = online_heuristic_with(
        &inst,
        &Routing::FreePath,
        &lp_opts,
        &OnlineOptions {
            cold: false,
            shadow_cold: true,
        },
    )
    .expect("online replay solves");

    let drift = run
        .epoch_objectives
        .iter()
        .zip(run.cold_objectives.as_deref().unwrap_or(&[]))
        .map(|(w, c)| (w - c).abs() / (1.0 + c.abs()))
        .fold(0.0f64, f64::max);

    // Separate cold trajectory for the end-to-end wall-clock A/B.
    let t0 = Instant::now();
    let _cold_run = online_heuristic_with(
        &inst,
        &Routing::FreePath,
        &lp_opts,
        &OnlineOptions {
            cold: true,
            shadow_cold: false,
        },
    )
    .expect("cold online replay solves");
    let wall_ms_cold = t0.elapsed().as_secs_f64() * 1e3;

    Scenario {
        name: "online_fb2010_replay".into(),
        wall_ms,
        wall_ms_cold: Some(wall_ms_cold),
        iterations: run.lp_iterations as u64,
        iterations_cold: run.cold_iterations.map(|i| i as u64),
        resolves: run.resolves as u64,
        objective_max_rel_diff: Some(drift),
        size: None,
        stats: Some(run.lp_stats),
        extra: Vec::new(),
    }
}

/// Scenario 2: the interval LP across an ε ladder, basis-chained vs
/// cold per point.
fn epsilon_sweep(quick: bool, seed: u64) -> Scenario {
    let topo = topology::swan();
    let inst = build_instance(
        &topo,
        &WorkloadConfig {
            kind: WorkloadKind::Facebook,
            num_jobs: if quick { 4 } else { 8 },
            seed,
            slot_seconds: 50.0,
            mean_interarrival_slots: 1.0,
            weighted: true,
            demand_scale: 1.0,
        },
    )
    .expect("workload builds");
    let t = horizon(
        &inst,
        &Routing::FreePath,
        HorizonMode::Greedy { margin: 1.25 },
    )
    .expect("horizon");
    let opts = SolverOptions::default();
    let epsilons: Vec<f64> = if quick {
        vec![0.2, 0.5, 0.8]
    } else {
        (1..=10).map(|k| k as f64 / 10.0).collect()
    };

    let mut chain: Option<IntervalChain> = None;
    let mut warm_iters = 0u64;
    let mut cold_iters = 0u64;
    let mut drift = 0.0f64;
    let mut stats = SolveStats::default();
    let t0 = Instant::now();
    for &eps in &epsilons {
        let (rel, next) =
            solve_interval_chained(&inst, &Routing::FreePath, t, eps, &opts, chain.as_ref())
                .expect("interval LP solves");
        warm_iters += rel.lp.lp_iterations as u64;
        stats.merge(&rel.lp.stats);
        chain = Some(next);
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let mut cold_objectives = Vec::new();
    for &eps in &epsilons {
        let rel =
            solve_interval(&inst, &Routing::FreePath, t, eps, &opts).expect("interval LP solves");
        cold_iters += rel.lp.lp_iterations as u64;
        cold_objectives.push(rel.lp.objective);
    }
    let wall_ms_cold = t0.elapsed().as_secs_f64() * 1e3;
    // Re-run the chain to compare objectives pointwise (cheap at this
    // scale and keeps the two timed loops pure).
    let mut chain: Option<IntervalChain> = None;
    for (&eps, &cold_obj) in epsilons.iter().zip(&cold_objectives) {
        let (rel, next) =
            solve_interval_chained(&inst, &Routing::FreePath, t, eps, &opts, chain.as_ref())
                .expect("interval LP solves");
        drift = drift.max((rel.lp.objective - cold_obj).abs() / (1.0 + cold_obj.abs()));
        chain = Some(next);
    }

    Scenario {
        name: "epsilon_sweep".into(),
        wall_ms,
        wall_ms_cold: Some(wall_ms_cold),
        iterations: warm_iters,
        iterations_cold: Some(cold_iters),
        resolves: epsilons.len() as u64,
        objective_max_rel_diff: Some(drift),
        size: None,
        stats: Some(stats),
        extra: Vec::new(),
    }
}

/// Scenario 3: the figure-harness online ablation, one record per
/// workload row, stats from the runner's per-point capture.
fn online_ablation(quick: bool, seed: u64) -> Vec<Scenario> {
    let topo = topology::swan();
    let cfg = HarnessConfig {
        jobs: if quick { 3 } else { 6 },
        seed,
        samples: 5,
        mean_interarrival: 1.0,
        verbose: false,
    };
    let spec = online_ablation_spec(&topo, &cfg);
    let fig = compute_figures(vec![spec], &SweepPool::new())
        .pop()
        .expect("one figure")
        .1;
    fig.rows
        .iter()
        .zip(&fig.stats)
        .map(|(row, stats): (_, &PointStats)| Scenario {
            name: format!("online_ablation_{}", row.label.to_lowercase()),
            wall_ms: stats.wall_ms,
            wall_ms_cold: None,
            iterations: stats.lp_iterations,
            iterations_cold: None,
            resolves: stats.resolves,
            objective_max_rel_diff: None,
            size: None,
            stats: None,
            extra: Vec::new(),
        })
        .collect()
}

/// Scenario 4: cold time-indexed LP solves across a
/// ports × coflows × horizon-margin grid, plus the full bundled FB2010
/// trace as one offline LP. Records model dimensions and engine
/// counters per point.
fn scale_sweep(quick: bool, seed: u64) -> Vec<Scenario> {
    // (ports, coflows, horizon margin): each axis doubles while the
    // others hold, so a regression on any single dimension is visible.
    let grid: &[(usize, usize, f64)] = if quick {
        &[(8, 4, 1.25)]
    } else {
        &[
            (8, 8, 1.25),
            (8, 8, 1.75),
            (16, 8, 1.25),
            (16, 16, 1.25),
            (16, 16, 1.75),
            (32, 16, 1.25),
            (32, 32, 1.25),
        ]
    };
    let opts = SolverOptions::default();
    let mut out = Vec::new();
    for &(ports, jobs, margin) in grid {
        let topo = topology::bipartite_switch(ports, 1.0);
        let inst = build_instance(
            &topo,
            &WorkloadConfig {
                kind: WorkloadKind::Facebook,
                num_jobs: jobs,
                seed,
                slot_seconds: 50.0,
                mean_interarrival_slots: 1.0,
                weighted: true,
                demand_scale: 0.05,
            },
        )
        .expect("workload builds");
        let t =
            horizon(&inst, &Routing::FreePath, HorizonMode::Greedy { margin }).expect("horizon");
        let t0 = Instant::now();
        let lp = solve_time_indexed(&inst, &Routing::FreePath, t, &opts).expect("LP solves");
        out.push(Scenario {
            name: format!("scale_p{ports}_c{jobs}_t{t}"),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            wall_ms_cold: None,
            iterations: lp.lp_iterations as u64,
            iterations_cold: None,
            resolves: 1,
            objective_max_rel_diff: None,
            size: Some(lp.size),
            stats: Some(lp.stats),
            extra: Vec::new(),
        });
    }

    // The whole bundled trace, one offline LP — the largest instance the
    // suite tracks.
    if !quick {
        let trace = Trace::parse(FB2010_SAMPLE).expect("bundled fixture parses");
        let inst = trace
            .switch_instance(&ReplayOptions::default())
            .expect("fixture replays");
        let t = horizon(
            &inst,
            &Routing::FreePath,
            HorizonMode::Greedy { margin: 1.25 },
        )
        .expect("horizon");
        let t0 = Instant::now();
        let lp = solve_time_indexed(&inst, &Routing::FreePath, t, &opts).expect("LP solves");
        out.push(Scenario {
            name: "scale_fb2010_full".into(),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
            wall_ms_cold: None,
            iterations: lp.lp_iterations as u64,
            iterations_cold: None,
            resolves: 1,
            objective_max_rel_diff: None,
            size: Some(lp.size),
            stats: Some(lp.stats),
            extra: Vec::new(),
        });
    }
    out
}

/// Reads a named `extra` field off a scenario (0.0 when absent).
fn extra_field(s: &Scenario, key: &str) -> f64 {
    s.extra
        .iter()
        .find(|(k, _)| k == key)
        .map_or(0.0, |(_, v)| *v)
}

/// Scenario 6: the LP-free Sincronia ordering head to head with the
/// sparse time-indexed LP on the largest scale-sweep instance
/// (32 ports × 32 coflows on the full run). `cost_ratio` is the
/// ordering's Σ wC over the LP optimum — the LP is a true lower bound,
/// so this is an upper bound on the ordering's real approximation
/// factor — and `lp_speedup` is the LP's wall clock over the
/// ordering's. Both gates live in `main` (ratio ≤ 4 always, speedup
/// ≥ 10 on the full suite).
fn ordering_vs_lp(quick: bool, seed: u64) -> Scenario {
    let (ports, jobs) = if quick { (8, 4) } else { (32, 32) };
    let topo = topology::bipartite_switch(ports, 1.0);
    let inst = build_instance(
        &topo,
        &WorkloadConfig {
            kind: WorkloadKind::Facebook,
            num_jobs: jobs,
            seed,
            slot_seconds: 50.0,
            mean_interarrival_slots: 1.0,
            weighted: true,
            demand_scale: 0.05,
        },
    )
    .expect("workload builds");
    let t = horizon(
        &inst,
        &Routing::FreePath,
        HorizonMode::Greedy { margin: 1.25 },
    )
    .expect("horizon");

    let t0 = Instant::now();
    let lp = solve_time_indexed(&inst, &Routing::FreePath, t, &SolverOptions::default())
        .expect("LP solves");
    let lp_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let entry = registry::all()
        .iter()
        .find(|e| e.name == "sincronia")
        .expect("sincronia is registered");
    let solver = entry.build(&AlgoParams::default());
    let mut ctx = SolveContext::new();
    let t0 = Instant::now();
    let out = solver
        .solve(&inst, &Routing::FreePath, &mut ctx)
        .expect("ordering tier schedules");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    Scenario {
        name: "ordering_vs_lp".into(),
        wall_ms,
        wall_ms_cold: Some(lp_wall_ms),
        iterations: 0,
        iterations_cold: None,
        resolves: 1,
        objective_max_rel_diff: None,
        size: Some(lp.size),
        stats: None,
        extra: vec![
            ("cost".into(), out.cost),
            ("lp_bound".into(), lp.objective),
            ("cost_ratio".into(), out.cost / lp.objective.max(1e-9)),
            ("lp_wall_ms".into(), lp_wall_ms),
            ("lp_speedup".into(), lp_wall_ms / wall_ms.max(1e-9)),
        ],
    }
}

/// Tenant fabrics the service replay runs concurrently.
const SERVICE_TENANTS: usize = 4;

/// Scenario 5: the bundled trace streamed through the daemon epoch loop
/// by [`SERVICE_TENANTS`] independent tenants at once, fanned out on the
/// shared work-stealing runtime. Every tenant keeps one warm resolver
/// across its epochs; the shadow cold probe prices the same LPs from
/// the crash basis. Identical workloads must produce identical
/// objectives across tenants (checked as `objective_max_rel_diff`).
fn service_replay(quick: bool) -> Scenario {
    let trace = Trace::parse(FB2010_SAMPLE).expect("bundled fixture parses");
    let opts = ReplayOptions {
        limit: if quick { 8 } else { 0 },
        ms_per_slot: 500.0,
        ..Default::default()
    };
    let base = trace.port_base().expect("fixture is consistent");
    let take = if opts.limit == 0 {
        trace.coflows.len()
    } else {
        opts.limit.min(trace.coflows.len())
    };
    let coflows: Vec<PortCoflow> = trace.coflows[..take]
        .iter()
        .map(|c| PortCoflow {
            id: c.id.clone(),
            weight: 1.0,
            release: c.release_slot(&opts),
            deadline: None,
            flows: c.port_flows(base, &opts),
        })
        .collect();

    let rt = Runtime::new();
    let tenants: Vec<usize> = (0..SERVICE_TENANTS).collect();
    let t0 = Instant::now();
    let runs: Vec<(ServiceOutcome, ServiceMetrics)> = rt
        .run(&tenants, |_, _| {
            let mut engine = TenantEngine::new(
                trace.num_ports,
                EngineConfig {
                    shadow_cold: true,
                    ..EngineConfig::default()
                },
            );
            for pc in &coflows {
                engine.admit(&rt, pc.clone()).expect("fixture admits");
            }
            let outcome = engine.finish(&rt).expect("fixture stream completes");
            let mut metrics = ServiceMetrics::default();
            for report in engine.take_reports() {
                metrics.observe(&report);
            }
            (outcome, metrics)
        })
        .into_iter()
        .collect();
    let wall_secs = t0.elapsed().as_secs_f64();

    let admitted: usize = runs.iter().map(|(o, _)| o.admitted).sum();
    let warm_iters: u64 = runs.iter().map(|(o, _)| o.lp_iterations as u64).sum();
    let cold_iters: u64 = runs
        .iter()
        .map(|(o, _)| o.cold_iterations.unwrap_or(0) as u64)
        .sum();
    let resolves: u64 = runs.iter().map(|(o, _)| o.resolves as u64).sum();
    let mut stats = SolveStats::default();
    let mut epoch_ms = Vec::new();
    for (o, m) in &runs {
        stats.merge(&o.lp_stats);
        epoch_ms.extend_from_slice(&m.epoch_ms);
    }
    // Same stream, same engine ⇒ every tenant must land on the same
    // objective; any drift means shared-state contamination.
    let obj0 = runs[0].0.objective;
    let drift = runs
        .iter()
        .map(|(o, _)| (o.objective - obj0).abs() / (1.0 + obj0.abs()))
        .fold(0.0f64, f64::max);

    Scenario {
        name: "service_replay".into(),
        wall_ms: wall_secs * 1e3,
        wall_ms_cold: None,
        iterations: warm_iters,
        iterations_cold: Some(cold_iters),
        resolves,
        objective_max_rel_diff: Some(drift),
        size: None,
        stats: Some(stats),
        extra: vec![
            ("tenants".into(), SERVICE_TENANTS as f64),
            ("coflows_admitted".into(), admitted as f64),
            (
                "coflows_per_sec".into(),
                admitted as f64 / wall_secs.max(1e-9),
            ),
            ("epoch_ms_p50".into(), percentile(&epoch_ms, 50.0)),
            ("epoch_ms_p99".into(), percentile(&epoch_ms, 99.0)),
        ],
    }
}

/// Scenario 8: the fault-tolerance bargain, both sides. Steady state:
/// the bundled trace streamed through the daemon session with and
/// without the write-ahead journal (same runtime, same stream — the
/// delta is pure journaling: serialization + append + flush per round).
/// Crash: a journaled run is severed mid-stream by the in-process
/// disconnect fault, leaving a committed journal with no `DONE` marker;
/// recovery (`read_journal` + `TenantEngine::restore`, one model build
/// from the resolver's own logs, zero LP re-solves) is timed against a
/// cold re-admission that re-solves every epoch. The recovered
/// engine's restored objective must equal the cold rebuild's to 1e-9 —
/// the same oracle the service's golden tests pin.
fn recovery_overhead(quick: bool) -> Scenario {
    use coflow_service::daemon::{session_with, SessionOptions};
    use coflow_service::fault::FaultPlan;
    use coflow_service::journal::read_journal;
    use coflow_service::protocol::{parse_request, Request};

    let lines: Vec<&str> = FB2010_SAMPLE
        .lines()
        .filter(|l| !l.trim().is_empty())
        .collect();
    let take = if quick { 6 } else { lines.len() - 1 };
    let mut input = String::new();
    for l in &lines[..=take] {
        input.push_str(l);
        input.push('\n');
    }
    input.push_str("BYE\n");

    let rt = Runtime::new();
    let run = |opts: SessionOptions| {
        let t0 = Instant::now();
        let mut out = Vec::new();
        session_with(&rt, input.as_bytes(), &mut out, opts).expect("session runs");
        t0.elapsed().as_secs_f64() * 1e3
    };

    // Steady-state A/B: identical streams, the journal is the only
    // difference.
    let plain_ms = run(SessionOptions::default());
    let dir = std::env::temp_dir().join(format!("coflow-perf-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("journal dir");
    let journal_ms = run(SessionOptions {
        journal: Some(dir.clone()),
        ..SessionOptions::default()
    });

    // Crash mid-stream: the disconnect fault severs the session after
    // half the coflows (line 1 is the header), leaving a recoverable
    // journal — `JournalWriter::create` truncates, so the clean run's
    // `DONE` marker above is overwritten, not appended to.
    let cut = take / 2 + 1;
    run(SessionOptions {
        journal: Some(dir.clone()),
        fault: FaultPlan::parse(&format!("disconnect={}", cut + 1)).expect("valid plan"),
        ..SessionOptions::default()
    });

    // Recovery: journal replay into a restored engine.
    let path = dir.join("default.journal");
    let t0 = Instant::now();
    let rec = read_journal(&path).expect("crash journal reads");
    let Ok(Request::Hello(hello)) = parse_request(&rec.hello_line, None) else {
        panic!("journal hello parses");
    };
    let restored = TenantEngine::restore(hello.ports, hello.engine_config(), rec.snapshot)
        .expect("engine restores");
    let recover_ms = t0.elapsed().as_secs_f64() * 1e3;
    let restored_objective = rec.reports.last().map_or(0.0, |r| r.objective);
    drop(restored);

    // Cold baseline: rebuild the same state the expensive way,
    // re-admitting (and re-solving) every journaled arrival.
    let t0 = Instant::now();
    let mut cold = TenantEngine::new(hello.ports, hello.engine_config());
    for a in &rec.arrivals {
        cold.admit(&rt, a.clone()).expect("cold re-admit");
    }
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cold_objective = cold.take_reports().last().map_or(0.0, |r| r.objective);
    let drift = (restored_objective - cold_objective).abs() / (1.0 + cold_objective.abs());
    let _ = std::fs::remove_dir_all(&dir);

    Scenario {
        name: "recovery_overhead".into(),
        wall_ms: journal_ms,
        wall_ms_cold: Some(plain_ms),
        iterations: 0,
        iterations_cold: None,
        resolves: take as u64,
        objective_max_rel_diff: Some(drift),
        size: None,
        stats: None,
        extra: vec![
            ("journal_overhead".into(), journal_ms / plain_ms.max(1e-9)),
            ("recover_ms".into(), recover_ms),
            ("cold_ms".into(), cold_ms),
            ("recovery_speedup".into(), cold_ms / recover_ms.max(1e-9)),
            ("recovered_arrivals".into(), rec.arrivals.len() as f64),
            ("recovered_epochs".into(), rec.reports.len() as f64),
        ],
    }
}

/// Update-triggered refactorizations, summed across causes (the
/// initial factorization of each solve is excluded on both sides, so
/// FT and eta compare like for like).
fn refactor_total(st: &SolveStats) -> usize {
    st.refactor_interval + st.refactor_fill + st.refactor_unstable
}

/// Scenario 7: the FT-vs-eta A/B — the warm online replay and the
/// largest cold scale-sweep point, each solved twice with only
/// `basis_update` differing. `wall_ms` is the FT run, `wall_ms_cold`
/// the eta run; the `extra` fields carry both sides' refactorization
/// and update-file-fill counters for the gates in `main`.
fn ft_vs_eta(quick: bool, seed: u64) -> Vec<Scenario> {
    let mut out = Vec::new();

    // Warm epoch chain: the bundled trace replayed online, as in
    // scenario 1 but without the shadow probes — pure A/B.
    let trace = Trace::parse(FB2010_SAMPLE).expect("bundled fixture parses");
    let opts = ReplayOptions {
        limit: if quick { 8 } else { 0 },
        ms_per_slot: 500.0,
        ..Default::default()
    };
    let inst = trace.switch_instance(&opts).expect("fixture replays");
    // FT and eta legally take different pivot paths, land on different
    // optimal vertices, and the rate feedback then makes later epoch
    // LPs different *instances* — so cross-engine epoch objectives are
    // not comparable. The 1e-9 oracle is each engine against the
    // shadow cold solve of its *own* exact LP sequence: a pure timed
    // run first (no probes on the clock), then an instrumented one.
    let replay_with = |bu: BasisUpdate| {
        let lp_opts = SolverOptions {
            basis_update: bu,
            ..Default::default()
        };
        let t0 = Instant::now();
        online_heuristic_with(
            &inst,
            &Routing::FreePath,
            &lp_opts,
            &OnlineOptions {
                cold: false,
                shadow_cold: false,
            },
        )
        .expect("online replay solves");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let run = online_heuristic_with(
            &inst,
            &Routing::FreePath,
            &lp_opts,
            &OnlineOptions {
                cold: false,
                shadow_cold: true,
            },
        )
        .expect("online replay solves");
        let drift = run
            .epoch_objectives
            .iter()
            .zip(run.cold_objectives.as_deref().unwrap_or(&[]))
            .map(|(w, c)| (w - c).abs() / (1.0 + c.abs()))
            .fold(0.0f64, f64::max);
        (wall_ms, run, drift)
    };
    let (ft_ms, ft, ft_drift) = replay_with(BasisUpdate::ForrestTomlin);
    let (eta_ms, eta, eta_drift) = replay_with(BasisUpdate::Eta);
    let drift = ft_drift.max(eta_drift);
    out.push(Scenario {
        name: "ft_vs_eta_online_replay".into(),
        wall_ms: ft_ms,
        wall_ms_cold: Some(eta_ms),
        iterations: ft.lp_iterations as u64,
        iterations_cold: Some(eta.lp_iterations as u64),
        resolves: ft.resolves as u64,
        objective_max_rel_diff: Some(drift),
        size: None,
        stats: Some(ft.lp_stats),
        extra: vec![
            ("ft_refactors".into(), refactor_total(&ft.lp_stats) as f64),
            ("eta_refactors".into(), refactor_total(&eta.lp_stats) as f64),
            ("ft_update_nnz".into(), ft.lp_stats.update_nnz as f64),
            ("eta_update_nnz".into(), eta.lp_stats.update_nnz as f64),
            ("ft_spike_nnz".into(), ft.lp_stats.spike_nnz as f64),
        ],
    });

    // Cold single solve: the largest scale-sweep point (long pivot
    // runs between refactorizations — where update-file fill bites).
    let (ports, jobs) = if quick { (8, 4) } else { (32, 32) };
    let topo = topology::bipartite_switch(ports, 1.0);
    let inst = build_instance(
        &topo,
        &WorkloadConfig {
            kind: WorkloadKind::Facebook,
            num_jobs: jobs,
            seed,
            slot_seconds: 50.0,
            mean_interarrival_slots: 1.0,
            weighted: true,
            demand_scale: 0.05,
        },
    )
    .expect("workload builds");
    let t = horizon(
        &inst,
        &Routing::FreePath,
        HorizonMode::Greedy { margin: 1.25 },
    )
    .expect("horizon");
    let solve_with = |bu: BasisUpdate| {
        let lp_opts = SolverOptions {
            basis_update: bu,
            ..Default::default()
        };
        let t0 = Instant::now();
        let lp = solve_time_indexed(&inst, &Routing::FreePath, t, &lp_opts).expect("LP solves");
        (t0.elapsed().as_secs_f64() * 1e3, lp)
    };
    let (ft_ms, ft) = solve_with(BasisUpdate::ForrestTomlin);
    let (eta_ms, eta) = solve_with(BasisUpdate::Eta);
    let drift = (ft.objective - eta.objective).abs() / (1.0 + eta.objective.abs());
    out.push(Scenario {
        name: format!("ft_vs_eta_scale_p{ports}_c{jobs}"),
        wall_ms: ft_ms,
        wall_ms_cold: Some(eta_ms),
        iterations: ft.lp_iterations as u64,
        iterations_cold: Some(eta.lp_iterations as u64),
        resolves: 1,
        objective_max_rel_diff: Some(drift),
        size: Some(ft.size),
        stats: Some(ft.stats),
        extra: vec![
            ("ft_refactors".into(), refactor_total(&ft.stats) as f64),
            ("eta_refactors".into(), refactor_total(&eta.stats) as f64),
            ("ft_update_nnz".into(), ft.stats.update_nnz as f64),
            ("eta_update_nnz".into(), eta.stats.update_nnz as f64),
            ("ft_spike_nnz".into(), ft.stats.spike_nnz as f64),
        ],
    });
    out
}
