//! The tracked performance harness: runs a pinned suite of
//! warm-start-sensitive scenarios and emits `BENCH_PR5.json` — one point
//! of the repo's performance trajectory.
//!
//! Scenarios (all deterministic given `--seed`):
//!
//! 1. **online fb2010 replay** — the bundled FB2010-format trace on the
//!    gadgeted big switch, event-driven online re-solving. The run is
//!    instrumented with a *shadow cold solve*: every epoch's exact LP is
//!    additionally solved from the all-slack crash basis, so warm and
//!    cold iteration counts compare the *same* LP sequence and their
//!    objectives must agree to LP tolerance. A separate `--cold`
//!    trajectory run provides the end-to-end wall-clock A/B.
//! 2. **ε sweep** — the geometric-interval LP across an ε ladder,
//!    chained (each point crashes from the previous basis) vs cold.
//! 3. **online ablation** — the figure-harness online ablation at small
//!    scale, reporting per-point wall-clock and LP effort from the
//!    runner's [`PointStats`] capture.
//!
//! Exit is non-zero when the warm path fails its bar: iterations must be
//! strictly below cold in `--quick` mode, and at least 2× below on the
//! full online replay (the PR's acceptance criterion).
//!
//! Usage: `perf_report [--quick] [--seed S] [--output PATH]`.

use coflow_bench::runner::{compute_figures, online_ablation_spec, PointStats};
use coflow_bench::{HarnessConfig, SweepPool};
use coflow_core::horizon::{horizon, HorizonMode};
use coflow_core::interval::{solve_interval, solve_interval_chained, IntervalChain};
use coflow_core::online::{online_heuristic_with, OnlineOptions};
use coflow_core::routing::Routing;
use coflow_lp::SolverOptions;
use coflow_netgraph::topology;
use coflow_workloads::trace::{ReplayOptions, Trace, FB2010_SAMPLE};
use coflow_workloads::{build_instance, WorkloadConfig, WorkloadKind};
use std::time::Instant;

/// One emitted scenario record.
struct Scenario {
    name: String,
    wall_ms: f64,
    wall_ms_cold: Option<f64>,
    iterations: u64,
    iterations_cold: Option<u64>,
    resolves: u64,
    objective_max_rel_diff: Option<f64>,
}

impl Scenario {
    fn json(&self) -> String {
        let mut s = format!(
            "{{\"name\":\"{}\",\"wall_ms\":{:.3},\"iterations\":{},\"resolves\":{}",
            self.name, self.wall_ms, self.iterations, self.resolves
        );
        if let Some(w) = self.wall_ms_cold {
            s.push_str(&format!(",\"wall_ms_cold\":{w:.3}"));
        }
        if let Some(i) = self.iterations_cold {
            s.push_str(&format!(",\"iterations_cold\":{i}"));
            let speedup = i as f64 / (self.iterations.max(1)) as f64;
            s.push_str(&format!(",\"iteration_speedup\":{speedup:.3}"));
        }
        if let Some(d) = self.objective_max_rel_diff {
            s.push_str(&format!(",\"objective_max_rel_diff\":{d:.3e}"));
        }
        s.push('}');
        s
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed = 1u64;
    let mut output = String::from("BENCH_PR5.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed requires a value");
                    std::process::exit(2);
                });
            }
            "--output" => {
                i += 1;
                output = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--output requires a value");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                eprintln!("usage: perf_report [--quick] [--seed S] [--output PATH]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option {other}; see --help");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut scenarios = Vec::new();
    let mut failures = Vec::new();

    // ---- 1. Online fb2010 replay, warm vs cold ----
    let replay = online_fb2010(quick);
    let bar = if quick { 1.0 } else { 2.0 };
    let warm_it = replay.iterations.max(1) as f64;
    let cold_it = replay.iterations_cold.unwrap_or(0) as f64;
    println!(
        "online fb2010 replay: {} resolves, {warm_it} warm vs {cold_it} cold iterations ({:.2}x), \
         objective drift {:.2e}",
        replay.resolves,
        cold_it / warm_it,
        replay.objective_max_rel_diff.unwrap_or(0.0)
    );
    if cold_it <= bar * warm_it {
        failures.push(format!(
            "online fb2010 replay: cold {cold_it} iterations is not {bar}x warm {warm_it}"
        ));
    }
    if replay.objective_max_rel_diff.unwrap_or(0.0) > 1e-6 {
        failures.push("online fb2010 replay: warm/cold objectives diverged beyond 1e-6".into());
    }
    scenarios.push(replay);

    // ---- 2. ε sweep, chained vs cold ----
    let sweep = epsilon_sweep(quick, seed);
    println!(
        "epsilon sweep: {} points, {} chained vs {} cold iterations, objective drift {:.2e}",
        sweep.resolves,
        sweep.iterations,
        sweep.iterations_cold.unwrap_or(0),
        sweep.objective_max_rel_diff.unwrap_or(0.0)
    );
    if sweep.objective_max_rel_diff.unwrap_or(0.0) > 1e-6 {
        failures.push("epsilon sweep: chained/cold objectives diverged beyond 1e-6".into());
    }
    scenarios.push(sweep);

    // ---- 3. Online ablation through the figure harness ----
    for s in online_ablation(quick, seed) {
        println!(
            "online ablation [{}]: {:.0} ms, {} LP iterations, {} online solves",
            s.name, s.wall_ms, s.iterations, s.resolves
        );
        scenarios.push(s);
    }

    // ---- Emit ----
    let body: Vec<String> = scenarios.iter().map(Scenario::json).collect();
    let json = format!(
        "{{\n  \"suite\": \"coflow warm-start perf\",\n  \"pr\": 5,\n  \"quick\": {quick},\n  \
         \"seed\": {seed},\n  \"scenarios\": [\n    {}\n  ]\n}}\n",
        body.join(",\n    ")
    );
    std::fs::write(&output, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {output}: {e}");
        std::process::exit(1);
    });
    println!("wrote {output}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}

/// Scenario 1: the bundled trace replayed online, with the shadow cold
/// probe measuring the same LP sequence from the all-slack basis.
fn online_fb2010(quick: bool) -> Scenario {
    let trace = Trace::parse(FB2010_SAMPLE).expect("bundled fixture parses");
    let opts = ReplayOptions {
        limit: if quick { 8 } else { 0 },
        // Half-second slots double the arrival epochs of the fixture,
        // which is exactly the regime warm starts are for.
        ms_per_slot: 500.0,
        ..Default::default()
    };
    let inst = trace.switch_instance(&opts).expect("fixture replays");
    let lp_opts = SolverOptions::default();

    // Pure warm trajectory, timed (no probes inflating the clock).
    let t0 = Instant::now();
    let _warm_run = online_heuristic_with(
        &inst,
        &Routing::FreePath,
        &lp_opts,
        &OnlineOptions {
            cold: false,
            shadow_cold: false,
        },
    )
    .expect("online replay solves");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Instrumented warm trajectory with the shadow cold probe — the
    // iteration counts compare warm vs cold on identical LPs.
    let run = online_heuristic_with(
        &inst,
        &Routing::FreePath,
        &lp_opts,
        &OnlineOptions {
            cold: false,
            shadow_cold: true,
        },
    )
    .expect("online replay solves");

    let drift = run
        .epoch_objectives
        .iter()
        .zip(run.cold_objectives.as_deref().unwrap_or(&[]))
        .map(|(w, c)| (w - c).abs() / (1.0 + c.abs()))
        .fold(0.0f64, f64::max);

    // Separate cold trajectory for the end-to-end wall-clock A/B.
    let t0 = Instant::now();
    let _cold_run = online_heuristic_with(
        &inst,
        &Routing::FreePath,
        &lp_opts,
        &OnlineOptions {
            cold: true,
            shadow_cold: false,
        },
    )
    .expect("cold online replay solves");
    let wall_ms_cold = t0.elapsed().as_secs_f64() * 1e3;

    Scenario {
        name: "online_fb2010_replay".into(),
        wall_ms,
        wall_ms_cold: Some(wall_ms_cold),
        iterations: run.lp_iterations as u64,
        iterations_cold: run.cold_iterations.map(|i| i as u64),
        resolves: run.resolves as u64,
        objective_max_rel_diff: Some(drift),
    }
}

/// Scenario 2: the interval LP across an ε ladder, basis-chained vs
/// cold per point.
fn epsilon_sweep(quick: bool, seed: u64) -> Scenario {
    let topo = topology::swan();
    let inst = build_instance(
        &topo,
        &WorkloadConfig {
            kind: WorkloadKind::Facebook,
            num_jobs: if quick { 4 } else { 8 },
            seed,
            slot_seconds: 50.0,
            mean_interarrival_slots: 1.0,
            weighted: true,
            demand_scale: 1.0,
        },
    )
    .expect("workload builds");
    let t = horizon(
        &inst,
        &Routing::FreePath,
        HorizonMode::Greedy { margin: 1.25 },
    )
    .expect("horizon");
    let opts = SolverOptions::default();
    let epsilons: Vec<f64> = if quick {
        vec![0.2, 0.5, 0.8]
    } else {
        (1..=10).map(|k| k as f64 / 10.0).collect()
    };

    let mut chain: Option<IntervalChain> = None;
    let mut warm_iters = 0u64;
    let mut cold_iters = 0u64;
    let mut drift = 0.0f64;
    let t0 = Instant::now();
    for &eps in &epsilons {
        let (rel, next) =
            solve_interval_chained(&inst, &Routing::FreePath, t, eps, &opts, chain.as_ref())
                .expect("interval LP solves");
        warm_iters += rel.lp.lp_iterations as u64;
        chain = Some(next);
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let mut cold_objectives = Vec::new();
    for &eps in &epsilons {
        let rel =
            solve_interval(&inst, &Routing::FreePath, t, eps, &opts).expect("interval LP solves");
        cold_iters += rel.lp.lp_iterations as u64;
        cold_objectives.push(rel.lp.objective);
    }
    let wall_ms_cold = t0.elapsed().as_secs_f64() * 1e3;
    // Re-run the chain to compare objectives pointwise (cheap at this
    // scale and keeps the two timed loops pure).
    let mut chain: Option<IntervalChain> = None;
    for (&eps, &cold_obj) in epsilons.iter().zip(&cold_objectives) {
        let (rel, next) =
            solve_interval_chained(&inst, &Routing::FreePath, t, eps, &opts, chain.as_ref())
                .expect("interval LP solves");
        drift = drift.max((rel.lp.objective - cold_obj).abs() / (1.0 + cold_obj.abs()));
        chain = Some(next);
    }

    Scenario {
        name: "epsilon_sweep".into(),
        wall_ms,
        wall_ms_cold: Some(wall_ms_cold),
        iterations: warm_iters,
        iterations_cold: Some(cold_iters),
        resolves: epsilons.len() as u64,
        objective_max_rel_diff: Some(drift),
    }
}

/// Scenario 3: the figure-harness online ablation, one record per
/// workload row, stats from the runner's per-point capture.
fn online_ablation(quick: bool, seed: u64) -> Vec<Scenario> {
    let topo = topology::swan();
    let cfg = HarnessConfig {
        jobs: if quick { 3 } else { 6 },
        seed,
        samples: 5,
        mean_interarrival: 1.0,
        verbose: false,
    };
    let spec = online_ablation_spec(&topo, &cfg);
    let fig = compute_figures(vec![spec], &SweepPool::new())
        .pop()
        .expect("one figure")
        .1;
    fig.rows
        .iter()
        .zip(&fig.stats)
        .map(|(row, stats): (_, &PointStats)| Scenario {
            name: format!("online_ablation_{}", row.label.to_lowercase()),
            wall_ms: stats.wall_ms,
            wall_ms_cold: None,
            iterations: stats.lp_iterations,
            iterations_cold: None,
            resolves: stats.resolves,
            objective_max_rel_diff: None,
        })
        .collect()
}
