//! Online ablation (the paper's §7 future-work direction): the
//! event-driven re-solving scheduler and the doubling-batch framework
//! against the clairvoyant offline pipeline, free-path model on SWAN.

use coflow_bench::runner::{assert_sound, run_online_ablation};
use coflow_bench::{print_figure, write_csv, HarnessConfig};
use coflow_netgraph::topology;

fn main() {
    let cfg = HarnessConfig::from_args(25);
    let fig = run_online_ablation(&topology::swan(), &cfg);
    assert_sound(&fig, 0, &[1, 2, 3]);
    print_figure(&fig);
    match write_csv(&fig, "ablation_online") {
        Ok(p) => println!("\ncsv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
