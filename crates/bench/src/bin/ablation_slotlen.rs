//! Slot-length ablation (§6.1 "Time Index"): shorter slots tighten the
//! time-indexed relaxation but grow the LP — the trade-off the paper
//! resolves by fixing 50-second slots.

use coflow_bench::runner::run_slot_length_ablation;
use coflow_bench::{print_figure, write_csv, HarnessConfig};
use coflow_netgraph::topology;

fn main() {
    let cfg = HarnessConfig::from_args(20);
    let fig = run_slot_length_ablation(&topology::swan(), &cfg);
    print_figure(&fig);
    match write_csv(&fig, "ablation_slotlen") {
        Ok(p) => println!("\ncsv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
