//! Figure 9: single-path model on SWAN — time-indexed LP + heuristic,
//! interval LP (ε=0.2) + heuristic, and Jahanjou et al.

use coflow_bench::runner::{assert_sound, run_single_path_figure};
use coflow_bench::{print_figure, write_csv, HarnessConfig};
use coflow_netgraph::topology;

fn main() {
    let cfg = HarnessConfig::from_args(40);
    let fig = run_single_path_figure(&topology::swan(), &cfg, 9);
    // Time-indexed algorithms respect the time-indexed bound; the
    // baseline must too (it is an actual schedule).
    assert_sound(&fig, 0, &[1, 4]);
    print_figure(&fig);
    match write_csv(&fig, "fig09_single_swan") {
        Ok(p) => println!("\ncsv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
