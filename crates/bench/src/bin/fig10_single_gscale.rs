//! Figure 10: single-path model on G-Scale — time-indexed LP +
//! heuristic, interval LP (ε=0.2) + heuristic, and Jahanjou et al.

use coflow_bench::runner::{assert_sound, run_single_path_figure};
use coflow_bench::{print_figure, write_csv, HarnessConfig};
use coflow_netgraph::topology;

fn main() {
    let cfg = HarnessConfig::from_args(30);
    let fig = run_single_path_figure(&topology::gscale(), &cfg, 10);
    assert_sound(&fig, 0, &[1, 4]);
    print_figure(&fig);
    match write_csv(&fig, "fig10_single_gscale") {
        Ok(p) => println!("\ncsv: {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}
