//! Figure 5: the anatomy of the Stretch algorithm, rendered as the
//! paper's four panels — (1) the LP schedule, (2) the same schedule
//! stretched by 1/λ, (3) slots emptied once each flow's demand is met,
//! (4) idle slots compacted away.
//!
//! ```sh
//! cargo run -p coflow-bench --release --bin fig05_stretch_anatomy -- --seed 3
//! ```

use coflow_bench::HarnessConfig;
use coflow_core::routing::Routing;
use coflow_core::timeidx::solve_time_indexed;
use coflow_lp::SolverOptions;
use coflow_netgraph::topology;
use coflow_workloads::{build_instance, WorkloadConfig, WorkloadKind};

fn main() {
    let cfg = HarnessConfig::from_args(4);
    let lambda = 0.5;
    let topo = topology::swan();
    let wl = WorkloadConfig {
        kind: WorkloadKind::Facebook,
        num_jobs: cfg.jobs,
        seed: cfg.seed,
        slot_seconds: 50.0,
        mean_interarrival_slots: cfg.mean_interarrival,
        weighted: true,
        demand_scale: 1.0,
    };
    let inst = build_instance(&topo, &wl).expect("valid instance");
    let t = coflow_core::horizon::horizon(
        &inst,
        &Routing::FreePath,
        coflow_core::horizon::HorizonMode::Greedy { margin: 1.25 },
    )
    .expect("horizon");
    let lp = solve_time_indexed(&inst, &Routing::FreePath, t, &SolverOptions::default())
        .expect("LP solves");

    println!(
        "Figure 5 anatomy: {} coflows on SWAN, λ = {lambda} (slot width below = fraction of demand moved)",
        inst.num_coflows()
    );

    // Panel 1: the raw LP schedule.
    let panel1 = lp.plan.discretize();
    render("1. LP schedule (fractions per slot)", &inst, &panel1);

    // Panel 2: stretched by 1/λ — volumes grow to σ/λ, not yet truncated.
    let panel2 = lp.plan.stretch(lambda).discretize();
    render("2. stretched by 1/λ (pre-truncation)", &inst, &panel2);

    // Panel 3: truncated at demand — trailing slots emptied.
    let panel3 = lp.plan.stretch(lambda).truncate(&inst).discretize();
    render("3. truncated once σ is met", &inst, &panel3);

    // Panel 4: idle-slot compaction.
    let mut panel4 = panel3.clone();
    coflow_core::compact::compact(&mut panel4, &inst);
    render("4. idle slots compacted", &inst, &panel4);

    let c3 = panel3.completions(&inst).expect("complete");
    let c4 = panel4.completions(&inst).expect("complete");
    println!(
        "\nweighted completion: stretched {} -> compacted {} (LP bound {:.1})",
        c3.weighted_total, c4.weighted_total, lp.objective
    );
}

/// Renders per-flow slot occupancy as a bar strip (one row per flow).
fn render(
    title: &str,
    inst: &coflow_core::model::CoflowInstance,
    sched: &coflow_core::schedule::Schedule,
) {
    println!("\n{title}");
    let horizon = sched.horizon() as usize;
    for (j, cf) in inst.coflows.iter().enumerate() {
        for (i, f) in cf.flows.iter().enumerate() {
            let mut cells = vec![' '; horizon + 1];
            for st in &sched.flows[j][i] {
                let frac = st.volume / f.demand;
                cells[st.slot as usize - 1] = if frac > 0.75 {
                    '█'
                } else if frac > 0.5 {
                    '▓'
                } else if frac > 0.25 {
                    '▒'
                } else if frac > 1e-9 {
                    '░'
                } else {
                    ' '
                };
            }
            let strip: String = cells.into_iter().collect();
            println!("  c{j:02}f{i} |{}|", strip.trim_end());
        }
    }
}
