//! Batch executor for scenario sweeps — re-exported from
//! [`coflow_runtime`].
//!
//! The pool started life here; PR 7 extracted it into the shared
//! `coflow-runtime` crate so the scheduler service can run tenants on
//! the same worker substrate. The `coflow_bench::SweepPool` path (and
//! its determinism contract: results land in input order, figure CSVs
//! are byte-identical for any worker count) is unchanged.

pub use coflow_runtime::{Runtime, SweepPool, TaskScope, THREADS_ENV};
