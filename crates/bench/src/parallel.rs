//! A work-stealing batch executor for scenario sweeps.
//!
//! The figure harnesses evaluate many independent *scenario points*
//! (workload × topology × parameter), each dominated by an LP solve.
//! [`SweepPool::run`] fans a batch of points out over a fixed set of
//! worker threads that pull the next unclaimed index from a shared
//! queue — idle workers "steal" whatever work remains, so one slow LP
//! (e.g. the FB workload) never serializes the rest of the sweep.
//!
//! Determinism: workers only *compute*; every point's inputs (including
//! its RNG seed, see [`crate::runner::point_seed`]) are fixed before the
//! batch starts, and results land in their input slot regardless of
//! which worker ran them or in what order. Running with 1 worker or 64
//! produces byte-identical output.
//!
//! Rayon would be the natural substrate here, but this build
//! environment has no crates.io access, so the pool is built directly
//! on `std::thread::scope` (~40 lines, no unsafe).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count (useful to pin
/// `COFLOW_SWEEP_THREADS=1` when profiling a single point).
pub const THREADS_ENV: &str = "COFLOW_SWEEP_THREADS";

/// A fixed-width pool that maps a batch of items through a function in
/// parallel, preserving input order in the output.
#[derive(Clone, Debug)]
pub struct SweepPool {
    workers: usize,
}

impl Default for SweepPool {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepPool {
    /// Pool sized to the machine (or [`THREADS_ENV`] when set).
    pub fn new() -> Self {
        let from_env = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1);
        let workers = from_env.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        SweepPool { workers }
    }

    /// Pool with an explicit worker count (`>= 1`).
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers >= 1, "a pool needs at least one worker");
        SweepPool { workers }
    }

    /// Number of worker threads `run` will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Computes `f(i, &items[i])` for every item, in parallel, returning
    /// results in input order. Panics in `f` propagate to the caller.
    pub fn run<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        if workers == 1 {
            return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
        }

        // Shared claim counter: each worker grabs the next unclaimed
        // index, computes it, and deposits the result in that index's
        // slot. Slots are independent mutexes, so there is no contention
        // on the write path beyond the atomic claim.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(i, &items[i]);
                    *slots[i].lock().expect("slot lock") = Some(value);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot lock")
                    .expect("every claimed slot is filled before scope exit")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let pool = SweepPool::with_workers(4);
        let items: Vec<usize> = (0..97).collect();
        let out = pool.run(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..97).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let items: Vec<u64> = (0..40).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9e3779b97f4a7c15) >> 7;
        let serial = SweepPool::with_workers(1).run(&items, f);
        let parallel = SweepPool::with_workers(8).run(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_batch() {
        let pool = SweepPool::with_workers(2);
        let out: Vec<u32> = pool.run(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items() {
        let pool = SweepPool::with_workers(16);
        let out = pool.run(&[1, 2, 3], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }
}
