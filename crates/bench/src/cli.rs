//! Minimal argument parsing shared by the figure binaries.

/// Common harness options (parsed from `std::env::args`).
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Jobs per workload (paper: 200). Default depends on the figure.
    pub jobs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// λ samples for the Stretch sweeps (paper: 20).
    pub samples: usize,
    /// Mean inter-arrival in slots.
    pub mean_interarrival: f64,
    /// Print per-instance progress.
    pub verbose: bool,
}

impl HarnessConfig {
    /// Parses `--jobs N`, `--seed S`, `--samples K`, `--paper-scale`,
    /// `--interarrival X`, `--verbose` with the given default job count.
    ///
    /// Unknown flags abort with a usage message — figures should not run
    /// with silently-ignored options.
    pub fn from_args(default_jobs: usize) -> HarnessConfig {
        let mut cfg = HarnessConfig {
            jobs: default_jobs,
            seed: 1,
            samples: 20,
            mean_interarrival: 1.0,
            verbose: false,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--jobs" => {
                    cfg.jobs = take(&args, &mut i, "--jobs");
                }
                "--seed" => {
                    cfg.seed = take(&args, &mut i, "--seed");
                }
                "--samples" => {
                    cfg.samples = take(&args, &mut i, "--samples");
                }
                "--interarrival" => {
                    cfg.mean_interarrival = take(&args, &mut i, "--interarrival");
                }
                "--paper-scale" => {
                    cfg.jobs = 200;
                }
                "--verbose" => {
                    cfg.verbose = true;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "options: --jobs N  --seed S  --samples K  --interarrival X  --paper-scale  --verbose"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown option {other}; see --help");
                    std::process::exit(2);
                }
            }
            i += 1;
        }
        cfg
    }
}

fn take<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> T {
    *i += 1;
    args.get(*i)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
}
