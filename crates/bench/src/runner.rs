//! Experiment orchestration: one *scenario-sweep spec* per figure
//! family, executed by the work-stealing [`SweepPool`].
//!
//! Each figure is described as a [`FigureSpec`]: static metadata (title,
//! legend) plus a list of independent [`PointSpec`]s — one per row
//! (workload, ε value, slot length, …). [`compute_figures`] flattens
//! every point of every spec into one batch and runs them concurrently;
//! a point's RNG is seeded from `(base seed, figure stem, point index)`
//! via [`point_seed`], never from execution order, so sweeps are
//! deterministic for a given `--seed` no matter how many workers run
//! them (byte-identical CSVs, run to run).
//!
//! Comparator series are declared as **registry names** plus a
//! [`Metric`] read off the resulting [`SolveOutcome`] — no per-figure
//! dispatch or validation code. [`run_series`] runs each distinct
//! algorithm once through one shared [`SolveContext`], so a point that
//! plots five algorithms solves each LP relaxation once.
//!
//! The `run_*` functions are thin wrappers computing a single figure;
//! `all_figures` passes every spec to one [`compute_figures`] call so
//! the pool can interleave points across figures.

use crate::cli::HarnessConfig;
use crate::parallel::SweepPool;
use coflow_baselines::registry::{self, AlgoParams};
use coflow_core::horizon::HorizonMode;
use coflow_core::model::CoflowInstance;
use coflow_core::routing::{self, Routing};
use coflow_core::solve::{SolveContext, SolveOutcome};
use coflow_netgraph::topology::Topology;
use coflow_workloads::scenarios::{build_scenario_instance, Scenario, ScenarioConfig};
use coflow_workloads::trace::{ReplayOptions, Trace, FB2010_SAMPLE};
use coflow_workloads::{build_instance, WorkloadConfig, WorkloadKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// One series value (NaN renders as "-").
pub type SeriesValue = f64;

/// Performance counters of one scenario point: wall-clock (filled in by
/// [`compute_figures`] around the point's closure) plus the LP effort
/// its solves reported. Kept out of the CSVs — figure values stay
/// deterministic across runs and worker counts — and consumed by the
/// `perf_report` harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct PointStats {
    /// Wall-clock milliseconds the point took (measurement, not data —
    /// varies run to run).
    pub wall_ms: f64,
    /// Total simplex iterations across every LP the point solved (only
    /// solves that report iterations; LP-free algorithms contribute 0).
    pub lp_iterations: u64,
    /// LP re-solves/batches the online frameworks performed.
    pub resolves: u64,
}

/// One row of a figure (a workload, or an ε value for Figure 8).
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// Row label.
    pub label: String,
    /// One value per series, aligned with `FigureResult::series_names`.
    pub values: Vec<SeriesValue>,
}

/// A fully-computed figure.
#[derive(Clone, Debug)]
pub struct FigureResult {
    /// Figure title (matches the paper's caption).
    pub title: String,
    /// Free-form notes (instance sizes etc.).
    pub notes: String,
    /// Legend entries, matching the paper's series names.
    pub series_names: Vec<String>,
    /// Rows in presentation order.
    pub rows: Vec<FigureRow>,
    /// Per-row performance counters, aligned with `rows`. Not written
    /// to the CSVs (wall-clock is non-deterministic); `perf_report`
    /// reads them.
    pub stats: Vec<PointStats>,
}

/// What one scenario point produces: its series values, plus an
/// optional sentence appended to the figure's notes (in point order).
#[derive(Clone, Debug)]
pub struct PointOutcome {
    /// One value per series.
    pub values: Vec<SeriesValue>,
    /// Extra note text (e.g. online re-solve counts).
    pub note: Option<String>,
    /// Performance counters (wall-clock is overwritten by
    /// [`compute_figures`]).
    pub stats: PointStats,
}

impl From<Vec<SeriesValue>> for PointOutcome {
    fn from(values: Vec<SeriesValue>) -> Self {
        PointOutcome {
            values,
            note: None,
            stats: PointStats::default(),
        }
    }
}

/// Wraps series values into a [`PointOutcome`] whose stats aggregate
/// the LP effort of the solves behind them.
pub fn point_outcome(
    values: Vec<SeriesValue>,
    outcomes: &[(&'static str, SolveOutcome)],
) -> PointOutcome {
    PointOutcome {
        values,
        note: None,
        stats: stats_of(outcomes),
    }
}

/// Sums LP iterations and online solve counts over a point's outcomes.
pub fn stats_of(outcomes: &[(&'static str, SolveOutcome)]) -> PointStats {
    let mut stats = PointStats::default();
    for (_, out) in outcomes {
        stats.lp_iterations += out.lp_iterations.unwrap_or(0) as u64;
        for key in ["resolves", "batches"] {
            if let Some(v) = out.aux(key) {
                stats.resolves += v as u64;
            }
        }
    }
    stats
}

/// A point's computation: pure function of its captured scenario inputs
/// and the per-point seeded RNG it receives.
pub type PointFn<'a> = Box<dyn Fn(&mut StdRng) -> PointOutcome + Send + Sync + 'a>;

/// One independently-computable row of a figure.
pub struct PointSpec<'a> {
    /// Row label (workload name, ε value, …).
    pub label: String,
    /// RNG seed for this point (derive with [`point_seed`]).
    pub seed: u64,
    /// The computation.
    pub compute: PointFn<'a>,
}

/// A figure, described but not yet computed.
pub struct FigureSpec<'a> {
    /// CSV file stem (`fig06_lambda_swan`, …).
    pub stem: &'static str,
    /// Figure title (matches the paper's caption).
    pub title: String,
    /// Free-form notes (instance sizes etc.).
    pub notes: String,
    /// Legend entries.
    pub series_names: Vec<String>,
    /// Rows in presentation order.
    pub points: Vec<PointSpec<'a>>,
}

/// Derives a point's RNG seed from the harness base seed, the figure
/// stem, and the point's index — *not* from scheduling, so parallel
/// sweeps stay deterministic (FNV-1a over the stem, mixed with index
/// and base).
pub fn point_seed(base: u64, stem: &str, index: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in stem.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= index as u64;
    h = h.wrapping_mul(0x1000_0000_01b3);
    h ^ base.rotate_left(17)
}

/// Runs every point of every spec through `pool` as one flattened batch
/// and reassembles the figures in spec order.
pub fn compute_figures<'a>(
    specs: Vec<FigureSpec<'a>>,
    pool: &SweepPool,
) -> Vec<(&'static str, FigureResult)> {
    let tasks: Vec<(usize, usize)> = specs
        .iter()
        .enumerate()
        .flat_map(|(fi, s)| (0..s.points.len()).map(move |pi| (fi, pi)))
        .collect();
    let outcomes: Vec<PointOutcome> = pool.run(&tasks, |_, &(fi, pi)| {
        let point = &specs[fi].points[pi];
        let mut rng = StdRng::seed_from_u64(point.seed);
        let t0 = std::time::Instant::now();
        let mut out = (point.compute)(&mut rng);
        out.stats.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        out
    });

    // Tasks were flattened in (figure, point) order, so grouping back by
    // figure preserves each figure's row order.
    let mut per_fig: Vec<Vec<PointOutcome>> = specs.iter().map(|_| Vec::new()).collect();
    for (&(fi, _), out) in tasks.iter().zip(outcomes) {
        per_fig[fi].push(out);
    }
    specs
        .into_iter()
        .zip(per_fig)
        .map(|(spec, outs)| {
            let rows = spec
                .points
                .iter()
                .zip(&outs)
                .map(|(p, o)| FigureRow {
                    label: p.label.clone(),
                    values: o.values.clone(),
                })
                .collect();
            let mut notes = spec.notes;
            for o in &outs {
                if let Some(n) = &o.note {
                    notes.push(' ');
                    notes.push_str(n);
                }
            }
            let stats = outs.iter().map(|o| o.stats).collect();
            (
                spec.stem,
                FigureResult {
                    title: spec.title,
                    notes,
                    series_names: spec.series_names,
                    rows,
                    stats,
                },
            )
        })
        .collect()
}

fn single_figure(spec: FigureSpec<'_>) -> FigureResult {
    compute_figures(vec![spec], &SweepPool::new())
        .pop()
        .expect("one spec in, one figure out")
        .1
}

const HORIZON: HorizonMode = HorizonMode::Greedy { margin: 1.25 };

// ---------------------------------------------------------------------
// Registry-driven comparator series
// ---------------------------------------------------------------------

/// What a series reads off a [`SolveOutcome`].
#[derive(Clone, Copy, Debug)]
pub enum Metric {
    /// The algorithm's own LP lower bound.
    LowerBound,
    /// Weighted completion time of the schedule.
    Cost,
    /// Unweighted total completion time.
    UnweightedCost,
    /// Best weighted cost over the λ sweep ("Best λ").
    SweepBest,
    /// Mean weighted cost over the λ sweep ("Average λ").
    SweepAverage,
    /// Best unweighted cost over the λ sweep.
    SweepBestUnweighted,
    /// Mean unweighted cost over the λ sweep.
    SweepAverageUnweighted,
    /// Constraint rows of the LP the algorithm solved.
    LpRows,
    /// Variables of the LP the algorithm solved.
    LpCols,
    /// Simplex iterations of the LP solve.
    LpIterations,
    /// An algorithm-specific extra, by key (e.g. derand's `best_cost`).
    Aux(&'static str),
}

/// One comparator series: a registry name, the metric to read off its
/// outcome, and an optional scale (slot-length rescaling).
#[derive(Clone, Copy, Debug)]
pub struct SeriesDef {
    /// Legend entry (matches the paper's series names).
    pub label: &'static str,
    /// Registry name of the algorithm producing this series.
    pub algo: &'static str,
    /// What to read off the outcome.
    pub metric: Metric,
    /// Multiplier applied to the extracted value (default 1.0).
    pub scale: f64,
}

impl SeriesDef {
    /// A series with no rescaling.
    pub const fn new(label: &'static str, algo: &'static str, metric: Metric) -> SeriesDef {
        SeriesDef {
            label,
            algo,
            metric,
            scale: 1.0,
        }
    }
}

/// Reads one metric off an outcome; panics (figure points are
/// infallible by contract) when the algorithm cannot produce it.
pub fn extract(out: &SolveOutcome, s: &SeriesDef) -> SeriesValue {
    let sweep = |what: &str| {
        out.sweep
            .as_ref()
            .unwrap_or_else(|| panic!("{}: no λ sweep for {what}", s.algo))
    };
    let value = match s.metric {
        Metric::LowerBound => out
            .lower_bound
            .unwrap_or_else(|| panic!("{}: no LP lower bound", s.algo)),
        Metric::Cost => out.cost,
        Metric::UnweightedCost => out.unweighted_cost,
        Metric::SweepBest => sweep("best").best().weighted_cost,
        Metric::SweepAverage => sweep("average").average(),
        Metric::SweepBestUnweighted => sweep("best")
            .samples
            .iter()
            .map(|x| x.unweighted_cost)
            .fold(f64::INFINITY, f64::min),
        Metric::SweepAverageUnweighted => sweep("average").average_unweighted(),
        Metric::LpRows => {
            out.lp_size
                .unwrap_or_else(|| panic!("{}: no LP", s.algo))
                .rows as f64
        }
        Metric::LpCols => {
            out.lp_size
                .unwrap_or_else(|| panic!("{}: no LP", s.algo))
                .cols as f64
        }
        Metric::LpIterations => out
            .lp_iterations
            .unwrap_or_else(|| panic!("{}: no LP", s.algo)) as f64,
        Metric::Aux(key) => out
            .aux(key)
            .unwrap_or_else(|| panic!("{}: no aux value {key:?}", s.algo)),
    };
    s.scale * value
}

/// Runs every *distinct* algorithm referenced by `series` once, through
/// the given shared context (LP relaxations and the horizon are solved
/// once per point, not once per series), then reads the series values
/// off the outcomes. Also returns the outcomes so callers can build
/// notes from algorithm extras.
pub fn run_series_with(
    inst: &CoflowInstance,
    routing: &Routing,
    series: &[SeriesDef],
    params: &AlgoParams,
    ctx: &mut SolveContext,
) -> (Vec<SeriesValue>, Vec<(&'static str, SolveOutcome)>) {
    let mut outcomes: Vec<(&'static str, SolveOutcome)> = Vec::new();
    for s in series {
        if outcomes.iter().any(|(n, _)| *n == s.algo) {
            continue;
        }
        let solver = registry::build(s.algo, params)
            .unwrap_or_else(|| panic!("algorithm {:?} is not registered", s.algo));
        let out = solver
            .solve(inst, routing, ctx)
            .unwrap_or_else(|e| panic!("{}: {e}", s.algo));
        outcomes.push((s.algo, out));
    }
    let values = series
        .iter()
        .map(|s| {
            let (_, out) = outcomes
                .iter()
                .find(|(n, _)| *n == s.algo)
                .expect("ran above");
            extract(out, s)
        })
        .collect();
    (values, outcomes)
}

/// [`run_series_with`] under a fresh default context (greedy horizon,
/// margin 1.25 — the harness-wide setting).
pub fn run_series(
    inst: &CoflowInstance,
    routing: &Routing,
    series: &[SeriesDef],
    params: &AlgoParams,
) -> (Vec<SeriesValue>, Vec<(&'static str, SolveOutcome)>) {
    let mut ctx = SolveContext::new().with_horizon_mode(HORIZON);
    run_series_with(inst, routing, series, params, &mut ctx)
}

fn labels(series: &[SeriesDef]) -> Vec<String> {
    series.iter().map(|s| s.label.to_string()).collect()
}

fn workload_cfg(kind: WorkloadKind, cfg: &HarnessConfig, weighted: bool) -> WorkloadConfig {
    WorkloadConfig {
        kind,
        num_jobs: cfg.jobs,
        seed: cfg.seed,
        slot_seconds: 50.0,
        mean_interarrival_slots: cfg.mean_interarrival,
        weighted,
        demand_scale: 1.0,
    }
}

fn instance_for(
    topo: &Topology,
    kind: WorkloadKind,
    cfg: &HarnessConfig,
    weighted: bool,
) -> CoflowInstance {
    build_instance(topo, &workload_cfg(kind, cfg, weighted))
        .expect("workload placement on a WAN topology always validates")
}

/// How a workload-sweep figure routes its flows.
#[derive(Clone, Copy, Debug)]
enum FigureRouting {
    /// Free-path model.
    Free,
    /// Random shortest paths drawn from the point's seeded RNG.
    RandomShortest,
}

/// Shared shape of the workload-sweep figures (6, 7, 9–12, ordering
/// ablation): one point per [`WorkloadKind`], comparator series by
/// registry name.
fn workload_sweep_points<'a>(
    stem: &'static str,
    topo: &'a Topology,
    cfg: &'a HarnessConfig,
    weighted: bool,
    fig_routing: FigureRouting,
    series: &'static [SeriesDef],
    tag: &'static str,
) -> Vec<PointSpec<'a>> {
    WorkloadKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| PointSpec {
            label: kind.name().to_string(),
            seed: point_seed(cfg.seed, stem, i),
            compute: Box::new(move |rng: &mut StdRng| {
                if cfg.verbose {
                    eprintln!("[{tag}] {} …", kind.name());
                }
                let inst = instance_for(topo, kind, cfg, weighted);
                let r = match fig_routing {
                    FigureRouting::Free => Routing::FreePath,
                    FigureRouting::RandomShortest => {
                        routing::random_shortest_paths(&inst, rng).expect("paths exist")
                    }
                };
                let params = AlgoParams {
                    samples: cfg.samples,
                    seed: cfg.seed,
                    ..Default::default()
                };
                let (values, outcomes) = run_series(&inst, &r, series, &params);
                point_outcome(values, &outcomes)
            }),
        })
        .collect()
}

/// Figures 6 and 7: free-path model, weighted. Series: LP lower bound,
/// Heuristic(λ=1.0), Best λ, Average λ.
pub fn lambda_figure_spec<'a>(
    topo: &'a Topology,
    cfg: &'a HarnessConfig,
    fig_no: u8,
) -> FigureSpec<'a> {
    const SERIES: &[SeriesDef] = &[
        SeriesDef::new("LP(lower bound)", "heuristic", Metric::LowerBound),
        SeriesDef::new("Heuristic(λ=1.0)", "heuristic", Metric::Cost),
        SeriesDef::new("Best λ", "stretch", Metric::SweepBest),
        SeriesDef::new("Average λ", "stretch", Metric::SweepAverage),
    ];
    let (stem, tag): (&'static str, &'static str) = match fig_no {
        6 => ("fig06_lambda_swan", "fig6"),
        7 => ("fig07_lambda_gscale", "fig7"),
        other => unreachable!("lambda figures are 6 and 7, not {other}"),
    };
    FigureSpec {
        stem,
        title: format!(
            "Figure {fig_no}: Free path model on {} — weighted completion time (less is better)",
            topo.name
        ),
        notes: format!(
            "{} jobs/workload, seed {}, {} lambda samples, 50 s slots",
            cfg.jobs, cfg.seed, cfg.samples
        ),
        series_names: labels(SERIES),
        points: workload_sweep_points(stem, topo, cfg, true, FigureRouting::Free, SERIES, tag),
    }
}

/// See [`lambda_figure_spec`].
pub fn run_lambda_figure(topo: &Topology, cfg: &HarnessConfig, fig_no: u8) -> FigureResult {
    single_figure(lambda_figure_spec(topo, cfg, fig_no))
}

/// Figure 8: effect of the interval parameter ε (free path, FB on SWAN).
/// Series: interval LP lower bound and its λ=1 heuristic, per ε.
pub fn epsilon_figure_spec<'a>(topo: &'a Topology, cfg: &'a HarnessConfig) -> FigureSpec<'a> {
    const SERIES: &[SeriesDef] = &[
        SeriesDef::new(
            "Time interval LP(lower bound)",
            "interval-heuristic",
            Metric::LowerBound,
        ),
        SeriesDef::new("heuristic(λ=1.0)", "interval-heuristic", Metric::Cost),
    ];
    let stem = "fig08_epsilon";
    // All ε points share one instance and horizon; compute them once here
    // and hand the points an `Arc` so the sweep only pays the LP solves.
    let inst = Arc::new(instance_for(topo, WorkloadKind::Facebook, cfg, true));
    let t = coflow_core::horizon::horizon(&inst, &Routing::FreePath, HORIZON).expect("horizon");
    let points = (1..=10)
        .map(|k| {
            let epsilon = k as f64 / 10.0;
            let inst = Arc::clone(&inst);
            PointSpec {
                label: format!("ε={epsilon:.1}"),
                seed: point_seed(cfg.seed, stem, k),
                compute: Box::new(move |_rng: &mut StdRng| {
                    if cfg.verbose {
                        eprintln!("[fig8] ε = {epsilon} …");
                    }
                    let params = AlgoParams {
                        epsilon,
                        ..Default::default()
                    };
                    let mut ctx = SolveContext::new().with_horizon_mode(HorizonMode::Fixed(t));
                    let (values, outcomes) =
                        run_series_with(&inst, &Routing::FreePath, SERIES, &params, &mut ctx);
                    point_outcome(values, &outcomes)
                }),
            }
        })
        .collect();
    FigureSpec {
        stem,
        title: format!(
            "Figure 8: Free path model on {} (workload FB) — interval parameter ε sweep",
            topo.name
        ),
        notes: format!("{} jobs, seed {}, 50 s slots", cfg.jobs, cfg.seed),
        series_names: labels(SERIES),
        points,
    }
}

/// See [`epsilon_figure_spec`].
pub fn run_epsilon_figure(topo: &Topology, cfg: &HarnessConfig) -> FigureResult {
    single_figure(epsilon_figure_spec(topo, cfg))
}

/// Figures 9 and 10: single-path model with random shortest paths.
/// Series: time-indexed LP + heuristic, interval LP (ε=0.2) + heuristic,
/// Jahanjou et al. (ε=0.5436, strict α-point batches).
pub fn single_path_figure_spec<'a>(
    topo: &'a Topology,
    cfg: &'a HarnessConfig,
    fig_no: u8,
) -> FigureSpec<'a> {
    const SERIES: &[SeriesDef] = &[
        SeriesDef::new(
            "Time indexed LP(lower bound)",
            "heuristic",
            Metric::LowerBound,
        ),
        SeriesDef::new("heuristic(λ=1.0)", "heuristic", Metric::Cost),
        SeriesDef::new(
            "Time interval LP(lower bound, ε=0.2)",
            "interval-heuristic",
            Metric::LowerBound,
        ),
        SeriesDef::new(
            "interval heuristic(λ=1.0)",
            "interval-heuristic",
            Metric::Cost,
        ),
        SeriesDef::new("Jahanjou et al.", "jahanjou", Metric::Cost),
    ];
    let (stem, tag): (&'static str, &'static str) = match fig_no {
        9 => ("fig09_single_swan", "fig9"),
        10 => ("fig10_single_gscale", "fig10"),
        other => unreachable!("single-path figures are 9 and 10, not {other}"),
    };
    FigureSpec {
        stem,
        title: format!(
            "Figure {fig_no}: Single path model on {} — weighted completion time (less is better)",
            topo.name
        ),
        notes: format!(
            "{} jobs/workload, seed {}, random shortest paths, 50 s slots",
            cfg.jobs, cfg.seed
        ),
        series_names: labels(SERIES),
        points: workload_sweep_points(
            stem,
            topo,
            cfg,
            true,
            FigureRouting::RandomShortest,
            SERIES,
            tag,
        ),
    }
}

/// See [`single_path_figure_spec`].
pub fn run_single_path_figure(topo: &Topology, cfg: &HarnessConfig, fig_no: u8) -> FigureResult {
    single_figure(single_path_figure_spec(topo, cfg, fig_no))
}

/// Figures 11 and 12: free-path model, unweighted (all weights 1), with
/// Terra. Values are *total* completion times.
pub fn free_unweighted_figure_spec<'a>(
    topo: &'a Topology,
    cfg: &'a HarnessConfig,
    fig_no: u8,
) -> FigureSpec<'a> {
    // Weights are all 1, so the heuristic's LP bound is the total-CCT
    // bound and every series reads the unweighted cost.
    const SERIES: &[SeriesDef] = &[
        SeriesDef::new(
            "Time indexed LP(lower bound)",
            "heuristic",
            Metric::LowerBound,
        ),
        SeriesDef::new("heuristic(λ=1.0)", "heuristic", Metric::UnweightedCost),
        SeriesDef::new("Best λ", "stretch", Metric::SweepBestUnweighted),
        SeriesDef::new("Average λ", "stretch", Metric::SweepAverageUnweighted),
        SeriesDef::new("Terra", "terra", Metric::UnweightedCost),
    ];
    let (stem, tag): (&'static str, &'static str) = match fig_no {
        11 => ("fig11_free_unweighted_swan", "fig11"),
        12 => ("fig12_free_unweighted_gscale", "fig12"),
        other => unreachable!("free-unweighted figures are 11 and 12, not {other}"),
    };
    FigureSpec {
        stem,
        title: format!(
            "Figure {fig_no}: Free path model with no weight on {} — total completion time (less is better)",
            topo.name
        ),
        notes: format!(
            "{} jobs/workload, seed {}, {} lambda samples, unit weights",
            cfg.jobs, cfg.seed, cfg.samples
        ),
        series_names: labels(SERIES),
        points: workload_sweep_points(stem, topo, cfg, false, FigureRouting::Free, SERIES, tag),
    }
}

/// See [`free_unweighted_figure_spec`].
pub fn run_free_unweighted_figure(
    topo: &Topology,
    cfg: &HarnessConfig,
    fig_no: u8,
) -> FigureResult {
    single_figure(free_unweighted_figure_spec(topo, cfg, fig_no))
}

/// Slot-length ablation: §6.1 "Time Index" — "if the length of a time
/// slot is shorter, we get more accurate answers, but need to solve a
/// larger LP". Rows are slot lengths in seconds; series report the LP
/// size, the bound, and the heuristic cost (all costs rescaled to
/// 50-second-slot units so rows are comparable).
pub fn slot_length_ablation_spec<'a>(topo: &'a Topology, cfg: &'a HarnessConfig) -> FigureSpec<'a> {
    let stem = "ablation_slotlen";
    let points = [200.0, 100.0, 50.0, 25.0]
        .into_iter()
        .enumerate()
        .map(|(i, slot_seconds): (usize, f64)| PointSpec {
            label: format!("{slot_seconds:.0} s"),
            seed: point_seed(cfg.seed, stem, i),
            compute: Box::new(move |_rng: &mut StdRng| {
                if cfg.verbose {
                    eprintln!("[slotlen] {slot_seconds} s …");
                }
                let wl = WorkloadConfig {
                    kind: WorkloadKind::Facebook,
                    num_jobs: cfg.jobs,
                    seed: cfg.seed,
                    slot_seconds,
                    // Keep *wall-clock* arrivals fixed: the mean interarrival in
                    // slots scales inversely with the slot length.
                    mean_interarrival_slots: cfg.mean_interarrival * 50.0 / slot_seconds,
                    weighted: true,
                    demand_scale: 1.0,
                };
                let inst = build_instance(topo, &wl).expect("workload placement validates");
                // Rescale slot-unit costs to the common 50 s yardstick.
                let to_50s = slot_seconds / 50.0;
                let series = [
                    SeriesDef {
                        scale: to_50s,
                        ..SeriesDef::new(
                            "LP(lower bound, 50s units)",
                            "heuristic",
                            Metric::LowerBound,
                        )
                    },
                    SeriesDef {
                        scale: to_50s,
                        ..SeriesDef::new("heuristic(λ=1.0, 50s units)", "heuristic", Metric::Cost)
                    },
                    SeriesDef::new("LP rows", "heuristic", Metric::LpRows),
                    SeriesDef::new("LP cols", "heuristic", Metric::LpCols),
                    SeriesDef::new("simplex iterations", "heuristic", Metric::LpIterations),
                ];
                let (values, outcomes) =
                    run_series(&inst, &Routing::FreePath, &series, &AlgoParams::default());
                point_outcome(values, &outcomes)
            }),
        })
        .collect();
    FigureSpec {
        stem,
        title: format!(
            "Slot-length ablation: free path, FB on {} — accuracy vs LP size (§6.1 Time Index)",
            topo.name
        ),
        notes: format!(
            "{} jobs, seed {}; costs rescaled to 50 s-slot units, so smaller slots \
             should tighten the bound while rows/cols grow",
            cfg.jobs, cfg.seed
        ),
        series_names: vec![
            "LP(lower bound, 50s units)".into(),
            "heuristic(λ=1.0, 50s units)".into(),
            "LP rows".into(),
            "LP cols".into(),
            "simplex iterations".into(),
        ],
        points,
    }
}

/// See [`slot_length_ablation_spec`].
pub fn run_slot_length_ablation(topo: &Topology, cfg: &HarnessConfig) -> FigureResult {
    single_figure(slot_length_ablation_spec(topo, cfg))
}

/// Ordering ablation (not a paper figure): how far do LP-free
/// combinatorial orderings get on the single-path model? Series: the
/// time-indexed LP bound, the λ=1 heuristic, the exact-best-λ pure
/// Stretch (derandomized), the primal-dual/BSSI ordering, and weighted
/// SJF.
pub fn ordering_ablation_spec<'a>(topo: &'a Topology, cfg: &'a HarnessConfig) -> FigureSpec<'a> {
    const SERIES: &[SeriesDef] = &[
        SeriesDef::new(
            "Time indexed LP(lower bound)",
            "heuristic",
            Metric::LowerBound,
        ),
        SeriesDef::new("heuristic(λ=1.0)", "heuristic", Metric::Cost),
        SeriesDef::new("Derandomized best λ", "derand", Metric::Aux("best_cost")),
        SeriesDef::new("Primal-dual (BSSI)", "primal-dual", Metric::Cost),
        SeriesDef::new("Weighted SJF", "weighted-sjf", Metric::Cost),
    ];
    let stem = "ablation_ordering";
    FigureSpec {
        stem,
        title: format!(
            "Ordering ablation: single path on {} — LP methods vs LP-free orderings (less is better)",
            topo.name
        ),
        notes: format!(
            "{} jobs/workload, seed {}, random shortest paths; derand = exact best-λ \
             pure Stretch (no compaction); primal-dual = BSSI on the edge-machine open shop",
            cfg.jobs, cfg.seed
        ),
        series_names: labels(SERIES),
        points: workload_sweep_points(
            stem,
            topo,
            cfg,
            true,
            FigureRouting::RandomShortest,
            SERIES,
            "ordering",
        ),
    }
}

/// See [`ordering_ablation_spec`].
pub fn run_ordering_ablation(topo: &Topology, cfg: &HarnessConfig) -> FigureResult {
    single_figure(ordering_ablation_spec(topo, cfg))
}

/// Online ablation (the paper's §7 direction): offline bound and
/// heuristic vs the event-driven re-solver and the doubling-batch
/// framework, free-path model with Poisson releases.
pub fn online_ablation_spec<'a>(topo: &'a Topology, cfg: &'a HarnessConfig) -> FigureSpec<'a> {
    const SERIES: &[SeriesDef] = &[
        SeriesDef::new("Offline LP(lower bound)", "heuristic", Metric::LowerBound),
        SeriesDef::new("Offline heuristic(λ=1.0)", "heuristic", Metric::Cost),
        SeriesDef::new("Online re-solving", "online", Metric::Cost),
        SeriesDef::new("Doubling batches", "batch-online", Metric::Cost),
    ];
    let stem = "ablation_online";
    let points = WorkloadKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| PointSpec {
            label: kind.name().to_string(),
            seed: point_seed(cfg.seed, stem, i),
            compute: Box::new(move |_rng: &mut StdRng| {
                if cfg.verbose {
                    eprintln!("[online] {} …", kind.name());
                }
                let inst = instance_for(topo, kind, cfg, true);
                let (values, outcomes) =
                    run_series(&inst, &Routing::FreePath, SERIES, &AlgoParams::default());
                let stat = |name: &str, key: &str| {
                    outcomes
                        .iter()
                        .find(|(n, _)| *n == name)
                        .and_then(|(_, o)| o.aux(key))
                        .expect("online solvers report their solve counts")
                };
                let note = Some(format!(
                    "{}: {} re-solves vs {} batches.",
                    kind.name(),
                    stat("online", "resolves"),
                    stat("batch-online", "batches"),
                ));
                PointOutcome {
                    values,
                    note,
                    stats: stats_of(&outcomes),
                }
            }),
        })
        .collect();
    FigureSpec {
        stem,
        title: format!(
            "Online ablation: free path on {} — clairvoyant offline vs online frameworks (less is better)",
            topo.name
        ),
        notes: format!(
            "{} jobs/workload, seed {}, Poisson releases (mean interarrival {} slots). \
             Offline knows all arrivals; online algorithms learn them at release.",
            cfg.jobs, cfg.seed, cfg.mean_interarrival
        ),
        series_names: labels(SERIES),
        points,
    }
}

/// See [`online_ablation_spec`].
pub fn run_online_ablation(topo: &Topology, cfg: &HarnessConfig) -> FigureResult {
    single_figure(online_ablation_spec(topo, cfg))
}

/// Scenario-library sweep: one row per [`Scenario`] (incast, broadcast,
/// multi-stage shuffle, ring all-reduce, hot-spot skew), free-path
/// model, weighted. The shapes are scaled so every row schedules about
/// `cfg.jobs` coflows regardless of how many coflows a scenario emits
/// per job (shuffle emits one per stage).
pub fn scenario_library_spec<'a>(topo: &'a Topology, cfg: &'a HarnessConfig) -> FigureSpec<'a> {
    const SERIES: &[SeriesDef] = &[
        SeriesDef::new("LP(lower bound)", "heuristic", Metric::LowerBound),
        SeriesDef::new("Heuristic(λ=1.0)", "heuristic", Metric::Cost),
        SeriesDef::new("Best λ", "stretch", Metric::SweepBest),
        SeriesDef::new("Weighted SJF", "weighted-sjf", Metric::Cost),
    ];
    let stem = "scen_library";
    // Figure-scale shapes: small fan so rows stay LP-comparable to the
    // workload figures (the library defaults target bigger fabrics).
    let scenarios: [Scenario; 5] = [
        Scenario::Incast { fanin: 4 },
        Scenario::Broadcast { fanout: 4 },
        Scenario::Shuffle {
            mappers: 3,
            reducers: 3,
            stages: 2,
        },
        Scenario::AllReduce { workers: 4 },
        Scenario::HotSpot {
            width: 4,
            hot_fraction: 0.8,
        },
    ];
    let points = scenarios
        .into_iter()
        .enumerate()
        .map(|(i, scenario)| PointSpec {
            label: scenario.name().to_string(),
            seed: point_seed(cfg.seed, stem, i),
            compute: Box::new(move |_rng: &mut StdRng| {
                if cfg.verbose {
                    eprintln!("[scen] {} …", scenario.name());
                }
                let coflows_per_job = match scenario {
                    Scenario::Shuffle { stages, .. } => stages.max(1),
                    _ => 1,
                };
                let scen_cfg = ScenarioConfig {
                    scenario,
                    num_jobs: (cfg.jobs / coflows_per_job).max(2),
                    seed: cfg.seed,
                    mean_interarrival_slots: cfg.mean_interarrival,
                    weighted: true,
                    ..Default::default()
                };
                let inst =
                    build_scenario_instance(topo, &scen_cfg).expect("scenario placement validates");
                let params = AlgoParams {
                    samples: cfg.samples,
                    seed: cfg.seed,
                    ..Default::default()
                };
                let (values, outcomes) = run_series(&inst, &Routing::FreePath, SERIES, &params);
                point_outcome(values, &outcomes)
            }),
        })
        .collect();
    FigureSpec {
        stem,
        title: format!(
            "Scenario library: free path on {} — structured patterns, weighted completion time (less is better)",
            topo.name
        ),
        notes: format!(
            "≈{} coflows/scenario, seed {}, {} λ samples; incast/broadcast fan 4, \
             shuffle 3×3×2 stages (release-staged), all-reduce ring 4, hot-spot 80% skew",
            cfg.jobs, cfg.seed, cfg.samples
        ),
        series_names: labels(SERIES),
        points,
    }
}

/// See [`scenario_library_spec`].
pub fn run_scenario_library(topo: &Topology, cfg: &HarnessConfig) -> FigureResult {
    single_figure(scenario_library_spec(topo, cfg))
}

/// Trace-replay sweep: growing prefixes of the bundled FB2010-format
/// sample trace ([`FB2010_SAMPLE`]) replayed on the I/O-gadgeted big
/// switch, unit weights — the classic trace-driven evaluation setup.
/// Series report total completion time, the objective every
/// trace-driven coflow paper uses.
pub fn trace_replay_spec(cfg: &HarnessConfig) -> FigureSpec<'static> {
    const SERIES: &[SeriesDef] = &[
        SeriesDef::new("LP(lower bound)", "heuristic", Metric::LowerBound),
        SeriesDef::new("Heuristic(λ=1.0)", "heuristic", Metric::UnweightedCost),
        SeriesDef::new("Best λ", "stretch", Metric::SweepBestUnweighted),
        SeriesDef::new("Terra", "terra", Metric::UnweightedCost),
        SeriesDef::new("SJF", "sjf", Metric::UnweightedCost),
    ];
    let stem = "scen_trace";
    let trace = Trace::parse(FB2010_SAMPLE).expect("the bundled fixture parses");
    let total = trace.coflows.len();
    // Copies, so the point closures are `'static` (the trace is bundled,
    // not borrowed from the config).
    let (verbose, samples, seed) = (cfg.verbose, cfg.samples, cfg.seed);
    let points = [total / 4, total / 2, 3 * total / 4, total]
        .into_iter()
        .enumerate()
        .map(|(i, limit)| {
            let trace = trace.clone();
            PointSpec {
                label: format!("first {limit}"),
                seed: point_seed(seed, stem, i),
                compute: Box::new(move |_rng: &mut StdRng| {
                    if verbose {
                        eprintln!("[trace] first {limit} coflows …");
                    }
                    let inst = trace
                        .switch_instance(&ReplayOptions {
                            limit,
                            ..Default::default()
                        })
                        .expect("the bundled fixture replays");
                    let params = AlgoParams {
                        samples,
                        seed,
                        ..Default::default()
                    };
                    let (values, outcomes) = run_series(&inst, &Routing::FreePath, SERIES, &params);
                    point_outcome(values, &outcomes)
                }),
            }
        })
        .collect();
    FigureSpec {
        stem,
        title: "Trace replay: FB2010-format sample on the big switch — total completion time \
                (less is better)"
            .to_string(),
        notes: format!(
            "prefixes of the bundled {total}-coflow fixture, 16 ports with I/O gadget, \
             1 s slots, 1 Gbps ports, unit weights, {} λ samples, seed {}",
            cfg.samples, cfg.seed
        ),
        series_names: labels(SERIES),
        points,
    }
}

/// See [`trace_replay_spec`].
pub fn run_trace_replay(cfg: &HarnessConfig) -> FigureResult {
    single_figure(trace_replay_spec(cfg))
}

/// The core invariant every figure must satisfy: no algorithm beats the
/// LP lower bound of its own relaxation. Called by binaries after
/// computing a figure; panics on violation (a violation means a bug, and
/// a figure built on it would be garbage).
pub fn assert_sound(fig: &FigureResult, lower_bound_col: usize, algo_cols: &[usize]) {
    for row in &fig.rows {
        let lb = row.values[lower_bound_col];
        for &c in algo_cols {
            let v = row.values[c];
            assert!(
                v >= lb - 1e-6 * (1.0 + lb.abs()),
                "{}: series {c} ({v}) beats the lower bound ({lb})",
                row.label
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_seed_depends_on_all_inputs() {
        let a = point_seed(1, "fig06_lambda_swan", 0);
        assert_ne!(a, point_seed(2, "fig06_lambda_swan", 0), "base seed");
        assert_ne!(a, point_seed(1, "fig07_lambda_gscale", 0), "stem");
        assert_ne!(a, point_seed(1, "fig06_lambda_swan", 1), "index");
        assert_eq!(a, point_seed(1, "fig06_lambda_swan", 0), "stable");
    }

    #[test]
    fn compute_figures_preserves_row_order_across_workers() {
        let mk = |stem: &'static str| FigureSpec {
            stem,
            title: stem.to_string(),
            notes: String::new(),
            series_names: vec!["v".into()],
            points: (0..7)
                .map(|i| PointSpec {
                    label: format!("row{i}"),
                    seed: point_seed(3, stem, i),
                    compute: Box::new(move |rng: &mut StdRng| {
                        use rand::Rng;
                        vec![i as f64 + rng.gen_range(0.0..1.0)].into()
                    }),
                })
                .collect(),
        };
        let serial = compute_figures(vec![mk("a"), mk("b")], &SweepPool::with_workers(1));
        let parallel = compute_figures(vec![mk("a"), mk("b")], &SweepPool::with_workers(8));
        for ((s_stem, s_fig), (p_stem, p_fig)) in serial.iter().zip(&parallel) {
            assert_eq!(s_stem, p_stem);
            for (s_row, p_row) in s_fig.rows.iter().zip(&p_fig.rows) {
                assert_eq!(s_row.label, p_row.label);
                assert_eq!(s_row.values, p_row.values, "worker count changed a value");
            }
        }
    }

    #[test]
    fn notes_are_appended_in_point_order() {
        let spec = FigureSpec {
            stem: "notes",
            title: "t".into(),
            notes: "base.".into(),
            series_names: vec!["v".into()],
            points: (0..4)
                .map(|i| PointSpec {
                    label: format!("p{i}"),
                    seed: i as u64,
                    compute: Box::new(move |_rng: &mut StdRng| PointOutcome {
                        values: vec![0.0],
                        note: Some(format!("n{i}")),
                        stats: PointStats::default(),
                    }),
                })
                .collect(),
        };
        let fig = compute_figures(vec![spec], &SweepPool::with_workers(4))
            .pop()
            .unwrap()
            .1;
        assert_eq!(fig.notes, "base. n0 n1 n2 n3");
    }

    #[test]
    fn run_series_shares_one_lp_across_series() {
        use coflow_core::model::{Coflow, Flow};
        use coflow_netgraph::topology;

        let topo = topology::line(2, 1.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let inst = CoflowInstance::new(
            g,
            vec![
                Coflow::new(vec![Flow::new(v0, v1, 2.0)]),
                Coflow::new(vec![Flow::new(v0, v1, 1.0)]),
            ],
        )
        .unwrap();
        let series = [
            SeriesDef::new("lb", "heuristic", Metric::LowerBound),
            SeriesDef::new("cost", "heuristic", Metric::Cost),
            SeriesDef::new("best", "stretch", Metric::SweepBest),
        ];
        let params = AlgoParams {
            samples: 4,
            ..Default::default()
        };
        let (values, outcomes) = run_series(&inst, &Routing::FreePath, &series, &params);
        assert_eq!(values.len(), 3);
        // Two distinct algorithms ran (heuristic appears twice in the
        // series but is solved once).
        assert_eq!(outcomes.len(), 2);
        // Both used the same cached LP, so their bounds agree exactly.
        assert_eq!(
            outcomes[0].1.lower_bound.unwrap(),
            outcomes[1].1.lower_bound.unwrap()
        );
        assert!(values[1] >= values[0] - 1e-9);
    }
}
