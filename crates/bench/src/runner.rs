//! Experiment orchestration: one *scenario-sweep spec* per figure
//! family, executed by the work-stealing [`SweepPool`].
//!
//! Each figure is described as a [`FigureSpec`]: static metadata (title,
//! legend) plus a list of independent [`PointSpec`]s — one per row
//! (workload, ε value, slot length, …). [`compute_figures`] flattens
//! every point of every spec into one batch and runs them concurrently;
//! a point's RNG is seeded from `(base seed, figure stem, point index)`
//! via [`point_seed`], never from execution order, so sweeps are
//! deterministic for a given `--seed` no matter how many workers run
//! them (byte-identical CSVs, run to run).
//!
//! The `run_*` functions are thin wrappers computing a single figure;
//! `all_figures` passes every spec to one [`compute_figures`] call so
//! the pool can interleave points across figures.

use crate::cli::HarnessConfig;
use crate::parallel::SweepPool;
use coflow_baselines::jahanjou::{jahanjou_schedule, JahanjouConfig, EPSILON_OPT};
use coflow_baselines::terra::terra_offline;
use coflow_core::horizon::{horizon, HorizonMode};
use coflow_core::interval::solve_interval;
use coflow_core::model::CoflowInstance;
use coflow_core::routing::{self, Routing};
use coflow_core::solver::{Algorithm, Scheduler};
use coflow_core::stretch::{lambda_sweep, StretchOptions};
use coflow_core::validate::{validate, Tolerance};
use coflow_lp::SolverOptions;
use coflow_netgraph::topology::Topology;
use coflow_workloads::{build_instance, WorkloadConfig, WorkloadKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// One series value (NaN renders as "-").
pub type SeriesValue = f64;

/// One row of a figure (a workload, or an ε value for Figure 8).
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// Row label.
    pub label: String,
    /// One value per series, aligned with `FigureResult::series_names`.
    pub values: Vec<SeriesValue>,
}

/// A fully-computed figure.
#[derive(Clone, Debug)]
pub struct FigureResult {
    /// Figure title (matches the paper's caption).
    pub title: String,
    /// Free-form notes (instance sizes etc.).
    pub notes: String,
    /// Legend entries, matching the paper's series names.
    pub series_names: Vec<String>,
    /// Rows in presentation order.
    pub rows: Vec<FigureRow>,
}

/// What one scenario point produces: its series values, plus an
/// optional sentence appended to the figure's notes (in point order).
#[derive(Clone, Debug)]
pub struct PointOutcome {
    /// One value per series.
    pub values: Vec<SeriesValue>,
    /// Extra note text (e.g. online re-solve counts).
    pub note: Option<String>,
}

impl From<Vec<SeriesValue>> for PointOutcome {
    fn from(values: Vec<SeriesValue>) -> Self {
        PointOutcome { values, note: None }
    }
}

/// A point's computation: pure function of its captured scenario inputs
/// and the per-point seeded RNG it receives.
pub type PointFn<'a> = Box<dyn Fn(&mut StdRng) -> PointOutcome + Send + Sync + 'a>;

/// One independently-computable row of a figure.
pub struct PointSpec<'a> {
    /// Row label (workload name, ε value, …).
    pub label: String,
    /// RNG seed for this point (derive with [`point_seed`]).
    pub seed: u64,
    /// The computation.
    pub compute: PointFn<'a>,
}

/// A figure, described but not yet computed.
pub struct FigureSpec<'a> {
    /// CSV file stem (`fig06_lambda_swan`, …).
    pub stem: &'static str,
    /// Figure title (matches the paper's caption).
    pub title: String,
    /// Free-form notes (instance sizes etc.).
    pub notes: String,
    /// Legend entries.
    pub series_names: Vec<String>,
    /// Rows in presentation order.
    pub points: Vec<PointSpec<'a>>,
}

/// Derives a point's RNG seed from the harness base seed, the figure
/// stem, and the point's index — *not* from scheduling, so parallel
/// sweeps stay deterministic (FNV-1a over the stem, mixed with index
/// and base).
pub fn point_seed(base: u64, stem: &str, index: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in stem.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= index as u64;
    h = h.wrapping_mul(0x1000_0000_01b3);
    h ^ base.rotate_left(17)
}

/// Runs every point of every spec through `pool` as one flattened batch
/// and reassembles the figures in spec order.
pub fn compute_figures<'a>(
    specs: Vec<FigureSpec<'a>>,
    pool: &SweepPool,
) -> Vec<(&'static str, FigureResult)> {
    let tasks: Vec<(usize, usize)> = specs
        .iter()
        .enumerate()
        .flat_map(|(fi, s)| (0..s.points.len()).map(move |pi| (fi, pi)))
        .collect();
    let outcomes: Vec<PointOutcome> = pool.run(&tasks, |_, &(fi, pi)| {
        let point = &specs[fi].points[pi];
        let mut rng = StdRng::seed_from_u64(point.seed);
        (point.compute)(&mut rng)
    });

    // Tasks were flattened in (figure, point) order, so grouping back by
    // figure preserves each figure's row order.
    let mut per_fig: Vec<Vec<PointOutcome>> = specs.iter().map(|_| Vec::new()).collect();
    for (&(fi, _), out) in tasks.iter().zip(outcomes) {
        per_fig[fi].push(out);
    }
    specs
        .into_iter()
        .zip(per_fig)
        .map(|(spec, outs)| {
            let rows = spec
                .points
                .iter()
                .zip(&outs)
                .map(|(p, o)| FigureRow {
                    label: p.label.clone(),
                    values: o.values.clone(),
                })
                .collect();
            let mut notes = spec.notes;
            for o in &outs {
                if let Some(n) = &o.note {
                    notes.push(' ');
                    notes.push_str(n);
                }
            }
            (
                spec.stem,
                FigureResult {
                    title: spec.title,
                    notes,
                    series_names: spec.series_names,
                    rows,
                },
            )
        })
        .collect()
}

fn single_figure(spec: FigureSpec<'_>) -> FigureResult {
    compute_figures(vec![spec], &SweepPool::new())
        .pop()
        .expect("one spec in, one figure out")
        .1
}

const HORIZON: HorizonMode = HorizonMode::Greedy { margin: 1.25 };

fn workload_cfg(kind: WorkloadKind, cfg: &HarnessConfig, weighted: bool) -> WorkloadConfig {
    WorkloadConfig {
        kind,
        num_jobs: cfg.jobs,
        seed: cfg.seed,
        slot_seconds: 50.0,
        mean_interarrival_slots: cfg.mean_interarrival,
        weighted,
        demand_scale: 1.0,
    }
}

fn instance_for(
    topo: &Topology,
    kind: WorkloadKind,
    cfg: &HarnessConfig,
    weighted: bool,
) -> CoflowInstance {
    build_instance(topo, &workload_cfg(kind, cfg, weighted))
        .expect("workload placement on a WAN topology always validates")
}

/// Figures 6 and 7: free-path model, weighted. Series: LP lower bound,
/// Heuristic(λ=1.0), Best λ, Average λ.
pub fn lambda_figure_spec<'a>(
    topo: &'a Topology,
    cfg: &'a HarnessConfig,
    fig_no: u8,
) -> FigureSpec<'a> {
    let stem: &'static str = match fig_no {
        6 => "fig06_lambda_swan",
        7 => "fig07_lambda_gscale",
        other => unreachable!("lambda figures are 6 and 7, not {other}"),
    };
    let points = WorkloadKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| PointSpec {
            label: kind.name().to_string(),
            seed: point_seed(cfg.seed, stem, i),
            compute: Box::new(move |_rng: &mut StdRng| {
                if cfg.verbose {
                    eprintln!("[fig{fig_no}] {} …", kind.name());
                }
                let inst = instance_for(topo, kind, cfg, true);
                let sched = Scheduler::new(Algorithm::LpHeuristic).with_horizon(HORIZON);
                let lp = sched
                    .relax(&inst, &Routing::FreePath)
                    .expect("relaxation solves");
                let heuristic = coflow_core::heuristic::lp_heuristic(
                    &inst,
                    &lp.plan,
                    StretchOptions::default(),
                );
                let h_cost = heuristic
                    .completions(&inst)
                    .expect("heuristic schedules complete")
                    .weighted_total;
                let sweep = lambda_sweep(
                    &inst,
                    &lp.plan,
                    cfg.samples,
                    cfg.seed,
                    StretchOptions::default(),
                );
                vec![
                    lp.objective,
                    h_cost,
                    sweep.best().weighted_cost,
                    sweep.average(),
                ]
                .into()
            }),
        })
        .collect();
    FigureSpec {
        stem,
        title: format!(
            "Figure {fig_no}: Free path model on {} — weighted completion time (less is better)",
            topo.name
        ),
        notes: format!(
            "{} jobs/workload, seed {}, {} lambda samples, 50 s slots",
            cfg.jobs, cfg.seed, cfg.samples
        ),
        series_names: vec![
            "LP(lower bound)".into(),
            "Heuristic(λ=1.0)".into(),
            "Best λ".into(),
            "Average λ".into(),
        ],
        points,
    }
}

/// See [`lambda_figure_spec`].
pub fn run_lambda_figure(topo: &Topology, cfg: &HarnessConfig, fig_no: u8) -> FigureResult {
    single_figure(lambda_figure_spec(topo, cfg, fig_no))
}

/// Figure 8: effect of the interval parameter ε (free path, FB on SWAN).
/// Series: interval LP lower bound and its λ=1 heuristic, per ε.
pub fn epsilon_figure_spec<'a>(topo: &'a Topology, cfg: &'a HarnessConfig) -> FigureSpec<'a> {
    let stem = "fig08_epsilon";
    // All ε points share one instance and horizon; solve them once here
    // and hand the points an `Arc` so the sweep only pays the LP solves.
    let inst = Arc::new(instance_for(topo, WorkloadKind::Facebook, cfg, true));
    let t = horizon(&inst, &Routing::FreePath, HORIZON).expect("horizon");
    let points = (1..=10)
        .map(|k| {
            let epsilon = k as f64 / 10.0;
            let inst = Arc::clone(&inst);
            PointSpec {
                label: format!("ε={epsilon:.1}"),
                seed: point_seed(cfg.seed, stem, k),
                compute: Box::new(move |_rng: &mut StdRng| {
                    if cfg.verbose {
                        eprintln!("[fig8] ε = {epsilon} …");
                    }
                    let rel = solve_interval(
                        &inst,
                        &Routing::FreePath,
                        t,
                        epsilon,
                        &SolverOptions::default(),
                    )
                    .expect("interval LP solves");
                    let heuristic = coflow_core::heuristic::lp_heuristic(
                        &inst,
                        &rel.lp.plan,
                        StretchOptions::default(),
                    );
                    let h_cost = heuristic
                        .completions(&inst)
                        .expect("heuristic schedules complete")
                        .weighted_total;
                    vec![rel.lp.objective, h_cost].into()
                }),
            }
        })
        .collect();
    FigureSpec {
        stem,
        title: format!(
            "Figure 8: Free path model on {} (workload FB) — interval parameter ε sweep",
            topo.name
        ),
        notes: format!("{} jobs, seed {}, 50 s slots", cfg.jobs, cfg.seed),
        series_names: vec![
            "Time interval LP(lower bound)".into(),
            "heuristic(λ=1.0)".into(),
        ],
        points,
    }
}

/// See [`epsilon_figure_spec`].
pub fn run_epsilon_figure(topo: &Topology, cfg: &HarnessConfig) -> FigureResult {
    single_figure(epsilon_figure_spec(topo, cfg))
}

/// Figures 9 and 10: single-path model with random shortest paths.
/// Series: time-indexed LP + heuristic, interval LP (ε=0.2) + heuristic,
/// Jahanjou et al. (ε=0.5436, strict α-point batches).
pub fn single_path_figure_spec<'a>(
    topo: &'a Topology,
    cfg: &'a HarnessConfig,
    fig_no: u8,
) -> FigureSpec<'a> {
    let stem: &'static str = match fig_no {
        9 => "fig09_single_swan",
        10 => "fig10_single_gscale",
        other => unreachable!("single-path figures are 9 and 10, not {other}"),
    };
    let points = WorkloadKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| PointSpec {
            label: kind.name().to_string(),
            seed: point_seed(cfg.seed, stem, i),
            compute: Box::new(move |rng: &mut StdRng| {
                if cfg.verbose {
                    eprintln!("[fig{fig_no}] {} …", kind.name());
                }
                let inst = instance_for(topo, kind, cfg, true);
                let r = routing::random_shortest_paths(&inst, rng).expect("paths exist");
                let t = horizon(&inst, &r, HORIZON).expect("horizon");

                // Time-indexed LP + λ=1 heuristic.
                let ti = coflow_core::timeidx::solve_time_indexed(
                    &inst,
                    &r,
                    t,
                    &SolverOptions::default(),
                )
                .expect("time-indexed LP solves");
                let ti_h = coflow_core::heuristic::lp_heuristic(
                    &inst,
                    &ti.plan,
                    StretchOptions::default(),
                );
                let ti_h_cost = ti_h.completions(&inst).expect("complete").weighted_total;

                // Interval LP (ε = 0.2) + λ=1 heuristic.
                let iv = solve_interval(&inst, &r, t, 0.2, &SolverOptions::default())
                    .expect("interval LP solves");
                let iv_h = coflow_core::heuristic::lp_heuristic(
                    &inst,
                    &iv.lp.plan,
                    StretchOptions::default(),
                );
                let iv_h_cost = iv_h.completions(&inst).expect("complete").weighted_total;

                // Jahanjou et al. at their optimized ε.
                let jj = jahanjou_schedule(
                    &inst,
                    &r,
                    t,
                    &JahanjouConfig {
                        epsilon: EPSILON_OPT,
                        ..Default::default()
                    },
                    &SolverOptions::default(),
                )
                .expect("baseline runs");
                let jj_cost = validate(&inst, &r, &jj.schedule, Tolerance::default())
                    .expect("baseline schedule feasible")
                    .completions
                    .weighted_total;

                vec![ti.objective, ti_h_cost, iv.lp.objective, iv_h_cost, jj_cost].into()
            }),
        })
        .collect();
    FigureSpec {
        stem,
        title: format!(
            "Figure {fig_no}: Single path model on {} — weighted completion time (less is better)",
            topo.name
        ),
        notes: format!(
            "{} jobs/workload, seed {}, random shortest paths, 50 s slots",
            cfg.jobs, cfg.seed
        ),
        series_names: vec![
            "Time indexed LP(lower bound)".into(),
            "heuristic(λ=1.0)".into(),
            "Time interval LP(lower bound, ε=0.2)".into(),
            "interval heuristic(λ=1.0)".into(),
            "Jahanjou et al.".into(),
        ],
        points,
    }
}

/// See [`single_path_figure_spec`].
pub fn run_single_path_figure(topo: &Topology, cfg: &HarnessConfig, fig_no: u8) -> FigureResult {
    single_figure(single_path_figure_spec(topo, cfg, fig_no))
}

/// Figures 11 and 12: free-path model, unweighted (all weights 1), with
/// Terra. Values are *total* completion times.
pub fn free_unweighted_figure_spec<'a>(
    topo: &'a Topology,
    cfg: &'a HarnessConfig,
    fig_no: u8,
) -> FigureSpec<'a> {
    let stem: &'static str = match fig_no {
        11 => "fig11_free_unweighted_swan",
        12 => "fig12_free_unweighted_gscale",
        other => unreachable!("free-unweighted figures are 11 and 12, not {other}"),
    };
    let points = WorkloadKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| PointSpec {
            label: kind.name().to_string(),
            seed: point_seed(cfg.seed, stem, i),
            compute: Box::new(move |_rng: &mut StdRng| {
                if cfg.verbose {
                    eprintln!("[fig{fig_no}] {} …", kind.name());
                }
                let inst = instance_for(topo, kind, cfg, false);
                let sched = Scheduler::new(Algorithm::LpHeuristic).with_horizon(HORIZON);
                let lp = sched
                    .relax(&inst, &Routing::FreePath)
                    .expect("relaxation solves");
                let heuristic = coflow_core::heuristic::lp_heuristic(
                    &inst,
                    &lp.plan,
                    StretchOptions::default(),
                );
                let h_cost = heuristic
                    .completions(&inst)
                    .expect("complete")
                    .unweighted_total;
                let sweep = lambda_sweep(
                    &inst,
                    &lp.plan,
                    cfg.samples,
                    cfg.seed,
                    StretchOptions::default(),
                );
                let best = sweep
                    .samples
                    .iter()
                    .map(|s| s.unweighted_cost)
                    .fold(f64::INFINITY, f64::min);
                let terra = terra_offline(&inst).expect("terra runs");
                let terra_cost = validate(
                    &inst,
                    &Routing::FreePath,
                    &terra.schedule,
                    Tolerance::default(),
                )
                .expect("terra schedule feasible")
                .completions
                .unweighted_total;
                vec![
                    lp.objective, // weights are all 1, so this is the total-CCT bound
                    h_cost,
                    best,
                    sweep.average_unweighted(),
                    terra_cost,
                ]
                .into()
            }),
        })
        .collect();
    FigureSpec {
        stem,
        title: format!(
            "Figure {fig_no}: Free path model with no weight on {} — total completion time (less is better)",
            topo.name
        ),
        notes: format!(
            "{} jobs/workload, seed {}, {} lambda samples, unit weights",
            cfg.jobs, cfg.seed, cfg.samples
        ),
        series_names: vec![
            "Time indexed LP(lower bound)".into(),
            "heuristic(λ=1.0)".into(),
            "Best λ".into(),
            "Average λ".into(),
            "Terra".into(),
        ],
        points,
    }
}

/// See [`free_unweighted_figure_spec`].
pub fn run_free_unweighted_figure(
    topo: &Topology,
    cfg: &HarnessConfig,
    fig_no: u8,
) -> FigureResult {
    single_figure(free_unweighted_figure_spec(topo, cfg, fig_no))
}

/// Slot-length ablation: §6.1 "Time Index" — "if the length of a time
/// slot is shorter, we get more accurate answers, but need to solve a
/// larger LP". Rows are slot lengths in seconds; series report the LP
/// size, the bound, and the heuristic cost (all costs rescaled to
/// 50-second-slot units so rows are comparable).
pub fn slot_length_ablation_spec<'a>(topo: &'a Topology, cfg: &'a HarnessConfig) -> FigureSpec<'a> {
    let stem = "ablation_slotlen";
    let points = [200.0, 100.0, 50.0, 25.0]
        .into_iter()
        .enumerate()
        .map(|(i, slot_seconds): (usize, f64)| PointSpec {
            label: format!("{slot_seconds:.0} s"),
            seed: point_seed(cfg.seed, stem, i),
            compute: Box::new(move |_rng: &mut StdRng| {
                if cfg.verbose {
                    eprintln!("[slotlen] {slot_seconds} s …");
                }
                let wl = WorkloadConfig {
                    kind: WorkloadKind::Facebook,
                    num_jobs: cfg.jobs,
                    seed: cfg.seed,
                    slot_seconds,
                    // Keep *wall-clock* arrivals fixed: the mean interarrival in
                    // slots scales inversely with the slot length.
                    mean_interarrival_slots: cfg.mean_interarrival * 50.0 / slot_seconds,
                    weighted: true,
                    demand_scale: 1.0,
                };
                let inst = build_instance(topo, &wl).expect("workload placement validates");
                let sched = Scheduler::new(Algorithm::LpHeuristic).with_horizon(HORIZON);
                let lp = sched
                    .relax(&inst, &Routing::FreePath)
                    .expect("relaxation solves");
                let h = coflow_core::heuristic::lp_heuristic(
                    &inst,
                    &lp.plan,
                    StretchOptions::default(),
                );
                let h_cost = h.completions(&inst).expect("complete").weighted_total;
                // Rescale slot-unit costs to the common 50 s yardstick.
                let to_50s = slot_seconds / 50.0;
                vec![
                    lp.objective * to_50s,
                    h_cost * to_50s,
                    lp.size.rows as f64,
                    lp.size.cols as f64,
                    lp.lp_iterations as f64,
                ]
                .into()
            }),
        })
        .collect();
    FigureSpec {
        stem,
        title: format!(
            "Slot-length ablation: free path, FB on {} — accuracy vs LP size (§6.1 Time Index)",
            topo.name
        ),
        notes: format!(
            "{} jobs, seed {}; costs rescaled to 50 s-slot units, so smaller slots \
             should tighten the bound while rows/cols grow",
            cfg.jobs, cfg.seed
        ),
        series_names: vec![
            "LP(lower bound, 50s units)".into(),
            "heuristic(λ=1.0, 50s units)".into(),
            "LP rows".into(),
            "LP cols".into(),
            "simplex iterations".into(),
        ],
        points,
    }
}

/// See [`slot_length_ablation_spec`].
pub fn run_slot_length_ablation(topo: &Topology, cfg: &HarnessConfig) -> FigureResult {
    single_figure(slot_length_ablation_spec(topo, cfg))
}

/// Ordering ablation (not a paper figure): how far do LP-free
/// combinatorial orderings get on the single-path model? Series: the
/// time-indexed LP bound, the λ=1 heuristic, the exact-best-λ pure
/// Stretch (derandomized), the primal-dual/BSSI ordering, and weighted
/// SJF.
pub fn ordering_ablation_spec<'a>(topo: &'a Topology, cfg: &'a HarnessConfig) -> FigureSpec<'a> {
    let stem = "ablation_ordering";
    let points = WorkloadKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| PointSpec {
            label: kind.name().to_string(),
            seed: point_seed(cfg.seed, stem, i),
            compute: Box::new(move |rng: &mut StdRng| {
                if cfg.verbose {
                    eprintln!("[ordering] {} …", kind.name());
                }
                let inst = instance_for(topo, kind, cfg, true);
                let r = routing::random_shortest_paths(&inst, rng).expect("paths exist");
                let t = horizon(&inst, &r, HORIZON).expect("horizon");
                let lp = coflow_core::timeidx::solve_time_indexed(
                    &inst,
                    &r,
                    t,
                    &SolverOptions::default(),
                )
                .expect("time-indexed LP solves");
                let h = coflow_core::heuristic::lp_heuristic(
                    &inst,
                    &lp.plan,
                    StretchOptions::default(),
                );
                let h_cost = h.completions(&inst).expect("complete").weighted_total;
                let d = coflow_core::derand::derandomize(&inst, &lp.plan);
                let pd = coflow_baselines::primal_dual::primal_dual(&inst, &r).expect("runs");
                let pd_cost = validate(&inst, &r, &pd, Tolerance::default())
                    .expect("primal-dual schedule feasible")
                    .completions
                    .weighted_total;
                let sjf = coflow_baselines::sjf::weighted_sjf(&inst, &r).expect("runs");
                let sjf_cost = validate(&inst, &r, &sjf, Tolerance::default())
                    .expect("sjf schedule feasible")
                    .completions
                    .weighted_total;
                vec![lp.objective, h_cost, d.best_cost, pd_cost, sjf_cost].into()
            }),
        })
        .collect();
    FigureSpec {
        stem,
        title: format!(
            "Ordering ablation: single path on {} — LP methods vs LP-free orderings (less is better)",
            topo.name
        ),
        notes: format!(
            "{} jobs/workload, seed {}, random shortest paths; derand = exact best-λ \
             pure Stretch (no compaction); primal-dual = BSSI on the edge-machine open shop",
            cfg.jobs, cfg.seed
        ),
        series_names: vec![
            "Time indexed LP(lower bound)".into(),
            "heuristic(λ=1.0)".into(),
            "Derandomized best λ".into(),
            "Primal-dual (BSSI)".into(),
            "Weighted SJF".into(),
        ],
        points,
    }
}

/// See [`ordering_ablation_spec`].
pub fn run_ordering_ablation(topo: &Topology, cfg: &HarnessConfig) -> FigureResult {
    single_figure(ordering_ablation_spec(topo, cfg))
}

/// Online ablation (the paper's §7 direction): offline bound and
/// heuristic vs the event-driven re-solver and the doubling-batch
/// framework, free-path model with Poisson releases.
pub fn online_ablation_spec<'a>(topo: &'a Topology, cfg: &'a HarnessConfig) -> FigureSpec<'a> {
    let stem = "ablation_online";
    let points = WorkloadKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| PointSpec {
            label: kind.name().to_string(),
            seed: point_seed(cfg.seed, stem, i),
            compute: Box::new(move |_rng: &mut StdRng| {
                if cfg.verbose {
                    eprintln!("[online] {} …", kind.name());
                }
                let inst = instance_for(topo, kind, cfg, true);
                let sched = Scheduler::new(Algorithm::LpHeuristic).with_horizon(HORIZON);
                let lp = sched
                    .relax(&inst, &Routing::FreePath)
                    .expect("relaxation solves");
                let h = coflow_core::heuristic::lp_heuristic(
                    &inst,
                    &lp.plan,
                    StretchOptions::default(),
                );
                let h_cost = h.completions(&inst).expect("complete").weighted_total;
                let online = coflow_core::online::online_heuristic(
                    &inst,
                    &Routing::FreePath,
                    &SolverOptions::default(),
                )
                .expect("online runs");
                let online_cost = validate(
                    &inst,
                    &Routing::FreePath,
                    &online.schedule,
                    Tolerance::default(),
                )
                .expect("online schedule feasible")
                .completions
                .weighted_total;
                let batched = coflow_core::flowtime::interval_batch_online(
                    &inst,
                    &Routing::FreePath,
                    &SolverOptions::default(),
                )
                .expect("batch online runs");
                let batch_cost = validate(
                    &inst,
                    &Routing::FreePath,
                    &batched.schedule,
                    Tolerance::default(),
                )
                .expect("batched schedule feasible")
                .completions
                .weighted_total;
                PointOutcome {
                    values: vec![lp.objective, h_cost, online_cost, batch_cost],
                    note: Some(format!(
                        "{}: {} re-solves vs {} batches.",
                        kind.name(),
                        online.resolves,
                        batched.batches
                    )),
                }
            }),
        })
        .collect();
    FigureSpec {
        stem,
        title: format!(
            "Online ablation: free path on {} — clairvoyant offline vs online frameworks (less is better)",
            topo.name
        ),
        notes: format!(
            "{} jobs/workload, seed {}, Poisson releases (mean interarrival {} slots). \
             Offline knows all arrivals; online algorithms learn them at release.",
            cfg.jobs, cfg.seed, cfg.mean_interarrival
        ),
        series_names: vec![
            "Offline LP(lower bound)".into(),
            "Offline heuristic(λ=1.0)".into(),
            "Online re-solving".into(),
            "Doubling batches".into(),
        ],
        points,
    }
}

/// See [`online_ablation_spec`].
pub fn run_online_ablation(topo: &Topology, cfg: &HarnessConfig) -> FigureResult {
    single_figure(online_ablation_spec(topo, cfg))
}

/// The core invariant every figure must satisfy: no algorithm beats the
/// LP lower bound of its own relaxation. Called by binaries after
/// computing a figure; panics on violation (a violation means a bug, and
/// a figure built on it would be garbage).
pub fn assert_sound(fig: &FigureResult, lower_bound_col: usize, algo_cols: &[usize]) {
    for row in &fig.rows {
        let lb = row.values[lower_bound_col];
        for &c in algo_cols {
            let v = row.values[c];
            assert!(
                v >= lb - 1e-6 * (1.0 + lb.abs()),
                "{}: series {c} ({v}) beats the lower bound ({lb})",
                row.label
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_seed_depends_on_all_inputs() {
        let a = point_seed(1, "fig06_lambda_swan", 0);
        assert_ne!(a, point_seed(2, "fig06_lambda_swan", 0), "base seed");
        assert_ne!(a, point_seed(1, "fig07_lambda_gscale", 0), "stem");
        assert_ne!(a, point_seed(1, "fig06_lambda_swan", 1), "index");
        assert_eq!(a, point_seed(1, "fig06_lambda_swan", 0), "stable");
    }

    #[test]
    fn compute_figures_preserves_row_order_across_workers() {
        let mk = |stem: &'static str| FigureSpec {
            stem,
            title: stem.to_string(),
            notes: String::new(),
            series_names: vec!["v".into()],
            points: (0..7)
                .map(|i| PointSpec {
                    label: format!("row{i}"),
                    seed: point_seed(3, stem, i),
                    compute: Box::new(move |rng: &mut StdRng| {
                        use rand::Rng;
                        vec![i as f64 + rng.gen_range(0.0..1.0)].into()
                    }),
                })
                .collect(),
        };
        let serial = compute_figures(vec![mk("a"), mk("b")], &SweepPool::with_workers(1));
        let parallel = compute_figures(vec![mk("a"), mk("b")], &SweepPool::with_workers(8));
        for ((s_stem, s_fig), (p_stem, p_fig)) in serial.iter().zip(&parallel) {
            assert_eq!(s_stem, p_stem);
            for (s_row, p_row) in s_fig.rows.iter().zip(&p_fig.rows) {
                assert_eq!(s_row.label, p_row.label);
                assert_eq!(s_row.values, p_row.values, "worker count changed a value");
            }
        }
    }

    #[test]
    fn notes_are_appended_in_point_order() {
        let spec = FigureSpec {
            stem: "notes",
            title: "t".into(),
            notes: "base.".into(),
            series_names: vec!["v".into()],
            points: (0..4)
                .map(|i| PointSpec {
                    label: format!("p{i}"),
                    seed: i as u64,
                    compute: Box::new(move |_rng: &mut StdRng| PointOutcome {
                        values: vec![0.0],
                        note: Some(format!("n{i}")),
                    }),
                })
                .collect(),
        };
        let fig = compute_figures(vec![spec], &SweepPool::with_workers(4))
            .pop()
            .unwrap()
            .1;
        assert_eq!(fig.notes, "base. n0 n1 n2 n3");
    }
}
