//! Experiment orchestration: one function per figure family.

use crate::cli::HarnessConfig;
use coflow_baselines::jahanjou::{jahanjou_schedule, JahanjouConfig, EPSILON_OPT};
use coflow_baselines::terra::terra_offline;
use coflow_core::horizon::{horizon, HorizonMode};
use coflow_core::interval::solve_interval;
use coflow_core::model::CoflowInstance;
use coflow_core::routing::{self, Routing};
use coflow_core::solver::{Algorithm, Scheduler};
use coflow_core::stretch::{lambda_sweep, StretchOptions};
use coflow_core::validate::{validate, Tolerance};
use coflow_lp::SolverOptions;
use coflow_netgraph::topology::Topology;
use coflow_workloads::{build_instance, WorkloadConfig, WorkloadKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One series value (NaN renders as "-").
pub type SeriesValue = f64;

/// One row of a figure (a workload, or an ε value for Figure 8).
#[derive(Clone, Debug)]
pub struct FigureRow {
    /// Row label.
    pub label: String,
    /// One value per series, aligned with `FigureResult::series_names`.
    pub values: Vec<SeriesValue>,
}

/// A fully-computed figure.
#[derive(Clone, Debug)]
pub struct FigureResult {
    /// Figure title (matches the paper's caption).
    pub title: String,
    /// Free-form notes (instance sizes etc.).
    pub notes: String,
    /// Legend entries, matching the paper's series names.
    pub series_names: Vec<String>,
    /// Rows in presentation order.
    pub rows: Vec<FigureRow>,
}

const HORIZON: HorizonMode = HorizonMode::Greedy { margin: 1.25 };

fn workload_cfg(kind: WorkloadKind, cfg: &HarnessConfig, weighted: bool) -> WorkloadConfig {
    WorkloadConfig {
        kind,
        num_jobs: cfg.jobs,
        seed: cfg.seed,
        slot_seconds: 50.0,
        mean_interarrival_slots: cfg.mean_interarrival,
        weighted,
        demand_scale: 1.0,
    }
}

fn instance_for(
    topo: &Topology,
    kind: WorkloadKind,
    cfg: &HarnessConfig,
    weighted: bool,
) -> CoflowInstance {
    build_instance(topo, &workload_cfg(kind, cfg, weighted))
        .expect("workload placement on a WAN topology always validates")
}

/// Figures 6 and 7: free-path model, weighted. Series: LP lower bound,
/// Heuristic(λ=1.0), Best λ, Average λ.
pub fn run_lambda_figure(topo: &Topology, cfg: &HarnessConfig, fig_no: u8) -> FigureResult {
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        if cfg.verbose {
            eprintln!("[fig{fig_no}] {} …", kind.name());
        }
        let inst = instance_for(topo, kind, cfg, true);
        let sched = Scheduler::new(Algorithm::LpHeuristic).with_horizon(HORIZON);
        let lp = sched
            .relax(&inst, &Routing::FreePath)
            .expect("relaxation solves");
        let heuristic = coflow_core::heuristic::lp_heuristic(
            &inst,
            &lp.plan,
            StretchOptions::default(),
        );
        let h_cost = heuristic
            .completions(&inst)
            .expect("heuristic schedules complete")
            .weighted_total;
        let sweep = lambda_sweep(&inst, &lp.plan, cfg.samples, cfg.seed, StretchOptions::default());
        rows.push(FigureRow {
            label: kind.name().to_string(),
            values: vec![
                lp.objective,
                h_cost,
                sweep.best().weighted_cost,
                sweep.average(),
            ],
        });
    }
    FigureResult {
        title: format!(
            "Figure {fig_no}: Free path model on {} — weighted completion time (less is better)",
            topo.name
        ),
        notes: format!(
            "{} jobs/workload, seed {}, {} lambda samples, 50 s slots",
            cfg.jobs, cfg.seed, cfg.samples
        ),
        series_names: vec![
            "LP(lower bound)".into(),
            "Heuristic(λ=1.0)".into(),
            "Best λ".into(),
            "Average λ".into(),
        ],
        rows,
    }
}

/// Figure 8: effect of the interval parameter ε (free path, FB on SWAN).
/// Series: interval LP lower bound and its λ=1 heuristic, per ε.
pub fn run_epsilon_figure(topo: &Topology, cfg: &HarnessConfig) -> FigureResult {
    let inst = instance_for(topo, WorkloadKind::Facebook, cfg, true);
    let t = horizon(&inst, &Routing::FreePath, HORIZON).expect("horizon");
    let mut rows = Vec::new();
    for k in 1..=10 {
        let epsilon = k as f64 / 10.0;
        if cfg.verbose {
            eprintln!("[fig8] ε = {epsilon} …");
        }
        let rel = solve_interval(
            &inst,
            &Routing::FreePath,
            t,
            epsilon,
            &SolverOptions::default(),
        )
        .expect("interval LP solves");
        let heuristic = coflow_core::heuristic::lp_heuristic(
            &inst,
            &rel.lp.plan,
            StretchOptions::default(),
        );
        let h_cost = heuristic
            .completions(&inst)
            .expect("heuristic schedules complete")
            .weighted_total;
        rows.push(FigureRow {
            label: format!("ε={epsilon:.1}"),
            values: vec![rel.lp.objective, h_cost],
        });
    }
    FigureResult {
        title: format!(
            "Figure 8: Free path model on {} (workload FB) — interval parameter ε sweep",
            topo.name
        ),
        notes: format!("{} jobs, seed {}, 50 s slots", cfg.jobs, cfg.seed),
        series_names: vec![
            "Time interval LP(lower bound)".into(),
            "heuristic(λ=1.0)".into(),
        ],
        rows,
    }
}

/// Figures 9 and 10: single-path model with random shortest paths.
/// Series: time-indexed LP + heuristic, interval LP (ε=0.2) + heuristic,
/// Jahanjou et al. (ε=0.5436, strict α-point batches).
pub fn run_single_path_figure(topo: &Topology, cfg: &HarnessConfig, fig_no: u8) -> FigureResult {
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        if cfg.verbose {
            eprintln!("[fig{fig_no}] {} …", kind.name());
        }
        let inst = instance_for(topo, kind, cfg, true);
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1000));
        let r = routing::random_shortest_paths(&inst, &mut rng).expect("paths exist");
        let t = horizon(&inst, &r, HORIZON).expect("horizon");

        // Time-indexed LP + λ=1 heuristic.
        let ti = coflow_core::timeidx::solve_time_indexed(
            &inst,
            &r,
            t,
            &SolverOptions::default(),
        )
        .expect("time-indexed LP solves");
        let ti_h = coflow_core::heuristic::lp_heuristic(
            &inst,
            &ti.plan,
            StretchOptions::default(),
        );
        let ti_h_cost = ti_h
            .completions(&inst)
            .expect("complete")
            .weighted_total;

        // Interval LP (ε = 0.2) + λ=1 heuristic.
        let iv = solve_interval(&inst, &r, t, 0.2, &SolverOptions::default())
            .expect("interval LP solves");
        let iv_h = coflow_core::heuristic::lp_heuristic(
            &inst,
            &iv.lp.plan,
            StretchOptions::default(),
        );
        let iv_h_cost = iv_h
            .completions(&inst)
            .expect("complete")
            .weighted_total;

        // Jahanjou et al. at their optimized ε.
        let jj = jahanjou_schedule(
            &inst,
            &r,
            t,
            &JahanjouConfig {
                epsilon: EPSILON_OPT,
                ..Default::default()
            },
            &SolverOptions::default(),
        )
        .expect("baseline runs");
        let jj_cost = validate(&inst, &r, &jj.schedule, Tolerance::default())
            .expect("baseline schedule feasible")
            .completions
            .weighted_total;

        rows.push(FigureRow {
            label: kind.name().to_string(),
            values: vec![ti.objective, ti_h_cost, iv.lp.objective, iv_h_cost, jj_cost],
        });
    }
    FigureResult {
        title: format!(
            "Figure {fig_no}: Single path model on {} — weighted completion time (less is better)",
            topo.name
        ),
        notes: format!(
            "{} jobs/workload, seed {}, random shortest paths, 50 s slots",
            cfg.jobs, cfg.seed
        ),
        series_names: vec![
            "Time indexed LP(lower bound)".into(),
            "heuristic(λ=1.0)".into(),
            "Time interval LP(lower bound, ε=0.2)".into(),
            "interval heuristic(λ=1.0)".into(),
            "Jahanjou et al.".into(),
        ],
        rows,
    }
}

/// Figures 11 and 12: free-path model, unweighted (all weights 1), with
/// Terra. Values are *total* completion times.
pub fn run_free_unweighted_figure(
    topo: &Topology,
    cfg: &HarnessConfig,
    fig_no: u8,
) -> FigureResult {
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        if cfg.verbose {
            eprintln!("[fig{fig_no}] {} …", kind.name());
        }
        let inst = instance_for(topo, kind, cfg, false);
        let sched = Scheduler::new(Algorithm::LpHeuristic).with_horizon(HORIZON);
        let lp = sched
            .relax(&inst, &Routing::FreePath)
            .expect("relaxation solves");
        let heuristic = coflow_core::heuristic::lp_heuristic(
            &inst,
            &lp.plan,
            StretchOptions::default(),
        );
        let h_cost = heuristic
            .completions(&inst)
            .expect("complete")
            .unweighted_total;
        let sweep = lambda_sweep(&inst, &lp.plan, cfg.samples, cfg.seed, StretchOptions::default());
        let best = sweep
            .samples
            .iter()
            .map(|s| s.unweighted_cost)
            .fold(f64::INFINITY, f64::min);
        let terra = terra_offline(&inst).expect("terra runs");
        let terra_cost = validate(
            &inst,
            &Routing::FreePath,
            &terra.schedule,
            Tolerance::default(),
        )
        .expect("terra schedule feasible")
        .completions
        .unweighted_total;
        rows.push(FigureRow {
            label: kind.name().to_string(),
            values: vec![
                lp.objective, // weights are all 1, so this is the total-CCT bound
                h_cost,
                best,
                sweep.average_unweighted(),
                terra_cost,
            ],
        });
    }
    FigureResult {
        title: format!(
            "Figure {fig_no}: Free path model with no weight on {} — total completion time (less is better)",
            topo.name
        ),
        notes: format!(
            "{} jobs/workload, seed {}, {} lambda samples, unit weights",
            cfg.jobs, cfg.seed, cfg.samples
        ),
        series_names: vec![
            "Time indexed LP(lower bound)".into(),
            "heuristic(λ=1.0)".into(),
            "Best λ".into(),
            "Average λ".into(),
            "Terra".into(),
        ],
        rows,
    }
}

/// Slot-length ablation: §6.1 "Time Index" — "if the length of a time
/// slot is shorter, we get more accurate answers, but need to solve a
/// larger LP". Rows are slot lengths in seconds; series report the LP
/// size, the bound, and the heuristic cost (all costs rescaled to
/// 50-second-slot units so rows are comparable).
pub fn run_slot_length_ablation(topo: &Topology, cfg: &HarnessConfig) -> FigureResult {
    let mut rows = Vec::new();
    for slot_seconds in [200.0, 100.0, 50.0, 25.0] {
        if cfg.verbose {
            eprintln!("[slotlen] {slot_seconds} s …");
        }
        let wl = WorkloadConfig {
            kind: WorkloadKind::Facebook,
            num_jobs: cfg.jobs,
            seed: cfg.seed,
            slot_seconds,
            // Keep *wall-clock* arrivals fixed: the mean interarrival in
            // slots scales inversely with the slot length.
            mean_interarrival_slots: cfg.mean_interarrival * 50.0 / slot_seconds,
            weighted: true,
            demand_scale: 1.0,
        };
        let inst = build_instance(topo, &wl).expect("workload placement validates");
        let sched = Scheduler::new(Algorithm::LpHeuristic).with_horizon(HORIZON);
        let lp = sched
            .relax(&inst, &Routing::FreePath)
            .expect("relaxation solves");
        let h = coflow_core::heuristic::lp_heuristic(&inst, &lp.plan, StretchOptions::default());
        let h_cost = h.completions(&inst).expect("complete").weighted_total;
        // Rescale slot-unit costs to the common 50 s yardstick.
        let to_50s = slot_seconds / 50.0;
        rows.push(FigureRow {
            label: format!("{slot_seconds:.0} s"),
            values: vec![
                lp.objective * to_50s,
                h_cost * to_50s,
                lp.size.rows as f64,
                lp.size.cols as f64,
                lp.lp_iterations as f64,
            ],
        });
    }
    FigureResult {
        title: format!(
            "Slot-length ablation: free path, FB on {} — accuracy vs LP size (§6.1 Time Index)",
            topo.name
        ),
        notes: format!(
            "{} jobs, seed {}; costs rescaled to 50 s-slot units, so smaller slots \
             should tighten the bound while rows/cols grow",
            cfg.jobs, cfg.seed
        ),
        series_names: vec![
            "LP(lower bound, 50s units)".into(),
            "heuristic(λ=1.0, 50s units)".into(),
            "LP rows".into(),
            "LP cols".into(),
            "simplex iterations".into(),
        ],
        rows,
    }
}

/// Ordering ablation (not a paper figure): how far do LP-free
/// combinatorial orderings get on the single-path model? Series: the
/// time-indexed LP bound, the λ=1 heuristic, the exact-best-λ pure
/// Stretch (derandomized), the primal-dual/BSSI ordering, and weighted
/// SJF.
pub fn run_ordering_ablation(topo: &Topology, cfg: &HarnessConfig) -> FigureResult {
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        if cfg.verbose {
            eprintln!("[ordering] {} …", kind.name());
        }
        let inst = instance_for(topo, kind, cfg, true);
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1000));
        let r = routing::random_shortest_paths(&inst, &mut rng).expect("paths exist");
        let t = horizon(&inst, &r, HORIZON).expect("horizon");
        let lp =
            coflow_core::timeidx::solve_time_indexed(&inst, &r, t, &SolverOptions::default())
                .expect("time-indexed LP solves");
        let h = coflow_core::heuristic::lp_heuristic(&inst, &lp.plan, StretchOptions::default());
        let h_cost = h.completions(&inst).expect("complete").weighted_total;
        let d = coflow_core::derand::derandomize(&inst, &lp.plan);
        let pd = coflow_baselines::primal_dual::primal_dual(&inst, &r).expect("runs");
        let pd_cost = validate(&inst, &r, &pd, Tolerance::default())
            .expect("primal-dual schedule feasible")
            .completions
            .weighted_total;
        let sjf = coflow_baselines::sjf::weighted_sjf(&inst, &r).expect("runs");
        let sjf_cost = validate(&inst, &r, &sjf, Tolerance::default())
            .expect("sjf schedule feasible")
            .completions
            .weighted_total;
        rows.push(FigureRow {
            label: kind.name().to_string(),
            values: vec![lp.objective, h_cost, d.best_cost, pd_cost, sjf_cost],
        });
    }
    FigureResult {
        title: format!(
            "Ordering ablation: single path on {} — LP methods vs LP-free orderings (less is better)",
            topo.name
        ),
        notes: format!(
            "{} jobs/workload, seed {}, random shortest paths; derand = exact best-λ \
             pure Stretch (no compaction); primal-dual = BSSI on the edge-machine open shop",
            cfg.jobs, cfg.seed
        ),
        series_names: vec![
            "Time indexed LP(lower bound)".into(),
            "heuristic(λ=1.0)".into(),
            "Derandomized best λ".into(),
            "Primal-dual (BSSI)".into(),
            "Weighted SJF".into(),
        ],
        rows,
    }
}

/// Online ablation (the paper's §7 direction): offline bound and
/// heuristic vs the event-driven re-solver and the doubling-batch
/// framework, free-path model with Poisson releases.
pub fn run_online_ablation(topo: &Topology, cfg: &HarnessConfig) -> FigureResult {
    let mut rows = Vec::new();
    let mut notes_extra = String::new();
    for kind in WorkloadKind::ALL {
        if cfg.verbose {
            eprintln!("[online] {} …", kind.name());
        }
        let inst = instance_for(topo, kind, cfg, true);
        let sched = Scheduler::new(Algorithm::LpHeuristic).with_horizon(HORIZON);
        let lp = sched
            .relax(&inst, &Routing::FreePath)
            .expect("relaxation solves");
        let h = coflow_core::heuristic::lp_heuristic(&inst, &lp.plan, StretchOptions::default());
        let h_cost = h.completions(&inst).expect("complete").weighted_total;
        let online =
            coflow_core::online::online_heuristic(&inst, &Routing::FreePath, &SolverOptions::default())
                .expect("online runs");
        let online_cost = validate(&inst, &Routing::FreePath, &online.schedule, Tolerance::default())
            .expect("online schedule feasible")
            .completions
            .weighted_total;
        let batched = coflow_core::flowtime::interval_batch_online(
            &inst,
            &Routing::FreePath,
            &SolverOptions::default(),
        )
        .expect("batch online runs");
        let batch_cost = validate(
            &inst,
            &Routing::FreePath,
            &batched.schedule,
            Tolerance::default(),
        )
        .expect("batched schedule feasible")
        .completions
        .weighted_total;
        notes_extra.push_str(&format!(
            " {}: {} re-solves vs {} batches.",
            kind.name(),
            online.resolves,
            batched.batches
        ));
        rows.push(FigureRow {
            label: kind.name().to_string(),
            values: vec![lp.objective, h_cost, online_cost, batch_cost],
        });
    }
    FigureResult {
        title: format!(
            "Online ablation: free path on {} — clairvoyant offline vs online frameworks (less is better)",
            topo.name
        ),
        notes: format!(
            "{} jobs/workload, seed {}, Poisson releases (mean interarrival {} slots). \
             Offline knows all arrivals; online algorithms learn them at release.{notes_extra}",
            cfg.jobs, cfg.seed, cfg.mean_interarrival
        ),
        series_names: vec![
            "Offline LP(lower bound)".into(),
            "Offline heuristic(λ=1.0)".into(),
            "Online re-solving".into(),
            "Doubling batches".into(),
        ],
        rows,
    }
}

/// The core invariant every figure must satisfy: no algorithm beats the
/// LP lower bound of its own relaxation. Called by binaries after
/// computing a figure; panics on violation (a violation means a bug, and
/// a figure built on it would be garbage).
pub fn assert_sound(fig: &FigureResult, lower_bound_col: usize, algo_cols: &[usize]) {
    for row in &fig.rows {
        let lb = row.values[lower_bound_col];
        for &c in algo_cols {
            let v = row.values[c];
            assert!(
                v >= lb - 1e-6 * (1.0 + lb.abs()),
                "{}: series {c} ({v}) beats the lower bound ({lb})",
                row.label
            );
        }
    }
}
