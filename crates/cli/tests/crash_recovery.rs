//! Crash-recovery golden tests against the real binary: `coflow serve
//! --journal DIR` is SIGKILLed mid-trace, restarted with `--recover`,
//! and fed the rest of the stream. The recovered run's per-epoch
//! objective sequence and final `DONE` objective must match an
//! uninterrupted run's at 1e-6 — over stdin and over TCP.
//!
//! Synchronization: the journal commits (flushes a `STATE` marker)
//! after every processed round, so the test polls the journal file for
//! the expected number of commit markers before killing. The kill is
//! `Child::kill`, which is SIGKILL on Unix — no shutdown handler runs.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn coflow() -> Command {
    Command::new(env!("CARGO_BIN_EXE_coflow"))
}

fn fixture() -> Vec<String> {
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../workloads/fixtures/fb2010_sample.txt");
    std::fs::read_to_string(&path)
        .expect("bundled fb2010 fixture")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_string)
        .collect()
}

fn journal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("coflow-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("journal dir");
    dir
}

/// Polls until the tenant journal holds at least `commits` flushed
/// `STATE` markers (HELLO + one per processed round).
fn wait_for_commits(dir: &std::path::Path, commits: usize) {
    let path = dir.join("default.journal");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let seen = std::fs::read_to_string(&path)
            .map(|s| s.lines().filter(|l| l.starts_with("STATE ")).count())
            .unwrap_or(0);
        if seen >= commits {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {commits} journal commits (saw {seen})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn epoch_objectives(out: &str) -> Vec<(usize, f64)> {
    out.lines()
        .filter(|l| l.starts_with("EPOCH tenant=default "))
        .map(|l| {
            let field = |key: &str| {
                l.split_whitespace()
                    .find_map(|tok| tok.strip_prefix(key))
                    .unwrap_or_else(|| panic!("{key} missing in {l}"))
            };
            (
                field("epoch=").parse().expect("epoch index"),
                field("objective=").parse().expect("epoch objective"),
            )
        })
        .collect()
}

fn done_objective(out: &str) -> f64 {
    out.lines()
        .find(|l| l.starts_with("DONE tenant=default "))
        .unwrap_or_else(|| panic!("no DONE line in:\n{out}"))
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("objective="))
        .expect("DONE objective")
        .parse()
        .expect("DONE objective parses")
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + b.abs())
}

fn assert_same_trajectory(golden: &str, recovered: &str) {
    let g = epoch_objectives(golden);
    let r = epoch_objectives(recovered);
    assert!(!g.is_empty(), "golden run produced no epochs:\n{golden}");
    assert_eq!(
        g.len(),
        r.len(),
        "epoch counts diverged\ngolden:\n{golden}\nrecovered:\n{recovered}"
    );
    for ((ge, go), (re, ro)) in g.iter().zip(&r) {
        assert_eq!(ge, re, "epoch indices diverged");
        assert!(close(*ro, *go), "epoch {ge}: golden {go} vs recovered {ro}");
    }
    assert!(
        close(done_objective(recovered), done_objective(golden)),
        "DONE objectives diverged\ngolden:\n{golden}\nrecovered:\n{recovered}"
    );
}

/// The uninterrupted reference run (plain stdin, no journal).
fn golden_run(input: &str) -> String {
    let mut child = coflow()
        .args(["serve"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("trace feeds");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success());
    String::from_utf8_lossy(&out.stdout).into_owned()
}

const TAKE: usize = 12; // coflows replayed (of the fixture's 20)
const CUT: usize = 6; // coflows delivered before the kill

#[test]
fn sigkill_mid_stdin_stream_then_recover_matches_golden() {
    let lines = fixture();
    let full = &lines[..=TAKE];
    let golden = golden_run(&format!("{}\n", full.join("\n")));

    // Phase 1: journaled serve on stdin, killed after CUT coflows
    // committed.
    let dir = journal_dir("stdin");
    let mut child = coflow()
        .args(["serve", "--journal", dir.to_str().expect("utf8 path")])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    let mut stdin = child.stdin.take().expect("stdin piped");
    for line in &full[..=CUT] {
        writeln!(stdin, "{line}").expect("line feeds");
    }
    stdin.flush().expect("flush");
    wait_for_commits(&dir, CUT + 1); // HELLO + CUT rounds
    kill9(&mut child);

    // Phase 2: recover and feed the rest of the stream.
    let mut rest = format!("{}\n", full[0]); // re-HELLO via the header
    for line in &full[CUT + 1..] {
        rest.push_str(line);
        rest.push('\n');
    }
    let mut child = coflow()
        .args([
            "serve",
            "--journal",
            dir.to_str().expect("utf8 path"),
            "--recover",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(rest.as_bytes())
        .expect("rest feeds");
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success());
    let recovered = String::from_utf8_lossy(&out.stdout).into_owned();

    assert!(
        recovered.contains(&format!("recovered=1 arrivals={CUT}")),
        "{recovered}"
    );
    assert_same_trajectory(&golden, &recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_mid_tcp_stream_then_recover_matches_golden() {
    let lines = fixture();
    let full = &lines[..=TAKE];
    let golden = golden_run(&format!("{}\n", full.join("\n")));

    // Phase 1: TCP daemon with a journal, killed mid-connection.
    let dir = journal_dir("tcp");
    let (mut child, addr) = spawn_tcp(&dir, false);
    {
        let mut stream = TcpStream::connect(&addr).expect("connects");
        for line in &full[..=CUT] {
            writeln!(stream, "{line}").expect("line sends");
        }
        stream.flush().expect("flush");
        wait_for_commits(&dir, CUT + 1);
        kill9(&mut child);
    }

    // Phase 2: a recovering daemon, the rest of the stream, BYE.
    let (mut child, addr) = spawn_tcp(&dir, true);
    let mut stream = TcpStream::connect(&addr).expect("connects");
    writeln!(stream, "{}", full[0]).expect("re-HELLO sends");
    for line in &full[CUT + 1..] {
        writeln!(stream, "{line}").expect("line sends");
    }
    writeln!(stream, "BYE").expect("BYE sends");
    stream.flush().expect("flush");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut recovered = String::new();
    stream
        .read_to_string(&mut recovered)
        .expect("responses drain");
    kill9(&mut child);

    assert!(
        recovered.contains(&format!("recovered=1 arrivals={CUT}")),
        "{recovered}"
    );
    assert_same_trajectory(&golden, &recovered);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns `serve --listen 127.0.0.1:0` and reads the bound address off
/// the `LISTENING` line.
fn spawn_tcp(dir: &std::path::Path, recover: bool) -> (Child, String) {
    let mut args = vec![
        "serve".to_string(),
        "--listen".to_string(),
        "127.0.0.1:0".to_string(),
        "--journal".to_string(),
        dir.to_str().expect("utf8 path").to_string(),
    ];
    if recover {
        args.push("--recover".to_string());
    }
    let mut child = coflow()
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let listening = lines
        .next()
        .expect("LISTENING line")
        .expect("stdout readable");
    let addr = listening
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected banner {listening:?}"))
        .to_string();
    // Keep draining stdout in the background so the daemon never blocks
    // on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn kill9(child: &mut Child) {
    child.kill().expect("SIGKILL lands");
    let _ = child.wait();
}
