//! End-to-end tests spawning the actual `coflow` binary: generate →
//! info → solve pipelines over a temp directory.

use std::path::PathBuf;
use std::process::Command;

fn coflow() -> Command {
    Command::new(env!("CARGO_BIN_EXE_coflow"))
}

fn temp_file(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("coflow-cli-test-{}-{name}", std::process::id()));
    p
}

fn run(cmd: &mut Command) -> (String, String) {
    let out = cmd.output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "command failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    (stdout, stderr)
}

#[test]
fn generate_info_solve_roundtrip() {
    let file = temp_file("roundtrip.coflow");
    let _ = std::fs::remove_file(&file);

    let (_, gen_err) = run(coflow().args([
        "generate",
        "--topology",
        "fig2",
        "--workload",
        "fb",
        "--jobs",
        "4",
        "--seed",
        "3",
        "--interarrival",
        "0",
        "--demand-scale",
        "0.02",
        "--output",
        file.to_str().unwrap(),
    ]));
    assert!(gen_err.contains("generated 4 coflows"), "{gen_err}");

    let (info_out, _) = run(coflow().args(["info", file.to_str().unwrap()]));
    assert!(info_out.contains("coflows        4"), "{info_out}");
    assert!(info_out.contains("nodes          5"), "{info_out}");

    let (solve_out, _) = run(coflow().args([
        "solve",
        file.to_str().unwrap(),
        "--model",
        "free",
        "--algorithm",
        "heuristic",
    ]));
    assert!(solve_out.contains("lp bound"), "{solve_out}");
    assert!(solve_out.contains("cost"), "{solve_out}");
    // cost/bound ratio is printed and at least 1.
    let ratio_line = solve_out
        .lines()
        .find(|l| l.starts_with("ratio"))
        .expect("ratio line");
    let ratio: f64 = ratio_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(ratio >= 1.0 - 1e-9, "{ratio_line}");

    let _ = std::fs::remove_file(&file);
}

#[test]
fn stdin_stdout_piping_works() {
    // generate to stdout, solve from stdin.
    let gen = coflow()
        .args([
            "generate",
            "--topology",
            "fig2",
            "--jobs",
            "3",
            "--seed",
            "5",
            "--interarrival",
            "0",
            "--demand-scale",
            "0.02",
        ])
        .output()
        .expect("runs");
    assert!(gen.status.success());
    let text = String::from_utf8_lossy(&gen.stdout).into_owned();
    assert!(text.starts_with("coflow-instance v1"), "{text}");

    use std::io::Write;
    let mut child = coflow()
        .args(["solve", "-", "--algorithm", "lambda", "--lambda", "0.8"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawns");
    child
        .stdin
        .take()
        .expect("piped")
        .write_all(text.as_bytes())
        .expect("writes");
    let out = child.wait_with_output().expect("finishes");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("lp bound"), "{stdout}");
}

#[test]
fn every_algorithm_runs_on_a_tiny_instance() {
    let file = temp_file("algos.coflow");
    run(coflow().args([
        "generate",
        "--topology",
        "swan",
        "--jobs",
        "3",
        "--seed",
        "7",
        "--interarrival",
        "0.5",
        "--demand-scale",
        "0.01",
        "--output",
        file.to_str().unwrap(),
    ]));
    for (model, algo) in [
        ("free", "heuristic"),
        ("free", "stretch"),
        ("free", "derand"),
        ("free", "batch-online"),
        ("free", "sjf"),
        ("single", "primal-dual"),
        ("single", "heuristic"),
        ("multi", "heuristic"),
    ] {
        let (out, _) = run(coflow().args([
            "solve",
            file.to_str().unwrap(),
            "--model",
            model,
            "--algorithm",
            algo,
            "--samples",
            "5",
        ]));
        assert!(out.contains("cost"), "{model}/{algo}: {out}");
    }
    let _ = std::fs::remove_file(&file);
}

#[test]
fn algos_lists_the_registry() {
    let (out, _) = run(coflow().arg("algos"));
    for name in [
        "heuristic",
        "stretch",
        "jahanjou",
        "terra",
        "primal-dual",
        "sjf",
        "weighted-sjf",
        "batch-online",
    ] {
        assert!(
            out.lines()
                .any(|l| l.split_whitespace().next() == Some(name)),
            "{name} missing from:\n{out}"
        );
    }
    // Capability columns are rendered.
    assert!(out.contains("lp-rounding"), "{out}");
    assert!(out.contains("single-path"), "{out}");
}

#[test]
fn algo_flag_dispatches_any_registry_name() {
    let file = temp_file("registry.coflow");
    run(coflow().args([
        "generate",
        "--topology",
        "swan",
        "--jobs",
        "3",
        "--seed",
        "11",
        "--interarrival",
        "0.5",
        "--demand-scale",
        "0.01",
        "--output",
        file.to_str().unwrap(),
    ]));
    for (model, algo) in [
        ("free", "terra"),
        ("free", "sjf"),
        ("single", "jahanjou"),
        ("single", "jahanjou-wc"),
        ("free", "interval-heuristic"),
        ("free", "online"),
    ] {
        let (out, _) = run(coflow().args([
            "solve",
            file.to_str().unwrap(),
            "--model",
            model,
            "--algo",
            algo,
        ]));
        assert!(out.contains("cost"), "{model}/{algo}: {out}");
        assert!(out.contains("lp bound"), "{model}/{algo}: {out}");
    }
    // Capability mismatches fail loudly instead of mis-scheduling.
    let out = coflow()
        .args([
            "solve",
            file.to_str().unwrap(),
            "--model",
            "free",
            "--algo",
            "jahanjou",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("single-path"));
    // Unknown names point at the listing.
    let out = coflow()
        .args([
            "solve",
            file.to_str().unwrap(),
            "--algo",
            "no-such-algorithm",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("coflow algos"));
    // Out-of-range --alpha is a clean error, not a panic.
    let out = coflow()
        .args([
            "solve",
            file.to_str().unwrap(),
            "--model",
            "single",
            "--algo",
            "jahanjou",
            "--alpha",
            "1.5",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--alpha"));
    let _ = std::fs::remove_file(&file);
}

/// The bundled FB2010-format sample trace (also embedded as
/// `coflow_workloads::trace::FB2010_SAMPLE`).
const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../workloads/fixtures/fb2010_sample.txt"
);

#[test]
fn trace_summarize_reports_the_fixture() {
    let (out, _) = run(coflow().args(["trace", "summarize", FIXTURE]));
    assert!(out.contains("ports          16"), "{out}");
    assert!(out.contains("coflows        20"), "{out}");
    assert!(out.contains("flows          58"), "{out}");
    assert!(out.contains("1-based"), "{out}");
}

#[test]
fn trace_convert_produces_a_solvable_instance() {
    let file = temp_file("trace-convert.coflow");
    // --seed is a shared replay knob and must be accepted even with the
    // default unit weights (regression: it was only consumed by
    // --weights uniform).
    run(coflow().args([
        "trace",
        "convert",
        FIXTURE,
        "--limit",
        "6",
        "--seed",
        "5",
        "--output",
        file.to_str().unwrap(),
    ]));
    let (out, _) = run(coflow().args(["info", file.to_str().unwrap()]));
    assert!(out.contains("coflows        6"), "{out}");
    let (out, _) = run(coflow().args(["solve", file.to_str().unwrap(), "--algo", "weighted-sjf"]));
    assert!(out.contains("cost"), "{out}");
    let _ = std::fs::remove_file(&file);
}

#[test]
fn trace_replay_auto_model_covers_every_registry_entry() {
    // The acceptance contract: `coflow trace replay --algo NAME` must
    // produce a validated schedule for every registry entry, with
    // `--model auto` resolving each entry's routing capability.
    for entry in coflow_baselines::registry::all() {
        let (out, _) = run(coflow().args([
            "trace",
            "replay",
            FIXTURE,
            "--algo",
            entry.name,
            "--limit",
            "6",
            "--samples",
            "3",
        ]));
        assert!(out.contains("cost"), "{}: {out}", entry.name);
        assert!(out.contains("lp bound"), "{}: {out}", entry.name);
        // Solvers never beat the LP bound of their own model.
        let ratio_line = out
            .lines()
            .find(|l| l.starts_with("ratio"))
            .unwrap_or_else(|| panic!("{}: no ratio in {out}", entry.name));
        let ratio: f64 = ratio_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!(ratio >= 1.0 - 1e-6, "{}: {ratio_line}", entry.name);
    }
}

#[test]
fn trace_replay_on_wan_and_with_uniform_weights() {
    let (out, _) = run(coflow().args([
        "trace",
        "replay",
        FIXTURE,
        "--on",
        "swan",
        "--algo",
        "weighted-sjf",
        "--weights",
        "uniform",
        "--limit",
        "8",
    ]));
    assert!(out.contains("model          free (auto)"), "{out}");
    // Bad trace inputs fail with line numbers.
    use std::io::Write;
    let mut child = coflow()
        .args(["trace", "summarize", "-"])
        .stdin(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawns");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"4 1\n1 0 1 9 1 1:5\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("line 2"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn scenario_generation_covers_the_library() {
    for scenario in ["incast", "broadcast", "shuffle", "allreduce", "hotspot"] {
        let file = temp_file(&format!("scen-{scenario}.coflow"));
        let (_, gen_err) = run(coflow().args([
            "generate",
            "--scenario",
            scenario,
            "--topology",
            "gscale",
            "--jobs",
            "3",
            "--seed",
            "5",
            "--demand-scale",
            "0.02",
            "--output",
            file.to_str().unwrap(),
        ]));
        assert!(gen_err.contains("generated"), "{scenario}: {gen_err}");
        let (out, _) = run(coflow().args(["solve", file.to_str().unwrap(), "--algo", "heuristic"]));
        assert!(out.contains("lp bound"), "{scenario}: {out}");
        let _ = std::fs::remove_file(&file);
    }
    // Shuffle emits one coflow per stage.
    let file = temp_file("scen-stages.coflow");
    run(coflow().args([
        "generate",
        "--scenario",
        "shuffle",
        "--stages",
        "4",
        "--jobs",
        "2",
        "--demand-scale",
        "0.02",
        "--output",
        file.to_str().unwrap(),
    ]));
    let (out, _) = run(coflow().args(["info", file.to_str().unwrap()]));
    assert!(out.contains("coflows        8"), "{out}");
    let _ = std::fs::remove_file(&file);
    // Unknown scenario names fail loudly.
    let out = coflow()
        .args(["generate", "--scenario", "gossip"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown scenario"));
}

#[test]
fn bad_inputs_fail_cleanly() {
    // Unknown command.
    let out = coflow().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    // Unknown topology.
    let out = coflow()
        .args(["generate", "--topology", "atlantis"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown topology"));
    // Unknown flag.
    let out = coflow()
        .args(["generate", "--bogus", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
    // Missing file.
    let out = coflow()
        .args(["info", "/nonexistent/path.coflow"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn serve_replays_a_trace_from_stdin() {
    use std::io::Write;
    // The implicit-HELLO path: the raw fixture (header + coflow lines)
    // is a complete session, and EOF is a clean shutdown.
    let text = std::fs::read_to_string(FIXTURE).expect("fixture readable");
    let mut child = coflow()
        .args(["serve", "--stdin", "--threads", "2"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawns");
    child
        .stdin
        .take()
        .expect("piped")
        .write_all(text.as_bytes())
        .expect("writes");
    let out = child.wait_with_output().expect("finishes");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OK tenant=default ports=16"), "{stdout}");
    assert!(stdout.contains("EPOCH tenant=default"), "{stdout}");
    assert!(
        stdout.contains("DONE tenant=default admitted=20 objective="),
        "{stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("1 tenants, 20 coflows, 0 errors"),
        "{stderr}"
    );
}

#[test]
fn serve_and_feed_over_tcp() {
    use std::io::BufRead;
    let mut server = coflow()
        .args(["serve", "--listen", "127.0.0.1:0", "--threads", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("server spawns");
    // The daemon prints `LISTENING <addr>` once the socket is bound.
    let mut server_out = std::io::BufReader::new(server.stdout.take().expect("piped"));
    let mut banner = String::new();
    server_out.read_line(&mut banner).expect("banner");
    let addr = banner
        .trim()
        .strip_prefix("LISTENING ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    let (out, err) = run(coflow().args([
        "feed",
        FIXTURE,
        "--addr",
        &addr,
        "--tenant",
        "e2e",
        "--limit",
        "8",
        "--shadow-cold",
    ]));
    assert!(out.contains("OK tenant=e2e ports=16"), "{out}");
    assert!(out.contains("EPOCH tenant=e2e"), "{out}");
    assert!(out.contains("cold-iters="), "{out}");
    assert!(
        out.contains("DONE tenant=e2e admitted=8 objective="),
        "{out}"
    );
    assert!(err.contains("sent 8 coflows"), "{err}");

    server.kill().expect("server stops");
    server.wait().expect("server reaped");
}
