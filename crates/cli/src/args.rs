//! Tiny flag parser shared by the subcommands (same conventions as the
//! bench harness: `--flag value`, unknown flags abort loudly).

use std::collections::BTreeMap;

/// Parsed command line: positional arguments plus `--key value` /
/// `--switch` options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    options: BTreeMap<String, String>,
    switches: Vec<String>,
    /// Flags the command actually consumed (for unknown-flag errors).
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Flags that never take a value.
const SWITCHES: &[&str] = &[
    "--unweighted",
    "--verbose",
    "--compact-off",
    "--cold",
    "--stdin",
    "--plans",
    "--shadow-cold",
    "--recover",
    "--fallback",
];

impl Args {
    /// Parses raw arguments (without the program/subcommand names).
    ///
    /// # Errors
    ///
    /// A human-readable message when a value flag is missing its value.
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let mut a = Args::default();
        let mut i = 0;
        while i < raw.len() {
            let tok = &raw[i];
            if let Some(flag) = tok.strip_prefix("--") {
                if SWITCHES.contains(&tok.as_str()) {
                    a.switches.push(tok.clone());
                } else {
                    i += 1;
                    let val = raw
                        .get(i)
                        .ok_or_else(|| format!("--{flag} requires a value"))?;
                    a.options.insert(flag.to_string(), val.clone());
                }
            } else {
                a.positional.push(tok.clone());
            }
            i += 1;
        }
        Ok(a)
    }

    /// Value of `--name`, parsed, or the default.
    ///
    /// # Errors
    ///
    /// When the value is present but unparsable.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        self.consumed.borrow_mut().push(name.to_string());
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }

    /// Whether switch `--name` was given.
    pub fn switch(&self, name: &str) -> bool {
        self.consumed
            .borrow_mut()
            .push(name.trim_start_matches('-').to_string());
        self.switches.iter().any(|s| s == name)
    }

    /// Errors out on any option the command never consumed — typos
    /// should not be silently ignored.
    ///
    /// # Errors
    ///
    /// Lists the unknown flags.
    pub fn finish(&self) -> Result<(), String> {
        let consumed = self.consumed.borrow();
        let unknown: Vec<&String> = self
            .options
            .keys()
            .filter(|k| !consumed.iter().any(|c| c == *k))
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "unknown option(s): {}",
                unknown
                    .iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn mixed_positionals_options_switches() {
        let a = Args::parse(&raw("input.coflow --jobs 20 --unweighted --seed 7")).unwrap();
        assert_eq!(a.positional, vec!["input.coflow"]);
        assert_eq!(a.get::<usize>("jobs", 0).unwrap(), 20);
        assert_eq!(a.get::<u64>("seed", 0).unwrap(), 7);
        assert!(a.switch("--unweighted"));
        assert!(!a.switch("--verbose"));
        a.finish().unwrap();
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&raw("--jobs")).is_err());
    }

    #[test]
    fn unknown_flags_are_reported() {
        let a = Args::parse(&raw("--jobs 3 --bogus 1")).unwrap();
        let _ = a.get::<usize>("jobs", 0).unwrap();
        let err = a.finish().unwrap_err();
        assert!(err.contains("--bogus"), "{err}");
    }

    #[test]
    fn absent_options_fall_back_to_defaults() {
        let a = Args::parse(&raw("")).unwrap();
        assert_eq!(a.get::<f64>("scale", 2.5).unwrap(), 2.5);
    }

    #[test]
    fn unparsable_values_error() {
        let a = Args::parse(&raw("--jobs banana")).unwrap();
        assert!(a.get::<usize>("jobs", 1).is_err());
    }
}
