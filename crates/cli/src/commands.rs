//! The four subcommands: `generate`, `info`, `solve`, `algos`.
//!
//! `solve` dispatches through the algorithm registry
//! ([`coflow_baselines::registry`]): any registered name works with
//! `--algo NAME`, and `algos` prints the full table.

use crate::args::Args;
use coflow_baselines::registry::{self, AlgoParams};
use coflow_core::io::{read_instance, write_instance};
use coflow_core::model::CoflowInstance;
use coflow_core::routing::{self, Routing};
use coflow_core::solve::SolveContext;
use coflow_core::solver::Relaxation;
use coflow_netgraph::topology::{self, Topology};
use coflow_workloads::{build_instance, WorkloadConfig, WorkloadKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `coflow generate`: synthesize an instance file.
///
/// # Errors
///
/// Usage or generation problems, as a printable message.
pub fn generate(args: &Args) -> Result<(), String> {
    let topo = parse_topology(&args.get::<String>("topology", "swan".into())?)?;
    let kind = parse_workload(&args.get::<String>("workload", "fb".into())?)?;
    let cfg = WorkloadConfig {
        kind,
        num_jobs: args.get("jobs", 20)?,
        seed: args.get("seed", 1)?,
        slot_seconds: args.get("slot-seconds", 50.0)?,
        mean_interarrival_slots: args.get("interarrival", 1.0)?,
        weighted: !args.switch("--unweighted"),
        demand_scale: args.get("demand-scale", 0.05)?,
    };
    let output: String = args.get("output", "-".into())?;
    args.finish()?;

    let inst = build_instance(&topo, &cfg).map_err(|e| e.to_string())?;
    let text = write_instance(&inst).map_err(|e| e.to_string())?;
    emit(&output, &text)?;
    eprintln!(
        "generated {} coflows / {} flows on {} ({} nodes, {} edges)",
        inst.num_coflows(),
        inst.num_flows(),
        topo.name,
        inst.graph.node_count(),
        inst.graph.edge_count()
    );
    Ok(())
}

/// `coflow info FILE`: summarize an instance file.
///
/// # Errors
///
/// I/O or parse problems.
pub fn info(args: &Args) -> Result<(), String> {
    let inst = load(args)?;
    args.finish()?;
    let g = &inst.graph;
    let total_demand: f64 = inst.coflows.iter().map(|c| c.total_demand()).sum();
    let max_release = inst
        .coflows
        .iter()
        .map(|c| c.full_release())
        .max()
        .unwrap_or(0);
    let widths: Vec<usize> = inst.coflows.iter().map(|c| c.flows.len()).collect();
    let max_width = widths.iter().copied().max().unwrap_or(0);
    let singles = widths.iter().filter(|&&w| w == 1).count();
    println!("nodes          {}", g.node_count());
    println!("edges          {}", g.edge_count());
    println!(
        "capacity       min {} / max {}",
        g.min_capacity().unwrap_or(0.0),
        g.edges().map(|e| e.capacity).fold(0.0f64, f64::max)
    );
    println!("coflows        {}", inst.num_coflows());
    println!("flows          {}", inst.num_flows());
    println!("total demand   {total_demand:.3}");
    println!("max width      {max_width}");
    println!(
        "single-flow    {singles} ({:.0}%)",
        100.0 * singles as f64 / inst.num_coflows().max(1) as f64
    );
    println!("max release    {max_release}");
    Ok(())
}

/// `coflow algos`: print the algorithm registry.
///
/// # Errors
///
/// Unknown flags.
pub fn algos(args: &Args) -> Result<(), String> {
    args.finish()?;
    let entries = registry::all();
    let name_w = entries.iter().map(|e| e.name.len()).max().unwrap_or(4);
    println!(
        "{:<name_w$}  {:<11}  {:<11}  {:<8}  {:<3}  description",
        "name", "kind", "routing", "weighted", "lp",
    );
    for e in entries {
        println!(
            "{:<name_w$}  {:<11}  {:<11}  {:<8}  {:<3}  {}",
            e.name,
            e.kind.label(),
            e.caps.routing.label(),
            if e.caps.weighted { "yes" } else { "no" },
            if e.caps.lp_based { "yes" } else { "no" },
            e.description,
        );
    }
    println!("\nrun with: coflow solve FILE --algo NAME");
    Ok(())
}

/// `coflow solve FILE`: run any registered algorithm and report the
/// outcome against an LP lower bound.
///
/// # Errors
///
/// I/O, parse, routing, or solver problems.
pub fn solve(args: &Args) -> Result<(), String> {
    let inst = load(args)?;
    let model: String = args.get("model", "free".into())?;
    let algo_flag: String = args.get("algo", String::new())?;
    let algorithm: String = args.get("algorithm", "heuristic".into())?;
    let seed: u64 = args.get("seed", 1)?;
    let samples: usize = args.get("samples", 20)?;
    let lambda: f64 = args.get("lambda", 1.0)?;
    let k: usize = args.get("k", 3)?;
    let epsilon: f64 = args.get("epsilon", 0.0)?;
    let alpha: f64 = args.get("alpha", 0.5)?;
    args.finish()?;
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(format!("--alpha must lie in (0, 1], got {alpha}"));
    }

    let routing = match model.as_str() {
        "free" => Routing::FreePath,
        "single" => {
            let mut rng = StdRng::seed_from_u64(seed);
            routing::random_shortest_paths(&inst, &mut rng).map_err(|e| e.to_string())?
        }
        "multi" => routing::k_shortest_path_sets(&inst, k).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown model {other:?} (free|single|multi)")),
    };

    // `--algo` takes any registry name; the legacy `--algorithm`
    // spellings map onto registry names (with `--epsilon > 0` selecting
    // the interval-LP variants, as before).
    let name = if algo_flag.is_empty() {
        legacy_name(&algorithm, epsilon)?
    } else {
        algo_flag
    };
    let entry = registry::by_name(&name).ok_or(format!(
        "unknown algorithm {name:?} — run `coflow algos` for the list"
    ))?;
    let params = AlgoParams {
        samples,
        seed,
        lambda,
        epsilon: if epsilon > 0.0 {
            epsilon
        } else {
            AlgoParams::default().epsilon
        },
        jahanjou_epsilon: if epsilon > 0.0 {
            epsilon
        } else {
            AlgoParams::default().jahanjou_epsilon
        },
        alpha,
        ..Default::default()
    };

    println!("model          {model}");
    println!("algorithm      {}", entry.name);
    let mut ctx = SolveContext::new();
    let out = entry
        .build(&params)
        .solve(&inst, &routing, &mut ctx)
        .map_err(|e| e.to_string())?;

    // LP-free algorithms carry no bound of their own; report their cost
    // against the relaxation an LP method would solve on this instance
    // (cheap here: the context caches it for any later solve).
    let lower_bound = match out.lower_bound {
        Some(lb) => lb,
        None => {
            let relaxation = if epsilon > 0.0 {
                Relaxation::Interval { epsilon }
            } else {
                Relaxation::TimeIndexed
            };
            ctx.relaxation(&inst, &routing, relaxation)
                .map_err(|e| e.to_string())?
                .objective
        }
    };
    print_outcome(&inst, lower_bound, out.cost, &out.validation.completions);
    if let Some(size) = out.lp_size {
        println!("lp rows/cols   {} / {}", size.rows, size.cols);
    }
    if let Some(iters) = out.lp_iterations {
        println!("lp iterations  {iters}");
    }
    if let Some(sweep) = &out.sweep {
        println!("best lambda    {:.4}", sweep.best().lambda);
        println!("average cost   {:.3}", sweep.average());
    }
    for (key, value) in &out.aux {
        println!("{key:<14} {value:.6}");
    }
    Ok(())
}

/// Maps the pre-registry `--algorithm` spellings onto registry names.
fn legacy_name(algorithm: &str, epsilon: f64) -> Result<String, String> {
    let interval = epsilon > 0.0;
    Ok(match algorithm {
        "heuristic" if interval => "interval-heuristic",
        "heuristic" => "heuristic",
        "stretch" if interval => "interval-stretch",
        "stretch" => "stretch",
        "lambda" if interval => "interval-fixed-lambda",
        "lambda" => "fixed-lambda",
        "derand" if interval => "interval-derand",
        "derand" => "derand",
        "primal-dual" => "primal-dual",
        // The legacy `sjf` always ran the Smith-ratio variant.
        "sjf" => "weighted-sjf",
        "batch-online" => "batch-online",
        other => {
            if registry::by_name(other).is_some() {
                other
            } else {
                return Err(format!(
                    "unknown algorithm {other:?} — run `coflow algos` for the list"
                ));
            }
        }
    }
    .to_string())
}

fn print_outcome(
    inst: &CoflowInstance,
    lower_bound: f64,
    cost: f64,
    completions: &coflow_core::schedule::Completions,
) {
    let ft = coflow_core::flowtime::flow_times(inst, completions);
    println!("lp bound       {lower_bound:.3}");
    println!("cost           {cost:.3}");
    println!("ratio          {:.4}", cost / lower_bound.max(1e-12));
    println!("makespan       {}", completions.makespan);
    println!(
        "flow time      {:.3} (max {:.0})",
        ft.weighted_total, ft.max
    );
}

fn load(args: &Args) -> Result<CoflowInstance, String> {
    let path = args
        .positional
        .first()
        .ok_or("an instance file is required (use '-' for stdin)")?;
    let text = if path == "-" {
        use std::io::Read;
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| e.to_string())?;
        s
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
    };
    read_instance(&text).map_err(|e| e.to_string())
}

fn emit(output: &str, text: &str) -> Result<(), String> {
    if output == "-" {
        print!("{text}");
        Ok(())
    } else {
        std::fs::write(output, text).map_err(|e| format!("{output}: {e}"))
    }
}

fn parse_topology(name: &str) -> Result<Topology, String> {
    Ok(match name {
        "swan" => topology::swan(),
        "gscale" | "g-scale" => topology::gscale(),
        "abilene" => topology::abilene(),
        "nsfnet" => topology::nsfnet(),
        "fig2" => topology::fig2_example(),
        other => {
            return Err(format!(
                "unknown topology {other:?} (swan|gscale|abilene|nsfnet|fig2)"
            ))
        }
    })
}

fn parse_workload(name: &str) -> Result<WorkloadKind, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "bigbench" | "bb" => WorkloadKind::BigBench,
        "tpcds" | "tpc-ds" => WorkloadKind::TpcDs,
        "tpch" | "tpc-h" => WorkloadKind::TpcH,
        "fb" | "facebook" => WorkloadKind::Facebook,
        other => {
            return Err(format!(
                "unknown workload {other:?} (bigbench|tpcds|tpch|fb)"
            ))
        }
    })
}
