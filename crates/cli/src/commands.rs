//! The subcommands: `generate`, `info`, `solve`, `algos`, `trace`,
//! `serve`, `feed`.
//!
//! `solve` and `trace replay` dispatch through the algorithm registry
//! ([`coflow_baselines::registry`]): any registered name works with
//! `--algo NAME`, and `algos` prints the full table. `trace` works with
//! FB2010-format coflow traces ([`coflow_workloads::trace`]).

use crate::args::Args;
use coflow_baselines::registry::{self, AlgoParams, RoutingSupport};
use coflow_core::io::{read_instance_path, write_instance_path};
use coflow_core::model::CoflowInstance;
use coflow_core::routing::{self, Routing};
use coflow_core::solve::SolveContext;
use coflow_core::solver::Relaxation;
use coflow_lp::{LpEngine, SolverOptions};
use coflow_netgraph::topology::{self, Topology};
use coflow_workloads::scenarios::{build_scenario_instance, Scenario, ScenarioConfig};
use coflow_workloads::trace::{ReplayOptions, Trace, TraceStream, WeightRule};
use coflow_workloads::{build_instance, WorkloadConfig, WorkloadKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `coflow generate`: synthesize an instance file — a benchmark-shaped
/// workload (`--workload`) or a structured scenario (`--scenario`).
///
/// # Errors
///
/// Usage or generation problems, as a printable message.
pub fn generate(args: &Args) -> Result<(), String> {
    let ports: usize = args.get("ports", 8)?;
    let topo = parse_topology(&args.get::<String>("topology", "swan".into())?, ports)?;
    let scenario_name: String = args.get("scenario", String::new())?;
    let num_jobs = args.get("jobs", 20)?;
    let seed = args.get("seed", 1)?;
    let slot_seconds = args.get("slot-seconds", 50.0)?;
    let mean_interarrival_slots = args.get("interarrival", 1.0)?;
    let weighted = !args.switch("--unweighted");
    let demand_scale = args.get("demand-scale", 0.05)?;
    let deadline_slack: f64 = args.get("deadline-slack", 0.0)?;
    let output: String = args.get("output", "-".into())?;

    let mut inst = if scenario_name.is_empty() {
        let kind = parse_workload(&args.get::<String>("workload", "fb".into())?)?;
        args.finish()?;
        build_instance(
            &topo,
            &WorkloadConfig {
                kind,
                num_jobs,
                seed,
                slot_seconds,
                mean_interarrival_slots,
                weighted,
                demand_scale,
            },
        )
        .map_err(|e| e.to_string())?
    } else {
        let mut scenario = Scenario::by_name(&scenario_name).ok_or(format!(
            "unknown scenario {scenario_name:?} (incast|broadcast|shuffle|allreduce|hotspot)"
        ))?;
        let fan: usize = args.get("fan", 0)?;
        let stages: usize = args.get("stages", 3)?;
        if fan > 0 {
            scenario = scenario.with_fan(fan);
        }
        if let Scenario::Shuffle {
            mappers, reducers, ..
        } = scenario
        {
            scenario = Scenario::Shuffle {
                mappers,
                reducers,
                stages,
            };
        }
        let cfg = ScenarioConfig {
            scenario,
            num_jobs,
            seed,
            slot_seconds,
            mean_interarrival_slots,
            weighted,
            flow_gb: args.get("flow-gb", 300.0)?,
            demand_scale,
            deadline_slack: (deadline_slack > 0.0).then_some(deadline_slack),
            ..Default::default()
        };
        args.finish()?;
        build_scenario_instance(&topo, &cfg).map_err(|e| e.to_string())?
    };
    // Scenario builds synthesize deadlines themselves; the workload
    // path gets the same treatment here.
    if deadline_slack > 0.0 && inst.coflows.iter().all(|c| c.deadline.is_none()) {
        coflow_core::loads::apply_deadline_slack(&mut inst, deadline_slack);
    }
    write_instance_path(&inst, &output).map_err(|e| e.to_string())?;
    eprintln!(
        "generated {} coflows / {} flows on {} ({} nodes, {} edges)",
        inst.num_coflows(),
        inst.num_flows(),
        topo.name,
        inst.graph.node_count(),
        inst.graph.edge_count()
    );
    Ok(())
}

/// `coflow info FILE`: summarize an instance file.
///
/// # Errors
///
/// I/O or parse problems.
pub fn info(args: &Args) -> Result<(), String> {
    let inst = load(args)?;
    args.finish()?;
    let g = &inst.graph;
    let total_demand: f64 = inst.coflows.iter().map(|c| c.total_demand()).sum();
    let max_release = inst
        .coflows
        .iter()
        .map(|c| c.full_release())
        .max()
        .unwrap_or(0);
    let widths: Vec<usize> = inst.coflows.iter().map(|c| c.flows.len()).collect();
    let max_width = widths.iter().copied().max().unwrap_or(0);
    let singles = widths.iter().filter(|&&w| w == 1).count();
    println!("nodes          {}", g.node_count());
    println!("edges          {}", g.edge_count());
    println!(
        "capacity       min {} / max {}",
        g.min_capacity().unwrap_or(0.0),
        g.edges().map(|e| e.capacity).fold(0.0f64, f64::max)
    );
    println!("coflows        {}", inst.num_coflows());
    println!("flows          {}", inst.num_flows());
    println!("total demand   {total_demand:.3}");
    println!("max width      {max_width}");
    println!(
        "single-flow    {singles} ({:.0}%)",
        100.0 * singles as f64 / inst.num_coflows().max(1) as f64
    );
    println!("max release    {max_release}");
    Ok(())
}

/// `coflow algos`: print the algorithm registry.
///
/// # Errors
///
/// Unknown flags.
pub fn algos(args: &Args) -> Result<(), String> {
    args.finish()?;
    let entries = registry::all();
    let name_w = entries.iter().map(|e| e.name.len()).max().unwrap_or(4);
    println!(
        "{:<name_w$}  {:<11}  {:<11}  {:<8}  {:<3}  {:<7}  {:<8}  description",
        "name", "kind", "routing", "weighted", "lp", "lp-free", "deadline",
    );
    for e in entries {
        println!(
            "{:<name_w$}  {:<11}  {:<11}  {:<8}  {:<3}  {:<7}  {:<8}  {}",
            e.name,
            e.kind.label(),
            e.caps.routing.label(),
            if e.caps.weighted { "yes" } else { "no" },
            if e.caps.lp_based { "yes" } else { "no" },
            if e.caps.lp_free { "yes" } else { "no" },
            if e.caps.deadline_aware { "yes" } else { "no" },
            e.description,
        );
    }
    println!("\nrun with: coflow solve FILE --algo NAME");
    Ok(())
}

/// `coflow solve FILE`: run any registered algorithm and report the
/// outcome against an LP lower bound.
///
/// # Errors
///
/// I/O, parse, routing, or solver problems.
pub fn solve(args: &Args) -> Result<(), String> {
    let inst = load(args)?;
    let model: String = args.get("model", "free".into())?;
    let algo_flag: String = args.get("algo", String::new())?;
    let algorithm: String = args.get("algorithm", "heuristic".into())?;
    let knobs = solver_knobs(args)?;
    args.finish()?;

    let routing = match model.as_str() {
        "free" => Routing::FreePath,
        "single" => single_path_routing(&inst, knobs.seed)?,
        "multi" => routing::k_shortest_path_sets(&inst, knobs.k).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown model {other:?} (free|single|multi)")),
    };

    // `--algo` takes any registry name; the legacy `--algorithm`
    // spellings map onto registry names (with `--epsilon > 0` selecting
    // the interval-LP variants, as before).
    let name = if algo_flag.is_empty() {
        legacy_name(&algorithm, knobs.epsilon)?
    } else {
        algo_flag
    };
    let entry = registry::by_name(&name).ok_or(format!(
        "unknown algorithm {name:?} — run `coflow algos` for the list"
    ))?;

    println!("model          {model}");
    dispatch(&inst, &routing, entry, &knobs.params, knobs.epsilon)
}

/// The solver knobs `solve` and `trace replay` share:
/// `--seed/--samples/--lambda/--k/--epsilon/--alpha/--cold/--lp-engine/`
/// `--pricing/--basis-update`, validated
/// and assembled into [`AlgoParams`] exactly once so the two commands
/// cannot drift (`--epsilon` maps onto both the interval-LP ε and
/// Jahanjou's ε, as `solve` has always done; `--cold` disables the
/// online frameworks' warm-started re-solves for A/B runs).
struct SolverKnobs {
    seed: u64,
    k: usize,
    epsilon: f64,
    params: AlgoParams,
}

fn solver_knobs(args: &Args) -> Result<SolverKnobs, String> {
    let seed: u64 = args.get("seed", 1)?;
    let samples: usize = args.get("samples", 20)?;
    let lambda: f64 = args.get("lambda", 1.0)?;
    let k: usize = args.get("k", 3)?;
    let epsilon: f64 = args.get("epsilon", 0.0)?;
    let alpha: f64 = args.get("alpha", 0.5)?;
    let cold = args.switch("--cold");
    let engine_flag: String = args.get("lp-engine", "sparse".into())?;
    let engine = match engine_flag.as_str() {
        "sparse" => LpEngine::Sparse,
        "dense" => LpEngine::Dense,
        other => return Err(format!("unknown LP engine {other:?} (sparse|dense)")),
    };
    let pricing_flag: String = args.get("pricing", "devex".into())?;
    let pricing = match pricing_flag.as_str() {
        "devex" => coflow_lp::Pricing::Devex,
        "dantzig" => coflow_lp::Pricing::Dantzig,
        "steepest-edge" => coflow_lp::Pricing::SteepestEdge,
        other => {
            return Err(format!(
                "unknown pricing rule {other:?} (devex|dantzig|steepest-edge)"
            ))
        }
    };
    let basis_flag: String = args.get("basis-update", "ft".into())?;
    let basis_update = match basis_flag.as_str() {
        "ft" | "forrest-tomlin" => coflow_lp::BasisUpdate::ForrestTomlin,
        "eta" => coflow_lp::BasisUpdate::Eta,
        other => return Err(format!("unknown basis update {other:?} (ft|eta)")),
    };
    if !(alpha > 0.0 && alpha <= 1.0) {
        return Err(format!("--alpha must lie in (0, 1], got {alpha}"));
    }
    let dflt = AlgoParams::default();
    Ok(SolverKnobs {
        seed,
        k,
        epsilon,
        params: AlgoParams {
            samples,
            seed,
            lambda,
            cold,
            epsilon: if epsilon > 0.0 { epsilon } else { dflt.epsilon },
            jahanjou_epsilon: if epsilon > 0.0 {
                epsilon
            } else {
                dflt.jahanjou_epsilon
            },
            alpha,
            engine,
            pricing,
            basis_update,
            ..dflt
        },
    })
}

/// Random shortest paths seeded from `--seed` (the `single` model).
fn single_path_routing(inst: &CoflowInstance, seed: u64) -> Result<Routing, String> {
    let mut rng = StdRng::seed_from_u64(seed);
    routing::random_shortest_paths(inst, &mut rng).map_err(|e| e.to_string())
}

/// Runs `entry` on `(inst, routing)` and prints the outcome against an
/// LP lower bound — the shared tail of `solve` and `trace replay`.
fn dispatch(
    inst: &CoflowInstance,
    routing: &Routing,
    entry: &registry::AlgorithmEntry,
    params: &AlgoParams,
    epsilon: f64,
) -> Result<(), String> {
    println!("algorithm      {}", entry.name);
    if params.engine == LpEngine::Dense {
        println!("lp engine      dense (tableau oracle)");
    }
    let mut ctx = SolveContext::new().with_lp_options(SolverOptions {
        engine: params.engine,
        pricing: params.pricing,
        basis_update: params.basis_update,
        ..Default::default()
    });
    let out = entry
        .build(params)
        .solve(inst, routing, &mut ctx)
        .map_err(|e| e.to_string())?;

    // LP-free algorithms carry no bound of their own; report their cost
    // against the relaxation an LP method would solve on this instance
    // (cheap here: the context caches it for any later solve).
    let lower_bound = match out.lower_bound {
        Some(lb) => lb,
        None => {
            let relaxation = if epsilon > 0.0 {
                Relaxation::Interval { epsilon }
            } else {
                Relaxation::TimeIndexed
            };
            ctx.relaxation(inst, routing, relaxation)
                .map_err(|e| e.to_string())?
                .objective
        }
    };
    print_outcome(inst, lower_bound, out.cost, &out.validation.completions);
    if let Some(size) = out.lp_size {
        println!("lp rows/cols   {} / {}", size.rows, size.cols);
    }
    if let Some(iters) = out.lp_iterations {
        println!("lp iterations  {iters}");
    }
    if let Some(sweep) = &out.sweep {
        println!("best lambda    {:.4}", sweep.best().lambda);
        println!("average cost   {:.3}", sweep.average());
    }
    for (key, value) in &out.aux {
        println!("{key:<14} {value:.6}");
    }
    Ok(())
}

/// `coflow trace <summarize|convert|replay> FILE`: work with
/// FB2010-format coflow traces.
///
/// # Errors
///
/// I/O, parse, or solver problems, as a printable message.
pub fn trace(args: &Args) -> Result<(), String> {
    let action = args
        .positional
        .first()
        .cloned()
        .ok_or("trace needs an action (summarize|convert|replay)")?;
    let path = args
        .positional
        .get(1)
        .cloned()
        .ok_or("a trace file is required (use '-' for stdin)")?;
    match action.as_str() {
        "summarize" => trace_summarize(args, &path),
        "convert" => trace_convert(args, &path),
        "replay" => trace_replay(args, &path),
        other => Err(format!(
            "unknown trace action {other:?} (summarize|convert|replay)"
        )),
    }
}

/// Streams a trace file (or stdin) into memory; returns the trace and
/// the header's declared coflow count.
fn load_trace(path: &str) -> Result<(Trace, usize), String> {
    fn collect<B: std::io::BufRead>(r: B) -> Result<(Trace, usize), String> {
        let stream = TraceStream::new(r).map_err(|e| e.to_string())?;
        let num_ports = stream.num_ports();
        let declared = stream.declared_coflows();
        let coflows = stream
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| e.to_string())?;
        Ok((Trace { num_ports, coflows }, declared))
    }
    if path == "-" {
        collect(std::io::stdin().lock())
    } else {
        let f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
        collect(std::io::BufReader::new(f))
    }
}

/// Parses the shared replay knobs; unspecified flags fall back to the
/// library's [`ReplayOptions::default`] so the CLI cannot drift from
/// library/bench replays.
fn replay_options(args: &Args) -> Result<ReplayOptions, String> {
    let dflt = ReplayOptions::default();
    // Consumed unconditionally: --seed is a documented shared knob, and
    // only consumed flags survive Args::finish.
    let seed: u64 = args.get("seed", 1)?;
    let weights = match args.get::<String>("weights", "unit".into())?.as_str() {
        "unit" => WeightRule::Unit,
        "uniform" => WeightRule::Uniform { seed },
        other => return Err(format!("unknown weight rule {other:?} (unit|uniform)")),
    };
    let deadline_slack: f64 = args.get("deadline-slack", 0.0)?;
    Ok(ReplayOptions {
        ms_per_slot: args.get("ms-per-slot", dflt.ms_per_slot)?,
        mb_per_slot: args.get("mb-per-slot", dflt.mb_per_slot)?,
        demand_scale: args.get("demand-scale", dflt.demand_scale)?,
        limit: args.get("limit", dflt.limit)?,
        weights,
        deadline_slack: (deadline_slack > 0.0).then_some(deadline_slack),
    })
}

/// Builds the replay instance on the `--on` target: the I/O-gadgeted
/// big switch, or a WAN topology with ports mapped round-robin
/// (capacities scaled to per-slot volumes from `--ms-per-slot`).
fn trace_instance(tr: &Trace, args: &Args, opts: &ReplayOptions) -> Result<CoflowInstance, String> {
    let on: String = args.get("on", "switch".into())?;
    if on == "switch" {
        tr.switch_instance(opts).map_err(|e| e.to_string())
    } else {
        let topo = parse_topology(&on, tr.num_ports)?.scale_capacity(opts.ms_per_slot / 1000.0);
        tr.place(&topo, opts).map_err(|e| e.to_string())
    }
}

/// `coflow trace summarize FILE`.
fn trace_summarize(args: &Args, path: &str) -> Result<(), String> {
    args.finish()?;
    let (tr, declared) = load_trace(path)?;
    let s = tr.summary();
    println!("ports          {}", s.num_ports);
    if s.coflows == declared {
        println!("coflows        {}", s.coflows);
    } else {
        println!("coflows        {} (header declares {declared})", s.coflows);
    }
    println!("flows          {}", s.flows);
    println!(
        "single-flow    {} ({:.0}%)",
        s.single_flow,
        100.0 * s.single_flow as f64 / s.coflows.max(1) as f64
    );
    println!("max width      {}", s.max_width);
    println!("total shuffle  {:.1} MB", s.total_mb);
    println!("arrival span   {} ms", s.span_ms);
    println!(
        "port ids       {}-based",
        tr.port_base().map_err(|e| e.to_string())?
    );
    Ok(())
}

/// `coflow trace convert FILE --output OUT`.
fn trace_convert(args: &Args, path: &str) -> Result<(), String> {
    let opts = replay_options(args)?;
    let (tr, _) = load_trace(path)?;
    let inst = trace_instance(&tr, args, &opts)?;
    let output: String = args.get("output", "-".into())?;
    args.finish()?;
    write_instance_path(&inst, &output).map_err(|e| e.to_string())?;
    eprintln!(
        "converted {} coflows / {} flows onto {} nodes",
        inst.num_coflows(),
        inst.num_flows(),
        inst.graph.node_count()
    );
    Ok(())
}

/// `coflow trace replay FILE --algo NAME`: replay the trace through any
/// registry algorithm. `--model auto` (the default) picks a routing
/// model from the algorithm's capability flags, so every registry entry
/// replays without per-algorithm knowledge.
fn trace_replay(args: &Args, path: &str) -> Result<(), String> {
    let opts = replay_options(args)?;
    let (tr, _) = load_trace(path)?;
    let inst = trace_instance(&tr, args, &opts)?;
    let algo: String = args.get("algo", "heuristic".into())?;
    let model: String = args.get("model", "auto".into())?;
    let knobs = solver_knobs(args)?;
    args.finish()?;

    let entry = registry::by_name(&algo).ok_or(format!(
        "unknown algorithm {algo:?} — run `coflow algos` for the list"
    ))?;
    let (routing, model_label) = match model.as_str() {
        "auto" => match entry.caps.routing {
            RoutingSupport::SinglePathOnly => {
                (single_path_routing(&inst, knobs.seed)?, "single (auto)")
            }
            RoutingSupport::FreePathOnly | RoutingSupport::Any => {
                (Routing::FreePath, "free (auto)")
            }
        },
        "free" => (Routing::FreePath, "free"),
        "single" => (single_path_routing(&inst, knobs.seed)?, "single"),
        "multi" => (
            routing::k_shortest_path_sets(&inst, knobs.k).map_err(|e| e.to_string())?,
            "multi",
        ),
        other => return Err(format!("unknown model {other:?} (auto|free|single|multi)")),
    };
    println!(
        "replaying      {} coflows / {} flows",
        inst.num_coflows(),
        inst.num_flows()
    );
    println!("model          {model_label}");
    dispatch(&inst, &routing, entry, &knobs.params, knobs.epsilon)
}

/// Maps the pre-registry `--algorithm` spellings onto registry names.
fn legacy_name(algorithm: &str, epsilon: f64) -> Result<String, String> {
    let interval = epsilon > 0.0;
    Ok(match algorithm {
        "heuristic" if interval => "interval-heuristic",
        "heuristic" => "heuristic",
        "stretch" if interval => "interval-stretch",
        "stretch" => "stretch",
        "lambda" if interval => "interval-fixed-lambda",
        "lambda" => "fixed-lambda",
        "derand" if interval => "interval-derand",
        "derand" => "derand",
        "primal-dual" => "primal-dual",
        // The legacy `sjf` always ran the Smith-ratio variant.
        "sjf" => "weighted-sjf",
        "batch-online" => "batch-online",
        other => {
            if registry::by_name(other).is_some() {
                other
            } else {
                return Err(format!(
                    "unknown algorithm {other:?} — run `coflow algos` for the list"
                ));
            }
        }
    }
    .to_string())
}

fn print_outcome(
    inst: &CoflowInstance,
    lower_bound: f64,
    cost: f64,
    completions: &coflow_core::schedule::Completions,
) {
    let ft = coflow_core::flowtime::flow_times(inst, completions);
    println!("lp bound       {lower_bound:.3}");
    println!("cost           {cost:.3}");
    println!("ratio          {:.4}", cost / lower_bound.max(1e-12));
    println!("makespan       {}", completions.makespan);
    println!(
        "flow time      {:.3} (max {:.0})",
        ft.weighted_total, ft.max
    );
}

fn load(args: &Args) -> Result<CoflowInstance, String> {
    let path = args
        .positional
        .first()
        .ok_or("an instance file is required (use '-' for stdin)")?;
    read_instance_path(path).map_err(|e| e.to_string())
}

fn parse_topology(name: &str, ports: usize) -> Result<Topology, String> {
    Ok(match name {
        "swan" => topology::swan(),
        "gscale" | "g-scale" => topology::gscale(),
        "abilene" => topology::abilene(),
        "nsfnet" => topology::nsfnet(),
        "fig2" => topology::fig2_example(),
        // 10 Gbps port-to-port fabric; `--slot-seconds` scales it like
        // the WANs.
        "switch" => topology::bipartite_switch(ports.max(1), 10.0),
        other => {
            return Err(format!(
                "unknown topology {other:?} (swan|gscale|abilene|nsfnet|fig2|switch)"
            ))
        }
    })
}

fn parse_workload(name: &str) -> Result<WorkloadKind, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "bigbench" | "bb" => WorkloadKind::BigBench,
        "tpcds" | "tpc-ds" => WorkloadKind::TpcDs,
        "tpch" | "tpc-h" => WorkloadKind::TpcH,
        "fb" | "facebook" => WorkloadKind::Facebook,
        other => {
            return Err(format!(
                "unknown workload {other:?} (bigbench|tpcds|tpch|fb)"
            ))
        }
    })
}

/// `coflow serve`: run the streaming scheduler daemon — one protocol
/// session on stdin/stdout (the default), or a TCP listener with
/// `--listen ADDR`. See `coflow_service::protocol` for the line
/// protocol; `coflow feed` is the matching client.
///
/// # Errors
///
/// Usage or transport problems, as a printable message.
pub fn serve(args: &Args) -> Result<(), String> {
    use coflow_service::daemon::SessionOptions;
    use coflow_service::fault::FaultPlan;

    let listen: String = args.get("listen", String::new())?;
    let threads: usize = args.get("threads", 0)?;
    let journal: String = args.get("journal", String::new())?;
    let recover = args.switch("--recover");
    let max_solve_ms: f64 = args.get("max-solve-ms", 0.0)?;
    let fault_spec: String = args.get("fault-plan", String::new())?;
    let _ = args.switch("--stdin"); // stdin is the default; flag is documentation
    args.finish()?;
    if recover && journal.is_empty() {
        return Err("--recover needs --journal DIR (the directory to replay)".to_string());
    }
    let opts = SessionOptions {
        journal: (!journal.is_empty()).then(|| std::path::PathBuf::from(&journal)),
        recover,
        max_solve_ms: (max_solve_ms > 0.0).then_some(max_solve_ms),
        fault: FaultPlan::parse(&fault_spec)?,
    };
    if let Some(dir) = &opts.journal {
        std::fs::create_dir_all(dir).map_err(|e| format!("--journal {journal}: {e}"))?;
    }
    let rt = if threads == 0 {
        coflow_runtime::Runtime::new()
    } else {
        coflow_runtime::Runtime::with_workers(threads)
    };
    if listen.is_empty() {
        let summary =
            coflow_service::daemon::serve_stdin_with(&rt, opts).map_err(|e| e.to_string())?;
        eprintln!(
            "serve: {} tenants, {} coflows, {} errors",
            summary.tenants, summary.admitted, summary.errors
        );
        Ok(())
    } else {
        coflow_service::daemon::serve_tcp_with(&rt, &listen, opts).map_err(|e| e.to_string())
    }
}

/// `coflow feed`: replay a trace file against a running daemon and
/// echo the server's responses.
///
/// # Errors
///
/// Usage, parse, or socket problems, as a printable message.
pub fn feed(args: &Args) -> Result<(), String> {
    use coflow_service::engine::EpochPolicy;
    use coflow_service::feed::FeedOptions;
    use coflow_service::protocol::Tier;
    use coflow_service::shard::ShardSplit;

    let path = args
        .positional
        .first()
        .cloned()
        .ok_or("a trace file is required (use '-' for stdin)")?;
    let addr: String = args.get("addr", "127.0.0.1:7077".into())?;
    let dflt = FeedOptions::default();
    let opts = FeedOptions {
        tenant: args.get("tenant", dflt.tenant)?,
        policy: match args.get::<String>("policy", "event".into())?.as_str() {
            "event" => EpochPolicy::Event,
            "doubling" => EpochPolicy::Doubling,
            other => return Err(format!("unknown policy {other:?} (event|doubling)")),
        },
        shards: args.get("shards", dflt.shards)?,
        split: match args.get::<String>("split", "equal".into())?.as_str() {
            "equal" => ShardSplit::Equal,
            "prop" | "proportional" => ShardSplit::Proportional,
            other => return Err(format!("unknown split {other:?} (equal|prop)")),
        },
        cold: args.switch("--cold"),
        shadow_cold: args.switch("--shadow-cold"),
        plans: args.switch("--plans"),
        limit: args.get("limit", dflt.limit)?,
        ms_per_slot: args.get("ms-per-slot", dflt.ms_per_slot)?,
        mb_per_slot: args.get("mb-per-slot", dflt.mb_per_slot)?,
        scale: args.get("demand-scale", dflt.scale)?,
        tier: match args.get::<String>("tier", "lp".into())?.as_str() {
            "lp" => Tier::Lp,
            "ordering" => Tier::Ordering,
            other => return Err(format!("unknown tier {other:?} (lp|ordering)")),
        },
        fallback: args.switch("--fallback"),
        max_resolves: args.get("max-resolves", dflt.max_resolves)?,
        deadline_slack: args.get("deadline-slack", dflt.deadline_slack)?,
        max_solve_ms: args.get("max-solve-ms", dflt.max_solve_ms)?,
    };
    args.finish()?;
    let text = if path == "-" {
        let mut s = String::new();
        std::io::Read::read_to_string(&mut std::io::stdin().lock(), &mut s)
            .map_err(|e| e.to_string())?;
        s
    } else {
        std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?
    };
    let mut stdout = std::io::stdout();
    let summary =
        coflow_service::feed::feed(&addr, &text, &opts, &mut stdout).map_err(|e| e.to_string())?;
    eprintln!(
        "feed: sent {} coflows, received {} lines, {} errors",
        summary.sent, summary.received, summary.errors
    );
    match summary.done {
        Some(_) => Ok(()),
        None => Err(format!("no DONE line for tenant {:?}", opts.tenant)),
    }
}
