//! The three subcommands: `generate`, `info`, `solve`.

use crate::args::Args;
use coflow_baselines::{primal_dual, sjf};
use coflow_core::derand;
use coflow_core::flowtime::{flow_times, interval_batch_online};
use coflow_core::io::{read_instance, write_instance};
use coflow_core::model::CoflowInstance;
use coflow_core::routing::{self, Routing};
use coflow_core::solver::{Algorithm, Relaxation, Scheduler};
use coflow_core::validate::{validate, Tolerance};
use coflow_lp::SolverOptions;
use coflow_netgraph::topology::{self, Topology};
use coflow_workloads::{build_instance, WorkloadConfig, WorkloadKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `coflow generate`: synthesize an instance file.
///
/// # Errors
///
/// Usage or generation problems, as a printable message.
pub fn generate(args: &Args) -> Result<(), String> {
    let topo = parse_topology(&args.get::<String>("topology", "swan".into())?)?;
    let kind = parse_workload(&args.get::<String>("workload", "fb".into())?)?;
    let cfg = WorkloadConfig {
        kind,
        num_jobs: args.get("jobs", 20)?,
        seed: args.get("seed", 1)?,
        slot_seconds: args.get("slot-seconds", 50.0)?,
        mean_interarrival_slots: args.get("interarrival", 1.0)?,
        weighted: !args.switch("--unweighted"),
        demand_scale: args.get("demand-scale", 0.05)?,
    };
    let output: String = args.get("output", "-".into())?;
    args.finish()?;

    let inst = build_instance(&topo, &cfg).map_err(|e| e.to_string())?;
    let text = write_instance(&inst).map_err(|e| e.to_string())?;
    emit(&output, &text)?;
    eprintln!(
        "generated {} coflows / {} flows on {} ({} nodes, {} edges)",
        inst.num_coflows(),
        inst.num_flows(),
        topo.name,
        inst.graph.node_count(),
        inst.graph.edge_count()
    );
    Ok(())
}

/// `coflow info FILE`: summarize an instance file.
///
/// # Errors
///
/// I/O or parse problems.
pub fn info(args: &Args) -> Result<(), String> {
    let inst = load(args)?;
    args.finish()?;
    let g = &inst.graph;
    let total_demand: f64 = inst.coflows.iter().map(|c| c.total_demand()).sum();
    let max_release = inst
        .coflows
        .iter()
        .map(|c| c.full_release())
        .max()
        .unwrap_or(0);
    let widths: Vec<usize> = inst.coflows.iter().map(|c| c.flows.len()).collect();
    let max_width = widths.iter().copied().max().unwrap_or(0);
    let singles = widths.iter().filter(|&&w| w == 1).count();
    println!("nodes          {}", g.node_count());
    println!("edges          {}", g.edge_count());
    println!(
        "capacity       min {} / max {}",
        g.min_capacity().unwrap_or(0.0),
        g.edges().map(|e| e.capacity).fold(0.0f64, f64::max)
    );
    println!("coflows        {}", inst.num_coflows());
    println!("flows          {}", inst.num_flows());
    println!("total demand   {total_demand:.3}");
    println!("max width      {max_width}");
    println!(
        "single-flow    {singles} ({:.0}%)",
        100.0 * singles as f64 / inst.num_coflows().max(1) as f64
    );
    println!("max release    {max_release}");
    Ok(())
}

/// `coflow solve FILE`: run an algorithm and report the outcome.
///
/// # Errors
///
/// I/O, parse, routing, or solver problems.
pub fn solve(args: &Args) -> Result<(), String> {
    let inst = load(args)?;
    let model: String = args.get("model", "free".into())?;
    let algorithm: String = args.get("algorithm", "heuristic".into())?;
    let seed: u64 = args.get("seed", 1)?;
    let samples: usize = args.get("samples", 20)?;
    let lambda: f64 = args.get("lambda", 1.0)?;
    let k: usize = args.get("k", 3)?;
    let epsilon: f64 = args.get("epsilon", 0.0)?;
    args.finish()?;

    let routing = match model.as_str() {
        "free" => Routing::FreePath,
        "single" => {
            let mut rng = StdRng::seed_from_u64(seed);
            routing::random_shortest_paths(&inst, &mut rng).map_err(|e| e.to_string())?
        }
        "multi" => routing::k_shortest_path_sets(&inst, k).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown model {other:?} (free|single|multi)")),
    };

    let mut scheduler = Scheduler::new(Algorithm::LpHeuristic);
    if epsilon > 0.0 {
        scheduler = scheduler.with_relaxation(Relaxation::Interval { epsilon });
    }

    println!("model          {model}");
    println!("algorithm      {algorithm}");
    match algorithm.as_str() {
        "heuristic" | "stretch" | "lambda" => {
            let alg = match algorithm.as_str() {
                "heuristic" => Algorithm::LpHeuristic,
                "stretch" => Algorithm::Stretch { samples, seed },
                _ => Algorithm::FixedLambda(lambda),
            };
            let report = Scheduler::new(alg)
                .with_relaxation(if epsilon > 0.0 {
                    Relaxation::Interval { epsilon }
                } else {
                    Relaxation::TimeIndexed
                })
                .solve(&inst, &routing)
                .map_err(|e| e.to_string())?;
            print_outcome(
                &inst,
                report.lower_bound,
                report.cost,
                &report.validation.completions,
            );
            println!(
                "lp rows/cols   {} / {}",
                report.lp_size.rows, report.lp_size.cols
            );
            println!("lp iterations  {}", report.lp_iterations);
            if let Some(sweep) = &report.sweep {
                println!("best lambda    {:.4}", sweep.best().lambda);
                println!("average cost   {:.3}", sweep.average());
            }
        }
        "derand" => {
            let lp = scheduler
                .relax(&inst, &routing)
                .map_err(|e| e.to_string())?;
            let d = derand::derandomize(&inst, &lp.plan);
            let report = Scheduler::new(Algorithm::FixedLambda(d.best_lambda))
                .solve(&inst, &routing)
                .map_err(|e| e.to_string())?;
            print_outcome(
                &inst,
                lp.objective,
                report.cost,
                &report.validation.completions,
            );
            println!(
                "best lambda    {:.6} (exact, {} candidates)",
                d.best_lambda, d.candidates
            );
            println!(
                "pure-stretch   best {:.3} / heuristic {:.3}",
                d.best_cost, d.heuristic_cost
            );
            println!(
                "E[cost]        {:.3} ± {:.1e} (2·LP = {:.3})",
                d.expected_cost,
                d.expected_cost_error,
                2.0 * lp.objective
            );
        }
        "primal-dual" | "sjf" => {
            let sched = if algorithm == "primal-dual" {
                primal_dual::primal_dual(&inst, &routing).map_err(|e| e.to_string())?
            } else {
                sjf::weighted_sjf(&inst, &routing).map_err(|e| e.to_string())?
            };
            let rep = validate(&inst, &routing, &sched, Tolerance::default())
                .map_err(|e| e.to_string())?;
            let lp = scheduler
                .relax(&inst, &routing)
                .map_err(|e| e.to_string())?;
            print_outcome(
                &inst,
                lp.objective,
                rep.completions.weighted_total,
                &rep.completions,
            );
        }
        "batch-online" => {
            let out = interval_batch_online(&inst, &routing, &SolverOptions::default())
                .map_err(|e| e.to_string())?;
            let rep = validate(&inst, &routing, &out.schedule, Tolerance::default())
                .map_err(|e| e.to_string())?;
            let lp = scheduler
                .relax(&inst, &routing)
                .map_err(|e| e.to_string())?;
            print_outcome(
                &inst,
                lp.objective,
                rep.completions.weighted_total,
                &rep.completions,
            );
            println!("batches        {}", out.batches);
        }
        other => {
            return Err(format!(
                "unknown algorithm {other:?} \
                 (heuristic|stretch|lambda|derand|primal-dual|sjf|batch-online)"
            ))
        }
    }
    Ok(())
}

fn print_outcome(
    inst: &CoflowInstance,
    lower_bound: f64,
    cost: f64,
    completions: &coflow_core::schedule::Completions,
) {
    let ft = flow_times(inst, completions);
    println!("lp bound       {lower_bound:.3}");
    println!("cost           {cost:.3}");
    println!("ratio          {:.4}", cost / lower_bound.max(1e-12));
    println!("makespan       {}", completions.makespan);
    println!(
        "flow time      {:.3} (max {:.0})",
        ft.weighted_total, ft.max
    );
}

fn load(args: &Args) -> Result<CoflowInstance, String> {
    let path = args
        .positional
        .first()
        .ok_or("an instance file is required (use '-' for stdin)")?;
    let text = if path == "-" {
        use std::io::Read;
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| e.to_string())?;
        s
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
    };
    read_instance(&text).map_err(|e| e.to_string())
}

fn emit(output: &str, text: &str) -> Result<(), String> {
    if output == "-" {
        print!("{text}");
        Ok(())
    } else {
        std::fs::write(output, text).map_err(|e| format!("{output}: {e}"))
    }
}

fn parse_topology(name: &str) -> Result<Topology, String> {
    Ok(match name {
        "swan" => topology::swan(),
        "gscale" | "g-scale" => topology::gscale(),
        "abilene" => topology::abilene(),
        "nsfnet" => topology::nsfnet(),
        "fig2" => topology::fig2_example(),
        other => {
            return Err(format!(
                "unknown topology {other:?} (swan|gscale|abilene|nsfnet|fig2)"
            ))
        }
    })
}

fn parse_workload(name: &str) -> Result<WorkloadKind, String> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "bigbench" | "bb" => WorkloadKind::BigBench,
        "tpcds" | "tpc-ds" => WorkloadKind::TpcDs,
        "tpch" | "tpc-h" => WorkloadKind::TpcH,
        "fb" | "facebook" => WorkloadKind::Facebook,
        other => {
            return Err(format!(
                "unknown workload {other:?} (bigbench|tpcds|tpch|fb)"
            ))
        }
    })
}
