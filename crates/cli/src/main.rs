//! `coflow` — the command-line front end of the suite.
//!
//! ```text
//! coflow generate --topology swan --workload fb --jobs 20 --output inst.coflow
//! coflow info inst.coflow
//! coflow solve inst.coflow --model free --algorithm heuristic
//! coflow solve inst.coflow --model single --algorithm primal-dual
//! ```
//!
//! Instances travel as plain-text `.coflow` files
//! ([`coflow_core::io`]); every run is a pure function of the file and
//! the flags, so results are reproducible by pasting the command line.

mod args;
mod commands;

use args::Args;

const USAGE: &str = "\
usage: coflow <command> [options]

commands:
  generate   synthesize a workload instance
             --topology swan|gscale|abilene|nsfnet|fig2|switch (swan)
             --workload bigbench|tpcds|tpch|fb            (fb)
             --scenario incast|broadcast|shuffle|allreduce|hotspot
                        (structured pattern instead of --workload)
             --fan N    scenario cardinality (fanin/fanout/workers/width)
             --stages K shuffle stages (3)  --flow-gb X (300)
             --ports N  switch port count (8)
             --jobs N (20)  --seed S (1)  --unweighted
             --interarrival SLOTS (1.0)  --slot-seconds S (50)
             --demand-scale X (0.05)     --output FILE|- (-)
             --deadline-slack F (0 = no deadlines; F scales each
                        coflow's bottleneck bound into its deadline)
  info FILE  print instance statistics
  algos      list every registered algorithm (name, kind, capabilities)
  solve FILE run an algorithm and report cost vs the LP bound
             --model free|single|multi                    (free)
             --algo NAME    any registry name (see `coflow algos`)
             --algorithm heuristic|stretch|lambda|derand|
                         primal-dual|sjf|batch-online     (heuristic;
                         legacy spellings — --epsilon > 0 selects the
                         interval-LP variants)
             --samples N (20)  --lambda X (1.0)  --k PATHS (3)
             --epsilon E (0 = time-indexed LP)  --seed S (1)
             --alpha A (0.5, jahanjou)
             --lp-engine sparse|dense (sparse; dense is the slow
                         tableau oracle, for cross-checking)
             --pricing devex|dantzig|steepest-edge (devex; warm epoch
                         re-solves upgrade devex to steepest-edge)
             --basis-update ft|eta (ft; eta keeps the product-form
                         chain as the differential oracle)
  trace <action> FILE   work with FB2010-format coflow traces
             summarize  stream the trace and print statistics
             convert    write the replayed instance as a .coflow file
                        --output FILE|- (-)
             replay     run a registry algorithm over the trace
                        --algo NAME (heuristic)
                        --model auto|free|single|multi (auto: pick from
                        the algorithm's capability flags)
                        solver knobs as for `solve`: --samples --lambda
                        --k --epsilon --alpha --seed --lp-engine
                        --pricing --basis-update
             shared replay knobs:
             --on switch|swan|gscale|abilene|nsfnet (switch)
             --ms-per-slot X (1000)  --mb-per-slot X (125; 125 MB = 1 Gb,
                        so demands are in Gb and 1 Gbps ports saturate)
             --demand-scale X (1.0)  --limit N (0 = all coflows)
             --weights unit|uniform (unit)  --seed S (1)
             --deadline-slack F (0 = no deadlines; F scales each
                        coflow's bottleneck bound into its deadline)

  serve      run the streaming scheduler daemon
             --listen ADDR  serve the line protocol over TCP
                        (default: one session on stdin/stdout, so
                        `coflow serve < trace.txt` replays a trace)
             --threads N    LP worker threads (0 = all cores)
             --journal DIR  write-ahead journal, one file per tenant
             --recover      replay unfinished tenants from --journal DIR
             --max-solve-ms F  per-epoch solve budget; a breach degrades
                        the tenant one rung (lp -> ordering -> shed)
             --fault-plan SPEC  deterministic fault injection, e.g.
                        'seed=7;engine-error=3;slow=2;garbage=4x2;disconnect=9'
             protocol: HELLO <tenant> <ports> [base=0|1]
                        [policy=event|doubling] [shards=G] [split=equal|prop]
                        [ms-per-slot=F] [mb-per-slot=F] [scale=F]
                        [tier=lp|ordering] [fallback=ordering|none]
                        [max-resolves=N] [deadline-slack=F] [max-solve-ms=F]
                        [cold] [shadow-cold] [plans],
                       then FB2010 coflow lines, then BYE
  feed FILE  replay a trace against a running daemon
             --addr HOST:PORT (127.0.0.1:7077)  --tenant NAME (feed)
             --policy event|doubling (event)  --shards G (1)
             --split equal|prop (equal)  --limit N (0 = all)
             --tier lp|ordering (lp)  --fallback  --max-resolves N (0 = off)
             --deadline-slack F (0 = no deadlines)
             --max-solve-ms F (0 = no per-epoch solve budget)
             --cold  --shadow-cold  --plans
             replay knobs as for `trace`: --ms-per-slot --mb-per-slot
             --demand-scale

FILE may be '-' for stdin.
";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().cloned() else {
        eprint!("{USAGE}");
        std::process::exit(2);
    };
    let result = Args::parse(&raw[1..]).and_then(|args| match command.as_str() {
        "generate" => commands::generate(&args),
        "info" => commands::info(&args),
        "algos" => commands::algos(&args),
        "solve" => commands::solve(&args),
        "trace" => commands::trace(&args),
        "serve" => commands::serve(&args),
        "feed" => commands::feed(&args),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    });
    if let Err(msg) = result {
        eprintln!("coflow: {msg}");
        eprintln!("run `coflow help` for usage");
        std::process::exit(1);
    }
}
