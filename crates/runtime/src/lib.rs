//! A shared work-stealing thread runtime.
//!
//! Two consumers drive the design:
//!
//! * the figure harnesses in `coflow-bench` fan independent *scenario
//!   points* out over worker threads ([`SweepPool`], unchanged API), and
//! * the scheduler service in `coflow-service` runs N tenant fabrics
//!   (and, within a tenant, per-port-group shards) concurrently through
//!   an explicit [`Runtime::scope`] / [`TaskScope::spawn`] API.
//!
//! Both sit on the same substrate: a fixed set of worker threads pulling
//! tasks from a shared queue, so an idle worker "steals" whatever work
//! remains and one slow LP solve never serializes the rest of the batch.
//!
//! Determinism: workers only *compute*; every task's inputs are fixed
//! before it is spawned and results land in caller-chosen slots
//! regardless of which worker ran them or in what order. Running with 1
//! worker or 64 produces byte-identical output.
//!
//! Rayon would be the natural substrate here, but this build environment
//! has no crates.io access, so the pool is built directly on
//! `std::thread::scope` with a mutex-and-condvar task queue (no unsafe).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Environment variable overriding the worker count (useful to pin
/// `COFLOW_SWEEP_THREADS=1` when profiling a single point).
pub const THREADS_ENV: &str = "COFLOW_SWEEP_THREADS";

type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

struct State<'env> {
    queue: VecDeque<Task<'env>>,
    /// Tasks spawned but not yet finished executing (queued + running).
    outstanding: usize,
    closed: bool,
}

struct Shared<'env> {
    state: Mutex<State<'env>>,
    /// Signalled when a task is queued or the scope closes.
    work: Condvar,
    /// Signalled when `outstanding` drops to zero.
    done: Condvar,
}

impl<'env> Shared<'env> {
    fn new() -> Self {
        Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                outstanding: 0,
                closed: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        }
    }

    fn close(&self) {
        let mut st = self.state.lock().expect("runtime state lock");
        st.closed = true;
        st.queue.clear();
        drop(st);
        self.work.notify_all();
    }
}

/// Decrements `outstanding` when a task finishes — including by panic,
/// so a panicking task cannot deadlock the scope waiting on `done`.
struct TaskGuard<'a, 'env> {
    shared: &'a Shared<'env>,
}

impl Drop for TaskGuard<'_, '_> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("runtime state lock");
        st.outstanding -= 1;
        if std::thread::panicking() {
            // This worker is unwinding and will not return to the loop.
            // Abandon queued (not-yet-started) work so the scope can
            // observe completion and propagate the panic instead of
            // deadlocking when every worker has died.
            st.outstanding -= st.queue.len();
            st.queue.clear();
            st.closed = true;
        }
        let idle = st.outstanding == 0;
        let closed = st.closed;
        drop(st);
        if idle {
            self.shared.done.notify_all();
        }
        if closed {
            self.shared.work.notify_all();
        }
    }
}

/// Closes the scope when the scope body exits — including by panic, so
/// workers stop waiting for work and `std::thread::scope` can join them.
struct CloseGuard<'a, 'env> {
    shared: &'a Shared<'env>,
}

impl Drop for CloseGuard<'_, '_> {
    fn drop(&mut self) {
        self.shared.close();
    }
}

fn worker_loop(shared: &Shared<'_>) {
    loop {
        let task = {
            let mut st = shared.state.lock().expect("runtime state lock");
            loop {
                if let Some(task) = st.queue.pop_front() {
                    break task;
                }
                if st.closed {
                    return;
                }
                st = shared.work.wait(st).expect("runtime state lock");
            }
        };
        let _guard = TaskGuard { shared };
        task();
    }
}

/// Handle for spawning tasks inside a [`Runtime::scope`] block.
///
/// `'env` is the lifetime of data borrowed by spawned tasks (everything
/// declared outside the `scope` call); `'scope` is the scope body itself.
pub struct TaskScope<'scope, 'env: 'scope> {
    shared: &'scope Shared<'env>,
}

impl<'scope, 'env> TaskScope<'scope, 'env> {
    /// Queues `f` for execution on one of the runtime's workers.
    ///
    /// The task may borrow anything that outlives the `scope` call.
    /// [`Runtime::scope`] does not return until every spawned task has
    /// finished. There is no per-task join handle — deposit results into
    /// caller-owned slots (e.g. a `Mutex<Option<T>>` per task).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let mut st = self.shared.state.lock().expect("runtime state lock");
        assert!(!st.closed, "spawn on a closed scope");
        st.outstanding += 1;
        st.queue.push_back(Box::new(f));
        drop(st);
        self.shared.work.notify_one();
    }
}

/// A fixed-width pool of worker threads shared by batch sweeps and the
/// multi-tenant scheduler service.
#[derive(Clone, Debug)]
pub struct Runtime {
    workers: usize,
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

impl Runtime {
    /// Runtime sized to the machine (or [`THREADS_ENV`] when set).
    pub fn new() -> Self {
        let from_env = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1);
        let workers = from_env.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Runtime { workers }
    }

    /// Runtime with an explicit worker count (`>= 1`).
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers >= 1, "a runtime needs at least one worker");
        Runtime { workers }
    }

    /// Number of worker threads a scope or batch will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` with a [`TaskScope`] backed by this runtime's workers
    /// and blocks until `f` *and every task it spawned* have finished.
    ///
    /// Tasks may borrow data declared outside the `scope` call (the
    /// `'env` lifetime), exactly like `std::thread::scope`. A panic in a
    /// task or in `f` itself is propagated to the caller after all
    /// workers have been joined.
    pub fn scope<'env, T, F>(&self, f: F) -> T
    where
        F: for<'scope> FnOnce(&TaskScope<'scope, 'env>) -> T,
    {
        let shared: Shared<'env> = Shared::new();
        std::thread::scope(|s| {
            for _ in 0..self.workers {
                s.spawn(|| worker_loop(&shared));
            }
            // Ensure workers are released even if `f` or the wait below
            // unwinds, so `std::thread::scope` can join them.
            let close = CloseGuard { shared: &shared };
            let out = f(&TaskScope { shared: &shared });
            let mut st = shared.state.lock().expect("runtime state lock");
            while st.outstanding > 0 {
                st = shared.done.wait(st).expect("runtime state lock");
            }
            drop(st);
            drop(close); // normal path: close now that all tasks finished
            out
        })
    }

    /// Computes `f(i, &items[i])` for every item, in parallel, returning
    /// results in input order. Panics in `f` propagate to the caller.
    ///
    /// Workers pull the next unclaimed index from a shared counter, so
    /// one slow item never serializes the rest of the batch.
    pub fn run<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        if workers == 1 {
            return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
        }

        // Shared claim counter: each worker grabs the next unclaimed
        // index, computes it, and deposits the result in that index's
        // slot. Slots are independent mutexes, so there is no contention
        // on the write path beyond the atomic claim.
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let value = f(i, &items[i]);
                    *slots[i].lock().expect("slot lock") = Some(value);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot lock")
                    .expect("every claimed slot is filled before scope exit")
            })
            .collect()
    }
}

/// A fixed-width pool that maps a batch of items through a function in
/// parallel, preserving input order in the output.
///
/// Thin wrapper over [`Runtime::run`], kept as the stable entry point
/// for the figure harnesses in `coflow-bench` (which re-exports it).
#[derive(Clone, Debug, Default)]
pub struct SweepPool {
    rt: Runtime,
}

impl SweepPool {
    /// Pool sized to the machine (or [`THREADS_ENV`] when set).
    pub fn new() -> Self {
        SweepPool { rt: Runtime::new() }
    }

    /// Pool with an explicit worker count (`>= 1`).
    pub fn with_workers(workers: usize) -> Self {
        SweepPool {
            rt: Runtime::with_workers(workers),
        }
    }

    /// Number of worker threads `run` will use.
    pub fn workers(&self) -> usize {
        self.rt.workers()
    }

    /// Underlying [`Runtime`], for callers that also need `scope`.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Computes `f(i, &items[i])` for every item, in parallel, returning
    /// results in input order. Panics in `f` propagate to the caller.
    pub fn run<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        self.rt.run(items, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let pool = SweepPool::with_workers(4);
        let items: Vec<usize> = (0..97).collect();
        let out = pool.run(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..97).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let items: Vec<u64> = (0..40).collect();
        let f = |_: usize, &x: &u64| x.wrapping_mul(0x9e3779b97f4a7c15) >> 7;
        let serial = SweepPool::with_workers(1).run(&items, f);
        let parallel = SweepPool::with_workers(8).run(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_batch() {
        let pool = SweepPool::with_workers(2);
        let out: Vec<u32> = pool.run(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items() {
        let pool = SweepPool::with_workers(16);
        let out = pool.run(&[1, 2, 3], |_, &x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn scope_runs_all_spawned_tasks() {
        let rt = Runtime::with_workers(4);
        let hits: Vec<Mutex<Option<usize>>> = (0..50).map(|_| Mutex::new(None)).collect();
        rt.scope(|scope| {
            for (i, slot) in hits.iter().enumerate() {
                scope.spawn(move || {
                    *slot.lock().unwrap() = Some(i * i);
                });
            }
        });
        for (i, slot) in hits.iter().enumerate() {
            assert_eq!(*slot.lock().unwrap(), Some(i * i));
        }
    }

    #[test]
    fn scope_with_single_worker_still_drains() {
        let rt = Runtime::with_workers(1);
        let sum = AtomicUsize::new(0);
        let sum_ref = &sum;
        rt.scope(|scope| {
            for i in 1..=10 {
                scope.spawn(move || {
                    sum_ref.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 55);
    }

    #[test]
    fn scope_tasks_can_spawn_nothing() {
        let rt = Runtime::with_workers(2);
        let out = rt.scope(|_| 42);
        assert_eq!(out, 42);
    }

    #[test]
    fn scope_task_panic_propagates() {
        let rt = Runtime::with_workers(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.scope(|scope| {
                scope.spawn(|| panic!("task boom"));
                scope.spawn(|| {}); // a healthy task alongside the bad one
            });
        }));
        assert!(caught.is_err(), "panic in a task must reach the caller");
    }
}
