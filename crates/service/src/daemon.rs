//! The serve loop: session handling and the multi-tenant map.
//!
//! A *session* is one request stream (stdin, or one TCP connection)
//! speaking the [`crate::protocol`] line protocol. Each session owns a
//! tenant map — tenant name → live [`TenantEngine`] — and all tenants'
//! LP work runs on one shared [`Runtime`], so N tenant fabrics solve
//! concurrently without oversubscribing the machine. `BYE` or EOF
//! finishes every tenant (remaining epochs, shard merge, validation)
//! and emits one `DONE` line per tenant in creation order.
//!
//! # Fault tolerance
//!
//! With [`SessionOptions::journal`] set, every round is written to a
//! per-tenant write-ahead journal ([`crate::journal`]) and committed
//! (flushed behind a `STATE` marker) *before* the round's response
//! lines go out — so `kill -9` at any instant loses only rounds the
//! client never heard about, and `--recover` reinstates each tenant by
//! replaying the resolver's own activation/fix logs (one model rebuild
//! per shard, no LP re-solves).
//!
//! Engine errors and solve-budget breaches
//! ([`SessionOptions::max_solve_ms`] or the `max-solve-ms` `HELLO`
//! knob) no longer quarantine a tenant: they demote it one rung down
//! the degrade ladder ([`crate::ladder`], LP → ordering → shed), and
//! exponential-backoff probes promote it back once the fault clears.
//! A deterministic [`FaultPlan`] can inject engine errors, slow
//! epochs, garbage input lines, and mid-stream disconnects to drive
//! all of this under test.
//!
//! The daemon installs no signal handlers (the workspace forbids
//! `unsafe`); `SIGTERM` terminates it through the default disposition,
//! which is exactly the "clean shutdown" contract the CI smoke test
//! asserts — and `SIGKILL` is exactly the crash the journal is for.

use crate::engine::{
    validate_port_coflow, PortCoflow, RecoveryCursor, ServiceOutcome, TenantEngine,
};
use crate::fallback::ordering_outcome;
use crate::fault::FaultPlan;
use crate::journal::{self, JournalWriter};
use crate::ladder::Ladder;
use crate::metrics::ServiceMetrics;
use crate::protocol::{
    degrade_line, done_line, epoch_line, parse_request, promote_line, rate_lines, recovered_line,
    to_port_coflow, DoneExtras, Hello, Request, Tier,
};
use coflow_core::CoflowError;
use coflow_runtime::Runtime;
use coflow_workloads::trace::TraceCoflow;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Instant;

/// Durability and robustness knobs of one session (all off by
/// default, giving the plain in-memory daemon).
#[derive(Clone, Debug, Default)]
pub struct SessionOptions {
    /// Write-ahead journal directory (`--journal DIR`); one
    /// `<tenant>.journal` file per tenant.
    pub journal: Option<PathBuf>,
    /// Recover journaled tenants before reading input (`--recover`).
    pub recover: bool,
    /// Daemon-wide per-epoch solve budget in milliseconds; a tenant's
    /// `max-solve-ms` `HELLO` knob overrides it.
    pub max_solve_ms: Option<f64>,
    /// Deterministic fault-injection schedule (`--fault-plan`).
    pub fault: FaultPlan,
}

/// One tenant's live state inside a session.
struct Tenant {
    hello: Hello,
    /// The raw `HELLO` request line, journaled verbatim so recovery
    /// re-parses the exact configuration.
    hello_raw: String,
    engine: TenantEngine,
    metrics: ServiceMetrics,
    /// Admitted coflow ids, in admission order (for `RATE` lines).
    ids: Vec<String>,
    started: Instant,
    /// Creation order (for deterministic `DONE` ordering).
    order: usize,
    /// Degrade-ladder state (replaces the old quarantine flag).
    ladder: Ladder,
    /// Every validated, non-shed arrival, kept verbatim: the ordering
    /// tier schedules from it, and LP probes replay the backlog.
    arrivals: Vec<PortCoflow>,
    /// A *real* engine error may leave the engine mid-epoch; a probe
    /// then rebuilds it from `arrivals` instead of resuming it.
    poisoned: bool,
    journal: Option<JournalWriter>,
    /// Tracks which engine events the journal already holds.
    cursor: RecoveryCursor,
}

/// What a session did, for callers that embed the daemon loop.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionSummary {
    /// Tenants created.
    pub tenants: usize,
    /// Coflows admitted across tenants.
    pub admitted: usize,
    /// `ERR` responses emitted.
    pub errors: usize,
}

/// Appends one response line.
fn say(resp: &mut String, line: &str) {
    resp.push_str(line);
    resp.push('\n');
}

struct Session<'rt> {
    rt: &'rt Runtime,
    opts: SessionOptions,
    tenants: BTreeMap<String, Tenant>,
    current: Option<String>,
    summary: SessionSummary,
    /// Session-wide engine-admission attempt counter (the fault plan's
    /// `engine-error` indices address it).
    engine_attempts: usize,
    /// Session-wide epoch-report counter (the fault plan's `slow`
    /// indices address it).
    reports_seen: usize,
    /// Garbage lines injected so far (seeds the generator).
    garbage_injected: usize,
}

/// Runs one protocol session: reads requests from `input`, writes
/// responses to `out`. Returns when the stream ends or `BYE` arrives.
///
/// # Errors
///
/// Only transport I/O errors; protocol and engine errors become `ERR`
/// response lines and the session continues.
pub fn session<R: BufRead, W: Write>(
    rt: &Runtime,
    input: R,
    out: &mut W,
) -> std::io::Result<SessionSummary> {
    session_with(rt, input, out, SessionOptions::default())
}

/// [`session`] with durability/robustness options.
///
/// # Errors
///
/// Only transport I/O errors, as for [`session`].
pub fn session_with<R: BufRead, W: Write>(
    rt: &Runtime,
    mut input: R,
    out: &mut W,
    opts: SessionOptions,
) -> std::io::Result<SessionSummary> {
    let mut s = Session {
        rt,
        opts,
        tenants: BTreeMap::new(),
        current: None,
        summary: SessionSummary::default(),
        engine_attempts: 0,
        reports_seen: 0,
        garbage_injected: 0,
    };
    let mut resp = String::new();
    if s.opts.recover {
        s.recover_all(&mut resp);
        out.write_all(resp.as_bytes())?;
        out.flush()?;
    }
    let mut buf = Vec::new();
    let mut line_no = 0usize;
    loop {
        buf.clear();
        // Raw bytes + lossy decode: invalid UTF-8 must yield ERR, not
        // kill the transport.
        if input.read_until(b'\n', &mut buf)? == 0 {
            break;
        }
        line_no += 1;
        resp.clear();
        let mut finished = false;
        for _ in 0..s.opts.fault.garbage_count_before(line_no) {
            let g = s.opts.fault.garbage_line(s.garbage_injected);
            s.garbage_injected += 1;
            let g = String::from_utf8_lossy(&g).into_owned();
            finished |= s.handle_line(g.trim_end_matches(['\n', '\r']), &mut resp);
        }
        let line = String::from_utf8_lossy(&buf).into_owned();
        finished |= s.handle_line(line.trim_end_matches(['\n', '\r']), &mut resp);
        out.write_all(resp.as_bytes())?;
        out.flush()?;
        if finished {
            return Ok(s.summary);
        }
        if s.opts.fault.disconnect_after == Some(line_no) {
            // Simulated crash: drop everything unfinished on the floor
            // (no DONE lines, no journal finish markers).
            return Ok(s.summary);
        }
    }
    resp.clear();
    s.finish_all(&mut resp);
    out.write_all(resp.as_bytes())?;
    out.flush()?;
    Ok(s.summary)
}

impl Session<'_> {
    /// Handles one request line; returns `true` after `BYE`.
    fn handle_line(&mut self, line: &str, resp: &mut String) -> bool {
        let current_ports = self
            .current
            .as_ref()
            .and_then(|t| self.tenants.get(t))
            .map(|t| t.hello.ports);
        match parse_request(line, current_ports) {
            Ok(Request::Empty) => {}
            Ok(Request::Hello(hello)) => self.handle_hello(hello, line, resp),
            Ok(Request::Coflow(c)) => self.handle_coflow(&c, resp),
            Ok(Request::Bye) => {
                self.finish_all(resp);
                return true;
            }
            Err(msg) => {
                self.summary.errors += 1;
                say(resp, &format!("ERR {msg}"));
            }
        }
        false
    }

    fn handle_hello(&mut self, hello: Hello, raw: &str, resp: &mut String) {
        let name = hello.tenant.clone();
        match self.tenants.get(&name) {
            Some(existing) if existing.hello.ports != hello.ports => {
                self.summary.errors += 1;
                say(
                    resp,
                    &format!(
                        "ERR tenant {name} already has {} ports",
                        existing.hello.ports
                    ),
                );
                return;
            }
            Some(_) => {} // re-HELLO switches the current tenant
            None => {
                let config = hello.engine_config();
                let tier = hello.tier;
                let mut tenant = Tenant {
                    engine: TenantEngine::new(hello.ports, config),
                    hello_raw: raw.to_string(),
                    ladder: Ladder::new(tier),
                    hello,
                    metrics: ServiceMetrics::default(),
                    ids: Vec::new(),
                    started: Instant::now(),
                    order: self.summary.tenants,
                    arrivals: Vec::new(),
                    poisoned: false,
                    journal: None,
                    cursor: RecoveryCursor::default(),
                };
                if let Some(dir) = &self.opts.journal {
                    match JournalWriter::create(dir, &name) {
                        Ok(w) => tenant.journal = Some(w),
                        Err(e) => eprintln!("serve: journal for {name} disabled: {e}"),
                    }
                    jwrite(&mut tenant, &format!("HELLO {raw}"));
                    jcommit(&mut tenant);
                }
                self.tenants.insert(name.clone(), tenant);
                self.summary.tenants += 1;
            }
        }
        let t = &self.tenants[&name];
        say(
            resp,
            &format!(
                "OK tenant={name} ports={} policy={:?} shards={} tier={}",
                t.hello.ports,
                t.hello.policy,
                t.engine.shards(),
                t.ladder.rung().label(),
            ),
        );
        self.current = Some(name);
    }

    fn handle_coflow(&mut self, c: &TraceCoflow, resp: &mut String) {
        let Some(name) = self.current.clone() else {
            self.summary.errors += 1;
            say(resp, "ERR no tenant — HELLO first");
            return;
        };
        let Some(tenant) = self.tenants.get_mut(&name) else {
            self.summary.errors += 1;
            say(resp, &format!("ERR tenant {name} vanished"));
            return;
        };
        let pc = match to_port_coflow(c, &tenant.hello) {
            Err(msg) => {
                self.summary.errors += 1;
                say(resp, &format!("ERR {msg}"));
                return;
            }
            Ok(pc) => pc,
        };
        // Both tiers reject the same malformed inputs, and a malformed
        // coflow is the caller's fault — it must not reach the arrival
        // list or tick the ladder.
        if let Err(e) = validate_port_coflow(tenant.hello.ports, &pc) {
            self.summary.errors += 1;
            say(resp, &format!("ERR {e}"));
            return;
        }

        // A due retry probe runs before the admission decision, so this
        // arrival is served on the post-probe rung.
        if self
            .tenants
            .get_mut(&name)
            .is_some_and(|t| t.ladder.tick_arrival())
        {
            self.run_probe(&name, resp);
        }

        let Some(tenant) = self.tenants.get_mut(&name) else {
            return;
        };
        match tenant.ladder.rung() {
            Tier::Shed => {
                tenant.metrics.shed += 1;
                self.summary.errors += 1;
                say(
                    resp,
                    &format!(
                        "ERR tenant {name} is shedding admissions (retry probe in {} arrivals)",
                        tenant.ladder.probe_in()
                    ),
                );
                // A shed round still commits, so the shed counter's
                // backoff state survives a crash.
                jcommit_state(tenant);
            }
            Tier::Ordering => {
                tenant.arrivals.push(pc.clone());
                jwrite_owned(tenant, journal::admit_line(&pc));
                tenant.ids.push(c.id.clone());
                self.summary.admitted += 1;
                jcommit_state(tenant);
            }
            Tier::Lp => {
                tenant.arrivals.push(pc.clone());
                jwrite_owned(tenant, journal::admit_line(&pc));
                tenant.ids.push(c.id.clone());
                self.summary.admitted += 1;
                match self.admit_next_to_engine(&name) {
                    Ok(()) => self.after_engine_round(&name, resp),
                    Err(e) => {
                        // The arrival stays in `arrivals`; the ordering
                        // tier schedules it at finish (or a successful
                        // probe replays it into the engine).
                        self.demote(&name, &format!("engine-error: {e}"), resp);
                    }
                }
                if let Some(t) = self.tenants.get_mut(&name) {
                    jcommit_state(t);
                }
            }
        }
    }

    /// Feeds the engine its next backlog arrival (`ladder.engine_next`),
    /// consulting the fault plan first so injected faults never touch
    /// (and thus never poison) the real engine.
    fn admit_next_to_engine(&mut self, name: &str) -> Result<(), CoflowError> {
        let attempt = self.engine_attempts;
        self.engine_attempts += 1;
        if self.opts.fault.engine_error_at(attempt) {
            return Err(CoflowError::Lp(format!(
                "injected engine fault (admission attempt {attempt})"
            )));
        }
        let tenant = self
            .tenants
            .get_mut(name)
            .ok_or_else(|| CoflowError::BadInstance(format!("tenant {name} vanished")))?;
        let a = tenant.ladder.engine_next;
        let pc = tenant
            .arrivals
            .get(a)
            .cloned()
            .ok_or_else(|| CoflowError::BadInstance(format!("no backlog arrival {a}")))?;
        match tenant.engine.admit(self.rt, pc) {
            Ok(_) => {
                tenant.ladder.engine_next = a + 1;
                let rel = tenant.engine.releases().last().copied().unwrap_or(0);
                jwrite_owned(tenant, journal::engadm_line(a, rel));
                Ok(())
            }
            Err(e) => {
                // The engine may have run (and half-committed) epochs
                // for this admission; only a rebuild may reuse it.
                tenant.poisoned = true;
                Err(e)
            }
        }
    }

    /// Post-admission bookkeeping: drain reports (emit + journal),
    /// run the solve watchdog, and check the `max-resolves` overload
    /// knob.
    fn after_engine_round(&mut self, name: &str, resp: &mut String) {
        let Some(tenant) = self.tenants.get_mut(name) else {
            return;
        };
        let budget = tenant.hello.max_solve_ms.or(self.opts.max_solve_ms);
        let mut breach: Option<String> = None;
        for report in tenant.engine.take_reports() {
            let idx = self.reports_seen;
            self.reports_seen += 1;
            tenant.metrics.observe(&report);
            jwrite_owned(tenant, journal::report_line(&report));
            say(resp, &epoch_line(name, &report));
            for rl in rate_lines(name, &tenant.ids, &report) {
                say(resp, &rl);
            }
            if let Some(b) = budget {
                let injected = self.opts.fault.slow_at(idx);
                if report.wall_ms > b || injected {
                    breach = Some(format!(
                        "solve-budget={b}ms exceeded (epoch {} took {:.3}ms{})",
                        report.epoch,
                        report.wall_ms,
                        if injected { ", injected-slow" } else { "" }
                    ));
                }
            }
        }
        self.journal_engine_delta(name);
        if let Some(reason) = breach {
            self.demote(name, &reason, resp);
            return;
        }
        let Some(tenant) = self.tenants.get_mut(name) else {
            return;
        };
        let cap = tenant.hello.max_resolves;
        if tenant.ladder.rung() == Tier::Lp
            && tenant.hello.fallback
            && cap > 0
            && tenant.engine.resolves() > cap
        {
            // The tenant chose this budget: lower its *home* rung so no
            // probe ever retries the LP tier.
            tenant.ladder.demote_home();
            tenant.metrics.degrades += 1;
            say(
                resp,
                &degrade_line(
                    name,
                    Tier::Ordering,
                    &format!(
                        "max-resolves={cap} exceeded ({} re-solves)",
                        tenant.engine.resolves()
                    ),
                ),
            );
        }
    }

    /// Journals `CORES` (once) plus any new resolver/schedule events.
    fn journal_engine_delta(&mut self, name: &str) {
        let Some(tenant) = self.tenants.get_mut(name) else {
            return;
        };
        if tenant.journal.is_none() {
            return;
        }
        if tenant.cursor.is_fresh() {
            if let Some(shares) = tenant.engine.egress_shares() {
                let line = journal::cores_line(shares);
                jwrite_owned(tenant, line);
            }
        }
        let deltas = tenant.engine.drain_recovery(&mut tenant.cursor);
        for (g, delta) in deltas.iter().enumerate() {
            for line in journal::delta_lines(g, delta) {
                jwrite(tenant, &line);
            }
        }
    }

    /// One rung down, with the `INFO` line and counters.
    fn demote(&mut self, name: &str, reason: &str, resp: &mut String) {
        let Some(tenant) = self.tenants.get_mut(name) else {
            return;
        };
        let to = tenant.ladder.demote();
        tenant.metrics.degrades += 1;
        say(resp, &degrade_line(name, to, reason));
    }

    /// A due retry probe: from shed, accepting arrivals again is the
    /// whole probe; from ordering (with an LP home), the probe replays
    /// the arrival backlog into the engine — rebuilding it first if a
    /// real fault poisoned it.
    fn run_probe(&mut self, name: &str, resp: &mut String) {
        let Some(tenant) = self.tenants.get_mut(name) else {
            return;
        };
        tenant.metrics.probes += 1;
        match tenant.ladder.rung() {
            Tier::Shed => {
                let to = tenant.ladder.probe_succeeded();
                tenant.metrics.promotions += 1;
                say(resp, &promote_line(name, to, "probe"));
            }
            Tier::Ordering if tenant.ladder.home() == Tier::Lp => {
                let poisoned = tenant.poisoned;
                let outcome = if poisoned {
                    self.rebuild_engine(name)
                } else {
                    self.catch_up_engine(name)
                };
                match outcome {
                    Ok(()) => {
                        let Some(tenant) = self.tenants.get_mut(name) else {
                            return;
                        };
                        let to = tenant.ladder.probe_succeeded();
                        tenant.metrics.promotions += 1;
                        say(resp, &promote_line(name, to, "probe"));
                    }
                    Err(e) => {
                        let Some(tenant) = self.tenants.get_mut(name) else {
                            return;
                        };
                        let before = tenant.ladder.rung();
                        let after = tenant.ladder.probe_failed();
                        if after == before {
                            say(resp, &format!("INFO tenant={name} probe=failed reason={e}"));
                        } else {
                            tenant.metrics.degrades += 1;
                            say(
                                resp,
                                &degrade_line(name, after, &format!("probe-failed: {e}")),
                            );
                        }
                    }
                }
            }
            // Healthy, or the home rung itself: nothing to probe.
            _ => {}
        }
    }

    /// Probe path for a healthy-but-degraded engine: admit the backlog
    /// `arrivals[engine_next..]` one by one.
    fn catch_up_engine(&mut self, name: &str) -> Result<(), CoflowError> {
        loop {
            let Some(tenant) = self.tenants.get(name) else {
                return Ok(());
            };
            if tenant.ladder.engine_next >= tenant.arrivals.len() {
                return Ok(());
            }
            self.admit_next_to_engine(name)?;
        }
    }

    /// Probe path for a poisoned engine: rebuild from scratch by
    /// replaying every arrival, swap it in only on full success. The
    /// replayed epochs are internal re-planning — their reports are
    /// not re-emitted (the client already saw the pre-fault epochs) —
    /// and the journal is rewritten to match the fresh engine.
    fn rebuild_engine(&mut self, name: &str) -> Result<(), CoflowError> {
        let (ports, config, arrivals) = {
            let tenant = self
                .tenants
                .get(name)
                .ok_or_else(|| CoflowError::BadInstance(format!("tenant {name} vanished")))?;
            (
                tenant.hello.ports,
                tenant.hello.engine_config(),
                tenant.arrivals.clone(),
            )
        };
        let mut fresh = TenantEngine::new(ports, config);
        for pc in arrivals {
            let attempt = self.engine_attempts;
            self.engine_attempts += 1;
            if self.opts.fault.engine_error_at(attempt) {
                return Err(CoflowError::Lp(format!(
                    "injected engine fault (admission attempt {attempt})"
                )));
            }
            fresh.admit(self.rt, pc)?;
        }
        let _replayed = fresh.take_reports();
        let Some(tenant) = self.tenants.get_mut(name) else {
            return Ok(());
        };
        tenant.engine = fresh;
        tenant.poisoned = false;
        tenant.ladder.engine_next = tenant.arrivals.len();
        tenant.cursor = RecoveryCursor::default();
        self.rewrite_journal(name);
        Ok(())
    }

    /// Recreates a tenant's journal from its current state (after an
    /// engine rebuild invalidated the logged resolver events).
    fn rewrite_journal(&mut self, name: &str) {
        let Some(dir) = self.opts.journal.clone() else {
            return;
        };
        let Some(tenant) = self.tenants.get_mut(name) else {
            return;
        };
        if tenant.journal.is_none() {
            return;
        }
        match JournalWriter::create(&dir, name) {
            Err(e) => {
                eprintln!("serve: journal rewrite for {name} failed: {e}");
                tenant.journal = None;
                return;
            }
            Ok(w) => tenant.journal = Some(w),
        }
        let hello_raw = tenant.hello_raw.clone();
        jwrite(tenant, &format!("HELLO {hello_raw}"));
        let admits: Vec<String> = tenant.arrivals.iter().map(journal::admit_line).collect();
        for line in admits {
            jwrite(tenant, &line);
        }
        let engadm: Vec<String> = tenant
            .engine
            .releases()
            .iter()
            .enumerate()
            .map(|(a, &rel)| journal::engadm_line(a, rel))
            .collect();
        for line in engadm {
            jwrite(tenant, &line);
        }
        self.journal_engine_delta(name);
        if let Some(tenant) = self.tenants.get_mut(name) {
            jcommit(tenant);
        }
    }

    /// Reinstates every unfinished tenant journaled under the journal
    /// directory (sorted by file name for determinism).
    fn recover_all(&mut self, resp: &mut String) {
        let Some(dir) = self.opts.journal.clone() else {
            return;
        };
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) => {
                self.summary.errors += 1;
                say(resp, &format!("ERR recover: read {}: {e}", dir.display()));
                return;
            }
        };
        let mut files: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("journal"))
            .collect();
        files.sort();
        for path in files {
            match journal::read_journal(&path) {
                Err(msg) => {
                    self.summary.errors += 1;
                    say(resp, &format!("ERR recover: {msg}"));
                }
                Ok(rec) if rec.done => {}
                Ok(rec) => self.recover_one(&path, rec, resp),
            }
        }
        self.current = None;
    }

    fn recover_one(
        &mut self,
        path: &std::path::Path,
        rec: journal::JournalRecovery,
        resp: &mut String,
    ) {
        let file = path.display();
        let hello = match parse_request(&rec.hello_line, None) {
            Ok(Request::Hello(h)) => h,
            _ => {
                self.summary.errors += 1;
                say(resp, &format!("ERR recover: {file}: bad HELLO header"));
                return;
            }
        };
        let name = hello.tenant.clone();
        if self.tenants.contains_key(&name) {
            self.summary.errors += 1;
            say(
                resp,
                &format!("ERR recover: {file}: tenant {name} already live"),
            );
            return;
        }
        let engine = match TenantEngine::restore(hello.ports, hello.engine_config(), rec.snapshot) {
            Ok(engine) => engine,
            Err(e) => {
                self.summary.errors += 1;
                say(resp, &format!("ERR recover: {file}: {e}"));
                return;
            }
        };
        let mut metrics = ServiceMetrics::default();
        for r in &rec.reports {
            metrics.observe(r);
        }
        metrics.recovered_epochs = rec.reports.len();
        say(
            resp,
            &recovered_line(
                &name,
                rec.arrivals.len(),
                rec.reports.len(),
                rec.ladder.rung(),
            ),
        );
        // Re-emit the journaled epochs so the recovered stream carries
        // the full objective sequence (the golden test compares it to
        // an uninterrupted run's).
        for r in &rec.reports {
            say(resp, &epoch_line(&name, r));
        }
        let cursor = engine.recovery_cursor();
        let journal_writer = match JournalWriter::open_append(path) {
            Ok(w) => Some(w),
            Err(e) => {
                eprintln!("serve: journal for {name} disabled: {e}");
                None
            }
        };
        self.tenants.insert(
            name,
            Tenant {
                hello_raw: rec.hello_line,
                ids: rec.arrivals.iter().map(|p| p.id.clone()).collect(),
                arrivals: rec.arrivals,
                ladder: rec.ladder,
                hello,
                engine,
                metrics,
                started: Instant::now(),
                order: self.summary.tenants,
                poisoned: false,
                journal: journal_writer,
                cursor,
            },
        );
        self.summary.tenants += 1;
    }

    /// Finishes every tenant in creation order, emitting `DONE` (or
    /// `ERR`) lines and sealing the journals.
    fn finish_all(&mut self, resp: &mut String) {
        let by_order: BTreeMap<usize, String> = self
            .tenants
            .iter()
            .map(|(name, t)| (t.order, name.clone()))
            .collect();
        for name in by_order.values() {
            // An LP-rung tenant runs its final epochs; if those fail it
            // degrades to the ordering tier like any other fault.
            let mut lp_outcome: Option<ServiceOutcome> = None;
            if self
                .tenants
                .get(name)
                .is_some_and(|t| t.ladder.rung() == Tier::Lp)
            {
                let finish = {
                    let Some(tenant) = self.tenants.get_mut(name) else {
                        continue;
                    };
                    tenant.engine.finish(self.rt)
                };
                match finish {
                    Ok(outcome) => {
                        self.after_engine_round(name, resp);
                        lp_outcome = Some(outcome);
                    }
                    Err(e) => self.demote(name, &format!("finish-error: {e}"), resp),
                }
            }
            let Some(tenant) = self.tenants.get_mut(name) else {
                continue;
            };
            let wall = tenant.started.elapsed().as_secs_f64();
            let counters = (&tenant.metrics).into();
            match lp_outcome {
                Some(outcome) => {
                    // With a fallback configured, compute what the
                    // ordering tier would have cost and report both.
                    let fallback_objective = if tenant.hello.fallback {
                        ordering_outcome(tenant.hello.ports, &tenant.arrivals)
                            .ok()
                            .map(|fo| fo.objective)
                    } else {
                        None
                    };
                    let extras = DoneExtras {
                        tier: Tier::Lp,
                        fallback_objective,
                        deadline: (outcome.deadline_total > 0)
                            .then_some((outcome.deadline_missed, outcome.deadline_total)),
                        ..counters
                    };
                    say(
                        resp,
                        &done_line(name, &outcome, &tenant.metrics, wall, &extras),
                    );
                    jfinish(tenant);
                }
                None => match ordering_outcome(tenant.hello.ports, &tenant.arrivals) {
                    Err(e) => {
                        self.summary.errors += 1;
                        say(resp, &format!("ERR tenant {name}: {e}"));
                        jfinish(tenant);
                    }
                    Ok(fo) => {
                        let outcome = ServiceOutcome {
                            admitted: tenant.arrivals.len(),
                            objective: fo.objective,
                            completions: fo.completions.clone(),
                            epochs: 0,
                            lp_iterations: 0,
                            cold_iterations: None,
                            resolves: 0,
                            rebuilds: 0,
                            lp_stats: coflow_lp::SolveStats::default(),
                            peak_utilization: fo.peak_utilization,
                            epoch_objectives: Vec::new(),
                            deadline_total: fo.deadline_total,
                            deadline_missed: fo.deadline_missed,
                        };
                        let extras = DoneExtras {
                            tier: tenant.ladder.rung(),
                            fallback_objective: None,
                            deadline: (fo.deadline_total > 0)
                                .then_some((fo.deadline_missed, fo.deadline_total)),
                            ..counters
                        };
                        say(
                            resp,
                            &done_line(name, &outcome, &tenant.metrics, wall, &extras),
                        );
                        jfinish(tenant);
                    }
                },
            }
        }
        self.tenants.clear();
    }
}

/// Journal helpers: a journal I/O failure disables journaling for the
/// tenant (reported to stderr) rather than killing the session.
fn jwrite(tenant: &mut Tenant, line: &str) {
    if let Some(w) = &mut tenant.journal {
        if let Err(e) = w.event(line) {
            eprintln!("serve: journal write failed, disabling: {e}");
            tenant.journal = None;
        }
    }
}

fn jwrite_owned(tenant: &mut Tenant, line: String) {
    jwrite(tenant, &line);
}

fn jcommit(tenant: &mut Tenant) {
    let state = tenant.engine.state();
    if let Some(w) = &mut tenant.journal {
        if let Err(e) = w.commit(&state, &tenant.ladder) {
            eprintln!("serve: journal commit failed, disabling: {e}");
            tenant.journal = None;
        }
    }
}

/// Commit shorthand used at the end of every coflow round.
fn jcommit_state(tenant: &mut Tenant) {
    jcommit(tenant);
}

fn jfinish(tenant: &mut Tenant) {
    // Seal with the final engine state, then the DONE marker.
    jcommit(tenant);
    if let Some(w) = &mut tenant.journal {
        if let Err(e) = w.finish() {
            eprintln!("serve: journal finish failed: {e}");
            tenant.journal = None;
        }
    }
}

impl From<&ServiceMetrics> for DoneExtras {
    fn from(m: &ServiceMetrics) -> DoneExtras {
        DoneExtras {
            tier: Tier::Lp,
            fallback_objective: None,
            deadline: None,
            degrades: m.degrades,
            probes: m.probes,
            promotions: m.promotions,
            shed: m.shed,
            recovered_epochs: m.recovered_epochs,
        }
    }
}

/// Serves one session over stdin/stdout (`coflow serve --stdin`).
///
/// # Errors
///
/// Transport I/O errors only.
pub fn serve_stdin(rt: &Runtime) -> std::io::Result<SessionSummary> {
    serve_stdin_with(rt, SessionOptions::default())
}

/// [`serve_stdin`] with durability/robustness options.
///
/// # Errors
///
/// Transport I/O errors only.
pub fn serve_stdin_with(rt: &Runtime, opts: SessionOptions) -> std::io::Result<SessionSummary> {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    session_with(rt, stdin.lock(), &mut stdout, opts)
}

/// Binds `addr` and serves TCP sessions until the process is killed
/// (`coflow serve --listen addr`). Each connection gets its own
/// session thread; LP work from all sessions shares `rt`. Prints
/// `LISTENING <addr>` on stdout once ready (the `coflow feed` client
/// and the CI smoke test key on it).
///
/// # Errors
///
/// Bind errors; per-connection errors are reported to stderr and do
/// not stop the listener.
pub fn serve_tcp(rt: &Runtime, addr: &str) -> std::io::Result<()> {
    serve_tcp_with(rt, addr, SessionOptions::default())
}

/// [`serve_tcp`] with durability/robustness options. Journaling and
/// recovery assume one client session at a time: every new connection
/// with `recover` set replays the journal directory's unfinished
/// tenants, and concurrent sessions sharing a tenant name would race
/// on its journal file.
///
/// # Errors
///
/// Bind errors, as for [`serve_tcp`].
pub fn serve_tcp_with(rt: &Runtime, addr: &str, opts: SessionOptions) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    println!("LISTENING {}", listener.local_addr()?);
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            match stream {
                Err(e) => eprintln!("serve: accept failed: {e}"),
                Ok(stream) => {
                    let opts = opts.clone();
                    scope.spawn(move || {
                        let peer = stream
                            .peer_addr()
                            .map(|a| a.to_string())
                            .unwrap_or_else(|_| "?".to_string());
                        let reader = BufReader::new(&stream);
                        let mut writer = &stream;
                        match session_with(rt, reader, &mut writer, opts) {
                            Ok(s) => eprintln!(
                                "serve: {peer}: {} tenants, {} coflows, {} errors",
                                s.tenants, s.admitted, s.errors
                            ),
                            Err(e) => eprintln!("serve: {peer}: session failed: {e}"),
                        }
                    });
                }
            }
        }
    });
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn run(input: &str) -> (SessionSummary, String) {
        let rt = Runtime::with_workers(2);
        let mut out = Vec::new();
        let summary = session(&rt, input.as_bytes(), &mut out).expect("in-memory session");
        (summary, String::from_utf8(out).expect("utf8 responses"))
    }

    fn run_with(input: &str, opts: SessionOptions) -> (SessionSummary, String) {
        let rt = Runtime::with_workers(2);
        let mut out = Vec::new();
        let summary =
            session_with(&rt, input.as_bytes(), &mut out, opts).expect("in-memory session");
        (summary, String::from_utf8(out).expect("utf8 responses"))
    }

    #[test]
    fn stdin_trace_with_implicit_hello() {
        // 4-port, 1-based mini trace: two coflows, staggered arrivals.
        let input = "4 2\n1 0 1 1 1 3:250\n2 1000 2 1 2 1 4:250\n";
        let (summary, out) = run(input);
        assert_eq!(summary.tenants, 1);
        assert_eq!(summary.admitted, 2);
        assert_eq!(summary.errors, 0);
        assert!(out.contains("OK tenant=default ports=4"), "{out}");
        assert!(out.contains("EPOCH tenant=default epoch=0"), "{out}");
        assert!(out.contains("DONE tenant=default admitted=2"), "{out}");
    }

    #[test]
    fn explicit_hello_two_tenants() {
        let input = "HELLO a 4 base=0 plans\n\
                     c1 0 1 0 1 2:125\n\
                     HELLO b 4 base=0\n\
                     c2 0 1 1 1 3:125\n\
                     BYE\n";
        let (summary, out) = run(input);
        assert_eq!(summary.tenants, 2);
        assert_eq!(summary.admitted, 2);
        assert_eq!(summary.errors, 0);
        assert!(out.contains("DONE tenant=a admitted=1"), "{out}");
        assert!(out.contains("DONE tenant=b admitted=1"), "{out}");
        assert!(out.contains("RATE tenant=a coflow=c1"), "{out}");
        // DONE lines come out in creation order.
        let a = out.find("DONE tenant=a").expect("tenant a done");
        let b = out.find("DONE tenant=b").expect("tenant b done");
        assert!(a < b);
    }

    #[test]
    fn ordering_tier_schedules_without_the_lp_engine() {
        let input = "HELLO t 4 base=0 tier=ordering deadline-slack=4\n\
                     c1 0 1 0 1 2:125\n\
                     c2 0 1 1 1 2:125\n\
                     BYE\n";
        let (summary, out) = run(input);
        assert_eq!(summary.admitted, 2);
        assert_eq!(summary.errors, 0);
        assert!(out.contains("OK tenant=t ports=4"), "{out}");
        assert!(out.contains(" tier=ordering"), "{out}");
        // No LP epochs ran; the DONE line reports the greedy schedule.
        assert!(!out.contains("EPOCH"), "{out}");
        assert!(
            out.contains("DONE tenant=t admitted=2") && out.contains("lp-iterations=0"),
            "{out}"
        );
        assert!(out.contains("deadline-missed=0/2"), "{out}");
    }

    #[test]
    fn max_resolves_degrades_to_the_ordering_tier() {
        // Staggered arrivals force one LP re-solve per epoch; capping at
        // one re-solve trips the overload knob deterministically.
        let input = "HELLO t 4 base=0 fallback=ordering max-resolves=1\n\
                     c1 0 1 0 1 2:125\n\
                     c2 1000 1 1 1 3:125\n\
                     c3 2000 1 0 1 3:125\n\
                     BYE\n";
        let (summary, out) = run(input);
        assert_eq!(summary.admitted, 3);
        assert_eq!(summary.errors, 0);
        assert!(
            out.contains("INFO tenant=t degraded=ordering reason=max-resolves=1"),
            "{out}"
        );
        assert!(out.contains("DONE tenant=t admitted=3"), "{out}");
        assert!(out.contains("tier=ordering"), "{out}");
    }

    #[test]
    fn lp_tenant_with_fallback_reports_both_costs() {
        let input = "HELLO t 4 base=0 fallback=ordering\n\
                     c1 0 1 0 1 2:125\n\
                     c2 0 1 1 1 3:125\n\
                     BYE\n";
        let (summary, out) = run(input);
        assert_eq!(summary.errors, 0, "{out}");
        let done = out
            .lines()
            .find(|l| l.starts_with("DONE tenant=t"))
            .expect("DONE line");
        assert!(done.contains(" tier=lp"), "{done}");
        assert!(done.contains(" fallback-objective="), "{done}");
        // Two independent unit coflows: both tiers finish them in slot 1,
        // so the two reported costs agree exactly.
        assert!(done.contains("objective=2.000000"), "{done}");
        assert!(done.contains("fallback-objective=2.000000"), "{done}");
    }

    #[test]
    fn errors_do_not_kill_the_session() {
        let input = "nonsense before hello\n\
                     HELLO t 4 base=1\n\
                     c1 0 1 0 1 2:125\n\
                     HELLO t 8\n\
                     c2 0 1 1 1 2:125\n\
                     BYE\n";
        let (summary, out) = run(input);
        // port 0 under base=1 and the ports mismatch are both ERRs.
        assert_eq!(summary.errors, 3, "{out}");
        assert_eq!(summary.admitted, 1);
        assert!(out.contains("ERR no tenant"), "{out}");
        assert!(out.contains("below the tenant's base=1"), "{out}");
        assert!(out.contains("already has 4 ports"), "{out}");
        assert!(out.contains("DONE tenant=t admitted=1"), "{out}");
    }

    #[test]
    fn invalid_utf8_input_yields_err_not_a_crash() {
        let rt = Runtime::with_workers(1);
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"HELLO t 4 base=0\n");
        input.extend_from_slice(&[0xff, 0xfe, 0x80, b' ', 0xc0, b'\n']);
        input.extend_from_slice(b"c1 0 1 0 1 2:125\nBYE\n");
        let mut out = Vec::new();
        let summary = session(&rt, &input[..], &mut out).expect("session survives bad bytes");
        assert_eq!(summary.errors, 1);
        assert_eq!(summary.admitted, 1);
        let out = String::from_utf8(out).expect("responses are valid utf8");
        assert!(out.contains("ERR"), "{out}");
        assert!(out.contains("DONE tenant=t admitted=1"), "{out}");
    }

    #[test]
    fn injected_engine_fault_degrades_then_probe_promotes() {
        // Fault the second engine admission (attempt index 1). The
        // ladder demotes to ordering with a probe 2 arrivals out; the
        // probe replays the backlog and promotes back to LP.
        let opts = SessionOptions {
            fault: FaultPlan::parse("engine-error=1").expect("valid plan"),
            ..SessionOptions::default()
        };
        let input = "HELLO t 4 base=0\n\
                     c1 0 1 0 1 2:125\n\
                     c2 1000 1 1 1 3:125\n\
                     c3 2000 1 0 1 3:125\n\
                     c4 3000 1 1 1 2:125\n\
                     c5 4000 1 0 1 3:125\n\
                     BYE\n";
        let (summary, out) = run_with(input, opts);
        assert_eq!(summary.admitted, 5, "{out}");
        assert!(
            out.contains("INFO tenant=t degraded=ordering reason=engine-error"),
            "{out}"
        );
        assert!(
            out.contains("INFO tenant=t promoted=lp reason=probe"),
            "{out}"
        );
        let done = out
            .lines()
            .find(|l| l.starts_with("DONE tenant=t"))
            .expect("DONE line");
        assert!(done.contains(" tier=lp"), "{done}");
        assert!(
            done.contains(" degrades=1 probes=1 promotions=1 shed=0"),
            "{done}"
        );
    }
}
