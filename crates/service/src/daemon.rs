//! The serve loop: session handling and the multi-tenant map.
//!
//! A *session* is one request stream (stdin, or one TCP connection)
//! speaking the [`crate::protocol`] line protocol. Each session owns a
//! tenant map — tenant name → live [`TenantEngine`] — and all tenants'
//! LP work runs on one shared [`Runtime`], so N tenant fabrics solve
//! concurrently without oversubscribing the machine. `BYE` or EOF
//! finishes every tenant (remaining epochs, shard merge, validation)
//! and emits one `DONE` line per tenant in creation order.
//!
//! The daemon installs no signal handlers (the workspace forbids
//! `unsafe`); `SIGTERM` terminates it through the default disposition,
//! which is exactly the "clean shutdown" contract the CI smoke test
//! asserts — no partial state survives because sessions hold
//! everything in memory.

use crate::engine::{validate_port_coflow, PortCoflow, ServiceOutcome, TenantEngine};
use crate::fallback::ordering_outcome;
use crate::metrics::ServiceMetrics;
use crate::protocol::{
    degrade_line, done_line, epoch_line, parse_request, rate_lines, to_port_coflow, DoneExtras,
    Hello, Request, Tier,
};
use coflow_runtime::Runtime;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::time::Instant;

/// One tenant's live state inside a session.
struct Tenant {
    hello: Hello,
    engine: TenantEngine,
    metrics: ServiceMetrics,
    /// Admitted coflow ids, in admission order (for `RATE` lines).
    ids: Vec<String>,
    started: Instant,
    /// Creation order (for deterministic `DONE` ordering).
    order: usize,
    /// A tenant that hit an engine error stops admitting (only without
    /// `fallback=ordering` — with it the tenant degrades instead).
    failed: bool,
    /// The tier the tenant currently runs on (starts at `hello.tier`,
    /// may degrade from Lp to Ordering).
    tier: Tier,
    /// Every validated arrival, kept verbatim when the ordering tier is
    /// (or may become) responsible for this tenant's schedule.
    arrivals: Vec<PortCoflow>,
}

impl Tenant {
    /// Whether this tenant's arrivals must be retained for the ordering
    /// tier — it is on that tier already, or may degrade onto it.
    fn keeps_arrivals(&self) -> bool {
        self.tier == Tier::Ordering || self.hello.fallback
    }
}

/// What a session did, for callers that embed the daemon loop.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionSummary {
    /// Tenants created.
    pub tenants: usize,
    /// Coflows admitted across tenants.
    pub admitted: usize,
    /// `ERR` responses emitted.
    pub errors: usize,
}

/// Runs one protocol session: reads requests from `input`, writes
/// responses to `out`. Returns when the stream ends or `BYE` arrives.
///
/// # Errors
///
/// Only transport I/O errors; protocol and engine errors become `ERR`
/// response lines and the session continues.
pub fn session<R: BufRead, W: Write>(
    rt: &Runtime,
    input: R,
    out: &mut W,
) -> std::io::Result<SessionSummary> {
    let mut tenants: BTreeMap<String, Tenant> = BTreeMap::new();
    let mut current: Option<String> = None;
    let mut summary = SessionSummary::default();
    let mut finished = false;

    for line in input.lines() {
        let line = line?;
        let current_ports = current
            .as_ref()
            .and_then(|t| tenants.get(t))
            .map(|t| t.hello.ports);
        match parse_request(&line, current_ports) {
            Ok(Request::Empty) => {}
            Ok(Request::Hello(hello)) => {
                let name = hello.tenant.clone();
                match tenants.get(&name) {
                    Some(existing) if existing.hello.ports != hello.ports => {
                        summary.errors += 1;
                        writeln!(
                            out,
                            "ERR tenant {name} already has {} ports",
                            existing.hello.ports
                        )?;
                        continue;
                    }
                    Some(_) => {} // re-HELLO switches the current tenant
                    None => {
                        let config = hello.engine_config();
                        let tier = hello.tier;
                        tenants.insert(
                            name.clone(),
                            Tenant {
                                engine: TenantEngine::new(hello.ports, config),
                                hello,
                                metrics: ServiceMetrics::default(),
                                ids: Vec::new(),
                                started: Instant::now(),
                                order: summary.tenants,
                                failed: false,
                                tier,
                                arrivals: Vec::new(),
                            },
                        );
                        summary.tenants += 1;
                    }
                }
                let t = &tenants[&name];
                writeln!(
                    out,
                    "OK tenant={name} ports={} policy={:?} shards={} tier={}",
                    t.hello.ports,
                    t.hello.policy,
                    t.engine.shards(),
                    t.tier.label(),
                )?;
                current = Some(name);
            }
            Ok(Request::Coflow(c)) => {
                let name = current.clone().expect("coflow implies a tenant");
                let tenant = tenants.get_mut(&name).expect("current tenant exists");
                if tenant.failed {
                    summary.errors += 1;
                    writeln!(out, "ERR tenant {name} failed earlier; HELLO a new tenant")?;
                    continue;
                }
                match to_port_coflow(&c, &tenant.hello) {
                    Err(msg) => {
                        summary.errors += 1;
                        writeln!(out, "ERR {msg}")?;
                    }
                    Ok(pc) => {
                        // Both tiers reject the same malformed inputs,
                        // and a malformed coflow is the caller's fault —
                        // it must not poison the fallback arrival list.
                        if let Err(e) = validate_port_coflow(tenant.hello.ports, &pc) {
                            summary.errors += 1;
                            writeln!(out, "ERR {e}")?;
                            continue;
                        }
                        if tenant.keeps_arrivals() {
                            tenant.arrivals.push(pc.clone());
                        }
                        match tenant.tier {
                            Tier::Ordering => {
                                summary.admitted += 1;
                                tenant.ids.push(c.id.clone());
                            }
                            Tier::Lp => match tenant.engine.admit(rt, pc) {
                                Err(e) if tenant.hello.fallback => {
                                    // Degrade instead of quarantining:
                                    // `arrivals` already holds every
                                    // coflow (including this one), so
                                    // the ordering tier takes over the
                                    // whole stream at finish time.
                                    tenant.tier = Tier::Ordering;
                                    summary.admitted += 1;
                                    tenant.ids.push(c.id.clone());
                                    writeln!(
                                        out,
                                        "{}",
                                        degrade_line(&name, &format!("engine-error: {e}"))
                                    )?;
                                }
                                Err(e) => {
                                    summary.errors += 1;
                                    tenant.failed = true;
                                    writeln!(out, "ERR {e}")?;
                                }
                                Ok(_) => {
                                    summary.admitted += 1;
                                    tenant.ids.push(c.id.clone());
                                    for report in tenant.engine.take_reports() {
                                        tenant.metrics.observe(&report);
                                        writeln!(out, "{}", epoch_line(&name, &report))?;
                                        for rl in rate_lines(&name, &tenant.ids, &report) {
                                            writeln!(out, "{rl}")?;
                                        }
                                    }
                                    let cap = tenant.hello.max_resolves;
                                    if tenant.hello.fallback
                                        && cap > 0
                                        && tenant.engine.resolves() > cap
                                    {
                                        tenant.tier = Tier::Ordering;
                                        writeln!(
                                            out,
                                            "{}",
                                            degrade_line(
                                                &name,
                                                &format!(
                                                    "max-resolves={cap} exceeded ({} re-solves)",
                                                    tenant.engine.resolves()
                                                )
                                            )
                                        )?;
                                    }
                                }
                            },
                        }
                    }
                }
            }
            Ok(Request::Bye) => {
                finish_all(rt, &mut tenants, out, &mut summary)?;
                finished = true;
                out.flush()?;
                break;
            }
            Err(msg) => {
                summary.errors += 1;
                writeln!(out, "ERR {msg}")?;
            }
        }
        out.flush()?;
    }
    if !finished {
        finish_all(rt, &mut tenants, out, &mut summary)?;
        out.flush()?;
    }
    Ok(summary)
}

/// Finishes every tenant in creation order, emitting `DONE` (or `ERR`)
/// lines.
fn finish_all<W: Write>(
    rt: &Runtime,
    tenants: &mut BTreeMap<String, Tenant>,
    out: &mut W,
    summary: &mut SessionSummary,
) -> std::io::Result<()> {
    let mut order: Vec<&String> = tenants.keys().collect();
    let by_order: BTreeMap<usize, String> = tenants
        .iter()
        .map(|(name, t)| (t.order, name.clone()))
        .collect();
    order.clear();
    for name in by_order.values() {
        let tenant = tenants.get_mut(name).expect("tenant in order map");
        if tenant.failed {
            continue; // its ERR already went out
        }
        match tenant.tier {
            // Ordering-tier tenants (requested or degraded-onto) get
            // their whole stream scheduled LP-free in one batch.
            Tier::Ordering => match ordering_outcome(tenant.hello.ports, &tenant.arrivals) {
                Err(e) => {
                    summary.errors += 1;
                    writeln!(out, "ERR tenant {name}: {e}")?;
                }
                Ok(fo) => {
                    let outcome = ServiceOutcome {
                        admitted: tenant.arrivals.len(),
                        objective: fo.objective,
                        completions: fo.completions.clone(),
                        epochs: 0,
                        lp_iterations: 0,
                        cold_iterations: None,
                        resolves: 0,
                        rebuilds: 0,
                        lp_stats: coflow_lp::SolveStats::default(),
                        peak_utilization: fo.peak_utilization,
                        epoch_objectives: Vec::new(),
                        deadline_total: fo.deadline_total,
                        deadline_missed: fo.deadline_missed,
                    };
                    let extras = DoneExtras {
                        tier: Tier::Ordering,
                        fallback_objective: None,
                        deadline: (fo.deadline_total > 0)
                            .then_some((fo.deadline_missed, fo.deadline_total)),
                    };
                    let wall = tenant.started.elapsed().as_secs_f64();
                    writeln!(
                        out,
                        "{}",
                        done_line(name, &outcome, &tenant.metrics, wall, &extras)
                    )?;
                }
            },
            Tier::Lp => {
                // Epoch reports produced by the final windows still count.
                match tenant.engine.finish(rt) {
                    Err(e) => {
                        summary.errors += 1;
                        writeln!(out, "ERR tenant {name}: {e}")?;
                    }
                    Ok(outcome) => {
                        for report in tenant.engine.take_reports() {
                            tenant.metrics.observe(&report);
                            writeln!(out, "{}", epoch_line(name, &report))?;
                            for rl in rate_lines(name, &tenant.ids, &report) {
                                writeln!(out, "{rl}")?;
                            }
                        }
                        // With a fallback configured, compute what the
                        // ordering tier would have cost and report both.
                        let fallback_objective = if tenant.hello.fallback {
                            ordering_outcome(tenant.hello.ports, &tenant.arrivals)
                                .ok()
                                .map(|fo| fo.objective)
                        } else {
                            None
                        };
                        let extras = DoneExtras {
                            tier: Tier::Lp,
                            fallback_objective,
                            deadline: (outcome.deadline_total > 0)
                                .then_some((outcome.deadline_missed, outcome.deadline_total)),
                        };
                        let wall = tenant.started.elapsed().as_secs_f64();
                        writeln!(
                            out,
                            "{}",
                            done_line(name, &outcome, &tenant.metrics, wall, &extras)
                        )?;
                    }
                }
            }
        }
    }
    tenants.clear();
    Ok(())
}

/// Serves one session over stdin/stdout (`coflow serve --stdin`).
///
/// # Errors
///
/// Transport I/O errors only.
pub fn serve_stdin(rt: &Runtime) -> std::io::Result<SessionSummary> {
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    session(rt, stdin.lock(), &mut stdout)
}

/// Binds `addr` and serves TCP sessions until the process is killed
/// (`coflow serve --listen addr`). Each connection gets its own
/// session thread; LP work from all sessions shares `rt`. Prints
/// `LISTENING <addr>` on stdout once ready (the `coflow feed` client
/// and the CI smoke test key on it).
///
/// # Errors
///
/// Bind errors; per-connection errors are reported to stderr and do
/// not stop the listener.
pub fn serve_tcp(rt: &Runtime, addr: &str) -> std::io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    println!("LISTENING {}", listener.local_addr()?);
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            match stream {
                Err(e) => eprintln!("serve: accept failed: {e}"),
                Ok(stream) => {
                    scope.spawn(move || {
                        let peer = stream
                            .peer_addr()
                            .map(|a| a.to_string())
                            .unwrap_or_else(|_| "?".to_string());
                        let reader = BufReader::new(&stream);
                        let mut writer = &stream;
                        match session(rt, reader, &mut writer) {
                            Ok(s) => eprintln!(
                                "serve: {peer}: {} tenants, {} coflows, {} errors",
                                s.tenants, s.admitted, s.errors
                            ),
                            Err(e) => eprintln!("serve: {peer}: session failed: {e}"),
                        }
                    });
                }
            }
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(input: &str) -> (SessionSummary, String) {
        let rt = Runtime::with_workers(2);
        let mut out = Vec::new();
        let summary = session(&rt, input.as_bytes(), &mut out).expect("in-memory session");
        (summary, String::from_utf8(out).expect("utf8 responses"))
    }

    #[test]
    fn stdin_trace_with_implicit_hello() {
        // 4-port, 1-based mini trace: two coflows, staggered arrivals.
        let input = "4 2\n1 0 1 1 1 3:250\n2 1000 2 1 2 1 4:250\n";
        let (summary, out) = run(input);
        assert_eq!(summary.tenants, 1);
        assert_eq!(summary.admitted, 2);
        assert_eq!(summary.errors, 0);
        assert!(out.contains("OK tenant=default ports=4"), "{out}");
        assert!(out.contains("EPOCH tenant=default epoch=0"), "{out}");
        assert!(out.contains("DONE tenant=default admitted=2"), "{out}");
    }

    #[test]
    fn explicit_hello_two_tenants() {
        let input = "HELLO a 4 base=0 plans\n\
                     c1 0 1 0 1 2:125\n\
                     HELLO b 4 base=0\n\
                     c2 0 1 1 1 3:125\n\
                     BYE\n";
        let (summary, out) = run(input);
        assert_eq!(summary.tenants, 2);
        assert_eq!(summary.admitted, 2);
        assert_eq!(summary.errors, 0);
        assert!(out.contains("DONE tenant=a admitted=1"), "{out}");
        assert!(out.contains("DONE tenant=b admitted=1"), "{out}");
        assert!(out.contains("RATE tenant=a coflow=c1"), "{out}");
        // DONE lines come out in creation order.
        let a = out.find("DONE tenant=a").expect("tenant a done");
        let b = out.find("DONE tenant=b").expect("tenant b done");
        assert!(a < b);
    }

    #[test]
    fn ordering_tier_schedules_without_the_lp_engine() {
        let input = "HELLO t 4 base=0 tier=ordering deadline-slack=4\n\
                     c1 0 1 0 1 2:125\n\
                     c2 0 1 1 1 2:125\n\
                     BYE\n";
        let (summary, out) = run(input);
        assert_eq!(summary.admitted, 2);
        assert_eq!(summary.errors, 0);
        assert!(out.contains("OK tenant=t ports=4"), "{out}");
        assert!(out.contains(" tier=ordering"), "{out}");
        // No LP epochs ran; the DONE line reports the greedy schedule.
        assert!(!out.contains("EPOCH"), "{out}");
        assert!(
            out.contains("DONE tenant=t admitted=2") && out.contains("lp-iterations=0"),
            "{out}"
        );
        assert!(out.contains("deadline-missed=0/2"), "{out}");
    }

    #[test]
    fn max_resolves_degrades_to_the_ordering_tier() {
        // Staggered arrivals force one LP re-solve per epoch; capping at
        // one re-solve trips the overload knob deterministically.
        let input = "HELLO t 4 base=0 fallback=ordering max-resolves=1\n\
                     c1 0 1 0 1 2:125\n\
                     c2 1000 1 1 1 3:125\n\
                     c3 2000 1 0 1 3:125\n\
                     BYE\n";
        let (summary, out) = run(input);
        assert_eq!(summary.admitted, 3);
        assert_eq!(summary.errors, 0);
        assert!(
            out.contains("INFO tenant=t degraded=ordering reason=max-resolves=1"),
            "{out}"
        );
        assert!(out.contains("DONE tenant=t admitted=3"), "{out}");
        assert!(out.contains("tier=ordering"), "{out}");
    }

    #[test]
    fn lp_tenant_with_fallback_reports_both_costs() {
        let input = "HELLO t 4 base=0 fallback=ordering\n\
                     c1 0 1 0 1 2:125\n\
                     c2 0 1 1 1 3:125\n\
                     BYE\n";
        let (summary, out) = run(input);
        assert_eq!(summary.errors, 0, "{out}");
        let done = out
            .lines()
            .find(|l| l.starts_with("DONE tenant=t"))
            .expect("DONE line");
        assert!(done.contains(" tier=lp"), "{done}");
        assert!(done.contains(" fallback-objective="), "{done}");
        // Two independent unit coflows: both tiers finish them in slot 1,
        // so the two reported costs agree exactly.
        assert!(done.contains("objective=2.000000"), "{done}");
        assert!(done.contains("fallback-objective=2.000000"), "{done}");
    }

    #[test]
    fn errors_do_not_kill_the_session() {
        let input = "nonsense before hello\n\
                     HELLO t 4 base=1\n\
                     c1 0 1 0 1 2:125\n\
                     HELLO t 8\n\
                     c2 0 1 1 1 2:125\n\
                     BYE\n";
        let (summary, out) = run(input);
        // port 0 under base=1 and the ports mismatch are both ERRs.
        assert_eq!(summary.errors, 3, "{out}");
        assert_eq!(summary.admitted, 1);
        assert!(out.contains("ERR no tenant"), "{out}");
        assert!(out.contains("below the tenant's base=1"), "{out}");
        assert!(out.contains("already has 4 ports"), "{out}");
        assert!(out.contains("DONE tenant=t admitted=1"), "{out}");
    }
}
