//! The line protocol spoken by `coflow serve`.
//!
//! Requests, one per line:
//!
//! ```text
//! HELLO <tenant> <ports> [base=0|1] [policy=event|doubling] [shards=G]
//!       [split=equal|prop] [ms-per-slot=F] [mb-per-slot=F] [scale=F]
//!       [tier=lp|ordering] [fallback=ordering|none] [max-resolves=N]
//!       [max-solve-ms=F] [deadline-slack=F] [cold] [shadow-cold] [plans]
//! <id> <arrival_ms> <m> <mappers…> <r> <port:MB…>   # FB2010 coflow line
//! BYE
//! ```
//!
//! `tier=ordering` schedules the tenant entirely on the LP-free
//! Sincronia tier ([`crate::fallback`]); engine errors and solve-budget
//! breaches (`max-solve-ms=F` milliseconds per epoch) demote an LP
//! tenant one rung down the degrade ladder (LP → ordering → shed)
//! instead of quarantining it, and exponential-backoff probes promote
//! it back up once the engine recovers ([`crate::ladder`]).
//! `fallback=ordering` with `max-resolves=N` caps LP re-solves: past
//! the cap the tenant moves to the ordering tier for good.
//! `deadline-slack=F` synthesizes a per-coflow deadline
//! `release + max(1, ⌈F·Γ⌉)` from the coflow's own bottleneck load `Γ`;
//! misses are reported on `DONE`.
//!
//! A bare `<ports> <coflows>` header (the first line of an FB2010
//! trace file) is accepted as an implicit `HELLO` for a default tenant
//! with 1-based ports, so `coflow serve --stdin < trace.txt` works
//! unmodified. Coflow lines address the tenant named by the last
//! `HELLO`; `BYE` (or EOF) finishes every tenant and prints one `DONE`
//! line each.
//!
//! Responses: `OK …` acknowledgements, `EPOCH …` per re-solve,
//! optional `RATE …` transfer lines (with `plans`), `INFO …` when a
//! tenant degrades tiers, `DONE …` per tenant, `ERR <msg>` on any
//! rejected line (the session continues).

use crate::engine::{EngineConfig, EpochPolicy, EpochReport, PortCoflow};
use crate::metrics::ServiceMetrics;
use crate::shard::ShardSplit;
use coflow_workloads::trace::{parse_coflow_line, ReplayOptions, TraceCoflow};

/// The tenant name used by the implicit-HELLO stdin path.
pub const DEFAULT_TENANT: &str = "default";

/// Which scheduling tier a tenant runs on. The variants are ordered as
/// the rungs of the degrade ladder: [`Tier::Lp`] is the top,
/// [`Tier::Shed`] the bottom.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// The warm time-indexed LP epoch engine (the default).
    #[default]
    Lp,
    /// The LP-free Sincronia ordering tier ([`crate::fallback`]).
    Ordering,
    /// Admission shed: new arrivals are refused with `ERR` while the
    /// tenant recovers. Not requestable via `HELLO` — only the degrade
    /// ladder lands here ([`crate::ladder`]).
    Shed,
}

impl Tier {
    /// The protocol token for this tier (`lp` / `ordering` / `shed`).
    pub fn label(self) -> &'static str {
        match self {
            Tier::Lp => "lp",
            Tier::Ordering => "ordering",
            Tier::Shed => "shed",
        }
    }

    /// Parses a `STATE` journal token back into a tier.
    pub fn from_label(s: &str) -> Option<Tier> {
        match s {
            "lp" => Some(Tier::Lp),
            "ordering" => Some(Tier::Ordering),
            "shed" => Some(Tier::Shed),
            _ => None,
        }
    }
}

/// A parsed `HELLO` line: tenant name, fabric size, and engine knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct Hello {
    /// Tenant name (one fabric + engine per name).
    pub tenant: String,
    /// Ports of the tenant's switch fabric.
    pub ports: usize,
    /// Port numbering base of this tenant's coflow lines (FB2010 uses 1).
    pub base: usize,
    /// Epoch batching policy.
    pub policy: EpochPolicy,
    /// Port-group shards.
    pub shards: usize,
    /// Egress split across shards.
    pub split: ShardSplit,
    /// Disable warm starts (`cold`).
    pub cold: bool,
    /// Measure shadow-cold iterations per epoch (`shadow-cold`).
    pub shadow_cold: bool,
    /// Emit `RATE` lines (`plans`).
    pub plans: bool,
    /// Trace replay scaling (`ms-per-slot`, `mb-per-slot`, `scale`).
    pub replay: ReplayOptions,
    /// Scheduling tier the tenant starts on (`tier=lp|ordering`).
    pub tier: Tier,
    /// Degrade an LP tenant to the ordering tier on engine failure or
    /// overload instead of quarantining it (`fallback=ordering`).
    pub fallback: bool,
    /// Overload threshold: degrade once the engine has dispatched more
    /// than this many LP re-solves (`max-resolves=N`; `0` = unlimited).
    /// Only meaningful with `fallback=ordering`.
    pub max_resolves: usize,
    /// Per-epoch solve budget in milliseconds (`max-solve-ms=F`):
    /// an epoch whose wall time exceeds it demotes the tenant one rung
    /// down the degrade ladder. `None` = no watchdog (the daemon-wide
    /// `--max-solve-ms` default still applies when set).
    pub max_solve_ms: Option<f64>,
    /// Synthesize per-coflow deadlines with this slack factor
    /// (`deadline-slack=F`; `None` = no deadlines).
    pub deadline_slack: Option<f64>,
}

impl Hello {
    /// An implicit-HELLO tenant for a bare FB2010 header line.
    pub fn implicit(ports: usize) -> Hello {
        Hello {
            tenant: DEFAULT_TENANT.to_string(),
            ports,
            base: 1,
            policy: EpochPolicy::Event,
            shards: 1,
            split: ShardSplit::Equal,
            cold: false,
            shadow_cold: false,
            plans: false,
            replay: ReplayOptions::default(),
            tier: Tier::Lp,
            fallback: false,
            max_resolves: 0,
            max_solve_ms: None,
            deadline_slack: None,
        }
    }

    /// The engine configuration this handshake asks for.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            policy: self.policy,
            warm: !self.cold,
            shadow_cold: self.shadow_cold,
            shards: self.shards,
            split: self.split,
            emit_plans: self.plans,
            ..EngineConfig::default()
        }
    }
}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// A `HELLO` handshake (explicit or implicit header).
    Hello(Hello),
    /// An FB2010 coflow line for the current tenant.
    Coflow(TraceCoflow),
    /// `BYE`: finish every tenant and report.
    Bye,
    /// Blank line or `#` comment — ignored.
    Empty,
}

/// Parses one request line. `current_ports` is the active tenant's
/// fabric size (used to validate coflow lines), or `None` before any
/// handshake — in that state a bare `<ports> <coflows>` header is
/// treated as an implicit [`Hello`].
///
/// # Errors
///
/// A human-readable message for the `ERR` response.
pub fn parse_request(line: &str, current_ports: Option<usize>) -> Result<Request, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(Request::Empty);
    }
    let mut tokens = trimmed.split_whitespace();
    let Some(head) = tokens.next() else {
        return Ok(Request::Empty);
    };
    match head {
        "HELLO" => parse_hello(tokens).map(Request::Hello),
        "BYE" => Ok(Request::Bye),
        _ => {
            let ports = match current_ports {
                Some(p) => p,
                None => {
                    // Maybe an FB2010 header: `<ports> <coflows>`.
                    let rest: Vec<&str> = trimmed.split_whitespace().collect();
                    if rest.len() == 2 {
                        if let (Ok(p), Ok(_)) = (rest[0].parse::<usize>(), rest[1].parse::<usize>())
                        {
                            if p > 0 {
                                return Ok(Request::Hello(Hello::implicit(p)));
                            }
                        }
                    }
                    return Err("no tenant: start with HELLO <tenant> <ports>".to_string());
                }
            };
            parse_coflow_line(trimmed, 0, ports)
                .map(Request::Coflow)
                .map_err(|e| e.to_string())
        }
    }
}

fn parse_hello<'a>(mut tokens: impl Iterator<Item = &'a str>) -> Result<Hello, String> {
    let tenant = tokens
        .next()
        .ok_or("HELLO needs a tenant name")?
        .to_string();
    let ports: usize = tokens
        .next()
        .ok_or("HELLO needs a port count")?
        .parse()
        .map_err(|_| "HELLO port count must be an integer".to_string())?;
    if ports == 0 {
        return Err("HELLO port count must be positive".to_string());
    }
    let mut hello = Hello {
        tenant,
        ports,
        ..Hello::implicit(ports)
    };
    for tok in tokens {
        match tok.split_once('=') {
            None => match tok {
                "cold" => hello.cold = true,
                "shadow-cold" => hello.shadow_cold = true,
                "plans" => hello.plans = true,
                other => return Err(format!("unknown HELLO flag {other:?}")),
            },
            Some((key, value)) => match key {
                "base" => {
                    hello.base = value
                        .parse()
                        .ok()
                        .filter(|b| *b <= 1)
                        .ok_or_else(|| format!("base must be 0 or 1, got {value:?}"))?;
                }
                "policy" => {
                    hello.policy = match value {
                        "event" => EpochPolicy::Event,
                        "doubling" => EpochPolicy::Doubling,
                        _ => return Err(format!("policy must be event|doubling, got {value:?}")),
                    };
                }
                "shards" => {
                    hello.shards = value.parse().ok().filter(|s| *s >= 1).ok_or_else(|| {
                        format!("shards must be a positive integer, got {value:?}")
                    })?;
                }
                "split" => {
                    hello.split = match value {
                        "equal" => ShardSplit::Equal,
                        "prop" | "proportional" => ShardSplit::Proportional,
                        _ => return Err(format!("split must be equal|prop, got {value:?}")),
                    };
                }
                "ms-per-slot" => {
                    hello.replay.ms_per_slot = parse_positive(value, "ms-per-slot")?;
                }
                "mb-per-slot" => {
                    hello.replay.mb_per_slot = parse_positive(value, "mb-per-slot")?;
                }
                "scale" => {
                    hello.replay.demand_scale = parse_positive(value, "scale")?;
                }
                "tier" => {
                    hello.tier = match value {
                        "lp" => Tier::Lp,
                        "ordering" => Tier::Ordering,
                        _ => return Err(format!("tier must be lp|ordering, got {value:?}")),
                    };
                }
                "max-solve-ms" => {
                    hello.max_solve_ms = Some(parse_positive(value, "max-solve-ms")?);
                }
                "fallback" => {
                    hello.fallback = match value {
                        "ordering" => true,
                        "none" => false,
                        _ => return Err(format!("fallback must be ordering|none, got {value:?}")),
                    };
                }
                "max-resolves" => {
                    hello.max_resolves =
                        value.parse().ok().filter(|n| *n >= 1).ok_or_else(|| {
                            format!("max-resolves must be a positive integer, got {value:?}")
                        })?;
                }
                "deadline-slack" => {
                    hello.deadline_slack = Some(parse_positive(value, "deadline-slack")?);
                }
                other => return Err(format!("unknown HELLO option {other:?}")),
            },
        }
    }
    Ok(hello)
}

fn parse_positive(value: &str, key: &str) -> Result<f64, String> {
    value
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite() && *v > 0.0)
        .ok_or_else(|| format!("{key} must be a positive number, got {value:?}"))
}

/// Converts a parsed trace coflow into the engine's port-level form
/// under the tenant's replay options and port base.
///
/// # Errors
///
/// A message for the `ERR` response when a port underflows the base
/// (e.g. port 0 in a `base=1` tenant).
pub fn to_port_coflow(c: &TraceCoflow, hello: &Hello) -> Result<PortCoflow, String> {
    let ports = c
        .mappers
        .iter()
        .copied()
        .chain(c.reducers.iter().map(|&(p, _)| p));
    for p in ports {
        if p < hello.base {
            return Err(format!(
                "coflow {}: port {p} below the tenant's base={} numbering",
                c.id, hello.base
            ));
        }
        if p - hello.base >= hello.ports {
            return Err(format!(
                "coflow {}: port {p} outside the {}-port fabric (base={})",
                c.id, hello.ports, hello.base
            ));
        }
    }
    let release = c.release_slot(&hello.replay);
    let flows = c.port_flows(hello.base, &hello.replay);
    let deadline = hello.deadline_slack.map(|slack| {
        // Γ = the coflow's own bottleneck port load in slots: the max
        // over ports of its summed (already slot-normalized) demand —
        // the switch-fabric specialization of
        // `coflow_core::loads::coflow_bottleneck_bounds`.
        let mut per_in = vec![0.0f64; hello.ports];
        let mut per_out = vec![0.0f64; hello.ports];
        for &(m, r, d) in &flows {
            per_in[m] += d;
            per_out[r] += d;
        }
        let gamma = per_in
            .iter()
            .chain(&per_out)
            .fold(0.0f64, |acc, &v| acc.max(v));
        let need = (slack * gamma).ceil().max(1.0);
        let need = if need >= u32::MAX as f64 {
            u32::MAX - release
        } else {
            need as u32
        };
        release.saturating_add(need).max(1)
    });
    Ok(PortCoflow {
        id: c.id.clone(),
        weight: 1.0,
        release,
        deadline,
        flows,
    })
}

/// Formats the `INFO` line announcing a tenant's demotion to a lower
/// tier of the degrade ladder.
pub fn degrade_line(tenant: &str, to: Tier, reason: &str) -> String {
    format!(
        "INFO tenant={tenant} degraded={} reason={reason}",
        to.label()
    )
}

/// Formats the `INFO` line announcing a tenant's promotion back up the
/// ladder after a successful retry probe.
pub fn promote_line(tenant: &str, to: Tier, reason: &str) -> String {
    format!(
        "INFO tenant={tenant} promoted={} reason={reason}",
        to.label()
    )
}

/// Formats the `INFO` line a recovered session emits for each tenant it
/// rebuilt from the write-ahead journal.
pub fn recovered_line(tenant: &str, arrivals: usize, epochs: usize, tier: Tier) -> String {
    format!(
        "INFO tenant={tenant} recovered=1 arrivals={arrivals} epochs={epochs} tier={}",
        tier.label()
    )
}

/// Tier and deadline context for one tenant's `DONE` line, beyond what
/// [`crate::engine::ServiceOutcome`] carries.
#[derive(Clone, Copy, Debug, Default)]
pub struct DoneExtras {
    /// The tier the tenant finished on.
    pub tier: Tier,
    /// Objective of the side-computed ordering fallback schedule (LP
    /// tenants with `fallback=ordering` report both costs).
    pub fallback_objective: Option<f64>,
    /// `(missed, total)` deadline accounting, when deadlines were set.
    pub deadline: Option<(usize, usize)>,
    /// Ladder demotions this tenant took (engine errors + watchdog
    /// breaches + max-resolves).
    pub degrades: usize,
    /// Retry probes attempted from a degraded rung.
    pub probes: usize,
    /// Successful promotions back up the ladder.
    pub promotions: usize,
    /// Arrivals refused while on the shed rung.
    pub shed: usize,
    /// Epochs restored from the write-ahead journal (recovery sessions).
    pub recovered_epochs: usize,
}

/// Formats one `EPOCH` response line.
pub fn epoch_line(tenant: &str, report: &EpochReport) -> String {
    let mut line = format!(
        "EPOCH tenant={tenant} epoch={} objective={:.6} iters={} warm={} wall-ms={:.3}",
        report.epoch, report.objective, report.iterations, report.warm, report.wall_ms
    );
    if let Some(c) = report.cold_iterations {
        line.push_str(&format!(" cold-iters={c}"));
    }
    line
}

/// Formats the `RATE` lines of one epoch report (empty unless the
/// tenant asked for `plans`).
pub fn rate_lines(tenant: &str, ids: &[String], report: &EpochReport) -> Vec<String> {
    report
        .transfers
        .iter()
        .map(|&(a, slot, vol)| {
            format!(
                "RATE tenant={tenant} coflow={} slot={slot} volume={vol:.6}",
                ids.get(a).map(String::as_str).unwrap_or("?")
            )
        })
        .collect()
}

/// Formats one tenant's final `DONE` line.
pub fn done_line(
    tenant: &str,
    outcome: &crate::engine::ServiceOutcome,
    metrics: &ServiceMetrics,
    wall_secs: f64,
    extras: &DoneExtras,
) -> String {
    let rate = if wall_secs > 0.0 {
        outcome.admitted as f64 / wall_secs
    } else {
        0.0
    };
    let mut line = format!(
        "DONE tenant={tenant} admitted={} objective={:.6} epochs={} lp-iterations={} \
         p50-ms={:.3} p99-ms={:.3} coflows-per-sec={rate:.1}",
        outcome.admitted,
        outcome.objective,
        outcome.epochs,
        outcome.lp_iterations,
        metrics.p50_ms(),
        metrics.p99_ms(),
    );
    if let Some(c) = outcome.cold_iterations {
        line.push_str(&format!(" cold-iterations={c}"));
    }
    line.push_str(&format!(" tier={}", extras.tier.label()));
    if let Some(f) = extras.fallback_objective {
        line.push_str(&format!(" fallback-objective={f:.6}"));
    }
    if let Some((missed, total)) = extras.deadline {
        line.push_str(&format!(" deadline-missed={missed}/{total}"));
    }
    if extras.degrades + extras.probes + extras.promotions + extras.shed > 0 {
        line.push_str(&format!(
            " degrades={} probes={} promotions={} shed={}",
            extras.degrades, extras.probes, extras.promotions, extras.shed
        ));
    }
    if extras.recovered_epochs > 0 {
        line.push_str(&format!(" recovered-epochs={}", extras.recovered_epochs));
    }
    line
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn hello_round_trips_options() {
        let r = parse_request(
            "HELLO acme 32 base=0 policy=doubling shards=4 split=prop ms-per-slot=500 cold plans",
            None,
        )
        .unwrap();
        let Request::Hello(h) = r else {
            panic!("expected hello")
        };
        assert_eq!(h.tenant, "acme");
        assert_eq!(h.ports, 32);
        assert_eq!(h.base, 0);
        assert_eq!(h.policy, EpochPolicy::Doubling);
        assert_eq!(h.shards, 4);
        assert_eq!(h.split, ShardSplit::Proportional);
        assert!(h.cold && h.plans && !h.shadow_cold);
        assert_eq!(h.replay.ms_per_slot, 500.0);
        let cfg = h.engine_config();
        assert!(!cfg.warm);
        assert_eq!(cfg.shards, 4);
    }

    #[test]
    fn bare_header_is_an_implicit_hello() {
        let r = parse_request("16 20", None).unwrap();
        let Request::Hello(h) = r else {
            panic!("expected implicit hello")
        };
        assert_eq!(h.tenant, DEFAULT_TENANT);
        assert_eq!(h.ports, 16);
        assert_eq!(h.base, 1);
        // With a tenant active, the same line is a malformed coflow.
        assert!(parse_request("16 20", Some(16)).is_err());
    }

    #[test]
    fn coflow_lines_parse_against_the_tenant() {
        let r = parse_request("7 200 1 3 2 1:10 4:5", Some(4)).unwrap();
        let Request::Coflow(c) = r else {
            panic!("expected coflow")
        };
        assert_eq!(c.id, "7");
        assert_eq!(c.arrival_ms, 200);
        assert_eq!(c.mappers, vec![3]);
        assert_eq!(c.reducers, vec![(1, 10.0), (4, 5.0)]);
        assert!(parse_request("BYE", Some(4)) == Ok(Request::Bye));
        assert_eq!(parse_request("# comment", Some(4)), Ok(Request::Empty));
    }

    #[test]
    fn base_underflow_is_a_clean_error() {
        let hello = Hello {
            base: 1,
            ..Hello::implicit(4)
        };
        let c = parse_coflow_line("1 0 1 0 1 2:5", 1, 4).unwrap();
        let err = to_port_coflow(&c, &hello).unwrap_err();
        assert!(err.contains("below the tenant's base=1"), "{err}");
        let hello0 = Hello {
            base: 0,
            ..Hello::implicit(4)
        };
        let pc = to_port_coflow(&c, &hello0).unwrap();
        assert_eq!(pc.flows, vec![(0, 2, 5.0 / 125.0f64.max(1e-3))]);
    }

    #[test]
    fn rejects_unknown_options() {
        assert!(parse_request("HELLO t 4 turbo=9", None).is_err());
        assert!(parse_request("HELLO t 4 warp", None).is_err());
        assert!(parse_request("HELLO t 0", None).is_err());
        assert!(parse_request("HELLO t 4 base=2", None).is_err());
        assert!(parse_request("HELLO t 4 tier=fast", None).is_err());
        assert!(parse_request("HELLO t 4 fallback=lp", None).is_err());
        assert!(parse_request("HELLO t 4 max-resolves=0", None).is_err());
        assert!(parse_request("HELLO t 4 deadline-slack=-1", None).is_err());
    }

    #[test]
    fn tier_and_fallback_knobs_parse() {
        let r = parse_request(
            "HELLO t 4 tier=ordering fallback=ordering max-resolves=3 deadline-slack=2.5",
            None,
        )
        .unwrap();
        let Request::Hello(h) = r else {
            panic!("expected hello")
        };
        assert_eq!(h.tier, Tier::Ordering);
        assert!(h.fallback);
        assert_eq!(h.max_resolves, 3);
        assert_eq!(h.deadline_slack, Some(2.5));
        // Defaults: LP tier, no fallback, no deadlines.
        let d = Hello::implicit(4);
        assert_eq!(d.tier, Tier::Lp);
        assert!(!d.fallback && d.max_resolves == 0 && d.deadline_slack.is_none());
    }

    #[test]
    fn deadline_slack_synthesizes_bottleneck_deadlines() {
        // 2 mappers × 1 reducer, 250 MB at the reducer: with the default
        // 125 MB/slot ports the reducer ingress is the bottleneck at
        // 2 slots; each mapper egress carries 1 slot.
        let c = parse_coflow_line("1 0 2 1 2 1 3:250", 1, 4).unwrap();
        let hello = Hello {
            deadline_slack: Some(2.0),
            ..Hello::implicit(4)
        };
        let pc = to_port_coflow(&c, &hello).unwrap();
        // Γ = 2 slots at output port 3 ⇒ deadline = 0 + ⌈2.0·2⌉ = 4.
        assert_eq!(pc.deadline, Some(4));
        // Without the knob no deadline is attached.
        let bare = to_port_coflow(&c, &Hello::implicit(4)).unwrap();
        assert_eq!(bare.deadline, None);
    }
}
