//! The per-tenant write-ahead journal and its recovery reader.
//!
//! `coflow serve --journal DIR` gives every tenant an append-only
//! event file `DIR/<tenant>.journal`. The daemon journals each round
//! *before* emitting its response lines, in the resolver's native
//! replay shape (the same activation/fix logs
//! [`TimeIndexedResolver::rebuild`] replays), so recovery is one model
//! build plus a log replay per shard — no LP re-solves:
//!
//! ```text
//! HELLO <raw protocol line>                      tenant config, verbatim
//! ADMIT <id> <weight> <release> <deadline|-> m:r:d,...   validated arrival
//! ENGADM <arrival> <eff_release>                engine admission (by ADMIT index)
//! CORES <s,..>;<s,..>                           per-shard egress shares, once
//! ACT <g> <j> <i> <slot>                        resolver activation
//! FIX <g> <j> <i> <slot> <frac>                 executed-slot fix
//! XFER <g> <j> <i> <slot> <vol> <e:a,..|->      executed transfer
//! OBJ <g> <objective>                           per-epoch LP objective
//! REPORT <epoch> <obj> <iters> <warm> <cold|-> <wall_ms>   emitted epoch
//! STATE frontier=.. pending=.. ... engnext=..   COMMIT MARKER
//! DONE                                          clean finish
//! ```
//!
//! The `STATE` line is the commit marker: the reader folds events into
//! its committed snapshot only when it reaches one, and discards
//! anything after the last marker (torn or uncommitted writes). Since
//! the daemon journals-then-responds, a client never sees a response
//! whose round did not commit — `kill -9` at any instant loses at most
//! the rounds the client never heard about. All floats go through
//! `{}` formatting, which round-trips `f64` exactly.
//!
//! [`TimeIndexedResolver::rebuild`]: coflow_core::resolver::TimeIndexedResolver::rebuild

use crate::engine::{
    CoreDelta, EngineState, EpochReport, PortCoflow, RecoverySnapshot, TransferRecord,
};
use crate::ladder::Ladder;
use crate::protocol::Tier;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

/// Maps a tenant name to a journal file name: conservative characters
/// pass through, everything else becomes `_` with a hash suffix so
/// distinct names cannot collide.
pub fn journal_file_name(tenant: &str) -> String {
    let sanitized: String = tenant
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if sanitized == tenant {
        format!("{sanitized}.journal")
    } else {
        // FNV-1a keeps "a/b" and "a_b" apart after sanitization.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tenant.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        format!("{sanitized}-{h:016x}.journal")
    }
}

/// Append-only writer for one tenant's journal. Events buffer in
/// process; [`commit`](Self::commit) writes the `STATE` marker and
/// flushes, which is the durability point the recovery reader honors.
pub struct JournalWriter {
    out: BufWriter<File>,
    path: PathBuf,
}

impl JournalWriter {
    /// Creates (or truncates) `DIR/<tenant>.journal`.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn create(dir: &Path, tenant: &str) -> std::io::Result<JournalWriter> {
        let path = dir.join(journal_file_name(tenant));
        Ok(JournalWriter {
            out: BufWriter::new(File::create(&path)?),
            path,
        })
    }

    /// Reopens an existing journal for appending (the recovered-session
    /// path).
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn open_append(path: &Path) -> std::io::Result<JournalWriter> {
        Ok(JournalWriter {
            out: BufWriter::new(OpenOptions::new().append(true).open(path)?),
            path: path.to_path_buf(),
        })
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event line (no flush — cheap).
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn event(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.out, "{line}")
    }

    /// Appends the `STATE` commit marker and flushes everything this
    /// round wrote.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn commit(&mut self, state: &EngineState, ladder: &Ladder) -> std::io::Result<()> {
        writeln!(self.out, "{}", state_line(state, ladder))?;
        self.out.flush()
    }

    /// Appends the clean-finish marker and flushes; recovery skips a
    /// `DONE` journal entirely.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn finish(&mut self) -> std::io::Result<()> {
        writeln!(self.out, "DONE")?;
        self.out.flush()
    }
}

// ---------------------------------------------------------------------
// Line serialization
// ---------------------------------------------------------------------

fn u32_list(xs: &[u32]) -> String {
    if xs.is_empty() {
        "-".into()
    } else {
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn usize_list(xs: &[usize]) -> String {
    if xs.is_empty() {
        "-".into()
    } else {
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// `ADMIT` — one validated arrival in port coordinates.
pub fn admit_line(pc: &PortCoflow) -> String {
    let mut line = format!(
        "ADMIT {} {} {} {} ",
        pc.id,
        pc.weight,
        pc.release,
        pc.deadline.map_or("-".into(), |d| d.to_string()),
    );
    for (k, &(m, r, d)) in pc.flows.iter().enumerate() {
        if k > 0 {
            line.push(',');
        }
        let _ = write!(line, "{m}:{r}:{d}");
    }
    line
}

/// `ENGADM` — arrival `a` entered the LP engine at effective release
/// `rel`.
pub fn engadm_line(a: usize, rel: u32) -> String {
    format!("ENGADM {a} {rel}")
}

/// `CORES` — the per-shard egress shares the cores were created with.
pub fn cores_line(shares: &[Vec<f64>]) -> String {
    let rows: Vec<String> = shares
        .iter()
        .map(|row| {
            row.iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    format!("CORES {}", rows.join(";"))
}

/// `ACT`/`FIX`/`XFER`/`OBJ` lines for one core's drained delta.
pub fn delta_lines(g: usize, delta: &CoreDelta) -> Vec<String> {
    let mut lines = Vec::new();
    for &(j, i, slot) in &delta.activations {
        lines.push(format!("ACT {g} {j} {i} {slot}"));
    }
    for &(j, i, slot, frac) in &delta.fixes {
        lines.push(format!("FIX {g} {j} {i} {slot} {frac}"));
    }
    for tr in &delta.transfers {
        let edges = if tr.edges.is_empty() {
            "-".into()
        } else {
            tr.edges
                .iter()
                .map(|(e, v)| format!("{e}:{v}"))
                .collect::<Vec<_>>()
                .join(",")
        };
        lines.push(format!(
            "XFER {g} {} {} {} {} {edges}",
            tr.coflow, tr.flow, tr.slot, tr.volume
        ));
    }
    for o in &delta.objectives {
        lines.push(format!("OBJ {g} {o}"));
    }
    lines
}

/// `REPORT` — an emitted epoch report (transfers are not persisted;
/// recovery re-emits `EPOCH` lines without `RATE` detail).
pub fn report_line(r: &EpochReport) -> String {
    format!(
        "REPORT {} {} {} {} {} {}",
        r.epoch,
        r.objective,
        r.iterations,
        u8::from(r.warm),
        r.cold_iterations.map_or("-".into(), |c| c.to_string()),
        r.wall_ms,
    )
}

/// `STATE` — the commit marker carrying the engine- and ladder-level
/// state.
pub fn state_line(state: &EngineState, ladder: &Ladder) -> String {
    format!(
        "STATE frontier={} pending={} boundary={} batch={} epochs={} resolves={} \
         horizons={} committed={} tier={} home={} streak={} probe={} engnext={}",
        state.frontier.map_or("-".into(), |f| f.to_string()),
        u32_list(&state.pending_epochs),
        state.open_boundary,
        usize_list(&state.open_batch),
        state.epochs_run,
        state.resolves,
        u32_list(&state.horizons),
        u32_list(&state.committed),
        ladder.rung().label(),
        ladder.home().label(),
        ladder.fail_streak(),
        ladder.probe_in(),
        ladder.engine_next,
    )
}

// ---------------------------------------------------------------------
// Recovery reader
// ---------------------------------------------------------------------

/// Everything the daemon needs to reinstate one tenant.
#[derive(Debug, Default)]
pub struct JournalRecovery {
    /// The raw `HELLO` protocol line, re-parsed on recovery.
    pub hello_line: String,
    /// Every committed validated arrival, in order.
    pub arrivals: Vec<PortCoflow>,
    /// The engine-restore snapshot (admissions resolved to coflows).
    pub snapshot: RecoverySnapshot,
    /// Committed epoch reports, re-emitted as `EPOCH` lines.
    pub reports: Vec<EpochReport>,
    /// Ladder state at the last commit.
    pub ladder: Ladder,
    /// The tenant finished cleanly — nothing to recover.
    pub done: bool,
}

fn jerr(line_no: usize, msg: impl std::fmt::Display) -> String {
    format!("journal line {line_no}: {msg}")
}

fn parse_u32_list(s: &str, line_no: usize) -> Result<Vec<u32>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| {
            t.parse()
                .map_err(|_| jerr(line_no, format!("bad u32 {t:?}")))
        })
        .collect()
}

fn parse_usize_list(s: &str, line_no: usize) -> Result<Vec<usize>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|t| {
            t.parse()
                .map_err(|_| jerr(line_no, format!("bad index {t:?}")))
        })
        .collect()
}

/// Events buffered between commit markers.
#[derive(Default)]
struct Pending {
    arrivals: Vec<PortCoflow>,
    engadm: Vec<(usize, u32)>,
    shares: Option<Vec<Vec<f64>>>,
    core_events: Vec<(usize, CoreEvent)>,
    reports: Vec<EpochReport>,
}

enum CoreEvent {
    Act(usize, usize, u32),
    Fix(usize, usize, u32, f64),
    Xfer(TransferRecord),
    Obj(f64),
}

/// Parses one tenant journal, honoring the `STATE` commit discipline:
/// only events followed by a `STATE` marker (and the `HELLO` header)
/// survive; a torn tail line or uncommitted rounds are dropped
/// silently.
///
/// # Errors
///
/// A message naming the first corrupt committed line. (Corruption
/// *after* the last commit marker is unreachable by construction — the
/// tail is discarded before parsing completes.)
pub fn read_journal(path: &Path) -> Result<JournalRecovery, String> {
    let content = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let content = String::from_utf8_lossy(&content);
    let mut rec = JournalRecovery::default();
    let mut pending = Pending::default();
    let mut saw_hello = false;

    for (k, raw) in content.split_inclusive('\n').enumerate() {
        let line_no = k + 1;
        let Some(line) = raw.strip_suffix('\n') else {
            break; // torn final line: the crash hit mid-write
        };
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        let (tag, rest) = line.split_once(' ').unwrap_or((line, ""));
        match tag {
            "HELLO" => {
                if saw_hello {
                    return Err(jerr(line_no, "second HELLO header"));
                }
                saw_hello = true;
                rec.hello_line = rest.to_string();
            }
            _ if !saw_hello => return Err(jerr(line_no, "event before the HELLO header")),
            "ADMIT" => {
                let toks: Vec<&str> = rest.split_whitespace().collect();
                if toks.len() != 5 {
                    return Err(jerr(line_no, "ADMIT wants 5 fields"));
                }
                let weight: f64 = toks[1]
                    .parse()
                    .map_err(|_| jerr(line_no, "bad ADMIT weight"))?;
                let release: u32 = toks[2]
                    .parse()
                    .map_err(|_| jerr(line_no, "bad ADMIT release"))?;
                let deadline = if toks[3] == "-" {
                    None
                } else {
                    Some(
                        toks[3]
                            .parse()
                            .map_err(|_| jerr(line_no, "bad ADMIT deadline"))?,
                    )
                };
                let mut flows = Vec::new();
                for part in toks[4].split(',') {
                    let mut it = part.split(':');
                    let (Some(m), Some(r), Some(d), None) =
                        (it.next(), it.next(), it.next(), it.next())
                    else {
                        return Err(jerr(line_no, format!("bad ADMIT flow {part:?}")));
                    };
                    flows.push((
                        m.parse().map_err(|_| jerr(line_no, "bad flow mapper"))?,
                        r.parse().map_err(|_| jerr(line_no, "bad flow reducer"))?,
                        d.parse().map_err(|_| jerr(line_no, "bad flow demand"))?,
                    ));
                }
                pending.arrivals.push(PortCoflow {
                    id: toks[0].to_string(),
                    weight,
                    release,
                    deadline,
                    flows,
                });
            }
            "ENGADM" => {
                let toks: Vec<&str> = rest.split_whitespace().collect();
                if toks.len() != 2 {
                    return Err(jerr(line_no, "ENGADM wants 2 fields"));
                }
                pending.engadm.push((
                    toks[0]
                        .parse()
                        .map_err(|_| jerr(line_no, "bad ENGADM index"))?,
                    toks[1]
                        .parse()
                        .map_err(|_| jerr(line_no, "bad ENGADM release"))?,
                ));
            }
            "CORES" => {
                let mut shares = Vec::new();
                for row in rest.split(';') {
                    let parsed: Result<Vec<f64>, String> = row
                        .split(',')
                        .map(|t| t.parse().map_err(|_| jerr(line_no, "bad CORES share")))
                        .collect();
                    shares.push(parsed?);
                }
                pending.shares = Some(shares);
            }
            "ACT" | "FIX" | "XFER" | "OBJ" => {
                let toks: Vec<&str> = rest.split_whitespace().collect();
                let g: usize = toks
                    .first()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| jerr(line_no, format!("bad {tag} shard")))?;
                let bad = || jerr(line_no, format!("bad {tag} fields"));
                let event = match (tag, toks.len()) {
                    ("ACT", 4) => CoreEvent::Act(
                        toks[1].parse().map_err(|_| bad())?,
                        toks[2].parse().map_err(|_| bad())?,
                        toks[3].parse().map_err(|_| bad())?,
                    ),
                    ("FIX", 5) => CoreEvent::Fix(
                        toks[1].parse().map_err(|_| bad())?,
                        toks[2].parse().map_err(|_| bad())?,
                        toks[3].parse().map_err(|_| bad())?,
                        toks[4].parse().map_err(|_| bad())?,
                    ),
                    ("XFER", 6) => {
                        let mut edges = Vec::new();
                        if toks[5] != "-" {
                            for part in toks[5].split(',') {
                                let (e, v) = part.split_once(':').ok_or_else(bad)?;
                                edges.push((
                                    e.parse().map_err(|_| bad())?,
                                    v.parse().map_err(|_| bad())?,
                                ));
                            }
                        }
                        CoreEvent::Xfer(TransferRecord {
                            coflow: toks[1].parse().map_err(|_| bad())?,
                            flow: toks[2].parse().map_err(|_| bad())?,
                            slot: toks[3].parse().map_err(|_| bad())?,
                            volume: toks[4].parse().map_err(|_| bad())?,
                            edges,
                        })
                    }
                    ("OBJ", 2) => CoreEvent::Obj(toks[1].parse().map_err(|_| bad())?),
                    _ => return Err(bad()),
                };
                pending.core_events.push((g, event));
            }
            "REPORT" => {
                let toks: Vec<&str> = rest.split_whitespace().collect();
                if toks.len() != 6 {
                    return Err(jerr(line_no, "REPORT wants 6 fields"));
                }
                let bad = || jerr(line_no, "bad REPORT fields");
                pending.reports.push(EpochReport {
                    epoch: toks[0].parse().map_err(|_| bad())?,
                    objective: toks[1].parse().map_err(|_| bad())?,
                    iterations: toks[2].parse().map_err(|_| bad())?,
                    warm: toks[3] == "1",
                    cold_iterations: if toks[4] == "-" {
                        None
                    } else {
                        Some(toks[4].parse().map_err(|_| bad())?)
                    },
                    wall_ms: toks[5].parse().map_err(|_| bad())?,
                    transfers: Vec::new(),
                });
            }
            "STATE" => {
                commit(&mut rec, &mut pending, rest, line_no)?;
            }
            "DONE" => {
                rec.done = true;
            }
            _ => return Err(jerr(line_no, format!("unknown tag {tag:?}"))),
        }
    }
    Ok(rec)
}

/// Folds the pending events into the committed snapshot and parses the
/// `STATE` payload.
fn commit(
    rec: &mut JournalRecovery,
    pending: &mut Pending,
    state_rest: &str,
    line_no: usize,
) -> Result<(), String> {
    let base = rec.arrivals.len();
    rec.arrivals.append(&mut pending.arrivals);
    for (a, rel) in pending.engadm.drain(..) {
        let pc = rec
            .arrivals
            .get(a)
            .ok_or_else(|| jerr(line_no, format!("ENGADM {a} has no ADMIT (have {base})")))?;
        rec.snapshot.admitted.push((pc.clone(), rel));
    }
    if let Some(shares) = pending.shares.take() {
        rec.snapshot.shares = Some(shares);
    }
    for (g, ev) in pending.core_events.drain(..) {
        if g >= 64 {
            return Err(jerr(line_no, format!("shard index {g} implausible")));
        }
        while rec.snapshot.cores.len() <= g {
            rec.snapshot.cores.push(CoreDelta::default());
        }
        let core = &mut rec.snapshot.cores[g];
        match ev {
            CoreEvent::Act(j, i, slot) => core.activations.push((j, i, slot)),
            CoreEvent::Fix(j, i, slot, frac) => core.fixes.push((j, i, slot, frac)),
            CoreEvent::Xfer(tr) => core.transfers.push(tr),
            CoreEvent::Obj(o) => core.objectives.push(o),
        }
    }
    rec.reports.append(&mut pending.reports);

    let mut state = EngineState::default();
    let mut tier = Tier::Lp;
    let mut home = Tier::Lp;
    let mut streak = 0u32;
    let mut probe = 0u32;
    let mut engnext = 0usize;
    for tok in state_rest.split_whitespace() {
        let (key, value) = tok
            .split_once('=')
            .ok_or_else(|| jerr(line_no, format!("STATE token {tok:?}")))?;
        let bad = || jerr(line_no, format!("bad STATE {key}"));
        match key {
            "frontier" => {
                state.frontier = if value == "-" {
                    None
                } else {
                    Some(value.parse().map_err(|_| bad())?)
                };
            }
            "pending" => state.pending_epochs = parse_u32_list(value, line_no)?,
            "boundary" => state.open_boundary = value.parse().map_err(|_| bad())?,
            "batch" => state.open_batch = parse_usize_list(value, line_no)?,
            "epochs" => state.epochs_run = value.parse().map_err(|_| bad())?,
            "resolves" => state.resolves = value.parse().map_err(|_| bad())?,
            "horizons" => state.horizons = parse_u32_list(value, line_no)?,
            "committed" => state.committed = parse_u32_list(value, line_no)?,
            "tier" => tier = Tier::from_label(value).ok_or_else(bad)?,
            "home" => home = Tier::from_label(value).ok_or_else(bad)?,
            "streak" => streak = value.parse().map_err(|_| bad())?,
            "probe" => probe = value.parse().map_err(|_| bad())?,
            "engnext" => engnext = value.parse().map_err(|_| bad())?,
            _ => return Err(jerr(line_no, format!("unknown STATE key {key:?}"))),
        }
    }
    rec.snapshot.state = state;
    rec.ladder = Ladder::restore(home, tier, streak, probe, engnext);
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn pc(id: &str) -> PortCoflow {
        PortCoflow {
            id: id.into(),
            weight: 1.5,
            release: 3,
            deadline: Some(9),
            flows: vec![(0, 1, 250.0), (2, 3, 0.1 + 0.2)],
        }
    }

    fn write_lines(dir: &Path, name: &str, lines: &[&str], torn_tail: Option<&str>) -> PathBuf {
        let path = dir.join(name);
        let mut body = lines.join("\n");
        if !lines.is_empty() {
            body.push('\n');
        }
        if let Some(t) = torn_tail {
            body.push_str(t); // no trailing newline: a torn write
        }
        std::fs::write(&path, body).unwrap();
        path
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("coflow-journal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn admit_line_round_trips_floats_exactly() {
        let c = pc("j1");
        let line = admit_line(&c);
        let dir = tmpdir("admit");
        let path = write_lines(
            &dir,
            "t.journal",
            &[
                "HELLO t 4 base=0",
                &line,
                "STATE boundary=0 epochs=0 resolves=0",
            ],
            None,
        );
        let rec = read_journal(&path).unwrap();
        assert_eq!(rec.arrivals.len(), 1);
        let got = &rec.arrivals[0];
        assert_eq!(got.id, c.id);
        assert_eq!(got.weight.to_bits(), c.weight.to_bits());
        assert_eq!(got.deadline, c.deadline);
        assert_eq!(got.flows.len(), 2);
        assert_eq!(got.flows[1].2.to_bits(), c.flows[1].2.to_bits());
    }

    #[test]
    fn uncommitted_tail_and_torn_line_are_dropped() {
        let c = pc("j1");
        let dir = tmpdir("torn");
        let path = write_lines(
            &dir,
            "t.journal",
            &[
                "HELLO t 4 base=0",
                &admit_line(&c),
                "STATE boundary=0 epochs=0 resolves=0",
                &admit_line(&pc("j2")), // committed by no STATE: dropped
            ],
            Some("ADMIT j3 1 0 - 0:"), // torn mid-write
        );
        let rec = read_journal(&path).unwrap();
        assert_eq!(rec.arrivals.len(), 1);
        assert!(!rec.done);
    }

    #[test]
    fn state_line_round_trips_engine_and_ladder() {
        let state = EngineState {
            frontier: Some(7),
            pending_epochs: vec![8, 12],
            open_boundary: 4,
            open_batch: vec![1, 3],
            epochs_run: 5,
            resolves: 6,
            horizons: vec![30, 0],
            committed: vec![2, 0],
        };
        let mut ladder = Ladder::new(Tier::Lp);
        ladder.demote();
        ladder.engine_next = 9;
        let dir = tmpdir("state");
        let path = write_lines(
            &dir,
            "t.journal",
            &["HELLO t 4", &state_line(&state, &ladder)],
            None,
        );
        let rec = read_journal(&path).unwrap();
        assert_eq!(rec.snapshot.state, state);
        assert_eq!(rec.ladder.rung(), Tier::Ordering);
        assert_eq!(rec.ladder.home(), Tier::Lp);
        assert_eq!(rec.ladder.fail_streak(), 1);
        assert_eq!(rec.ladder.probe_in(), 2);
        assert_eq!(rec.ladder.engine_next, 9);
    }

    #[test]
    fn core_events_fold_per_shard_and_done_is_sticky() {
        let delta = CoreDelta {
            activations: vec![(0, 0, 1)],
            fixes: vec![(0, 0, 1, 0.25)],
            objectives: vec![3.5],
            transfers: vec![TransferRecord {
                coflow: 0,
                flow: 0,
                slot: 1,
                volume: 125.0,
                edges: vec![(4, 125.0)],
            }],
        };
        let mut lines = vec![
            "HELLO t 4".to_string(),
            cores_line(&[vec![1.0, 1.0]]),
            engadm_line(0, 0),
        ];
        lines.extend(delta_lines(1, &delta));
        lines.push("STATE boundary=0 epochs=1 resolves=1".into());
        lines.push("DONE".into());
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let dir = tmpdir("core");
        let path = write_lines(&dir, "t.journal", &refs, None);
        // ENGADM references ADMIT 0 which never happened: hard error.
        assert!(read_journal(&path).unwrap_err().contains("ENGADM"));

        let mut lines2 = vec!["HELLO t 4".to_string(), admit_line(&pc("j1"))];
        lines2.extend(refs.iter().skip(1).map(|s| s.to_string()));
        let refs2: Vec<&str> = lines2.iter().map(String::as_str).collect();
        let path2 = write_lines(&dir, "t2.journal", &refs2, None);
        let rec = read_journal(&path2).unwrap();
        assert!(rec.done);
        assert_eq!(rec.snapshot.admitted.len(), 1);
        assert_eq!(rec.snapshot.cores.len(), 2);
        assert!(rec.snapshot.cores[0].activations.is_empty());
        assert_eq!(rec.snapshot.cores[1], delta);
    }

    #[test]
    fn journal_file_names_cannot_collide() {
        assert_eq!(journal_file_name("plain-1"), "plain-1.journal");
        let a = journal_file_name("a/b");
        let b = journal_file_name("a_b");
        assert_ne!(a, b);
        assert!(a.ends_with(".journal"));
    }
}
