//! Deterministic fault injection for the serve loop.
//!
//! A [`FaultPlan`] is parsed from a compact spec string
//! (`coflow serve --fault-plan "seed=7;engine-error=3,5;slow=2;garbage=4x2;disconnect=12"`)
//! and consulted by the session at fixed points:
//!
//! - `engine-error=I,J,...` — the I-th and J-th *engine admission
//!   attempts* (session-wide, 0-based, probes included) fail with an
//!   injected engine error before the real engine is touched, driving
//!   the degrade ladder exactly as a genuine LP fault would.
//! - `slow=I,...` — the I-th epoch reports count as solve-budget
//!   breaches (when a budget is configured), tripping the watchdog
//!   without actually sleeping.
//! - `garbage=NxK` — K pseudorandom byte lines (seeded, reproducible)
//!   are fed through the parser immediately before input line N; each
//!   must yield `ERR`, never a panic.
//! - `disconnect=N` — the session aborts after input line N without
//!   running finish: an in-process stand-in for `kill -9`, leaving the
//!   write-ahead journal mid-stream for recovery tests.
//!
//! Everything is a pure function of the spec (plus `seed=` for the
//! garbage bytes), so a failing chaos run can be replayed exactly.

use std::collections::{BTreeMap, BTreeSet};

/// A parsed, deterministic fault-injection schedule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for the garbage-byte generator.
    pub seed: u64,
    engine_errors: BTreeSet<usize>,
    slow_epochs: BTreeSet<usize>,
    garbage_before: BTreeMap<usize, usize>,
    /// Abort the session (no finish, no `DONE`) after this many input
    /// lines — the in-process crash simulator.
    pub disconnect_after: Option<usize>,
}

fn parse_index_list(value: &str, key: &str) -> Result<BTreeSet<usize>, String> {
    value
        .split(',')
        .map(|tok| {
            tok.trim()
                .parse::<usize>()
                .map_err(|_| format!("{key} wants comma-separated indices, got {tok:?}"))
        })
        .collect()
}

impl FaultPlan {
    /// Parses a `;`-separated spec: `seed=S`, `engine-error=I,J`,
    /// `slow=I,J`, `garbage=NxK` (repeatable), `disconnect=N`.
    ///
    /// # Errors
    ///
    /// A message naming the offending clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause {clause:?} wants key=value"))?;
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("seed wants an integer, got {value:?}"))?;
                }
                "engine-error" => {
                    plan.engine_errors = parse_index_list(value, "engine-error")?;
                }
                "slow" => {
                    plan.slow_epochs = parse_index_list(value, "slow")?;
                }
                "garbage" => {
                    let (line, count) = value
                        .split_once('x')
                        .ok_or_else(|| format!("garbage wants NxK, got {value:?}"))?;
                    let line = line
                        .parse::<usize>()
                        .map_err(|_| format!("garbage line wants an integer, got {line:?}"))?;
                    let count = count
                        .parse::<usize>()
                        .map_err(|_| format!("garbage count wants an integer, got {count:?}"))?;
                    *plan.garbage_before.entry(line).or_insert(0) += count;
                }
                "disconnect" => {
                    plan.disconnect_after = Some(
                        value
                            .parse()
                            .map_err(|_| format!("disconnect wants an integer, got {value:?}"))?,
                    );
                }
                _ => return Err(format!("unknown fault clause {key:?}")),
            }
        }
        Ok(plan)
    }

    /// Whether any fault is scheduled at all.
    pub fn is_empty(&self) -> bool {
        self.engine_errors.is_empty()
            && self.slow_epochs.is_empty()
            && self.garbage_before.is_empty()
            && self.disconnect_after.is_none()
    }

    /// Should the `attempt`-th engine admission fail with an injected
    /// error?
    pub fn engine_error_at(&self, attempt: usize) -> bool {
        self.engine_errors.contains(&attempt)
    }

    /// Should the `index`-th epoch report count as a solve-budget
    /// breach?
    pub fn slow_at(&self, index: usize) -> bool {
        self.slow_epochs.contains(&index)
    }

    /// How many garbage lines to inject before input line `line_no`
    /// (1-based).
    pub fn garbage_count_before(&self, line_no: usize) -> usize {
        self.garbage_before.get(&line_no).copied().unwrap_or(0)
    }

    /// The `k`-th garbage line: 8–40 pseudorandom non-newline bytes,
    /// deliberately including invalid UTF-8, fully determined by
    /// `seed` and `k`.
    pub fn garbage_line(&self, k: usize) -> Vec<u8> {
        let mut state = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((k as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let len = 8 + (next() % 33) as usize;
        let mut bytes = Vec::with_capacity(len);
        while bytes.len() < len {
            let b = (next() & 0xFF) as u8;
            if b != b'\n' && b != b'\r' && b != 0 {
                bytes.push(b);
            }
        }
        bytes
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_spec() {
        let p = FaultPlan::parse("seed=7;engine-error=3,5;slow=2;garbage=4x2;disconnect=12")
            .expect("valid spec");
        assert_eq!(p.seed, 7);
        assert!(p.engine_error_at(3) && p.engine_error_at(5) && !p.engine_error_at(4));
        assert!(p.slow_at(2) && !p.slow_at(1));
        assert_eq!(p.garbage_count_before(4), 2);
        assert_eq!(p.garbage_count_before(5), 0);
        assert_eq!(p.disconnect_after, Some(12));
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_and_seed_only_specs_inject_nothing() {
        assert!(FaultPlan::parse("").expect("empty spec").is_empty());
        assert!(FaultPlan::parse("seed=42").expect("seed only").is_empty());
    }

    #[test]
    fn bad_clauses_are_named() {
        assert!(FaultPlan::parse("nope=1").unwrap_err().contains("nope"));
        assert!(FaultPlan::parse("garbage=4").unwrap_err().contains("NxK"));
        assert!(FaultPlan::parse("slow=x").unwrap_err().contains("slow"));
    }

    #[test]
    fn garbage_is_deterministic_and_newline_free() {
        let p = FaultPlan::parse("seed=9;garbage=1x3").expect("valid spec");
        let a = p.garbage_line(0);
        let b = p.garbage_line(0);
        assert_eq!(a, b);
        assert_ne!(p.garbage_line(0), p.garbage_line(1));
        for k in 0..16 {
            let line = p.garbage_line(k);
            assert!(line.len() >= 8);
            assert!(line.iter().all(|&b| b != b'\n' && b != b'\r' && b != 0));
        }
    }
}
