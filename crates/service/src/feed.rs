//! `coflow feed` — replay a trace file against a running daemon.
//!
//! The client parses an FB2010 trace eagerly, detects its port base,
//! opens a TCP connection to a `coflow serve --listen` daemon, and
//! streams `HELLO` + the reconstructed coflow lines + `BYE`. Server
//! responses (`EPOCH`/`RATE`/`DONE`/`ERR`) are drained by a concurrent
//! reader thread — writing the whole trace before reading would
//! deadlock on the socket buffer once the daemon's epoch chatter backs
//! up, so the two directions run simultaneously.

use crate::engine::EpochPolicy;
use crate::protocol::Tier;
use crate::shard::ShardSplit;
use coflow_core::CoflowError;
use coflow_workloads::trace::{Trace, TraceCoflow};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;

/// Client-side knobs, forwarded to the daemon in the `HELLO` line.
#[derive(Clone, Debug)]
pub struct FeedOptions {
    /// Tenant name to register as.
    pub tenant: String,
    /// Epoch policy to request.
    pub policy: EpochPolicy,
    /// Port-group shards to request.
    pub shards: usize,
    /// Egress split across shards.
    pub split: ShardSplit,
    /// Ask for cold (non-warm-started) re-solves.
    pub cold: bool,
    /// Ask for shadow-cold iteration counts per epoch.
    pub shadow_cold: bool,
    /// Ask for per-epoch `RATE` lines.
    pub plans: bool,
    /// Send only the first `limit` coflows (`0` = all).
    pub limit: usize,
    /// Slot length in milliseconds.
    pub ms_per_slot: f64,
    /// Port bandwidth in MB per slot.
    pub mb_per_slot: f64,
    /// Extra demand multiplier.
    pub scale: f64,
    /// Scheduling tier to request (`tier=lp|ordering`).
    pub tier: Tier,
    /// Ask the daemon to degrade to the ordering tier on engine
    /// failure or overload instead of quarantining (`fallback=ordering`).
    pub fallback: bool,
    /// Overload threshold forwarded as `max-resolves=N` (`0` = omit).
    pub max_resolves: usize,
    /// Deadline slack factor forwarded as `deadline-slack=F`
    /// (`0` = omit, no deadlines).
    pub deadline_slack: f64,
    /// Per-epoch solve budget forwarded as `max-solve-ms=F`
    /// (`0` = omit).
    pub max_solve_ms: f64,
}

impl Default for FeedOptions {
    fn default() -> Self {
        FeedOptions {
            tenant: "feed".to_string(),
            policy: EpochPolicy::Event,
            shards: 1,
            split: ShardSplit::Equal,
            cold: false,
            shadow_cold: false,
            plans: false,
            limit: 0,
            ms_per_slot: 1000.0,
            mb_per_slot: 125.0,
            scale: 1.0,
            tier: Tier::Lp,
            fallback: false,
            max_resolves: 0,
            deadline_slack: 0.0,
            max_solve_ms: 0.0,
        }
    }
}

/// What the feed run saw.
#[derive(Clone, Debug, Default)]
pub struct FeedSummary {
    /// Coflow lines sent.
    pub sent: usize,
    /// Server response lines received.
    pub received: usize,
    /// The tenant's `DONE` line, when one arrived.
    pub done: Option<String>,
    /// `ERR` lines received.
    pub errors: usize,
}

/// Builds the `HELLO` line this feed run opens with.
pub fn hello_line(num_ports: usize, base: usize, opts: &FeedOptions) -> String {
    let mut line = format!(
        "HELLO {} {num_ports} base={base} policy={} shards={}",
        opts.tenant,
        match opts.policy {
            EpochPolicy::Event => "event",
            EpochPolicy::Doubling => "doubling",
        },
        opts.shards,
    );
    if opts.split == ShardSplit::Proportional {
        line.push_str(" split=prop");
    }
    line.push_str(&format!(
        " ms-per-slot={} mb-per-slot={} scale={}",
        opts.ms_per_slot, opts.mb_per_slot, opts.scale
    ));
    if opts.tier == Tier::Ordering {
        line.push_str(" tier=ordering");
    }
    if opts.fallback {
        line.push_str(" fallback=ordering");
    }
    if opts.max_resolves > 0 {
        line.push_str(&format!(" max-resolves={}", opts.max_resolves));
    }
    if opts.deadline_slack > 0.0 {
        line.push_str(&format!(" deadline-slack={}", opts.deadline_slack));
    }
    if opts.max_solve_ms > 0.0 {
        line.push_str(&format!(" max-solve-ms={}", opts.max_solve_ms));
    }
    if opts.cold {
        line.push_str(" cold");
    }
    if opts.shadow_cold {
        line.push_str(" shadow-cold");
    }
    if opts.plans {
        line.push_str(" plans");
    }
    line
}

/// Reconstructs one FB2010 coflow line from its parsed form (the exact
/// inverse of `coflow_workloads::trace::parse_coflow_line`).
pub fn coflow_line(c: &TraceCoflow) -> String {
    let mut line = format!("{} {} {}", c.id, c.arrival_ms, c.mappers.len());
    for m in &c.mappers {
        line.push_str(&format!(" {m}"));
    }
    line.push_str(&format!(" {}", c.reducers.len()));
    for &(p, mb) in &c.reducers {
        if mb == mb.trunc() && mb.abs() < 1e15 {
            line.push_str(&format!(" {p}:{}", mb as i64));
        } else {
            line.push_str(&format!(" {p}:{mb}"));
        }
    }
    line
}

/// Replays `trace_text` against the daemon at `addr`, echoing server
/// responses to `out`. Returns once the server closes the connection.
///
/// # Errors
///
/// Trace parse failures ([`CoflowError::Io`]) and socket errors.
pub fn feed<W: Write + Send>(
    addr: &str,
    trace_text: &str,
    opts: &FeedOptions,
    out: &mut W,
) -> Result<FeedSummary, CoflowError> {
    let trace = Trace::parse(trace_text).map_err(|e| CoflowError::Io(e.to_string()))?;
    let base = trace.port_base()?;
    let stream =
        TcpStream::connect(addr).map_err(|e| CoflowError::Io(format!("connect {addr}: {e}")))?;
    let reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| CoflowError::Io(format!("clone stream: {e}")))?,
    );

    let take = if opts.limit == 0 {
        trace.coflows.len()
    } else {
        opts.limit.min(trace.coflows.len())
    };
    let done_prefix = format!("DONE tenant={}", opts.tenant);
    let mut summary = FeedSummary::default();

    let io_err = |e: std::io::Error| CoflowError::Io(format!("feed {addr}: {e}"));
    std::thread::scope(|scope| -> Result<(), CoflowError> {
        // Reader: drain responses until the server closes.
        let drain = scope.spawn(move || {
            let mut received = 0usize;
            let mut errors = 0usize;
            let mut done = None;
            let mut lines = Vec::new();
            for line in reader.lines() {
                let Ok(line) = line else { break };
                received += 1;
                if line.starts_with("ERR") {
                    errors += 1;
                }
                if line.starts_with(&done_prefix) {
                    done = Some(line.clone());
                }
                lines.push(line);
            }
            (received, errors, done, lines)
        });

        // Writer: HELLO, coflows, BYE.
        let mut writer = BufWriter::new(&stream);
        writeln!(writer, "{}", hello_line(trace.num_ports, base, opts)).map_err(io_err)?;
        for c in trace.coflows.iter().take(take) {
            writeln!(writer, "{}", coflow_line(c)).map_err(io_err)?;
            summary.sent += 1;
        }
        writeln!(writer, "BYE").map_err(io_err)?;
        writer.flush().map_err(io_err)?;
        drop(writer);
        stream.shutdown(std::net::Shutdown::Write).map_err(io_err)?;

        let (received, errors, done, lines) = drain
            .join()
            .map_err(|_| CoflowError::Io("feed reader thread panicked".to_string()))?;
        summary.received = received;
        summary.errors = errors;
        summary.done = done;
        for line in lines {
            writeln!(out, "{line}").map_err(io_err)?;
        }
        Ok(())
    })?;
    Ok(summary)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use coflow_workloads::trace::parse_coflow_line;

    #[test]
    fn coflow_line_round_trips() {
        for line in [
            "7 200 1 3 2 1:10 4:5",
            "1 0 2 1 2 1 3:250",
            "9 1500 1 4 1 2:0.5",
        ] {
            let c = parse_coflow_line(line, 1, 4).expect("fixture parses");
            let rebuilt = coflow_line(&c);
            assert_eq!(
                parse_coflow_line(&rebuilt, 1, 4).expect("rebuilt parses"),
                c,
                "{line} → {rebuilt}"
            );
        }
    }

    #[test]
    fn hello_line_carries_the_options() {
        let opts = FeedOptions {
            tenant: "acme".into(),
            policy: EpochPolicy::Doubling,
            shards: 4,
            split: ShardSplit::Proportional,
            cold: true,
            plans: true,
            ..FeedOptions::default()
        };
        let line = hello_line(16, 1, &opts);
        assert!(line.starts_with("HELLO acme 16 base=1 policy=doubling shards=4"));
        assert!(line.contains("split=prop") && line.ends_with("cold plans"));
        // And the daemon accepts it verbatim.
        let req = crate::protocol::parse_request(&line, None).expect("daemon parses");
        let crate::protocol::Request::Hello(h) = req else {
            panic!("expected hello")
        };
        assert_eq!(h.shards, 4);
        assert!(h.cold && h.plans);
    }
}
