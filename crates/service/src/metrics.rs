//! Service metrics: latency percentiles and per-tenant counters.

use crate::engine::EpochReport;

/// Linear-interpolation percentile of an unsorted sample (`q` in
/// `0..=100`). Returns 0 for an empty sample.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = (q / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Rolling per-tenant service metrics, folded from [`EpochReport`]s.
#[derive(Clone, Debug, Default)]
pub struct ServiceMetrics {
    /// Epoch wall-clock latencies, milliseconds, in arrival order.
    pub epoch_ms: Vec<f64>,
    /// Total warm simplex iterations reported by epochs.
    pub warm_iterations: usize,
    /// Total shadow-cold iterations (when measured).
    pub cold_iterations: usize,
    /// Epochs whose every shard solve warm-started.
    pub warm_epochs: usize,
    /// Epochs observed.
    pub epochs: usize,
    /// Degrade-ladder demotions (engine errors, watchdog breaches,
    /// max-resolves overloads).
    pub degrades: usize,
    /// Retry probes attempted from a degraded rung.
    pub probes: usize,
    /// Successful promotions back up the ladder.
    pub promotions: usize,
    /// Arrivals refused while shedding admissions.
    pub shed: usize,
    /// Epochs replayed from the write-ahead journal instead of solved.
    pub recovered_epochs: usize,
}

impl ServiceMetrics {
    /// Folds one epoch report into the counters.
    pub fn observe(&mut self, report: &EpochReport) {
        self.epochs += 1;
        self.epoch_ms.push(report.wall_ms);
        self.warm_iterations += report.iterations;
        if report.warm {
            self.warm_epochs += 1;
        }
        if let Some(c) = report.cold_iterations {
            self.cold_iterations += c;
        }
    }

    /// p50 epoch latency, milliseconds.
    pub fn p50_ms(&self) -> f64 {
        percentile(&self.epoch_ms, 50.0)
    }

    /// p99 epoch latency, milliseconds.
    pub fn p99_ms(&self) -> f64 {
        percentile(&self.epoch_ms, 99.0)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let s = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 100.0), 4.0);
        assert!((percentile(&s, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn metrics_fold_reports() {
        let mut m = ServiceMetrics::default();
        m.observe(&EpochReport {
            epoch: 0,
            objective: 1.0,
            iterations: 10,
            warm: false,
            cold_iterations: Some(10),
            wall_ms: 2.0,
            transfers: Vec::new(),
        });
        m.observe(&EpochReport {
            epoch: 1,
            objective: 1.0,
            iterations: 3,
            warm: true,
            cold_iterations: Some(9),
            wall_ms: 4.0,
            transfers: Vec::new(),
        });
        assert_eq!(m.epochs, 2);
        assert_eq!(m.warm_epochs, 1);
        assert_eq!(m.warm_iterations, 13);
        assert_eq!(m.cold_iterations, 19);
        assert!((m.p50_ms() - 3.0).abs() < 1e-12);
    }
}
