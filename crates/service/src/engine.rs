//! The per-tenant streaming epoch engine.
//!
//! A [`TenantEngine`] is the long-lived scheduling state of one tenant
//! fabric inside the daemon: it accepts coflow arrivals one at a time
//! ([`admit`](TenantEngine::admit)), batches them into epochs, keeps a
//! warm [`TimeIndexedResolver`] alive across those epochs (one per
//! port-group shard), and streams back per-epoch reports. Calling
//! [`finish`](TenantEngine::finish) after the last arrival runs the
//! remaining epochs to completion, merges the shard schedules, and
//! re-validates the merged schedule against the full unsharded
//! instance.
//!
//! Two epoch policies mirror the two offline-to-online frameworks in
//! `coflow-core`:
//!
//! * [`EpochPolicy::Event`] replays `coflow_core::online`'s
//!   arrival-epoch loop — an epoch per distinct release, window closed
//!   by the next arrival. With a single shard and a
//!   [`horizon_hint`](EngineConfig::horizon_hint) matching the batch
//!   run's initial horizon, the engine builds bitwise-identical LPs and
//!   reproduces `online_heuristic_with`'s epoch objectives exactly (the
//!   determinism test pins this to 1e-6).
//! * [`EpochPolicy::Doubling`] replays `coflow_core::flowtime`'s
//!   doubling-batch framework: arrivals buffer until their
//!   [`doubling_boundary`] passes, then the whole batch dispatches
//!   after the committed work.
//!
//! The streaming engine is *not* clairvoyant: unlike the batch
//! entry points it sizes its initial horizon from the coflows admitted
//! by the first dispatch (growing later as needed), and arrivals that
//! report a release at or before the already-processed frontier are
//! admitted at the frontier instead (time does not rewind).

use crate::shard::{mapper_shares, shard_fabric, Partition, ShardSplit};
use coflow_core::flowtime::doubling_boundary;
use coflow_core::heuristic::lp_heuristic;
use coflow_core::horizon::{horizon, HorizonMode};
use coflow_core::model::{Coflow, CoflowInstance, Flow};
use coflow_core::online::{build_residual, residual_plan};
use coflow_core::resolver::TimeIndexedResolver;
use coflow_core::routing::Routing;
use coflow_core::schedule::{Schedule, SlotTransfer};
use coflow_core::stretch::StretchOptions;
use coflow_core::validate::{validate, Tolerance};
use coflow_core::CoflowError;
use coflow_lp::{SolveStats, SolverOptions};
use coflow_runtime::Runtime;
use std::collections::BTreeSet;
use std::sync::Mutex;
use std::time::Instant;

/// One shard's slice of an admitted coflow: the flows it hosts plus
/// their indices in the original flow list (for rate-plan relabeling).
type ShardSlice = (Vec<(usize, usize, f64)>, Vec<usize>);

/// A per-core result slot for the fan-out in [`TenantEngine::on_cores_indexed`].
type CoreSlot = Mutex<Option<Result<Option<CoreEpochResult>, CoflowError>>>;

/// How arrivals are grouped into re-solve epochs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EpochPolicy {
    /// One epoch per distinct release slot; the window closes at the
    /// next arrival (the `coflow_core::online` loop).
    #[default]
    Event,
    /// Doubling batch boundaries `0, 1, 2, 4, …`; a batch dispatches
    /// once an arrival passes its boundary (the `coflow_core::flowtime`
    /// loop).
    Doubling,
}

/// Configuration of one tenant's engine.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Epoch batching policy.
    pub policy: EpochPolicy,
    /// Warm-start the per-shard resolvers (the service's raison d'être);
    /// `false` is the `--cold` A/B escape hatch.
    pub warm: bool,
    /// Additionally cold-solve each epoch's exact model on the side and
    /// report its iteration count — the warm-vs-cold measurement.
    pub shadow_cold: bool,
    /// LP solver options for every epoch solve.
    pub lp: SolverOptions,
    /// Number of port-group shards (1 = unsharded).
    pub shards: usize,
    /// How input-port egress splits across shards.
    pub split: ShardSplit,
    /// Record the executed per-slot transfers of every epoch in its
    /// [`EpochReport`] (the daemon's `RATE` lines).
    pub emit_plans: bool,
    /// Initial resolver horizon override. `None` sizes the horizon
    /// greedily from the coflows admitted when the first epoch
    /// dispatches; the determinism tests pass the batch run's horizon to
    /// reproduce it exactly.
    pub horizon_hint: Option<u32>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            policy: EpochPolicy::Event,
            warm: true,
            shadow_cold: false,
            lp: SolverOptions::default(),
            shards: 1,
            split: ShardSplit::Equal,
            emit_plans: false,
            horizon_hint: None,
        }
    }
}

/// One admitted coflow, in port coordinates (already rebased to
/// `0..num_ports` and demand-normalized — see
/// `coflow_workloads::trace::TraceCoflow::port_flows`).
#[derive(Clone, Debug)]
pub struct PortCoflow {
    /// Caller-side identifier, echoed in reports.
    pub id: String,
    /// Objective weight `w_j > 0`.
    pub weight: f64,
    /// Release slot.
    pub release: u32,
    /// Advisory completion deadline (slot by which the coflow should
    /// finish). The LP tier ignores it while scheduling but reports
    /// misses in [`ServiceOutcome`]; the ordering fallback tier's
    /// accounting does the same (see `crate::fallback`).
    pub deadline: Option<u32>,
    /// `(in_port, out_port, demand)` per flow.
    pub flows: Vec<(usize, usize, f64)>,
}

/// Validates a port coflow against a `num_ports`-port fabric: ports in
/// range, finite positive demands, at least one flow. Shared by
/// [`TenantEngine::admit`] and the daemon's LP-free ordering tier, so
/// both tiers reject exactly the same malformed inputs.
///
/// # Errors
///
/// [`CoflowError::BadInstance`] with a human-readable message.
pub fn validate_port_coflow(num_ports: usize, pc: &PortCoflow) -> Result<(), CoflowError> {
    for &(m, r, d) in &pc.flows {
        if m >= num_ports || r >= num_ports {
            return Err(CoflowError::BadInstance(format!(
                "coflow {}: port pair ({m},{r}) outside the {num_ports}-port fabric",
                pc.id
            )));
        }
        if !(d.is_finite() && d > 0.0) {
            return Err(CoflowError::BadInstance(format!(
                "coflow {}: demand {d} must be positive",
                pc.id
            )));
        }
    }
    if pc.flows.is_empty() {
        return Err(CoflowError::BadInstance(format!(
            "coflow {} has no flows",
            pc.id
        )));
    }
    Ok(())
}

/// What one epoch (or doubling batch) did.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// The epoch slot (event policy) or dispatch slot (doubling).
    pub epoch: u32,
    /// Sum of the shard LPs' objectives at this epoch.
    pub objective: f64,
    /// Simplex iterations this epoch across shards.
    pub iterations: usize,
    /// Whether every shard solve warm-started from a kept basis.
    pub warm: bool,
    /// Iterations the same models cost from the all-slack crash basis
    /// (with [`EngineConfig::shadow_cold`]).
    pub cold_iterations: Option<usize>,
    /// Wall-clock time of the epoch, milliseconds.
    pub wall_ms: f64,
    /// Executed transfers `(coflow id index, global slot, volume)` for
    /// the window just played (with [`EngineConfig::emit_plans`];
    /// volumes are summed per coflow × slot).
    pub transfers: Vec<(usize, u32, f64)>,
}

/// Final accounting returned by [`TenantEngine::finish`].
#[derive(Clone, Debug)]
pub struct ServiceOutcome {
    /// Coflows admitted.
    pub admitted: usize,
    /// `Σ w_j C_j` of the merged, validated schedule.
    pub objective: f64,
    /// Per-coflow completion slots, in admission order.
    pub completions: Vec<u32>,
    /// Epochs (or batches) dispatched.
    pub epochs: usize,
    /// Total simplex iterations across all shard solves.
    pub lp_iterations: usize,
    /// Total shadow-cold iterations (with [`EngineConfig::shadow_cold`]).
    pub cold_iterations: Option<usize>,
    /// LP re-solves across shards.
    pub resolves: usize,
    /// Horizon-growth rebuilds across shards.
    pub rebuilds: usize,
    /// Engine counters merged over every solve.
    pub lp_stats: SolveStats,
    /// Peak edge utilization of the merged schedule (≤ 1 + tolerance).
    pub peak_utilization: f64,
    /// Objective of each epoch's LP re-solve, in epoch order (summed
    /// over shards) — the series the determinism test compares.
    pub epoch_objectives: Vec<f64>,
    /// Admitted coflows that carried a deadline.
    pub deadline_total: usize,
    /// Of those, how many completed after their deadline.
    pub deadline_missed: usize,
}

/// One executed slot transfer in journal coordinates: shard-local
/// coflow/flow indices plus dense edge indices (graph ids don't
/// serialize; every shard shares the full fabric's edge numbering).
#[derive(Clone, Debug, PartialEq)]
pub struct TransferRecord {
    /// Shard-local coflow index.
    pub coflow: usize,
    /// Flow index within the coflow.
    pub flow: usize,
    /// Global schedule slot.
    pub slot: u32,
    /// Volume moved in the slot.
    pub volume: f64,
    /// `(edge index, volume)` routing of the transfer.
    pub edges: Vec<(usize, f64)>,
}

/// The append-only events one shard core produced since the last drain
/// — exactly the state [`TenantEngine::restore`] needs to replay it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CoreDelta {
    /// New resolver activations `(coflow, flow, first_slot)`.
    pub activations: Vec<(usize, usize, u32)>,
    /// New executed-slot fixes `(coflow, flow, slot, fraction)`.
    pub fixes: Vec<(usize, usize, u32, f64)>,
    /// New per-epoch LP objectives.
    pub objectives: Vec<f64>,
    /// New executed transfers.
    pub transfers: Vec<TransferRecord>,
}

/// Engine-level mutable state, serialized on every journal `STATE`
/// line and reinstated verbatim by [`TenantEngine::restore`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineState {
    /// Event policy: highest processed epoch.
    pub frontier: Option<u32>,
    /// Event policy: admitted release slots not yet processed.
    pub pending_epochs: Vec<u32>,
    /// Doubling policy: boundary of the open batch.
    pub open_boundary: u32,
    /// Doubling policy: admitted indices buffered for the open batch.
    pub open_batch: Vec<usize>,
    /// Epochs dispatched so far.
    pub epochs_run: usize,
    /// LP re-solves dispatched so far.
    pub resolves: usize,
    /// Per-core resolver horizon (0 = resolver not built yet).
    pub horizons: Vec<u32>,
    /// Per-core committed end of the doubling schedule.
    pub committed: Vec<u32>,
}

/// Everything a journal reader accumulated for one tenant: the
/// arguments of [`TenantEngine::restore`].
#[derive(Clone, Debug, Default)]
pub struct RecoverySnapshot {
    /// Engine admissions in order: the coflow and its *effective*
    /// (frontier-clamped) release.
    pub admitted: Vec<(PortCoflow, u32)>,
    /// Per-shard egress shares, once the cores were created.
    pub shares: Option<Vec<Vec<f64>>>,
    /// Accumulated per-core event logs (parallel to `shares`).
    pub cores: Vec<CoreDelta>,
    /// Engine-level state at the last commit marker.
    pub state: EngineState,
}

/// Tracks how much of each core's append-only logs a journal has
/// already written, so [`TenantEngine::drain_recovery`] emits only the
/// suffix.
#[derive(Clone, Debug, Default)]
pub struct RecoveryCursor {
    cores: Vec<CoreCursor>,
}

impl RecoveryCursor {
    /// Whether nothing has been drained through this cursor yet (the
    /// journal holds no `CORES` line or core events).
    pub fn is_fresh(&self) -> bool {
        self.cores.is_empty()
    }
}

#[derive(Clone, Debug, Default)]
struct CoreCursor {
    acts: usize,
    fixes: usize,
    objs: usize,
    /// Per local coflow, per flow: schedule entries already drained.
    sched: Vec<Vec<usize>>,
}

/// One shard's persistent scheduling state: a gadgeted switch graph, an
/// owned warm resolver over the coflows (or parts of coflows) landing
/// in this shard, and the execution bookkeeping of the epoch loop.
struct EpochCore {
    graph: coflow_netgraph::Graph,
    /// Inner gadget node per port-side node id (`inner[v]`).
    inner: Vec<coflow_netgraph::NodeId>,
    num_ports: usize,
    /// Coflows admitted to this shard before the resolver exists.
    staged: Vec<Coflow>,
    resolver: Option<TimeIndexedResolver<'static>>,
    remaining: Vec<Vec<f64>>,
    schedule: Schedule,
    epoch_objectives: Vec<f64>,
    cold_iterations: usize,
    lp_stats: SolveStats,
    rebuilds: usize,
    committed_end: u32,
    warm: bool,
    last_was_warm: bool,
}

/// A shard solve's per-epoch result, merged by the engine.
struct CoreEpochResult {
    objective: f64,
    iterations: usize,
    warm: bool,
    cold_iterations: Option<usize>,
    /// `(local coflow, global slot, volume)` executed this window.
    executed: Vec<(usize, u32, f64)>,
}

impl EpochCore {
    fn new(num_ports: usize, egress_share: &[f64], warm: bool) -> EpochCore {
        let gg = shard_fabric(num_ports, egress_share);
        EpochCore {
            graph: gg.graph,
            inner: gg.inner,
            num_ports,
            staged: Vec::new(),
            resolver: None,
            remaining: Vec::new(),
            schedule: Schedule::default(),
            epoch_objectives: Vec::new(),
            cold_iterations: 0,
            lp_stats: SolveStats::default(),
            rebuilds: 0,
            committed_end: 0,
            warm,
            last_was_warm: false,
        }
    }

    /// Converts port-level flows into a node-level coflow on this
    /// shard's gadget graph (mapper `m` sends from `inner[m]`, reducer
    /// `r` receives at `inner[n + r]` — the same endpoints
    /// `Trace::switch_instance` uses).
    fn make_coflow(&self, weight: f64, release: u32, flows: &[(usize, usize, f64)]) -> Coflow {
        let n = self.num_ports;
        Coflow::weighted(
            weight,
            flows
                .iter()
                .map(|&(m, r, d)| Flow::released(self.inner[m], self.inner[n + r], d, release))
                .collect(),
        )
    }

    /// Admits one (sub-)coflow, returning its local index.
    fn admit(&mut self, cf: Coflow) -> Result<usize, CoflowError> {
        self.remaining
            .push(cf.flows.iter().map(|f| f.demand).collect());
        self.schedule.flows.push(vec![Vec::new(); cf.flows.len()]);
        match &mut self.resolver {
            None => {
                self.staged.push(cf);
                Ok(self.staged.len() - 1)
            }
            Some(r) => r.push_coflow(cf),
        }
    }

    /// Builds the resolver lazily over everything admitted so far.
    fn ensure_resolver(&mut self, horizon_hint: Option<u32>) -> Result<(), CoflowError> {
        if self.resolver.is_some() {
            return Ok(());
        }
        let staged = std::mem::take(&mut self.staged);
        let inst = CoflowInstance::new(self.graph.clone(), staged)?;
        let t0 = match horizon_hint {
            Some(t) => t,
            None => horizon(
                &inst,
                &Routing::FreePath,
                HorizonMode::Greedy { margin: 1.25 },
            )?,
        };
        self.resolver = Some(TimeIndexedResolver::new_owned(
            inst,
            Routing::FreePath,
            t0,
            self.warm,
        )?);
        Ok(())
    }

    fn inst(&self) -> &CoflowInstance {
        self.resolver
            .as_ref()
            .expect("resolver built before epoch runs")
            .instance()
    }

    /// Solves the current model, growing the horizon on infeasibility —
    /// the shared solve loop of both core frameworks.
    fn solve_growing(
        &mut self,
        lp_opts: &SolverOptions,
    ) -> Result<coflow_core::timeidx::LpRelaxation, CoflowError> {
        let mut grow_budget = 8;
        let resolver = self.resolver.as_mut().expect("resolver built");
        loop {
            match resolver.solve(lp_opts)? {
                Some(lp) => {
                    self.last_was_warm = resolver.last_was_warm();
                    return Ok(lp);
                }
                None => {
                    self.rebuilds += 1;
                    grow_budget -= 1;
                    if grow_budget == 0 {
                        return Err(CoflowError::Lp(
                            "service resolver: horizon growth did not restore feasibility".into(),
                        ));
                    }
                    let grown = ((resolver.horizon() as f64) * 1.5).ceil() as u32 + 1;
                    resolver.rebuild(grown)?;
                }
            }
        }
    }

    /// Reinstates this core from journaled logs: build the resolver at
    /// the journaled horizon, replay the activation/fix logs with ONE
    /// model rebuild (no solves — this is why recovery is an order of
    /// magnitude cheaper than re-running every epoch), then replay the
    /// executed transfers into `remaining`/`schedule` with the same
    /// arithmetic the live epoch loop used.
    ///
    /// Every journal-sourced index is validated here: the resolver
    /// replays its logs with plain indexing, so a corrupt journal must
    /// be rejected with a typed error, not a panic.
    fn restore(
        &mut self,
        delta: CoreDelta,
        horizon: u32,
        committed_end: u32,
    ) -> Result<(), CoflowError> {
        let bad = |what: String| Err(CoflowError::BadInstance(format!("journal: {what}")));
        if horizon == 0 {
            if !(delta.activations.is_empty()
                && delta.fixes.is_empty()
                && delta.objectives.is_empty()
                && delta.transfers.is_empty())
            {
                return bad("shard events logged before its resolver existed".into());
            }
            self.committed_end = committed_end;
            return Ok(());
        }
        let mut starts: Vec<Vec<Option<u32>>> = self
            .staged
            .iter()
            .map(|cf| vec![None; cf.flows.len()])
            .collect();
        for &(j, i, slot) in &delta.activations {
            match starts.get_mut(j).and_then(|row| row.get_mut(i)) {
                Some(s) if (1..=horizon).contains(&slot) => *s = Some(slot),
                _ => return bad(format!("activation ({j},{i},{slot}) out of range")),
            }
        }
        for &(j, i, slot, frac) in &delta.fixes {
            let active = starts
                .get(j)
                .and_then(|row| row.get(i))
                .copied()
                .flatten()
                .is_some_and(|start| start <= slot && slot <= horizon);
            if !active || !frac.is_finite() || frac < 0.0 {
                return bad(format!("fix ({j},{i},{slot},{frac}) out of range"));
            }
        }
        let edge_count = self.graph.edge_count();
        for tr in &delta.transfers {
            let in_range = self
                .remaining
                .get(tr.coflow)
                .is_some_and(|row| tr.flow < row.len())
                && tr.volume.is_finite()
                && tr.volume >= 0.0
                && tr
                    .edges
                    .iter()
                    .all(|&(e, v)| e < edge_count && v.is_finite());
            if !in_range {
                return bad(format!(
                    "transfer ({},{}) slot {} out of range",
                    tr.coflow, tr.flow, tr.slot
                ));
            }
        }
        if !delta.objectives.iter().all(|o| o.is_finite()) {
            return bad("non-finite epoch objective".into());
        }

        self.ensure_resolver(Some(horizon))?;
        let resolver = self.resolver.as_mut().expect("resolver just built");
        resolver.restore_logs(delta.activations, delta.fixes);
        resolver.rebuild(horizon)?;
        self.epoch_objectives = delta.objectives;
        self.committed_end = committed_end;
        for tr in delta.transfers {
            self.remaining[tr.coflow][tr.flow] -= tr.volume;
            if self.remaining[tr.coflow][tr.flow] < 1e-9 {
                self.remaining[tr.coflow][tr.flow] = 0.0;
            }
            self.schedule.flows[tr.coflow][tr.flow].push(SlotTransfer {
                slot: tr.slot,
                volume: tr.volume,
                edges: tr
                    .edges
                    .into_iter()
                    .map(|(e, v)| (coflow_netgraph::EdgeId::from_index(e), v))
                    .collect(),
            });
        }
        Ok(())
    }

    /// Appends this core's undrained log suffixes to `delta`, advancing
    /// `cursor`.
    fn drain_into(&self, cursor: &mut CoreCursor, delta: &mut CoreDelta) {
        if let Some(r) = &self.resolver {
            delta
                .activations
                .extend_from_slice(&r.activations()[cursor.acts..]);
            cursor.acts = r.activations().len();
            delta.fixes.extend_from_slice(&r.fixes()[cursor.fixes..]);
            cursor.fixes = r.fixes().len();
        }
        delta
            .objectives
            .extend_from_slice(&self.epoch_objectives[cursor.objs..]);
        cursor.objs = self.epoch_objectives.len();
        while cursor.sched.len() < self.schedule.flows.len() {
            let j = cursor.sched.len();
            cursor.sched.push(vec![0; self.schedule.flows[j].len()]);
        }
        for (j, row) in self.schedule.flows.iter().enumerate() {
            for (i, fl) in row.iter().enumerate() {
                let seen = &mut cursor.sched[j][i];
                // `finish` merges shard schedules by *taking* these
                // rows; a post-finish drain (sealing the journal before
                // its DONE marker) must not re-log or panic on the
                // emptied rows.
                if *seen > fl.len() {
                    *seen = fl.len();
                    continue;
                }
                for st in &fl[*seen..] {
                    delta.transfers.push(TransferRecord {
                        coflow: j,
                        flow: i,
                        slot: st.slot,
                        volume: st.volume,
                        edges: st.edges.iter().map(|&(e, v)| (e.index(), v)).collect(),
                    });
                }
                *seen = fl.len();
            }
        }
    }

    /// The event-policy epoch body — `coflow_core::online`'s loop over
    /// one epoch: activate this epoch's arrivals, re-solve, follow the
    /// λ=1 heuristic until `window_end` (exclusive of later slots), and
    /// freeze the window in the persistent LP. `window_end = None`
    /// means run to completion (the final epoch).
    fn run_event_epoch(
        &mut self,
        epoch: u32,
        window_end: Option<u32>,
        lp_opts: &SolverOptions,
        shadow_cold: bool,
    ) -> Result<Option<CoreEpochResult>, CoflowError> {
        // Reveal this epoch's arrivals to the persistent LP.
        let activations: Vec<(usize, usize)> = self
            .inst()
            .flows()
            .filter(|(_, f)| f.release == epoch)
            .map(|(key, _)| (key.coflow as usize, key.flow as usize))
            .collect();
        {
            let resolver = self.resolver.as_mut().expect("resolver built");
            if !activations.is_empty() && epoch + 1 > resolver.horizon() {
                let grown = (epoch + 1).max(((resolver.horizon() as f64) * 1.5).ceil() as u32);
                self.rebuilds += 1;
                resolver.rebuild(grown)?;
            }
            let resolver = self.resolver.as_mut().expect("resolver built");
            for &(j, i) in &activations {
                resolver.activate_flow(j, i, epoch + 1)?;
            }
        }
        let sub = build_residual(self.inst(), &Routing::FreePath, &self.remaining, epoch);
        let Some((sub_inst, _sub_routing, index)) = sub else {
            return Ok(None); // nothing pending at this epoch
        };
        let lp = self.solve_growing(lp_opts)?;
        self.lp_stats.merge(&lp.stats);
        self.epoch_objectives.push(lp.objective);
        let cold = if shadow_cold {
            let resolver = self.resolver.as_ref().expect("resolver built");
            let (_, iters) = resolver
                .probe_cold(lp_opts)?
                .expect("warm-feasible model is cold-feasible");
            self.cold_iterations += iters;
            Some(iters)
        } else {
            None
        };

        // Local residual plan → λ=1 heuristic, exactly as online.rs.
        let sub_plan = residual_plan(&lp.plan, &index, epoch);
        let plan = lp_heuristic(&sub_inst, &sub_plan, StretchOptions::default());

        let window = match window_end {
            Some(next) => next - epoch,
            None => u32::MAX,
        };
        let mut executed: std::collections::BTreeMap<(usize, usize, u32), f64> =
            std::collections::BTreeMap::new();
        let mut per_coflow: std::collections::BTreeMap<(usize, u32), f64> =
            std::collections::BTreeMap::new();
        for (sj, row) in plan.flows.iter().enumerate() {
            for (si, fl) in row.iter().enumerate() {
                let (j, i) = index[sj][si];
                for st in fl {
                    if st.slot > window {
                        continue; // superseded by the next re-solve
                    }
                    let global_slot = epoch + st.slot;
                    self.remaining[j][i] -= st.volume;
                    if self.remaining[j][i] < 1e-9 {
                        self.remaining[j][i] = 0.0;
                    }
                    *executed.entry((j, i, global_slot)).or_insert(0.0) += st.volume;
                    *per_coflow.entry((j, global_slot)).or_insert(0.0) += st.volume;
                    self.schedule.flows[j][i].push(SlotTransfer {
                        slot: global_slot,
                        volume: st.volume,
                        edges: st.edges.clone(),
                    });
                }
            }
        }
        if let Some(next_epoch) = window_end {
            let resolver = self.resolver.as_mut().expect("resolver built");
            let horizon_now = resolver.horizon();
            for idx_row in &index {
                for &(j, i) in idx_row {
                    let demand = self.inst().coflows[j].flows[i].demand;
                    let resolver = self.resolver.as_mut().expect("resolver built");
                    for slot in epoch + 1..=next_epoch.min(horizon_now) {
                        let vol = executed.get(&(j, i, slot)).copied().unwrap_or(0.0);
                        resolver.fix_slot(j, i, slot, vol / demand);
                    }
                }
            }
        }
        Ok(Some(CoreEpochResult {
            objective: lp.objective,
            iterations: lp.lp_iterations,
            warm: self.last_was_warm,
            cold_iterations: cold,
            executed: per_coflow
                .into_iter()
                .map(|((j, slot), vol)| (j, slot, vol))
                .collect(),
        }))
    }

    /// The doubling-policy batch body — `coflow_core::flowtime`'s loop
    /// over one batch: size the batch horizon, append after the
    /// committed work, solve, and freeze the whole batch schedule.
    fn run_doubling_batch(
        &mut self,
        boundary: u32,
        members: &[usize],
        lp_opts: &SolverOptions,
        shadow_cold: bool,
    ) -> Result<Option<CoreEpochResult>, CoflowError> {
        if members.is_empty() {
            return Ok(None);
        }
        // The batch re-plans from scratch at its dispatch slot.
        let sub_coflows: Vec<Coflow> = members
            .iter()
            .map(|&j| {
                let cf = &self.inst().coflows[j];
                Coflow::weighted(
                    cf.weight,
                    cf.flows
                        .iter()
                        .map(|f| Flow::new(f.src, f.dst, f.demand))
                        .collect(),
                )
            })
            .collect();
        let sub_inst = CoflowInstance::new(self.graph.clone(), sub_coflows)
            .expect("batch of a valid instance is valid");
        let t_batch = horizon(
            &sub_inst,
            &Routing::FreePath,
            HorizonMode::Greedy { margin: 1.25 },
        )?;
        let start = boundary.max(self.committed_end);
        let needed = start + t_batch;
        {
            let resolver = self.resolver.as_mut().expect("resolver built");
            if needed > resolver.horizon() {
                let grown = needed.max(((resolver.horizon() as f64) * 1.5).ceil() as u32);
                self.rebuilds += 1;
                resolver.rebuild(grown)?;
            }
            let resolver = self.resolver.as_mut().expect("resolver built");
            for &j in members {
                for i in 0..resolver.instance().coflows[j].flows.len() {
                    resolver.activate_flow(j, i, start + 1)?;
                }
            }
        }
        let lp = self.solve_growing(lp_opts)?;
        self.lp_stats.merge(&lp.stats);
        self.epoch_objectives.push(lp.objective);
        let cold = if shadow_cold {
            let resolver = self.resolver.as_ref().expect("resolver built");
            let (_, iters) = resolver
                .probe_cold(lp_opts)?
                .expect("warm-feasible model is cold-feasible");
            self.cold_iterations += iters;
            Some(iters)
        } else {
            None
        };

        // Batch-local plan: the batch's flows, shifted to its timeline.
        let s0 = start as f64;
        let sub_plan = coflow_core::rateplan::RatePlan {
            flows: members
                .iter()
                .map(|&j| lp.plan.flows[j].iter().map(|fp| fp.tail_from(s0)).collect())
                .collect(),
        };
        let plan = lp_heuristic(&sub_inst, &sub_plan, StretchOptions::default());

        let mut batch_end = start;
        let mut per_coflow: std::collections::BTreeMap<(usize, u32), f64> =
            std::collections::BTreeMap::new();
        for (sj, row) in plan.flows.iter().enumerate() {
            let j = members[sj];
            for (i, fl) in row.iter().enumerate() {
                let demand = self.inst().coflows[j].flows[i].demand;
                for st in fl {
                    let slot = start + st.slot;
                    batch_end = batch_end.max(slot);
                    self.remaining[j][i] -= st.volume;
                    if self.remaining[j][i] < 1e-9 {
                        self.remaining[j][i] = 0.0;
                    }
                    let resolver = self.resolver.as_mut().expect("resolver built");
                    resolver.fix_slot(j, i, slot, st.volume / demand);
                    *per_coflow.entry((j, slot)).or_insert(0.0) += st.volume;
                    self.schedule.flows[j][i].push(SlotTransfer {
                        slot,
                        volume: st.volume,
                        edges: st.edges.clone(),
                    });
                }
            }
        }
        self.committed_end = batch_end;
        Ok(Some(CoreEpochResult {
            objective: lp.objective,
            iterations: lp.lp_iterations,
            warm: self.last_was_warm,
            cold_iterations: cold,
            executed: per_coflow
                .into_iter()
                .map(|((j, slot), vol)| (j, slot, vol))
                .collect(),
        }))
    }
}

/// The long-lived scheduling engine of one tenant fabric. See module
/// docs for the lifecycle ([`admit`](Self::admit)* →
/// [`finish`](Self::finish)).
pub struct TenantEngine {
    config: EngineConfig,
    num_ports: usize,
    admitted: Vec<PortCoflow>,
    /// Effective release of each admitted coflow (clamped to the
    /// processed frontier).
    releases: Vec<u32>,
    /// `placement[a]` maps admitted coflow `a` to its shard-local
    /// sub-coflows: `(core, local_j, original flow indices)`.
    placement: Vec<Vec<(usize, usize, Vec<usize>)>>,
    partition: Partition,
    cores: Option<Vec<EpochCore>>,
    /// The per-shard egress shares the cores were created with (fixed
    /// at first dispatch); journaled so recovery can rebuild identical
    /// shard fabrics without re-deriving the proportional split.
    egress_shares: Option<Vec<Vec<f64>>>,
    /// Arrivals admitted before the cores exist (their demands feed the
    /// proportional egress split).
    waiting: Vec<usize>,
    /// Event policy: admitted release slots not yet processed.
    pending_epochs: BTreeSet<u32>,
    /// Event policy: highest processed epoch.
    frontier: Option<u32>,
    /// Doubling policy: boundary of the currently open batch and the
    /// admitted indices buffered for it.
    open_boundary: u32,
    open_batch: Vec<usize>,
    reports: Vec<EpochReport>,
    epochs_run: usize,
    resolves: usize,
}

impl TenantEngine {
    /// A fresh engine for a `num_ports`-port switch tenant.
    pub fn new(num_ports: usize, config: EngineConfig) -> TenantEngine {
        let shards = config.shards.clamp(1, num_ports.max(1));
        let partition = Partition::contiguous(num_ports, shards);
        TenantEngine {
            config,
            num_ports,
            admitted: Vec::new(),
            releases: Vec::new(),
            placement: Vec::new(),
            partition,
            cores: None,
            egress_shares: None,
            waiting: Vec::new(),
            pending_epochs: BTreeSet::new(),
            frontier: None,
            open_boundary: 0,
            open_batch: Vec::new(),
            reports: Vec::new(),
            epochs_run: 0,
            resolves: 0,
        }
    }

    /// Ports of this tenant's fabric.
    pub fn num_ports(&self) -> usize {
        self.num_ports
    }

    /// Coflows admitted so far.
    pub fn admitted(&self) -> usize {
        self.admitted.len()
    }

    /// The admitted coflows themselves, in admission order. The
    /// daemon's degrade path replays these through the LP-free ordering
    /// tier when a tenant falls back.
    pub fn admitted_coflows(&self) -> &[PortCoflow] {
        &self.admitted
    }

    /// LP re-solves dispatched so far (across shards). The daemon's
    /// `max-resolves` overload knob compares against this counter — a
    /// deterministic proxy for "the LP tier is doing too much work".
    pub fn resolves(&self) -> usize {
        self.resolves
    }

    /// Number of shards actually used.
    pub fn shards(&self) -> usize {
        self.partition.num_groups()
    }

    /// Drains the per-epoch reports produced since the last call.
    pub fn take_reports(&mut self) -> Vec<EpochReport> {
        std::mem::take(&mut self.reports)
    }

    /// Effective (frontier-clamped) release of each admitted coflow —
    /// what the journal's engine-admission records persist.
    pub fn releases(&self) -> &[u32] {
        &self.releases
    }

    /// The per-shard egress shares, once the cores exist.
    pub fn egress_shares(&self) -> Option<&[Vec<f64>]> {
        self.egress_shares.as_deref()
    }

    /// Snapshot of the engine-level mutable state for a journal `STATE`
    /// line.
    pub fn state(&self) -> EngineState {
        let (horizons, committed) = match &self.cores {
            None => (Vec::new(), Vec::new()),
            Some(cores) => (
                cores
                    .iter()
                    .map(|c| c.resolver.as_ref().map_or(0, |r| r.horizon()))
                    .collect(),
                cores.iter().map(|c| c.committed_end).collect(),
            ),
        };
        EngineState {
            frontier: self.frontier,
            pending_epochs: self.pending_epochs.iter().copied().collect(),
            open_boundary: self.open_boundary,
            open_batch: self.open_batch.clone(),
            epochs_run: self.epochs_run,
            resolves: self.resolves,
            horizons,
            committed,
        }
    }

    /// Appends every core's undrained append-only events to a fresh
    /// per-core delta list (empty deltas included, so indices line up
    /// with the shard layout), advancing `cursor`.
    pub fn drain_recovery(&self, cursor: &mut RecoveryCursor) -> Vec<CoreDelta> {
        let Some(cores) = &self.cores else {
            return Vec::new();
        };
        while cursor.cores.len() < cores.len() {
            cursor.cores.push(CoreCursor::default());
        }
        cores
            .iter()
            .zip(&mut cursor.cores)
            .map(|(core, cur)| {
                let mut delta = CoreDelta::default();
                core.drain_into(cur, &mut delta);
                delta
            })
            .collect()
    }

    /// A cursor already synced to the engine's current state — what a
    /// recovered session starts from, so only post-recovery events hit
    /// the journal.
    pub fn recovery_cursor(&self) -> RecoveryCursor {
        let mut cursor = RecoveryCursor::default();
        self.drain_recovery(&mut cursor);
        cursor
    }

    /// Reinstates an engine from journaled state: re-admit every coflow
    /// at its journaled effective release (no epochs run), rebuild the
    /// shard cores from the journaled egress shares, replay each core's
    /// activation/fix logs with one model rebuild apiece, and replay
    /// the executed transfers. The restored engine continues exactly
    /// where the crashed one stopped: same instance, same horizon, same
    /// frozen window — so its remaining epoch objectives match an
    /// uninterrupted run's to LP-optimum uniqueness.
    ///
    /// # Errors
    ///
    /// [`CoflowError::BadInstance`] on any malformed or out-of-range
    /// journal record (a truncated or corrupt journal must surface as
    /// an error, never a panic).
    pub fn restore(
        num_ports: usize,
        config: EngineConfig,
        snap: RecoverySnapshot,
    ) -> Result<TenantEngine, CoflowError> {
        let RecoverySnapshot {
            admitted,
            shares,
            cores: deltas,
            state,
        } = snap;
        let mut eng = TenantEngine::new(num_ports, config);
        for (pc, rel) in admitted {
            validate_port_coflow(num_ports, &pc)?;
            let a = eng.admitted.len();
            eng.releases.push(rel);
            eng.admitted.push(pc);
            eng.place_or_wait(a)?;
        }
        match shares {
            None => {
                if !deltas.is_empty() {
                    return Err(CoflowError::BadInstance(
                        "journal: shard events before the cores existed".into(),
                    ));
                }
            }
            Some(shares) => {
                let groups = eng.partition.num_groups();
                let shares_ok = shares.len() == groups
                    && shares.iter().all(|row| {
                        row.len() == num_ports && row.iter().all(|s| s.is_finite() && *s >= 0.0)
                    });
                if !shares_ok {
                    return Err(CoflowError::BadInstance(format!(
                        "journal: egress shares don't fit {groups} shards × {num_ports} ports"
                    )));
                }
                if deltas.len() > groups
                    || state.horizons.len() > groups
                    || state.committed.len() > groups
                {
                    return Err(CoflowError::BadInstance(
                        "journal: more shard records than shards".into(),
                    ));
                }
                eng.cores = Some(
                    shares
                        .iter()
                        .map(|row| EpochCore::new(num_ports, row, eng.config.warm))
                        .collect(),
                );
                eng.egress_shares = Some(shares);
                for a in std::mem::take(&mut eng.waiting) {
                    eng.place(a)?;
                }
                let cores = eng.cores.as_mut().expect("cores just created");
                for (g, delta) in deltas.into_iter().enumerate() {
                    let horizon = state.horizons.get(g).copied().unwrap_or(0);
                    let committed = state.committed.get(g).copied().unwrap_or(0);
                    cores[g].restore(delta, horizon, committed)?;
                }
            }
        }
        if state.open_batch.iter().any(|&a| a >= eng.admitted.len()) {
            return Err(CoflowError::BadInstance(
                "journal: open-batch member out of range".into(),
            ));
        }
        eng.frontier = state.frontier;
        eng.pending_epochs = state.pending_epochs.iter().copied().collect();
        eng.open_boundary = state.open_boundary;
        eng.open_batch = state.open_batch;
        eng.epochs_run = state.epochs_run;
        eng.resolves = state.resolves;
        Ok(eng)
    }

    /// Admits one coflow and runs every epoch whose window the arrival
    /// closes. Returns the admitted index.
    ///
    /// # Errors
    ///
    /// [`CoflowError::BadInstance`] on malformed coflows (port out of
    /// range, non-positive demand/weight), and LP errors from any epoch
    /// the arrival triggers.
    pub fn admit(&mut self, rt: &Runtime, pc: PortCoflow) -> Result<usize, CoflowError> {
        validate_port_coflow(self.num_ports, &pc)?;
        // Time does not rewind: a release at or before the processed
        // frontier is admitted just after it.
        let release = match (self.config.policy, self.frontier) {
            (EpochPolicy::Event, Some(f)) if pc.release <= f => f + 1,
            _ => pc.release,
        };
        let a = self.admitted.len();
        self.releases.push(release);
        self.admitted.push(pc);
        match self.config.policy {
            EpochPolicy::Event => {
                self.place_or_wait(a)?;
                self.pending_epochs.insert(release);
                // Every pending epoch strictly before this arrival now
                // has a closed window; run them in order.
                let due: Vec<u32> = self
                    .pending_epochs
                    .iter()
                    .copied()
                    .filter(|&e| e < release)
                    .collect();
                for (k, &epoch) in due.iter().enumerate() {
                    let window_end = due.get(k + 1).copied().unwrap_or(release);
                    self.run_event_epoch(rt, epoch, Some(window_end))?;
                }
            }
            EpochPolicy::Doubling => {
                let b = doubling_boundary(release);
                if b > self.open_boundary {
                    self.dispatch_open_batch(rt)?;
                    self.open_boundary = b;
                }
                // Late (out-of-order) arrivals join the open batch.
                self.place_or_wait(a)?;
                self.open_batch.push(a);
            }
        }
        Ok(a)
    }

    /// Runs the remaining epochs to completion, merges the shard
    /// schedules, and validates the merged schedule against the full
    /// unsharded instance.
    ///
    /// # Errors
    ///
    /// LP errors from the final epochs;
    /// [`CoflowError::InvalidSchedule`] if work was left unmoved or the
    /// merged schedule fails validation (both indicate engine bugs —
    /// the validator is the referee).
    pub fn finish(&mut self, rt: &Runtime) -> Result<ServiceOutcome, CoflowError> {
        match self.config.policy {
            EpochPolicy::Event => {
                let due: Vec<u32> = std::mem::take(&mut self.pending_epochs)
                    .into_iter()
                    .collect();
                for (k, &epoch) in due.iter().enumerate() {
                    self.pending_epochs = due[k + 1..].iter().copied().collect();
                    let window_end = due.get(k + 1).copied();
                    self.run_event_epoch(rt, epoch, window_end)?;
                }
                self.pending_epochs.clear();
            }
            EpochPolicy::Doubling => {
                self.dispatch_open_batch(rt)?;
            }
        }

        // ---- Coordinator: merge, reconcile, validate. ----
        let cores = match &mut self.cores {
            Some(cores) => cores,
            None => {
                // No work was ever dispatched (zero admissions).
                return Ok(ServiceOutcome {
                    admitted: self.admitted.len(),
                    objective: 0.0,
                    completions: Vec::new(),
                    epochs: 0,
                    lp_iterations: 0,
                    cold_iterations: self.config.shadow_cold.then_some(0),
                    resolves: 0,
                    rebuilds: 0,
                    lp_stats: SolveStats::default(),
                    peak_utilization: 0.0,
                    epoch_objectives: Vec::new(),
                    deadline_total: 0,
                    deadline_missed: 0,
                });
            }
        };
        for (g, core) in cores.iter().enumerate() {
            for (j, row) in core.remaining.iter().enumerate() {
                for (i, &r) in row.iter().enumerate() {
                    if r > 1e-6 {
                        return Err(CoflowError::InvalidSchedule(format!(
                            "shard {g} left flow ({j},{i}) with {r} unmoved"
                        )));
                    }
                }
            }
        }

        // Full unsharded instance: every shard shares the full fabric's
        // node/edge ids, so shard-local transfers merge verbatim.
        let full = shard_fabric(self.num_ports, &vec![1.0; self.num_ports]);
        let n = self.num_ports;
        let coflows: Vec<Coflow> = self
            .admitted
            .iter()
            .zip(&self.releases)
            .map(|(pc, &rel)| {
                Coflow::weighted(
                    pc.weight,
                    pc.flows
                        .iter()
                        .map(|&(m, r, d)| Flow::released(full.inner[m], full.inner[n + r], d, rel))
                        .collect(),
                )
            })
            .collect();
        let full_inst = CoflowInstance::new(full.graph, coflows)?;
        let mut merged = Schedule {
            flows: self
                .admitted
                .iter()
                .map(|pc| vec![Vec::new(); pc.flows.len()])
                .collect(),
        };
        for (a, parts) in self.placement.iter().enumerate() {
            for &(g, local_j, ref orig) in parts {
                let core = &mut cores[g];
                for (local_i, &i) in orig.iter().enumerate() {
                    let fl = &mut core.schedule.flows[local_j][local_i];
                    fl.sort_by_key(|st| st.slot);
                    merged.flows[a][i] = std::mem::take(fl);
                }
            }
        }
        let report = validate(
            &full_inst,
            &Routing::FreePath,
            &merged,
            Tolerance::default(),
        )?;

        // Cross-shard reconciliation of completion times is the
        // coordinator's `max` over each coflow's sub-coflows — which is
        // exactly what computing completions on the merged schedule does.
        let mut epoch_objectives = Vec::new();
        let mut lp_iterations = 0;
        let mut cold_iterations = 0;
        let mut rebuilds = 0;
        let mut lp_stats = SolveStats::default();
        for core in cores.iter() {
            lp_iterations += core
                .resolver
                .as_ref()
                .map(|r| r.total_iterations())
                .unwrap_or(0);
            cold_iterations += core.cold_iterations;
            rebuilds += core.rebuilds;
            lp_stats.merge(&core.lp_stats);
            if epoch_objectives.is_empty() {
                epoch_objectives = core.epoch_objectives.clone();
            } else {
                for (k, &o) in core.epoch_objectives.iter().enumerate() {
                    if k < epoch_objectives.len() {
                        epoch_objectives[k] += o;
                    } else {
                        epoch_objectives.push(o);
                    }
                }
            }
        }
        // Deadline accounting against the caller's original requests
        // (the LP tier schedules deadline-blind; misses are reported,
        // not prevented — admission control lives in the ordering tier).
        let deadline_total = self
            .admitted
            .iter()
            .filter(|pc| pc.deadline.is_some())
            .count();
        let deadline_missed = self
            .admitted
            .iter()
            .zip(&report.completions.per_coflow)
            .filter(|(pc, &c)| pc.deadline.is_some_and(|d| c > d))
            .count();
        Ok(ServiceOutcome {
            admitted: self.admitted.len(),
            objective: report.completions.weighted_total,
            completions: report.completions.per_coflow.clone(),
            epochs: self.epochs_run,
            lp_iterations,
            cold_iterations: self.config.shadow_cold.then_some(cold_iterations),
            resolves: self.resolves,
            rebuilds,
            lp_stats,
            peak_utilization: report.peak_utilization,
            epoch_objectives,
            deadline_total,
            deadline_missed,
        })
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Splits admitted coflow `a` into its shard-local sub-coflows, or
    /// parks it until the cores exist (they are created at the first
    /// dispatch so the proportional split can see real demands).
    fn place_or_wait(&mut self, a: usize) -> Result<(), CoflowError> {
        self.placement.push(Vec::new());
        if self.cores.is_none() {
            self.waiting.push(a);
            return Ok(());
        }
        self.place(a)
    }

    fn place(&mut self, a: usize) -> Result<(), CoflowError> {
        let groups = self.partition.num_groups();
        let pc = &self.admitted[a];
        let release = self.releases[a];
        // Group the coflow's flows by owning shard, preserving order.
        let mut per_shard: Vec<ShardSlice> = vec![(Vec::new(), Vec::new()); groups];
        for (i, &(m, r, d)) in pc.flows.iter().enumerate() {
            let g = self.partition.of_port[r];
            per_shard[g].0.push((m, r, d));
            per_shard[g].1.push(i);
        }
        let weight_share = {
            // Weighted completion time of a coflow is reconciled as the
            // max over its sub-coflows; splitting the weight evenly over
            // the shards that host it keeps the shard LPs' objectives
            // comparable to the unsharded one without double counting.
            let hosts = per_shard.iter().filter(|(f, _)| !f.is_empty()).count();
            self.admitted[a].weight / hosts.max(1) as f64
        };
        let cores = self.cores.as_mut().expect("cores exist");
        for (g, (flows, orig)) in per_shard.into_iter().enumerate() {
            if flows.is_empty() {
                continue;
            }
            let cf = cores[g].make_coflow(weight_share, release, &flows);
            let local_j = cores[g].admit(cf)?;
            self.placement[a].push((g, local_j, orig));
        }
        Ok(())
    }

    /// Creates the shard cores (first dispatch) and places everything
    /// that was waiting on them.
    fn ensure_cores(&mut self) -> Result<(), CoflowError> {
        if self.cores.is_some() {
            return Ok(());
        }
        let shares = mapper_shares(
            self.num_ports,
            &self.partition,
            self.config.split,
            self.admitted.iter().flat_map(|pc| pc.flows.iter().copied()),
        );
        self.cores = Some(
            shares
                .iter()
                .map(|row| EpochCore::new(self.num_ports, row, self.config.warm))
                .collect(),
        );
        self.egress_shares = Some(shares);
        for a in std::mem::take(&mut self.waiting) {
            self.place(a)?;
        }
        Ok(())
    }

    /// Runs one event-policy epoch across all shard cores (in parallel
    /// when sharded) and folds the results into one [`EpochReport`].
    fn run_event_epoch(
        &mut self,
        rt: &Runtime,
        epoch: u32,
        window_end: Option<u32>,
    ) -> Result<(), CoflowError> {
        self.ensure_cores()?;
        self.pending_epochs.remove(&epoch);
        self.frontier = Some(self.frontier.map_or(epoch, |f| f.max(epoch)));
        let hint = self.config.horizon_hint;
        let lp = self.config.lp.clone();
        let shadow = self.config.shadow_cold;
        let started = Instant::now();
        let results = self.on_cores(rt, move |core| {
            core.ensure_resolver(hint)?;
            core.run_event_epoch(epoch, window_end, &lp, shadow)
        })?;
        self.fold_report(epoch, started, results);
        Ok(())
    }

    /// Dispatches the open doubling batch (if any) across all cores.
    fn dispatch_open_batch(&mut self, rt: &Runtime) -> Result<(), CoflowError> {
        if self.open_batch.is_empty() {
            return Ok(());
        }
        self.ensure_cores()?;
        let boundary = self.open_boundary;
        let members = std::mem::take(&mut self.open_batch);
        // Per-core member lists, in local coflow order.
        let groups = self.partition.num_groups();
        let mut local_members: Vec<Vec<usize>> = vec![Vec::new(); groups];
        for &a in &members {
            for &(g, local_j, _) in &self.placement[a] {
                local_members[g].push(local_j);
            }
        }
        let hint = self.config.horizon_hint;
        let lp = self.config.lp.clone();
        let shadow = self.config.shadow_cold;
        let started = Instant::now();
        let local_ref = &local_members;
        let results = self.on_cores_indexed(rt, move |g, core| {
            core.ensure_resolver(hint)?;
            core.run_doubling_batch(boundary, &local_ref[g], &lp, shadow)
        })?;
        self.fold_report(boundary, started, results);
        Ok(())
    }

    /// Applies `f` to every core — inline when unsharded, fanned out on
    /// the runtime when sharded (each shard's LP solve is independent).
    fn on_cores<F>(
        &mut self,
        rt: &Runtime,
        f: F,
    ) -> Result<Vec<Option<CoreEpochResult>>, CoflowError>
    where
        F: Fn(&mut EpochCore) -> Result<Option<CoreEpochResult>, CoflowError> + Sync + Send,
    {
        self.on_cores_indexed(rt, move |_, core| f(core))
    }

    fn on_cores_indexed<F>(
        &mut self,
        rt: &Runtime,
        f: F,
    ) -> Result<Vec<Option<CoreEpochResult>>, CoflowError>
    where
        F: Fn(usize, &mut EpochCore) -> Result<Option<CoreEpochResult>, CoflowError> + Sync + Send,
    {
        let cores = self.cores.as_mut().expect("cores exist");
        if cores.len() == 1 || rt.workers() == 1 {
            let mut out = Vec::with_capacity(cores.len());
            for (g, core) in cores.iter_mut().enumerate() {
                out.push(f(g, core)?);
            }
            return Ok(out);
        }
        let slots: Vec<CoreSlot> = cores.iter().map(|_| Mutex::new(None)).collect();
        let f_ref = &f;
        rt.scope(|scope| {
            for (g, (core, slot)) in cores.iter_mut().zip(&slots).enumerate() {
                scope.spawn(move || {
                    *slot.lock().expect("core slot") = Some(f_ref(g, core));
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("core slot")
                    .expect("every core task ran")
            })
            .collect()
    }

    /// Folds per-core epoch results into one report (skipped entirely
    /// when no core had pending work).
    fn fold_report(&mut self, epoch: u32, started: Instant, results: Vec<Option<CoreEpochResult>>) {
        let mut any = false;
        let mut objective = 0.0;
        let mut iterations = 0;
        let mut warm = true;
        let mut cold: Option<usize> = None;
        let mut transfers: std::collections::BTreeMap<(usize, u32), f64> =
            std::collections::BTreeMap::new();
        // Map shard-local coflow indices back to admitted indices.
        let mut local_to_admitted: Vec<std::collections::BTreeMap<usize, usize>> =
            vec![std::collections::BTreeMap::new(); self.partition.num_groups()];
        if self.config.emit_plans {
            for (a, parts) in self.placement.iter().enumerate() {
                for &(g, local_j, _) in parts {
                    local_to_admitted[g].insert(local_j, a);
                }
            }
        }
        for (g, res) in results.into_iter().enumerate() {
            let Some(res) = res else { continue };
            any = true;
            self.resolves += 1;
            objective += res.objective;
            iterations += res.iterations;
            warm &= res.warm;
            if let Some(c) = res.cold_iterations {
                *cold.get_or_insert(0) += c;
            }
            if self.config.emit_plans {
                for (local_j, slot, vol) in res.executed {
                    if let Some(&a) = local_to_admitted[g].get(&local_j) {
                        *transfers.entry((a, slot)).or_insert(0.0) += vol;
                    }
                }
            }
        }
        if !any {
            return;
        }
        self.epochs_run += 1;
        self.reports.push(EpochReport {
            epoch,
            objective,
            iterations,
            warm,
            cold_iterations: cold,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            transfers: transfers
                .into_iter()
                .map(|((a, slot), vol)| (a, slot, vol))
                .collect(),
        });
    }
}
