//! Port-group sharding for big-switch tenants.
//!
//! A tenant fabric with many ports produces one monolithic time-indexed
//! LP per epoch. Sharding splits the switch **by reducer (output) port
//! group**: each shard owns a contiguous group of output ports and runs
//! its own warm resolver over only the coflow flows landing there. The
//! decomposition follows Liang–Modiano's per-port relaxation view
//! (arXiv:1701.02419): output-side constraints partition cleanly, and
//! only the *input*-side egress capacity is shared across shards.
//!
//! Soundness is by construction, not by reconciliation after the fact:
//!
//! * every shard builds the **same** gadgeted-switch graph as the full
//!   fabric — [`coflow_netgraph::topology::bipartite_switch`] followed
//!   by [`with_io_gadget`] assigns node and edge ids purely from
//!   `(num_ports, construction order)`, so a shard-local
//!   [`EdgeId`](coflow_netgraph::EdgeId) *is* the full-fabric edge id;
//! * the only edges used by more than one shard are the input ports'
//!   egress gadget edges (`inner[p] → p`); each shard caps that edge at
//!   its *share* of the port's egress bandwidth, with shares summing to
//!   at most 1 across shards ([`mapper_shares`]);
//! * fabric edges `p → q` and output-side gadget edges are used only by
//!   the shard owning output port `q`, at full capacity.
//!
//! Superimposing the shard schedules therefore never exceeds any
//! full-fabric capacity: the merged schedule re-validates against the
//! unsharded instance with the ordinary
//! [`coflow_core::validate::validate`] referee (the coordinator in
//! `engine.rs` does exactly that).
//!
//! **Cost bound.** Sharding only restricts the feasible region: a shard
//! sees `1/G`-ish input egress (equal split over `G` groups). Any
//! unsharded schedule can be replayed at a `1/G` input rate, slot `t`
//! mapping into slots `(t-1)·G+1 ..= t·G`, so each shard admits a
//! schedule with completions at most `G ×` the unsharded ones —
//! total weighted completion time within a factor `G` (plus slotting
//! slack) of the unsharded cost. The property tests in
//! `tests/shard_props.rs` assert this documented bound end to end.

use coflow_netgraph::gadget::{with_io_gadget, GadgetGraph, IoLimit};
use coflow_netgraph::topology;

/// A partition of output ports into shard groups.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// `groups[g]` lists the output ports owned by shard `g` (ascending).
    pub groups: Vec<Vec<usize>>,
    /// `of_port[q]` is the shard owning output port `q`.
    pub of_port: Vec<usize>,
}

impl Partition {
    /// Splits `ports` output ports into `groups` contiguous,
    /// near-equal-size groups (the first `ports % groups` groups get one
    /// extra port). `groups` is clamped to `1..=ports`.
    pub fn contiguous(ports: usize, groups: usize) -> Partition {
        let groups = groups.clamp(1, ports.max(1));
        let base = ports / groups;
        let extra = ports % groups;
        let mut out: Vec<Vec<usize>> = Vec::with_capacity(groups);
        let mut of_port = vec![0usize; ports];
        let mut q = 0usize;
        for g in 0..groups {
            let size = base + usize::from(g < extra);
            let mut members = Vec::with_capacity(size);
            for _ in 0..size {
                members.push(q);
                of_port[q] = g;
                q += 1;
            }
            out.push(members);
        }
        Partition {
            groups: out,
            of_port,
        }
    }

    /// Number of shards.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }
}

/// How input-port egress bandwidth is divided among shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardSplit {
    /// Every shard gets `1/G` of every input port's egress. Workload
    /// oblivious; the documented `G ×` cost bound applies directly.
    #[default]
    Equal,
    /// Each shard's share of input port `p` is proportional to the
    /// demand its group's flows source at `p` (computed from the coflows
    /// admitted when the shards are instantiated; ports with no demand
    /// yet fall back to the equal split).
    Proportional,
}

/// Per-shard egress shares: `shares[g][p]` is the fraction of input
/// port `p`'s egress bandwidth granted to shard `g`. Shares are
/// strictly positive (the I/O gadget rejects zero-capacity limits) and
/// sum to 1 over shards for every port.
///
/// `flow_demand` yields `(in_port, out_port, demand)` triples of the
/// admitted flows (only the `Proportional` split reads them).
pub fn mapper_shares(
    ports: usize,
    partition: &Partition,
    split: ShardSplit,
    flow_demand: impl Iterator<Item = (usize, usize, f64)>,
) -> Vec<Vec<f64>> {
    let groups = partition.num_groups();
    let equal = 1.0 / groups as f64;
    let mut shares = vec![vec![equal; ports]; groups];
    if split == ShardSplit::Equal || groups == 1 {
        return shares;
    }
    let mut demand = vec![vec![0.0f64; ports]; groups];
    let mut total = vec![0.0f64; ports];
    for (p, q, d) in flow_demand {
        demand[partition.of_port[q]][p] += d;
        total[p] += d;
    }
    // Floor each share so no shard is starved to a zero-capacity gadget
    // edge, then renormalize to keep the per-port sum at 1.
    let floor = equal * 0.05;
    for p in 0..ports {
        if total[p] <= 0.0 {
            continue; // untouched port: equal split (value is unused)
        }
        let mut sum = 0.0;
        for g in 0..groups {
            shares[g][p] = (demand[g][p] / total[p]).max(floor);
            sum += shares[g][p];
        }
        for share in shares.iter_mut() {
            share[p] /= sum;
        }
    }
    shares
}

/// Builds one shard's switch fabric: the same `num_ports × num_ports`
/// bipartite switch + footnote-1 I/O gadget as
/// [`coflow_workloads::trace::Trace::switch_instance`], except input
/// port `p`'s egress limit is `egress_share[p]` instead of 1. Because
/// the construction sequence is identical, node and edge ids coincide
/// with the full fabric's — the property the shard coordinator's
/// schedule merge relies on.
pub fn shard_fabric(num_ports: usize, egress_share: &[f64]) -> GadgetGraph {
    assert_eq!(egress_share.len(), num_ports, "one share per input port");
    let fabric = topology::bipartite_switch(num_ports, 1.0);
    let mut limits = Vec::with_capacity(fabric.graph.node_count());
    // Node ids 0..n are input ports, n..2n output ports.
    for &share in egress_share {
        limits.push(IoLimit {
            egress: share,
            ingress: 1.0,
        });
    }
    for _ in 0..num_ports {
        limits.push(IoLimit::symmetric(1.0));
    }
    with_io_gadget(&fabric.graph, &limits)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_partition_covers_all_ports() {
        let p = Partition::contiguous(10, 3);
        assert_eq!(p.num_groups(), 3);
        assert_eq!(p.groups[0], vec![0, 1, 2, 3]);
        assert_eq!(p.groups[1], vec![4, 5, 6]);
        assert_eq!(p.groups[2], vec![7, 8, 9]);
        for q in 0..10 {
            assert!(p.groups[p.of_port[q]].contains(&q));
        }
    }

    #[test]
    fn partition_clamps_group_count() {
        assert_eq!(Partition::contiguous(2, 5).num_groups(), 2);
        assert_eq!(Partition::contiguous(4, 0).num_groups(), 1);
    }

    #[test]
    fn equal_shares_sum_to_one() {
        let part = Partition::contiguous(4, 2);
        let shares = mapper_shares(4, &part, ShardSplit::Equal, std::iter::empty());
        for p in 0..4 {
            let sum: f64 = shares.iter().map(|row| row[p]).sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(shares.iter().all(|row| row[p] > 0.0));
        }
    }

    #[test]
    fn proportional_shares_follow_demand() {
        let part = Partition::contiguous(4, 2);
        // All of port 0's demand goes to out-port 3 (shard 1).
        let flows = vec![(0usize, 3usize, 8.0f64), (1, 0, 2.0), (1, 3, 2.0)];
        let shares = mapper_shares(4, &part, ShardSplit::Proportional, flows.into_iter());
        assert!(shares[1][0] > shares[0][0], "shard 1 dominates port 0");
        for p in 0..4 {
            let sum: f64 = shares.iter().map(|row| row[p]).sum();
            assert!((sum - 1.0).abs() < 1e-9, "port {p} shares sum to {sum}");
            assert!(shares.iter().all(|row| row[p] > 0.0));
        }
    }

    #[test]
    fn shard_fabric_ids_match_the_full_fabric() {
        let full = shard_fabric(4, &[1.0; 4]);
        let half = shard_fabric(4, &[0.5; 4]);
        assert_eq!(full.graph.node_count(), half.graph.node_count());
        assert_eq!(full.graph.edge_count(), half.graph.edge_count());
        assert_eq!(full.inner, half.inner);
        let mut scaled = 0;
        for er in full.graph.edges() {
            let e = er.id;
            assert_eq!(full.graph.src(e), half.graph.src(e));
            assert_eq!(full.graph.dst(e), half.graph.dst(e));
            let (cf, ch) = (full.graph.capacity(e), half.graph.capacity(e));
            if (cf - ch).abs() > 1e-12 {
                assert!((ch - 0.5).abs() < 1e-12, "scaled edge is an egress limit");
                scaled += 1;
            }
        }
        // Exactly one egress gadget edge per input port was scaled.
        assert_eq!(scaled, 4);
    }
}
