//! The LP-free ordering fallback tier.
//!
//! When a tenant asks for `tier=ordering` — or an LP tenant with
//! `fallback=ordering` degrades (engine error, or the `max-resolves`
//! overload knob trips) — the daemon stops running the warm LP engine
//! for that tenant and instead schedules its coflows with Sincronia's
//! bottleneck-select-scale-iterate ordering
//! ([`coflow_baselines::ordering::sincronia_order`]) rate-filled by the
//! order-preserving greedy allocator. The tier is deterministic, needs
//! no solver state, and costs `O(n²·links)` instead of an LP per epoch,
//! so an overloaded service keeps producing valid schedules instead of
//! quarantining the tenant.
//!
//! Sincronia (not DCoflow) is the fallback policy on purpose: it
//! minimizes the same weighted completion-time objective as the LP
//! tier, which keeps the `fallback-objective=` field on `DONE` lines
//! directly comparable to `objective=`. Deadlines, when present, are
//! accounted (missed/total) but do not drive admission here — the
//! deadline-*enforcing* DCoflow variants are exposed as batch solvers
//! in the `coflow-baselines` registry.
//!
//! The schedule is built offline at `finish` time over every arrival
//! the tenant sent: the ordering tier is a batch policy, so unlike the
//! epoch engine it has no streaming state to keep warm — which is
//! exactly why it is a safe landing spot for a degraded tenant.

use crate::engine::PortCoflow;
use crate::shard::shard_fabric;
use coflow_baselines::ordering::sincronia_order;
use coflow_core::greedy::greedy_schedule;
use coflow_core::loads::link_loads;
use coflow_core::model::{Coflow, CoflowInstance, Flow};
use coflow_core::routing::Routing;
use coflow_core::validate::{validate, Tolerance};
use coflow_core::CoflowError;

/// What the ordering tier produced for one tenant.
#[derive(Clone, Debug)]
pub struct FallbackOutcome {
    /// `Σ w_j C_j` of the validated greedy schedule.
    pub objective: f64,
    /// Per-coflow completion slots, in arrival order.
    pub completions: Vec<u32>,
    /// Sincronia priority order (indices into the arrival list).
    pub order: Vec<usize>,
    /// Arrivals that carried a deadline.
    pub deadline_total: usize,
    /// Of those, how many the greedy schedule finished late.
    pub deadline_missed: usize,
    /// Peak edge utilization of the validated schedule.
    pub peak_utilization: f64,
}

/// Schedules `coflows` on the full `num_ports` switch fabric with the
/// Sincronia ordering + greedy rate filling, and validates the result
/// with the ordinary referee. Returns a zeroed outcome for an empty
/// arrival list.
///
/// # Errors
///
/// [`CoflowError::BadInstance`] if a coflow is malformed (callers
/// pre-validate with [`crate::engine::validate_port_coflow`], so this
/// indicates a daemon bug), and [`CoflowError::InvalidSchedule`] if the
/// greedy schedule fails validation (an engine bug by construction).
pub fn ordering_outcome(
    num_ports: usize,
    coflows: &[PortCoflow],
) -> Result<FallbackOutcome, CoflowError> {
    if coflows.is_empty() {
        return Ok(FallbackOutcome {
            objective: 0.0,
            completions: Vec::new(),
            order: Vec::new(),
            deadline_total: 0,
            deadline_missed: 0,
            peak_utilization: 0.0,
        });
    }
    // Same fabric construction as the engine coordinator's merge step,
    // so completions are measured in identical units.
    let full = shard_fabric(num_ports, &vec![1.0; num_ports]);
    let n = num_ports;
    let node_coflows: Vec<Coflow> = coflows
        .iter()
        .map(|pc| {
            Coflow::weighted(
                pc.weight,
                pc.flows
                    .iter()
                    .map(|&(m, r, d)| {
                        Flow::released(full.inner[m], full.inner[n + r], d, pc.release)
                    })
                    .collect(),
            )
        })
        .collect();
    let inst = CoflowInstance::new(full.graph, node_coflows)?;
    let weights: Vec<f64> = inst.coflows.iter().map(|c| c.weight).collect();
    let order = sincronia_order(&link_loads(&inst), &weights);
    let schedule = greedy_schedule(&inst, &Routing::FreePath, &order)?;
    let report = validate(&inst, &Routing::FreePath, &schedule, Tolerance::default())?;

    let deadline_total = coflows.iter().filter(|pc| pc.deadline.is_some()).count();
    let deadline_missed = coflows
        .iter()
        .zip(&report.completions.per_coflow)
        .filter(|(pc, &c)| pc.deadline.is_some_and(|d| c > d))
        .count();
    Ok(FallbackOutcome {
        objective: report.completions.weighted_total,
        completions: report.completions.per_coflow.clone(),
        order,
        deadline_total,
        deadline_missed,
        peak_utilization: report.peak_utilization,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn pc(id: &str, release: u32, flows: Vec<(usize, usize, f64)>) -> PortCoflow {
        PortCoflow {
            id: id.to_string(),
            weight: 1.0,
            release,
            deadline: None,
            flows,
        }
    }

    #[test]
    fn empty_tenant_is_a_zero_outcome() {
        let out = ordering_outcome(4, &[]).expect("empty outcome");
        assert_eq!(out.objective, 0.0);
        assert!(out.completions.is_empty() && out.order.is_empty());
    }

    #[test]
    fn schedules_validate_and_count_deadline_misses() {
        // Two coflows contending on output port 1: the short one should
        // be prioritized by Sincronia (smaller bottleneck, equal weight).
        let mut big = pc("big", 0, vec![(0, 1, 3.0)]);
        let mut small = pc("small", 0, vec![(1, 1, 1.0)]);
        big.deadline = Some(10);
        small.deadline = Some(1);
        let out = ordering_outcome(2, &[big, small]).expect("ordering outcome");
        assert_eq!(out.completions.len(), 2);
        assert!(out.peak_utilization <= 1.0 + 1e-6);
        assert_eq!(out.deadline_total, 2);
        // small finishes in slot 1 (it goes first), big by slot 4.
        assert_eq!(out.completions, vec![4, 1]);
        assert_eq!(out.deadline_missed, 0);
        assert!((out.objective - 5.0).abs() < 1e-9);
    }

    #[test]
    fn release_slots_are_respected() {
        let late = pc("late", 2, vec![(0, 0, 1.0)]);
        let out = ordering_outcome(2, &[late]).expect("ordering outcome");
        // Released at slot 2 ⇒ earliest completion is slot 3.
        assert_eq!(out.completions, vec![3]);
    }
}
