//! `coflow serve` — a long-running scheduler service with sharded
//! admission and a multi-tenant runtime.
//!
//! This crate turns the batch pipeline of `coflow-core` into a daemon:
//! coflow arrivals stream in over a line protocol (stdin or TCP), are
//! batched into epochs by the frameworks of `coflow_core::online`
//! (arrival events) and `coflow_core::flowtime` (doubling boundaries),
//! and are re-solved by one warm [`TimeIndexedResolver`] per tenant
//! fabric that stays alive across epochs. Independent tenants solve
//! concurrently on a shared [`coflow_runtime::Runtime`], and big
//! switches can shard by output-port group ([`shard`]) with a
//! coordinator that merges and re-validates the shard schedules.
//!
//! Module map:
//!
//! * [`engine`] — the per-tenant streaming epoch engine
//!   ([`engine::TenantEngine`]) and its shard cores;
//! * [`shard`] — port-group partitions, egress-share splits, and the
//!   shared-id shard fabric construction;
//! * [`metrics`] — epoch latency percentiles and warm/cold counters;
//! * [`protocol`] — the line protocol spoken on stdin and TCP;
//! * [`fallback`] — the LP-free Sincronia ordering tier an overloaded
//!   or failing tenant degrades onto (instead of being quarantined);
//! * [`ladder`] — the degrade ladder (LP → ordering → shed) with
//!   exponential-backoff retry probes;
//! * [`journal`] — the per-tenant write-ahead journal and its reader
//!   (crash recovery via `coflow serve --journal DIR --recover`);
//! * [`fault`] — the deterministic fault-injection plan
//!   (`--fault-plan`) the chaos tests drive the daemon with;
//! * [`daemon`] — the serve loop (session handling, tenant map);
//! * [`feed`] — the client that replays a trace file against a daemon.
//!
//! [`TimeIndexedResolver`]: coflow_core::resolver::TimeIndexedResolver

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used)]

pub mod daemon;
pub mod engine;
pub mod fallback;
pub mod fault;
pub mod feed;
pub mod journal;
pub mod ladder;
pub mod metrics;
pub mod protocol;
pub mod shard;
