//! The degrade ladder: solve watchdogs and engine faults demote a
//! tenant one rung at a time (LP → ordering → shed) instead of
//! quarantining it, and exponential-backoff retry probes promote it
//! back up once the fault clears.
//!
//! The ladder is pure bookkeeping — it never touches the engine. The
//! daemon consults it on every validated arrival:
//!
//! 1. A demotion (engine error, watchdog breach) moves the rung one
//!    step down and schedules a probe `2^streak` arrivals out (capped
//!    at 64).
//! 2. When the countdown hits zero the daemon attempts a probe: from
//!    the shed rung that is trivially "accept arrivals again" (promote
//!    to ordering); from the ordering rung it re-admits the backlog to
//!    the LP engine. Success resets the failure streak and moves one
//!    rung up; failure doubles the backoff.
//! 3. Four consecutive failures from the ordering rung drop the tenant
//!    to admission shed — arrivals are refused with `ERR` until a
//!    probe succeeds.
//!
//! `max-resolves` overload is different in kind: the tenant *chose* a
//! resolve budget, so exceeding it lowers the ladder's *home* rung to
//! ordering ([`Ladder::demote_home`]) — no probe will ever retry the
//! LP tier for that tenant.

use crate::protocol::Tier;

/// Consecutive failures on the ordering rung before shedding
/// admissions.
const SHED_AFTER: u32 = 4;

/// Cap on the probe backoff exponent (`2^6` = 64 arrivals).
const MAX_BACKOFF_SHIFT: u32 = 6;

/// Per-tenant degrade-ladder state.
#[derive(Clone, Debug)]
pub struct Ladder {
    /// The rung the tenant asked for in `HELLO` — probes never promote
    /// above it.
    home: Tier,
    /// The rung the tenant currently runs on.
    rung: Tier,
    /// Consecutive demotions + failed probes since the last success.
    fail_streak: u32,
    /// Arrivals until the next retry probe (0 = none scheduled).
    probe_in: u32,
    /// Index of the first arrival not yet admitted to the LP engine —
    /// the backlog a successful probe replays.
    pub engine_next: usize,
}

impl Default for Ladder {
    fn default() -> Self {
        Ladder::new(Tier::Lp)
    }
}

impl Ladder {
    /// A healthy ladder sitting on its home rung.
    pub fn new(home: Tier) -> Self {
        Ladder {
            home,
            rung: home,
            fail_streak: 0,
            probe_in: 0,
            engine_next: 0,
        }
    }

    /// Rebuilds ladder state from a journal `STATE` line.
    pub fn restore(
        home: Tier,
        rung: Tier,
        fail_streak: u32,
        probe_in: u32,
        engine_next: usize,
    ) -> Self {
        Ladder {
            home,
            rung,
            fail_streak,
            probe_in,
            engine_next,
        }
    }

    /// The rung the tenant currently runs on.
    pub fn rung(&self) -> Tier {
        self.rung
    }

    /// The tenant's home rung (requested in `HELLO`).
    pub fn home(&self) -> Tier {
        self.home
    }

    /// Consecutive failures since the last successful solve or probe.
    pub fn fail_streak(&self) -> u32 {
        self.fail_streak
    }

    /// Arrivals until the next retry probe (0 = none scheduled).
    pub fn probe_in(&self) -> u32 {
        self.probe_in
    }

    /// Whether the tenant runs below its home rung.
    pub fn degraded(&self) -> bool {
        self.rung > self.home
    }

    fn backoff(&self) -> u32 {
        1 << self.fail_streak.min(MAX_BACKOFF_SHIFT)
    }

    /// A fault (engine error, watchdog breach) demotes one rung and
    /// schedules a backoff probe. Returns the new rung.
    pub fn demote(&mut self) -> Tier {
        self.rung = match self.rung {
            Tier::Lp => Tier::Ordering,
            Tier::Ordering | Tier::Shed => Tier::Shed,
        };
        self.fail_streak += 1;
        self.probe_in = self.backoff();
        self.rung
    }

    /// A `max-resolves` overload lowers the *home* rung to ordering:
    /// the LP tier is permanently off the table, so pending probes that
    /// would retry it are cancelled.
    pub fn demote_home(&mut self) {
        self.home = Tier::Ordering;
        if self.rung == Tier::Lp {
            self.rung = Tier::Ordering;
        }
        if !self.degraded() {
            self.fail_streak = 0;
            self.probe_in = 0;
        }
    }

    /// Ticks the probe countdown on a validated arrival. Returns `true`
    /// when this arrival should carry a retry probe.
    pub fn tick_arrival(&mut self) -> bool {
        if !self.degraded() || self.probe_in == 0 {
            return false;
        }
        self.probe_in -= 1;
        self.probe_in == 0
    }

    /// A probe succeeded: move one rung up (toward home), clear the
    /// streak, and — if still degraded — probe again on the very next
    /// arrival. Returns the new rung.
    pub fn probe_succeeded(&mut self) -> Tier {
        self.rung = match self.rung {
            Tier::Shed => Tier::Ordering,
            Tier::Ordering | Tier::Lp => Tier::Lp,
        };
        if self.rung < self.home {
            self.rung = self.home;
        }
        self.fail_streak = 0;
        self.probe_in = if self.degraded() { 1 } else { 0 };
        self.rung
    }

    /// A probe failed: double the backoff; four consecutive failures
    /// from the ordering rung drop to admission shed. Returns the
    /// (possibly lowered) rung.
    pub fn probe_failed(&mut self) -> Tier {
        self.fail_streak += 1;
        if self.rung == Tier::Ordering && self.fail_streak >= SHED_AFTER {
            self.rung = Tier::Shed;
        }
        self.probe_in = self.backoff();
        self.rung
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn demote_walks_down_one_rung_at_a_time() {
        let mut l = Ladder::new(Tier::Lp);
        assert!(!l.degraded());
        assert_eq!(l.demote(), Tier::Ordering);
        assert!(l.degraded());
        assert_eq!(l.demote(), Tier::Shed);
        assert_eq!(l.demote(), Tier::Shed); // bottom rung is absorbing
    }

    #[test]
    fn probe_fires_after_exponential_backoff() {
        let mut l = Ladder::new(Tier::Lp);
        l.demote(); // streak 1 → probe in 2 arrivals
        assert_eq!(l.probe_in(), 2);
        assert!(!l.tick_arrival());
        assert!(l.tick_arrival());
        l.probe_failed(); // streak 2 → probe in 4
        assert_eq!(l.probe_in(), 4);
        for _ in 0..3 {
            assert!(!l.tick_arrival());
        }
        assert!(l.tick_arrival());
    }

    #[test]
    fn success_climbs_back_to_home_and_clears_the_streak() {
        let mut l = Ladder::new(Tier::Lp);
        l.demote();
        l.demote(); // shed
        assert_eq!(l.probe_succeeded(), Tier::Ordering);
        assert_eq!(l.fail_streak(), 0);
        assert_eq!(l.probe_in(), 1); // still degraded: probe next arrival
        assert!(l.tick_arrival());
        assert_eq!(l.probe_succeeded(), Tier::Lp);
        assert!(!l.degraded());
        assert_eq!(l.probe_in(), 0);
    }

    #[test]
    fn repeated_probe_failures_shed_admissions() {
        let mut l = Ladder::new(Tier::Lp);
        l.demote(); // ordering, streak 1
        l.probe_failed(); // streak 2
        l.probe_failed(); // streak 3
        assert_eq!(l.rung(), Tier::Ordering);
        assert_eq!(l.probe_failed(), Tier::Shed); // streak 4
    }

    #[test]
    fn demote_home_disables_lp_probes() {
        let mut l = Ladder::new(Tier::Lp);
        l.demote_home();
        assert_eq!(l.rung(), Tier::Ordering);
        assert_eq!(l.home(), Tier::Ordering);
        assert!(!l.degraded());
        assert!(!l.tick_arrival());
        // A later fault still sheds, and a probe only climbs back to
        // the new home.
        l.demote();
        assert_eq!(l.rung(), Tier::Shed);
        assert_eq!(l.probe_succeeded(), Tier::Ordering);
        assert!(!l.degraded());
    }

    #[test]
    fn ticks_on_a_healthy_ladder_are_free() {
        let mut l = Ladder::new(Tier::Ordering);
        for _ in 0..100 {
            assert!(!l.tick_arrival());
        }
        assert_eq!(l.fail_streak(), 0);
    }
}
