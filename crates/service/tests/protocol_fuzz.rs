//! Protocol robustness: arbitrary byte streams never panic the
//! session. Malformed lines become `ERR` responses, the session keeps
//! serving, and a valid tail still completes with `DONE`.
//!
//! The generator is a seeded xorshift64 — every failing case replays
//! from its seed. Three byte dialects are mixed: raw bytes (including
//! invalid UTF-8), printable ASCII soup, and near-miss protocol lines
//! built from real keywords with fuzzed fields.

use coflow_runtime::Runtime;
use coflow_service::daemon::session;
use coflow_service::fault::FaultPlan;
use coflow_service::journal::read_journal;
use coflow_service::protocol::parse_request;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// One fuzzed line (without the newline), in one of three dialects.
    fn line(&mut self) -> Vec<u8> {
        let len = 1 + self.below(60) as usize;
        match self.below(3) {
            0 => (0..len)
                .map(|_| {
                    // Raw bytes, newline-free so it stays one line.
                    loop {
                        let b = (self.next() & 0xFF) as u8;
                        if b != b'\n' && b != b'\r' {
                            return b;
                        }
                    }
                })
                .collect(),
            1 => (0..len).map(|_| b' ' + self.below(95) as u8).collect(),
            _ => {
                // Near-miss protocol lines: real keywords, fuzzed guts.
                let heads = [
                    "HELLO",
                    "HELLO t",
                    "HELLO t 4 base=",
                    "BYE extra",
                    "c1 0 1",
                    "16 20 7",
                    "c1 0 1 0 1 2:",
                    "HELLO t 4 max-solve-ms=",
                    "c1 -5 1 0 1 2:125",
                ];
                let mut s = heads[self.below(heads.len() as u64) as usize].to_string();
                for _ in 0..self.below(4) {
                    s.push(' ');
                    s.push_str(&self.below(1_000_000).to_string());
                }
                s.into_bytes()
            }
        }
    }
}

#[test]
fn arbitrary_byte_lines_never_panic_the_session() {
    let rt = Runtime::with_workers(1);
    for seed in 1..=6u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
        let mut input: Vec<u8> = b"HELLO t 4 base=0\n".to_vec();
        for _ in 0..120 {
            input.extend_from_slice(&rng.line());
            input.push(b'\n');
        }
        // A valid tail must still work after the storm.
        input.extend_from_slice(b"c-ok 0 1 0 1 2:125\nBYE\n");
        let mut out = Vec::new();
        let summary = session(&rt, &input[..], &mut out).expect("session survives arbitrary bytes");
        let out = String::from_utf8(out).expect("responses stay valid utf8");
        assert!(
            summary.errors > 0,
            "seed {seed}: fuzz lines should ERR\n{out}"
        );
        assert!(
            out.contains("DONE tenant=t"),
            "seed {seed}: session must finish\n{out}"
        );
        // Every fuzz line got exactly one response line of some kind;
        // none of them terminated the session early.
        assert!(out.ends_with('\n'), "seed {seed}");
    }
}

#[test]
fn parse_request_is_total_over_fuzzed_strings() {
    let mut rng = Rng(0xDEAD_BEEF);
    for _ in 0..2000 {
        let bytes = rng.line();
        let line = String::from_utf8_lossy(&bytes).into_owned();
        // Ok or Err both fine; panics are the only failure.
        let _ = parse_request(&line, None);
        let _ = parse_request(&line, Some(16));
        let _ = FaultPlan::parse(&line);
    }
}

#[test]
fn journal_reader_is_total_over_fuzzed_files() {
    let dir = std::env::temp_dir().join(format!("coflow-fuzz-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut rng = Rng(0xBADC_0FFE);
    for case in 0..40 {
        let mut body: Vec<u8> = Vec::new();
        if case % 2 == 0 {
            // Half the cases start plausibly, so the reader gets past
            // the HELLO header before hitting garbage.
            body.extend_from_slice(b"HELLO t 4 base=0\n");
        }
        for _ in 0..30 {
            body.extend_from_slice(&rng.line());
            body.push(b'\n');
        }
        let path = dir.join(format!("fuzz-{case}.journal"));
        std::fs::write(&path, &body).expect("write fuzz journal");
        // Ok (events all dropped as uncommitted) or Err; never a panic.
        let _ = read_journal(&path);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
