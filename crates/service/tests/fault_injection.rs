//! Deterministic fault injection driving the degrade ladder end to
//! end: injected engine faults and solve-budget breaches demote a
//! tenant one rung at a time, backoff probes promote it back, and
//! repeated probe failures shed admissions — all observable in the
//! session's `INFO`/`ERR`/`DONE` lines.

use coflow_runtime::Runtime;
use coflow_service::daemon::{session_with, SessionOptions};
use coflow_service::fault::FaultPlan;

fn run(input: &str, opts: SessionOptions) -> (coflow_service::daemon::SessionSummary, String) {
    let rt = Runtime::with_workers(2);
    let mut out = Vec::new();
    let summary = session_with(&rt, input.as_bytes(), &mut out, opts).expect("in-memory session");
    (summary, String::from_utf8(out).expect("utf8 responses"))
}

fn staggered_input(n: usize) -> String {
    let mut input = String::from("HELLO t 4 base=0\n");
    for k in 0..n {
        let (m, r) = (k % 2, 2 + (k % 2));
        input.push_str(&format!("c{k} {} 1 {m} 1 {r}:125\n", k * 1000));
    }
    input.push_str("BYE\n");
    input
}

#[test]
fn injected_slow_epoch_trips_the_watchdog_then_probe_promotes() {
    // A huge real budget that only the injected slow epoch 0 breaches:
    // the tenant demotes once, the probe two arrivals later replays the
    // backlog, and the stream finishes back on the LP tier.
    let opts = SessionOptions {
        max_solve_ms: Some(1e9),
        fault: FaultPlan::parse("slow=0").expect("valid plan"),
        ..SessionOptions::default()
    };
    let (summary, out) = run(&staggered_input(6), opts);
    assert_eq!(summary.errors, 0, "{out}");
    assert_eq!(summary.admitted, 6, "{out}");
    assert!(
        out.contains("degraded=ordering reason=solve-budget=1000000000ms exceeded"),
        "{out}"
    );
    assert!(out.contains("injected-slow"), "{out}");
    assert!(
        out.contains("INFO tenant=t promoted=lp reason=probe"),
        "{out}"
    );
    let done = out
        .lines()
        .find(|l| l.starts_with("DONE tenant=t"))
        .expect("DONE line");
    assert!(done.contains(" tier=lp"), "{done}");
    assert!(
        done.contains("degrades=1 probes=1 promotions=1 shed=0"),
        "{done}"
    );
}

#[test]
fn no_budget_means_no_watchdog() {
    // The same injected slow epoch is inert without a configured
    // budget: `slow` marks reports as breaches, it does not create a
    // budget by itself.
    let opts = SessionOptions {
        fault: FaultPlan::parse("slow=0;seed=5").expect("valid plan"),
        ..SessionOptions::default()
    };
    let (summary, out) = run(&staggered_input(4), opts);
    assert_eq!(summary.errors, 0, "{out}");
    assert!(!out.contains("degraded"), "{out}");
    assert!(out.contains("DONE tenant=t"), "{out}");
}

#[test]
fn persistent_engine_faults_walk_the_ladder_down_to_shed() {
    // Every engine admission attempt fails: the first demotes to
    // ordering, three failed probes (at arrivals 3, 7, 15 — backoff
    // 2, 4, 8) walk the streak to four and shed admissions, and the
    // shed-rung probe 16 arrivals later trivially promotes back to
    // ordering.
    let every: Vec<String> = (0..64).map(|i| i.to_string()).collect();
    let opts = SessionOptions {
        fault: FaultPlan::parse(&format!("engine-error={}", every.join(","))).expect("valid plan"),
        ..SessionOptions::default()
    };
    let (summary, out) = run(&staggered_input(40), opts);
    assert!(
        out.contains("INFO tenant=t degraded=ordering reason=engine-error"),
        "{out}"
    );
    assert!(out.contains("INFO tenant=t probe=failed"), "{out}");
    assert!(
        out.contains("INFO tenant=t degraded=shed reason=probe-failed"),
        "{out}"
    );
    assert!(out.contains("ERR tenant t is shedding admissions"), "{out}");
    assert!(
        out.contains("INFO tenant=t promoted=ordering reason=probe"),
        "{out}"
    );
    // Shed refusals are counted as errors but the session survives to a
    // DONE line scheduling everything that was admitted.
    assert!(summary.errors > 0, "{out}");
    let done = out
        .lines()
        .find(|l| l.starts_with("DONE tenant=t"))
        .expect("DONE line");
    assert!(
        done.contains(&format!("admitted={}", summary.admitted)),
        "{done}"
    );
    assert!(done.contains("shed="), "{done}");
    assert_eq!(
        summary.admitted + shed_count(done),
        40,
        "every arrival is either admitted or shed: {done}"
    );
}

fn shed_count(done: &str) -> usize {
    done.split_whitespace()
        .find_map(|tok| tok.strip_prefix("shed="))
        .and_then(|v| v.parse().ok())
        .expect("DONE line carries shed=")
}

#[test]
fn injected_garbage_lines_yield_errs_and_nothing_else() {
    let opts = SessionOptions {
        fault: FaultPlan::parse("seed=3;garbage=2x3").expect("valid plan"),
        ..SessionOptions::default()
    };
    let (summary, out) = run(&staggered_input(2), opts);
    // Three garbage lines injected before input line 2, each an ERR;
    // both real coflows still admitted and finished.
    assert_eq!(summary.errors, 3, "{out}");
    assert_eq!(summary.admitted, 2, "{out}");
    assert!(out.contains("DONE tenant=t admitted=2"), "{out}");
}

#[test]
fn disconnect_fault_aborts_without_done() {
    let opts = SessionOptions {
        fault: FaultPlan::parse("disconnect=3").expect("valid plan"),
        ..SessionOptions::default()
    };
    let (summary, out) = run(&staggered_input(6), opts);
    // HELLO + two coflows processed, then the simulated crash: no BYE
    // handling, no DONE lines.
    assert_eq!(summary.admitted, 2, "{out}");
    assert!(!out.contains("DONE"), "{out}");
}
