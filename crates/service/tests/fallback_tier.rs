//! The LP-free ordering tier end to end: the same request stream must
//! produce identical deterministic output whether it arrives on stdin
//! or over TCP, and the fb2010 deadline-miss accounting must be
//! bit-stable across runs and worker counts (the ordering tier has no
//! LP, no RNG, and no wall-clock dependence, so any divergence is a
//! determinism bug).

use coflow_runtime::Runtime;
use coflow_service::daemon::session;
use coflow_service::feed::coflow_line;
use coflow_workloads::trace::{Trace, FB2010_SAMPLE};
use std::io::{BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

/// Runs one in-memory (stdin-style) session.
fn run_stdin(rt: &Runtime, input: &str) -> String {
    let mut out = Vec::new();
    session(rt, input.as_bytes(), &mut out).expect("in-memory session");
    String::from_utf8(out).expect("utf8 responses")
}

/// Runs the same session behind a real TCP socket: a server thread
/// accepts one connection and speaks the protocol over it.
fn run_tcp(rt: &Runtime, input: &str) -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    std::thread::scope(|scope| {
        let server = scope.spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let reader = BufReader::new(&stream);
            let mut writer = &stream;
            session(rt, reader, &mut writer).expect("tcp session");
        });
        let mut client = TcpStream::connect(addr).expect("connect");
        client.write_all(input.as_bytes()).expect("send requests");
        client
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut response = String::new();
        client.read_to_string(&mut response).expect("drain");
        server.join().expect("server thread");
        response
    })
}

/// Strips the wall-clock-dependent fields (epoch timings, latency
/// percentiles, throughput) so everything else can be compared verbatim
/// across transports and runs.
fn deterministic_lines(output: &str) -> Vec<String> {
    const TIMING: [&str; 4] = ["coflows-per-sec=", "wall-ms=", "p50-ms=", "p99-ms="];
    output
        .lines()
        .map(|line| {
            line.split_whitespace()
                .filter(|tok| !TIMING.iter().any(|p| tok.starts_with(p)))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

/// The bundled fb2010 trace as an ordering-tier request stream.
fn fb2010_ordering_input(deadline_slack: &str) -> String {
    let trace = Trace::parse(FB2010_SAMPLE).expect("bundled trace parses");
    let mut input = format!(
        "HELLO fb {} base=1 tier=ordering deadline-slack={deadline_slack}\n",
        trace.num_ports
    );
    for c in &trace.coflows {
        input.push_str(&coflow_line(c));
        input.push('\n');
    }
    input.push_str("BYE\n");
    input
}

#[test]
fn ordering_tier_is_identical_across_stdin_and_tcp() {
    let input = "HELLO t 4 base=0 tier=ordering deadline-slack=2\n\
                 c1 0 2 0 1 1 2:250\n\
                 c2 500 1 1 1 3:125\n\
                 c3 1500 1 0 1 2:125\n\
                 BYE\n";
    let rt = Runtime::with_workers(2);
    let via_stdin = run_stdin(&rt, input);
    let via_tcp = run_tcp(&rt, input);
    assert_eq!(
        deterministic_lines(&via_stdin),
        deterministic_lines(&via_tcp),
        "ordering tier diverged across transports:\nstdin:\n{via_stdin}\ntcp:\n{via_tcp}"
    );
    assert!(via_stdin.contains("tier=ordering"), "{via_stdin}");
    assert!(via_stdin.contains("deadline-missed="), "{via_stdin}");
}

#[test]
fn lp_fallback_costs_are_identical_across_stdin_and_tcp() {
    // An LP tenant with the fallback configured reports both the warm
    // LP objective and the side-computed ordering cost; both must be
    // transport independent.
    let input = "HELLO t 4 base=0 fallback=ordering\n\
                 c1 0 1 0 1 2:125\n\
                 c2 1000 1 1 1 3:250\n\
                 BYE\n";
    let rt = Runtime::with_workers(2);
    let via_stdin = run_stdin(&rt, input);
    let via_tcp = run_tcp(&rt, input);
    assert_eq!(
        deterministic_lines(&via_stdin),
        deterministic_lines(&via_tcp),
        "fallback accounting diverged:\nstdin:\n{via_stdin}\ntcp:\n{via_tcp}"
    );
    let done = via_stdin
        .lines()
        .find(|l| l.starts_with("DONE"))
        .expect("DONE line");
    assert!(done.contains(" tier=lp"), "{done}");
    assert!(done.contains(" fallback-objective="), "{done}");
}

#[test]
fn fb2010_deadline_miss_rate_is_golden() {
    // Golden accounting for the bundled fixture at slack 1.0 (each
    // deadline is exactly the coflow's own isolation bottleneck): the
    // ordering tier's DONE line must carry exactly this miss ratio on
    // every run and any worker count. Contention pushes two of the
    // twenty coflows past their solo bound, which makes the number
    // informative rather than trivially 0/20 or 20/20 — at slack 1.5
    // the same schedule meets every deadline.
    let input = fb2010_ordering_input("1.0");
    let mut done_lines = Vec::new();
    for workers in [1, 4] {
        let rt = Runtime::with_workers(workers);
        for _run in 0..2 {
            let out = run_stdin(&rt, &input);
            let done = out
                .lines()
                .find(|l| l.starts_with("DONE tenant=fb"))
                .unwrap_or_else(|| panic!("no DONE line in:\n{out}"))
                .to_string();
            done_lines.push(done);
        }
    }
    let missed = done_lines[0]
        .split_whitespace()
        .find(|tok| tok.starts_with("deadline-missed="))
        .expect("deadline accounting on DONE");
    assert_eq!(missed, "deadline-missed=2/20", "{}", done_lines[0]);
    for line in &done_lines[1..] {
        assert_eq!(
            deterministic_lines(&done_lines[0]),
            deterministic_lines(line),
            "fb2010 DONE line drifted across runs/workers"
        );
    }
}
