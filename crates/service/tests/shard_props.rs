//! Property tests for port-group sharding.
//!
//! For random small switch workloads, scheduling with 2 shards must
//! (a) produce a merged schedule that passes the full-fabric validator
//! — `TenantEngine::finish` runs it, so a clean return IS the
//! assertion — and (b) cost at most the documented slack bound over
//! the unsharded engine: each shard sees a `1/G` slice of every input
//! port's egress, so any unsharded schedule replays at `1/G` rate,
//! giving `obj_sharded ≤ G × obj_unsharded` for the optimum. The
//! engines are LP-guided heuristics, not optima, so the test grants a
//! multiplicative 25% heuristic margin plus an additive `2·G` slots of
//! slotting slack per coflow (`shard.rs` documents the bound).

use coflow_runtime::Runtime;
use coflow_service::engine::{EngineConfig, PortCoflow, TenantEngine};
use proptest::prelude::*;

/// A generated coflow: a release slot plus `(mapper, reducer, demand)`
/// flows.
type GenCoflow = (u32, Vec<(usize, usize, f64)>);

/// Strategy: 4–6 ports and 2–5 coflows of 1–4 random flows each, with
/// releases in 0..=3 — big enough to shard, small enough that each
/// case's two engine runs stay in the milliseconds.
fn workload() -> impl Strategy<Value = (usize, Vec<GenCoflow>)> {
    (4usize..=6).prop_flat_map(|ports| {
        (
            Just(ports),
            proptest::collection::vec(
                (
                    0u32..=3,
                    proptest::collection::vec((0usize..ports, 0usize..ports, 0.2f64..1.5), 1..=4),
                ),
                2..=5,
            ),
        )
    })
}

fn run(ports: usize, coflows: &[GenCoflow], shards: usize) -> (f64, f64) {
    let rt = Runtime::with_workers(2);
    let mut engine = TenantEngine::new(
        ports,
        EngineConfig {
            shards,
            ..EngineConfig::default()
        },
    );
    let mut ordered: Vec<(usize, &GenCoflow)> = coflows.iter().enumerate().collect();
    ordered.sort_by_key(|(_, (release, _))| *release);
    for (k, (release, flows)) in ordered {
        engine
            .admit(
                &rt,
                PortCoflow {
                    id: format!("c{k}"),
                    weight: 1.0,
                    release: *release,
                    deadline: None,
                    flows: flows.clone(),
                },
            )
            .expect("generated coflows admit cleanly");
    }
    // finish() merges the shard schedules and re-validates them against
    // the full unsharded fabric — an invalid merge panics here.
    let outcome = engine.finish(&rt).expect("merged schedule validates");
    (outcome.objective, outcome.peak_utilization)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sharded_schedule_validates_within_the_cost_bound(
        (ports, coflows) in workload()
    ) {
        let shards = 2usize;
        let (unsharded, _) = run(ports, &coflows, 1);
        let (sharded, peak) = run(ports, &coflows, shards);
        prop_assert!(peak <= 1.0 + 1e-6, "merged peak utilization {peak}");
        let g = shards as f64;
        let bound = g * unsharded * 1.25 + 2.0 * g * coflows.len() as f64;
        prop_assert!(
            sharded <= bound,
            "sharded {sharded} exceeds documented bound {bound} \
             (unsharded {unsharded}, G={shards}, n={})",
            coflows.len()
        );
    }
}
