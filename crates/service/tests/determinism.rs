//! Service determinism: streaming the bundled fb2010 trace through the
//! daemon's epoch engine reproduces the batch pipeline's per-epoch
//! objectives.
//!
//! The event-policy engine replays `coflow_core::online`'s exact
//! transformation sequence; with a single shard, sorted arrivals, and
//! the batch run's initial horizon as [`EngineConfig::horizon_hint`]
//! the per-epoch LP models are built identically, so the objectives
//! must match far tighter than LP tolerance (asserted at 1e-6), warm
//! *and* cold. The doubling-policy engine likewise reproduces
//! `interval_batch_online_with` when every coflow releases at 0.

use coflow_core::horizon::{horizon, HorizonMode};
use coflow_core::online::{online_heuristic_with, OnlineOptions};
use coflow_core::routing::Routing;
use coflow_lp::SolverOptions;
use coflow_runtime::Runtime;
use coflow_service::engine::{EngineConfig, EpochPolicy, PortCoflow, ServiceOutcome, TenantEngine};
use coflow_workloads::trace::{ReplayOptions, Trace, FB2010_SAMPLE};

fn port_coflows(trace: &Trace, opts: &ReplayOptions, zero_release: bool) -> Vec<PortCoflow> {
    let base = trace.port_base().expect("bundled trace is consistent");
    trace
        .coflows
        .iter()
        .map(|c| PortCoflow {
            id: c.id.clone(),
            weight: 1.0,
            release: if zero_release {
                0
            } else {
                c.release_slot(opts)
            },
            deadline: None,
            flows: c.port_flows(base, opts),
        })
        .collect()
}

fn stream_fb2010(config: EngineConfig, zero_release: bool) -> ServiceOutcome {
    let trace = Trace::parse(FB2010_SAMPLE).expect("bundled trace parses");
    let opts = ReplayOptions::default();
    let rt = Runtime::with_workers(2);
    let mut engine = TenantEngine::new(trace.num_ports, config);
    for pc in port_coflows(&trace, &opts, zero_release) {
        engine.admit(&rt, pc).expect("fb2010 coflows admit cleanly");
    }
    engine.finish(&rt).expect("fb2010 stream completes")
}

#[test]
fn event_stream_matches_online_replay_warm_and_cold() {
    let trace = Trace::parse(FB2010_SAMPLE).expect("bundled trace parses");
    let opts = ReplayOptions::default();
    let inst = trace.switch_instance(&opts).expect("switch instance");
    let t0 = horizon(
        &inst,
        &Routing::FreePath,
        HorizonMode::Greedy { margin: 1.25 },
    )
    .expect("greedy horizon");
    let lp_opts = SolverOptions::default();

    for cold in [false, true] {
        let batch = online_heuristic_with(
            &inst,
            &Routing::FreePath,
            &lp_opts,
            &coflow_core::online::OnlineOptions {
                cold,
                ..OnlineOptions::default()
            },
        )
        .expect("online replay succeeds");

        let outcome = stream_fb2010(
            EngineConfig {
                warm: !cold,
                horizon_hint: Some(t0),
                ..EngineConfig::default()
            },
            false,
        );

        assert_eq!(
            outcome.epoch_objectives.len(),
            batch.epoch_objectives.len(),
            "same number of re-solve epochs (cold={cold})"
        );
        for (k, (a, b)) in outcome
            .epoch_objectives
            .iter()
            .zip(&batch.epoch_objectives)
            .enumerate()
        {
            assert!(
                (a - b).abs() < 1e-6,
                "epoch {k} objective diverged (cold={cold}): service {a} vs online {b}"
            );
        }
        // Identical epoch models followed by the identical heuristic
        // ⇒ the executed schedules cost the same.
        let batch_total = batch
            .schedule
            .completions(&inst)
            .expect("online schedule completes")
            .weighted_total;
        assert!(
            (outcome.objective - batch_total).abs() < 1e-6,
            "final objective diverged (cold={cold}): service {} vs online {batch_total}",
            outcome.objective
        );
    }
}

#[test]
fn warm_epochs_cost_fewer_iterations_than_shadow_cold() {
    let outcome = stream_fb2010(
        EngineConfig {
            shadow_cold: true,
            ..EngineConfig::default()
        },
        false,
    );
    let cold = outcome.cold_iterations.expect("shadow-cold was measured");
    assert!(
        outcome.lp_iterations < cold,
        "warm epochs should beat the crash basis: warm {} vs cold {cold}",
        outcome.lp_iterations
    );
}

#[test]
fn doubling_stream_matches_batched_replay_at_zero_release() {
    let trace = Trace::parse(FB2010_SAMPLE).expect("bundled trace parses");
    let opts = ReplayOptions {
        // Collapse every arrival to slot 0: one doubling batch, which
        // the streaming engine must reproduce bit for bit.
        ms_per_slot: 1e12,
        ..ReplayOptions::default()
    };
    let inst = trace.switch_instance(&opts).expect("switch instance");
    let lp_opts = SolverOptions::default();
    let batch = coflow_core::flowtime::interval_batch_online_with(
        &inst,
        &Routing::FreePath,
        &lp_opts,
        true,
    )
    .expect("batched replay succeeds");
    assert_eq!(batch.batches, 1, "all-at-0 is a single batch");

    let outcome = stream_fb2010(
        EngineConfig {
            policy: EpochPolicy::Doubling,
            ..EngineConfig::default()
        },
        true,
    );
    assert_eq!(outcome.epochs, 1);
    let batch_total = batch
        .schedule
        .completions(&inst)
        .expect("batched schedule completes")
        .weighted_total;
    assert!(
        (outcome.objective - batch_total).abs() < 1e-6,
        "doubling objective diverged: service {} vs flowtime {batch_total}",
        outcome.objective
    );
}

#[test]
fn doubling_stream_handles_staggered_arrivals() {
    let outcome = stream_fb2010(
        EngineConfig {
            policy: EpochPolicy::Doubling,
            ..EngineConfig::default()
        },
        false,
    );
    // finish() validated the merged schedule against the full instance;
    // here we only pin the shape: several batches, all work done.
    assert_eq!(outcome.admitted, 20);
    assert!(outcome.epochs > 1, "staggered arrivals span batches");
    assert!(outcome.objective > 0.0);
    assert!(outcome.peak_utilization <= 1.0 + 1e-6);
}
