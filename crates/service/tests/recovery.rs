//! Crash recovery golden tests: a session killed mid-stream (the
//! in-process `disconnect` fault — the same code path `kill -9`
//! exercises, minus the process boundary) is resumed with `recover`,
//! and the recovered stream's per-epoch objectives and final `DONE`
//! objective must be identical to an uninterrupted run's at 1e-6.
//!
//! Identity holds because the journal stores the resolver's own
//! activation/fix logs: recovery rebuilds bit-identical LP models and
//! the LP optimum is unique, so only basis trajectories (never
//! objectives) can differ.

use coflow_runtime::Runtime;
use coflow_service::daemon::{session_with, SessionOptions, SessionSummary};
use coflow_service::fault::FaultPlan;
use coflow_workloads::trace::FB2010_SAMPLE;
use std::path::PathBuf;

fn run(input: &str, opts: SessionOptions) -> (SessionSummary, String) {
    let rt = Runtime::with_workers(2);
    let mut out = Vec::new();
    let summary = session_with(&rt, input.as_bytes(), &mut out, opts).expect("in-memory session");
    (summary, String::from_utf8(out).expect("utf8 responses"))
}

fn journal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("coflow-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("journal dir");
    dir
}

/// The bundled fixture's header plus its first `n` coflow lines.
fn fixture_lines() -> Vec<&'static str> {
    FB2010_SAMPLE
        .lines()
        .filter(|l| !l.trim().is_empty())
        .collect()
}

fn input_from(lines: &[&str]) -> String {
    let mut s = lines.join("\n");
    s.push('\n');
    s
}

/// `(epoch, objective)` pairs for one tenant, in emission order.
fn epoch_objectives(out: &str, tenant: &str) -> Vec<(usize, f64)> {
    let prefix = format!("EPOCH tenant={tenant} ");
    out.lines()
        .filter(|l| l.starts_with(&prefix))
        .map(|l| {
            let field = |key: &str| {
                l.split_whitespace()
                    .find_map(|tok| tok.strip_prefix(key))
                    .unwrap_or_else(|| panic!("{key} missing in {l}"))
            };
            (
                field("epoch=").parse().expect("epoch index"),
                field("objective=").parse().expect("epoch objective"),
            )
        })
        .collect()
}

fn done_objective(out: &str, tenant: &str) -> f64 {
    let prefix = format!("DONE tenant={tenant} ");
    let line = out
        .lines()
        .find(|l| l.starts_with(&prefix))
        .unwrap_or_else(|| panic!("no DONE for {tenant} in:\n{out}"));
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix("objective="))
        .expect("DONE objective")
        .parse()
        .expect("DONE objective parses")
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * (1.0 + b.abs())
}

#[test]
fn recovered_lp_session_matches_the_uninterrupted_run() {
    let lines = fixture_lines();
    let take = 12; // header + 12 coflows keeps the test fast
    let full: Vec<&str> = lines[..=take].to_vec();
    let golden_input = input_from(&full);

    // Golden: one uninterrupted run, no journal.
    let (golden_summary, golden_out) = run(&golden_input, SessionOptions::default());
    assert_eq!(golden_summary.admitted, take, "{golden_out}");
    let golden_epochs = epoch_objectives(&golden_out, "default");
    assert!(!golden_epochs.is_empty(), "{golden_out}");

    // Crashed: same stream, journaled, killed after the 6th coflow.
    let dir = journal_dir("lp");
    let crash_opts = SessionOptions {
        journal: Some(dir.clone()),
        fault: FaultPlan::parse("disconnect=7").expect("valid plan"),
        ..SessionOptions::default()
    };
    let (crash_summary, crash_out) = run(&golden_input, crash_opts);
    assert_eq!(crash_summary.admitted, 6, "{crash_out}");
    assert!(!crash_out.contains("DONE"), "{crash_out}");

    // Recovered: replay the journal, then feed the rest of the stream.
    let mut rec_lines: Vec<&str> = vec![full[0]]; // re-HELLO (implicit header)
    rec_lines.extend_from_slice(&full[7..]);
    let rec_opts = SessionOptions {
        journal: Some(dir.clone()),
        recover: true,
        ..SessionOptions::default()
    };
    let (rec_summary, rec_out) = run(&input_from(&rec_lines), rec_opts);
    assert_eq!(rec_summary.errors, 0, "{rec_out}");
    assert!(
        rec_out.contains("INFO tenant=default recovered=1 arrivals=6"),
        "{rec_out}"
    );

    // The recovered stream re-emits the journaled epochs and continues:
    // the full objective sequence must equal the golden run's.
    let rec_epochs = epoch_objectives(&rec_out, "default");
    assert_eq!(
        rec_epochs.len(),
        golden_epochs.len(),
        "epoch counts diverged\ngolden:\n{golden_out}\nrecovered:\n{rec_out}"
    );
    for ((ge, go), (re, ro)) in golden_epochs.iter().zip(&rec_epochs) {
        assert_eq!(ge, re, "epoch indices diverged");
        assert!(close(*ro, *go), "epoch {ge}: golden {go} vs recovered {ro}");
    }
    assert!(
        close(
            done_objective(&rec_out, "default"),
            done_objective(&golden_out, "default")
        ),
        "DONE objectives diverged\ngolden:\n{golden_out}\nrecovered:\n{rec_out}"
    );
    // The recovered DONE advertises how much came from the journal.
    let done = rec_out
        .lines()
        .find(|l| l.starts_with("DONE tenant=default"))
        .expect("recovered DONE");
    assert!(done.contains("recovered-epochs="), "{done}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cleanly_finished_journals_are_not_resurrected() {
    let lines = fixture_lines();
    let full: Vec<&str> = lines[..=4].to_vec();
    let dir = journal_dir("clean");
    let opts = SessionOptions {
        journal: Some(dir.clone()),
        ..SessionOptions::default()
    };
    let (summary, out) = run(&input_from(&full), opts);
    assert_eq!(summary.admitted, 4, "{out}");
    assert!(out.contains("DONE tenant=default"), "{out}");

    // A recover session over the same directory finds only the DONE
    // marker and starts fresh.
    let rec_opts = SessionOptions {
        journal: Some(dir.clone()),
        recover: true,
        ..SessionOptions::default()
    };
    let (rec_summary, rec_out) = run("BYE\n", rec_opts);
    assert_eq!(rec_summary.tenants, 0, "{rec_out}");
    assert!(!rec_out.contains("recovered=1"), "{rec_out}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ordering_tier_recovery_keeps_the_arrival_backlog() {
    let dir = journal_dir("ordering");
    let crash_opts = SessionOptions {
        journal: Some(dir.clone()),
        fault: FaultPlan::parse("disconnect=3").expect("valid plan"),
        ..SessionOptions::default()
    };
    let input = "HELLO t 4 base=0 tier=ordering\n\
                 c1 0 1 0 1 2:125\n\
                 c2 0 1 1 1 3:125\n\
                 c3 0 1 0 1 3:125\n\
                 BYE\n";
    let (crash_summary, crash_out) = run(input, crash_opts);
    assert_eq!(crash_summary.admitted, 2, "{crash_out}");
    assert!(!crash_out.contains("DONE"), "{crash_out}");

    let rec_opts = SessionOptions {
        journal: Some(dir.clone()),
        recover: true,
        ..SessionOptions::default()
    };
    let rec_input = "HELLO t 4 base=0 tier=ordering\n\
                     c3 0 1 0 1 3:125\n\
                     BYE\n";
    let (rec_summary, rec_out) = run(rec_input, rec_opts);
    assert_eq!(rec_summary.errors, 0, "{rec_out}");
    assert!(
        rec_out.contains("recovered=1 arrivals=2 epochs=0 tier=ordering"),
        "{rec_out}"
    );
    // The two journaled arrivals plus the re-fed third all schedule.
    assert!(rec_out.contains("DONE tenant=t admitted=3"), "{rec_out}");
    assert!(rec_out.contains("tier=ordering"), "{rec_out}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_survives_a_corrupt_journal_file() {
    let dir = journal_dir("corrupt");
    std::fs::write(dir.join("bad.journal"), "HELLO t 4\nADMIT broken\nSTATE\n")
        .expect("write corrupt journal");
    let rec_opts = SessionOptions {
        journal: Some(dir.clone()),
        recover: true,
        ..SessionOptions::default()
    };
    // The corrupt file is reported as an ERR line; the session itself
    // keeps working.
    let (summary, out) = run("HELLO fresh 4 base=0\nc1 0 1 0 1 2:125\nBYE\n", rec_opts);
    assert_eq!(summary.errors, 1, "{out}");
    assert!(out.contains("ERR recover:"), "{out}");
    assert!(out.contains("DONE tenant=fresh admitted=1"), "{out}");

    let _ = std::fs::remove_dir_all(&dir);
}
