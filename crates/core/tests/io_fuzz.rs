//! Robustness tests for the `.coflow` parser: random corruptions of a
//! valid file must never panic — every malformed input is a clean
//! `CoflowError` (or, rarely, still parses when the corruption happened
//! to be harmless, e.g. inside a comment).

use coflow_core::io::{read_instance, write_instance};
use coflow_core::model::{Coflow, CoflowInstance, Flow};
use coflow_netgraph::topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn valid_text() -> String {
    let topo = topology::swan();
    let g = topo.graph;
    let nodes: Vec<_> = g.nodes().collect();
    let inst = CoflowInstance::new(
        g,
        vec![
            Coflow::weighted(
                2.0,
                vec![
                    Flow::new(nodes[0], nodes[2], 10.0),
                    Flow::released(nodes[1], nodes[3], 5.5, 2),
                ],
            ),
            Coflow::new(vec![Flow::new(nodes[4], nodes[0], 7.0)]),
        ],
    )
    .unwrap();
    write_instance(&inst).unwrap()
}

#[test]
fn byte_level_mutations_never_panic() {
    let base = valid_text();
    let mut rng = StdRng::seed_from_u64(0xF022);
    let printable: Vec<char> = " abcdefgh0123456789.#-\n".chars().collect();
    for _ in 0..500 {
        let mut chars: Vec<char> = base.chars().collect();
        for _ in 0..rng.gen_range(1..4) {
            let pos = rng.gen_range(0..chars.len());
            match rng.gen_range(0..3) {
                0 => chars[pos] = printable[rng.gen_range(0..printable.len())],
                1 => {
                    chars.remove(pos);
                }
                _ => chars.insert(pos, printable[rng.gen_range(0..printable.len())]),
            }
        }
        let text: String = chars.into_iter().collect();
        // Must return, not panic; both Ok and Err are acceptable.
        let _ = read_instance(&text);
    }
}

#[test]
fn line_level_shuffles_never_panic() {
    let base = valid_text();
    let mut rng = StdRng::seed_from_u64(0xF023);
    let lines: Vec<&str> = base.lines().collect();
    for _ in 0..300 {
        let mut shuffled: Vec<&str> = lines.clone();
        // Swap a few random line pairs (may move edges after coflows,
        // flows before nodes, duplicate semantics, etc.).
        for _ in 0..rng.gen_range(1..4) {
            let a = rng.gen_range(0..shuffled.len());
            let b = rng.gen_range(0..shuffled.len());
            shuffled.swap(a, b);
        }
        let text = shuffled.join("\n");
        let _ = read_instance(&text);
    }
}

#[test]
fn truncations_never_panic() {
    let base = valid_text();
    for cut in 0..base.len() {
        let _ = read_instance(&base[..cut]);
    }
}

#[test]
fn numeric_edge_values_are_policed() {
    // NaN / inf / negative demands must be rejected by validation, not
    // crash the parser or silently build a bad instance.
    for bad in ["NaN", "inf", "-inf", "-3", "0"] {
        let text =
            format!("coflow-instance v1\nnode a\nnode b\nedge a b 1\ncoflow 1\nflow a b {bad} 0\n");
        let result = read_instance(&text);
        assert!(
            result.is_err(),
            "demand {bad:?} should be rejected, got an instance"
        );
    }
    for bad_cap in ["NaN", "-1", "0"] {
        let text = format!(
            "coflow-instance v1\nnode a\nnode b\nedge a b {bad_cap}\ncoflow 1\nflow a b 1 0\n"
        );
        assert!(
            read_instance(&text).is_err(),
            "capacity {bad_cap:?} should be rejected"
        );
    }
}

#[test]
fn huge_but_valid_instances_roundtrip() {
    // Many coflows: the parser must be linear-ish, not quadratic-choke.
    let topo = topology::gscale();
    let g = topo.graph;
    let nodes: Vec<_> = g.nodes().collect();
    let mut rng = StdRng::seed_from_u64(12);
    let coflows: Vec<Coflow> = (0..500)
        .map(|_| {
            let a = nodes[rng.gen_range(0..nodes.len())];
            let mut b = nodes[rng.gen_range(0..nodes.len())];
            while b == a {
                b = nodes[rng.gen_range(0..nodes.len())];
            }
            Coflow::weighted(
                rng.gen_range(1.0..100.0),
                vec![Flow::released(
                    a,
                    b,
                    rng.gen_range(0.1..1e6),
                    rng.gen_range(0..1000),
                )],
            )
        })
        .collect();
    let inst = CoflowInstance::new(g, coflows).unwrap();
    let text = write_instance(&inst).unwrap();
    let back = read_instance(&text).unwrap();
    assert_eq!(back.num_coflows(), 500);
    assert_eq!(text, write_instance(&back).unwrap());
}
