//! Property-based tests for the core scheduling pipeline.

use coflow_core::model::{Coflow, CoflowInstance, Flow};
use coflow_core::rateplan::{FlowPlan, RatePlan, Segment};
use coflow_core::routing::Routing;
use coflow_core::stretch::{stretch_schedule, StretchOptions};
use coflow_core::timeidx::solve_time_indexed;
use coflow_core::validate::{validate, Tolerance};
use coflow_lp::SolverOptions;
use coflow_netgraph::{topology, EdgeId};
use proptest::prelude::*;

/// Strategy: a small random instance on the Fig-2 network (fixed graph,
/// random flows) — small enough that the LP solves in milliseconds.
fn small_instance() -> impl Strategy<Value = CoflowInstance> {
    proptest::collection::vec(
        (
            0usize..5,    // src selector
            0usize..5,    // dst selector
            0.5f64..4.0,  // demand
            0u32..4,      // release
            1.0f64..10.0, // weight
        ),
        1..5,
    )
    .prop_filter_map("needs distinct endpoints", |specs| {
        let topo = topology::fig2_example();
        let g = topo.graph;
        let nodes: Vec<_> = g.nodes().collect();
        let mut coflows = Vec::new();
        for (a, b, demand, release, weight) in specs {
            if a == b {
                return None;
            }
            coflows.push(Coflow::weighted(
                weight,
                vec![Flow::released(nodes[a], nodes[b], demand, release)],
            ));
        }
        CoflowInstance::new(g, coflows).ok()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full pipeline holds its invariants on arbitrary instances:
    /// LP bound ≤ heuristic cost, schedule feasible and complete.
    #[test]
    fn pipeline_invariants_hold(inst in small_instance()) {
        let t = coflow_core::horizon::horizon(
            &inst,
            &Routing::FreePath,
            coflow_core::horizon::HorizonMode::Greedy { margin: 1.3 },
        ).expect("horizon");
        let lp = solve_time_indexed(&inst, &Routing::FreePath, t, &SolverOptions::default())
            .expect("LP solves");
        let sched = stretch_schedule(&inst, &lp.plan, 1.0, StretchOptions::default());
        let rep = validate(&inst, &Routing::FreePath, &sched, Tolerance::default())
            .expect("heuristic schedule is feasible");
        prop_assert!(rep.completions.weighted_total >= lp.objective - 1e-6);
        prop_assert!(rep.peak_utilization <= 1.0 + 1e-6);
    }

    /// Stretch at any λ keeps schedules feasible.
    #[test]
    fn stretch_feasible_for_all_lambda(inst in small_instance(), lambda in 0.05f64..1.0) {
        let t = coflow_core::horizon::horizon(
            &inst,
            &Routing::FreePath,
            coflow_core::horizon::HorizonMode::Greedy { margin: 1.3 },
        ).expect("horizon");
        let lp = solve_time_indexed(&inst, &Routing::FreePath, t, &SolverOptions::default())
            .expect("LP solves");
        let sched = stretch_schedule(&inst, &lp.plan, lambda, StretchOptions::default());
        validate(&inst, &Routing::FreePath, &sched, Tolerance::default())
            .expect("stretched schedule is feasible");
    }

    /// Lemma 4.3's per-coflow bound: the stretched schedule completes
    /// coflow j by ⌈C*_j(λ)/λ⌉, where C*_j(λ) is the earliest time the
    /// LP schedule had a λ fraction of every flow of j.
    #[test]
    fn stretched_completion_matches_alpha_point_bound(inst in small_instance(),
                                                      lambda in 0.1f64..1.0) {
        let t = coflow_core::horizon::horizon(
            &inst,
            &Routing::FreePath,
            coflow_core::horizon::HorizonMode::Greedy { margin: 1.3 },
        ).expect("horizon");
        let lp = solve_time_indexed(&inst, &Routing::FreePath, t, &SolverOptions::default())
            .expect("LP solves");
        let sched = stretch_schedule(&inst, &lp.plan, lambda, StretchOptions { compact: false });
        let got = sched.completions(&inst).expect("complete");
        for (j, cf) in inst.coflows.iter().enumerate() {
            // C*_j(λ) = max over flows of the λσ_i point in the LP plan.
            let mut c_lambda: f64 = 0.0;
            for (i, f) in cf.flows.iter().enumerate() {
                let c = lp.plan.flows[j][i]
                    .completion(lambda * f.demand)
                    .expect("LP plan moves the full demand");
                c_lambda = c_lambda.max(c);
            }
            let bound = (c_lambda / lambda).ceil() as u32;
            prop_assert!(
                got.per_coflow[j] <= bound + 1, // +1 for float boundary snap
                "coflow {j}: completed {} > bound {bound} (λ={lambda})",
                got.per_coflow[j]
            );
        }
    }
}

/// Strategy for standalone rate plans (no LP involved).
fn arbitrary_flow_plan() -> impl Strategy<Value = FlowPlan> {
    proptest::collection::vec((0.0f64..20.0, 0.05f64..3.0, 0.05f64..2.0), 1..6).prop_map(|segs| {
        let mut t = 0.0;
        let segments = segs
            .into_iter()
            .map(|(gap, len, rate)| {
                let t0 = t + gap;
                let t1 = t0 + len;
                t = t1;
                Segment {
                    t0,
                    t1,
                    rate,
                    edges: vec![(EdgeId::from_index(0), rate)],
                }
            })
            .collect();
        FlowPlan { segments }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Discretization preserves total volume exactly.
    #[test]
    fn discretize_preserves_volume(fp in arbitrary_flow_plan()) {
        let total = fp.total_volume();
        let plan = RatePlan { flows: vec![vec![fp]] };
        let sched = plan.discretize();
        let slotted: f64 = sched.flows[0][0].iter().map(|st| st.volume).sum();
        prop_assert!((slotted - total).abs() < 1e-9 * (1.0 + total));
    }

    /// Truncation is exact: the truncated plan moves exactly the target
    /// volume (when the plan had at least that much).
    #[test]
    fn truncate_is_exact(fp in arbitrary_flow_plan(), frac in 0.05f64..1.0) {
        let demand = fp.total_volume() * frac;
        let cut = fp.truncate_at(demand);
        prop_assert!((cut.total_volume() - demand).abs() < 1e-9 * (1.0 + demand));
    }

    /// Stretch followed by completion equals completion divided by λ for
    /// the volume actually demanded: C_stretched(σλ·..) relation — the
    /// α-point identity C_stretch(σ) = C_orig(λ·fraction)/λ.
    #[test]
    fn stretch_alpha_point_identity(fp in arbitrary_flow_plan(), lambda in 0.1f64..1.0) {
        let sigma = fp.total_volume();
        let plan = RatePlan { flows: vec![vec![fp.clone()]] };
        let stretched = plan.stretch(lambda);
        // Completion of demand σ in the stretched plan...
        let c_stretch = stretched.flows[0][0].completion(sigma);
        // ...equals (time the original plan reached λσ) / λ.
        let c_alpha = fp.completion(lambda * sigma).map(|c| c / lambda);
        match (c_stretch, c_alpha) {
            (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-6 * (1.0 + b)),
            (None, None) => {}
            other => prop_assert!(false, "mismatch: {other:?}"),
        }
    }

    /// Stretch preserves per-segment volumes scaled by 1/λ overall.
    #[test]
    fn stretch_scales_total_volume(fp in arbitrary_flow_plan(), lambda in 0.1f64..1.0) {
        let plan = RatePlan { flows: vec![vec![fp.clone()]] };
        let stretched = plan.stretch(lambda);
        let expect = fp.total_volume() / lambda;
        let got = stretched.flows[0][0].total_volume();
        prop_assert!((got - expect).abs() < 1e-9 * (1.0 + expect));
    }

    /// The completion profile's inverse agrees with the plan's forward
    /// completion query for every fraction.
    #[test]
    fn derand_profile_inverts_the_plan(fp in arbitrary_flow_plan(), lambda in 0.01f64..1.0) {
        let sigma = fp.total_volume();
        let profile = coflow_core::derand::CompletionProfile::from_flow(&fp, sigma);
        let via_plan = fp.completion(lambda * sigma).expect("within volume");
        let via_profile = profile.value(lambda);
        prop_assert!(
            (via_plan - via_profile).abs() < 1e-6 * (1.0 + via_plan),
            "λ={lambda}: plan {via_plan} vs profile {via_profile}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Derandomization invariants on LP-solved instances: the exact best
    /// is no worse than the λ=1 heuristic, the exact expectation honors
    /// Theorem 4.4 (E ≤ 2·LP), and the profile cost at the reported best
    /// λ reproduces a materialized schedule's cost.
    #[test]
    fn derand_invariants_hold(inst in small_instance()) {
        let t = coflow_core::horizon::horizon(
            &inst,
            &Routing::FreePath,
            coflow_core::horizon::HorizonMode::Greedy { margin: 1.3 },
        ).expect("horizon");
        let lp = solve_time_indexed(&inst, &Routing::FreePath, t, &SolverOptions::default())
            .expect("LP solves");
        let d = coflow_core::derand::derandomize(&inst, &lp.plan);
        prop_assert!(d.best_cost <= d.heuristic_cost + 1e-9);
        prop_assert!(d.best_lambda > 0.0 && d.best_lambda <= 1.0);
        prop_assert!(
            d.expected_cost - d.expected_cost_error <= 2.0 * lp.objective + 1e-6,
            "E = {} ± {} vs 2·LP = {}",
            d.expected_cost, d.expected_cost_error, 2.0 * lp.objective
        );
        prop_assert!(d.expected_cost + d.expected_cost_error >= lp.objective - 1e-6);
        // Materialize the schedule at the winning λ and compare cost.
        let sched = stretch_schedule(&inst, &lp.plan, d.best_lambda,
                                     StretchOptions { compact: false });
        let cost = sched.completions(&inst).expect("complete").weighted_total;
        prop_assert!(
            (cost - d.best_cost).abs() < 1e-6 * (1.0 + cost),
            "materialized {cost} vs exact {}", d.best_cost
        );
        // The sampled sweep can never beat the exact minimum.
        let sweep = coflow_core::stretch::lambda_sweep(
            &inst, &lp.plan, 12, 7, StretchOptions { compact: false });
        prop_assert!(sweep.best().weighted_cost >= d.best_cost - 1e-9);
    }
}
