//! Failure injection: the validator must reject every corruption of a
//! known-good schedule. A validator that silently accepts broken
//! schedules would invalidate every experimental claim, so it gets the
//! adversarial treatment.

use coflow_core::model::{Coflow, CoflowInstance, Flow};
use coflow_core::routing::Routing;
use coflow_core::schedule::Schedule;
use coflow_core::stretch::{stretch_schedule, StretchOptions};
use coflow_core::timeidx::solve_time_indexed;
use coflow_core::validate::{validate, Tolerance};
use coflow_lp::SolverOptions;
use coflow_netgraph::topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn good_schedule() -> (CoflowInstance, Schedule) {
    let topo = topology::swan().scale_capacity(5.0);
    let g = topo.graph;
    let nodes: Vec<_> = g.nodes().collect();
    let mut rng = StdRng::seed_from_u64(404);
    let coflows = (0..4)
        .map(|_| {
            let a = nodes[rng.gen_range(0..nodes.len())];
            let mut b = nodes[rng.gen_range(0..nodes.len())];
            while b == a {
                b = nodes[rng.gen_range(0..nodes.len())];
            }
            Coflow::weighted(
                rng.gen_range(1.0..10.0),
                vec![Flow::released(
                    a,
                    b,
                    rng.gen_range(20.0..80.0),
                    rng.gen_range(0..3),
                )],
            )
        })
        .collect();
    let inst = CoflowInstance::new(g, coflows).unwrap();
    let t = coflow_core::horizon::horizon(
        &inst,
        &Routing::FreePath,
        coflow_core::horizon::HorizonMode::Greedy { margin: 1.3 },
    )
    .unwrap();
    let lp = solve_time_indexed(&inst, &Routing::FreePath, t, &SolverOptions::default()).unwrap();
    let sched = stretch_schedule(&inst, &lp.plan, 1.0, StretchOptions::default());
    (inst, sched)
}

fn assert_rejected(inst: &CoflowInstance, sched: &Schedule, what: &str) {
    let err = validate(inst, &Routing::FreePath, sched, Tolerance::default());
    assert!(err.is_err(), "validator accepted a schedule with {what}");
}

#[test]
fn baseline_is_accepted() {
    let (inst, sched) = good_schedule();
    validate(&inst, &Routing::FreePath, &sched, Tolerance::default()).unwrap();
}

#[test]
fn rejects_inflated_edge_volume() {
    let (inst, mut sched) = good_schedule();
    // Blow one edge volume far past capacity.
    'outer: for row in &mut sched.flows {
        for fl in row {
            for st in fl.iter_mut() {
                if let Some((_, v)) = st.edges.first_mut() {
                    *v += 10.0 * inst.graph.total_capacity();
                    break 'outer;
                }
            }
        }
    }
    assert_rejected(&inst, &sched, "an overloaded edge");
}

#[test]
fn rejects_missing_volume() {
    let (inst, mut sched) = good_schedule();
    // Halve one flow's transfers: demand unmet.
    for st in &mut sched.flows[0][0] {
        st.volume *= 0.5;
        for (_, v) in &mut st.edges {
            *v *= 0.5;
        }
    }
    assert_rejected(&inst, &sched, "unmet demand");
}

#[test]
fn rejects_pre_release_transfer() {
    let (inst, mut sched) = good_schedule();
    // Find a flow with a positive release and move a transfer before it.
    let mut target = None;
    for (j, cf) in inst.coflows.iter().enumerate() {
        for (i, f) in cf.flows.iter().enumerate() {
            if f.release > 0 {
                target = Some((j, i, f.release));
            }
        }
    }
    let (j, i, rel) = target.expect("instance has releases by construction");
    sched.flows[j][i][0].slot = rel; // slot <= release is illegal
                                     // Re-sort to keep slots ordered in case of collisions.
    sched.flows[j][i].sort_by_key(|st| st.slot);
    sched.flows[j][i].dedup_by_key(|st| st.slot);
    assert_rejected(&inst, &sched, "a pre-release transfer");
}

#[test]
fn rejects_broken_conservation() {
    let (inst, mut sched) = good_schedule();
    // Drop one edge entry from a multi-edge transfer (breaks the flow).
    'outer: for row in &mut sched.flows {
        for fl in row {
            for st in fl.iter_mut() {
                if st.edges.len() >= 2 {
                    st.edges.pop();
                    break 'outer;
                }
            }
        }
    }
    assert_rejected(&inst, &sched, "broken flow conservation");
}

#[test]
fn rejects_negative_volume() {
    let (inst, mut sched) = good_schedule();
    sched.flows[0][0][0].volume = -1.0;
    assert_rejected(&inst, &sched, "a negative volume");
}

#[test]
fn rejects_unknown_edge() {
    let (inst, mut sched) = good_schedule();
    let bogus = coflow_netgraph::EdgeId::from_index(inst.graph.edge_count() + 7);
    sched.flows[0][0][0].edges.push((bogus, 1.0));
    assert_rejected(&inst, &sched, "an unknown edge id");
}

#[test]
fn rejects_shape_mismatch() {
    let (inst, mut sched) = good_schedule();
    sched.flows.pop();
    assert_rejected(&inst, &sched, "a missing coflow row");
}

#[test]
fn rejects_slot_zero() {
    let (inst, mut sched) = good_schedule();
    // Slot numbering is 1-based; slot 0 must be rejected. Pick a flow
    // with release 0 so the release check cannot fire first.
    let mut target = None;
    for (j, cf) in inst.coflows.iter().enumerate() {
        for (i, f) in cf.flows.iter().enumerate() {
            if f.release == 0 {
                target = Some((j, i));
            }
        }
    }
    let (j, i) = target.expect("some flow has release 0");
    sched.flows[j][i][0].slot = 0;
    assert_rejected(&inst, &sched, "a transfer in slot 0");
}

#[test]
fn random_mutations_never_pass() {
    // Fuzz-lite: random small perturbations of volumes must be caught
    // (either as demand mismatch or capacity/conservation breakage).
    let (inst, sched) = good_schedule();
    let mut rng = StdRng::seed_from_u64(99);
    let mut caught = 0;
    const TRIALS: usize = 30;
    for _ in 0..TRIALS {
        let mut bad = sched.clone();
        let j = rng.gen_range(0..bad.flows.len());
        let i = rng.gen_range(0..bad.flows[j].len());
        if bad.flows[j][i].is_empty() {
            continue;
        }
        let k = rng.gen_range(0..bad.flows[j][i].len());
        let st = &mut bad.flows[j][i][k];
        // Volume perturbations large enough to exceed tolerances.
        let delta = rng.gen_range(0.05..0.5) * inst.coflows[j].flows[i].demand;
        if rng.gen_bool(0.5) {
            st.volume += delta;
        } else {
            st.volume = (st.volume - delta).max(0.0);
        }
        if validate(&inst, &Routing::FreePath, &bad, Tolerance::default()).is_err() {
            caught += 1;
        }
    }
    assert!(
        caught >= TRIALS * 9 / 10 - 3,
        "validator caught only {caught}/{TRIALS} volume perturbations"
    );
}
