//! A work-conserving greedy scheduler.
//!
//! Serves three purposes:
//!
//! 1. **Horizon estimation** — its makespan seeds the time-indexed LP's
//!    horizon `T` (see [`crate::horizon`]).
//! 2. **Baseline building block** — shortest-job-first and Terra-style
//!    baselines are greedy allocations under different coflow orders.
//! 3. **Feasibility witness** — the greedy schedule is itself feasible,
//!    so the LP relaxation with `T =` greedy makespan always has a
//!    feasible point.
//!
//! Per slot, flows are visited in the given priority order; each flow
//! grabs as much residual capacity as its routing model allows (path
//! bottleneck for single path, max-flow for free path, sequential
//! water-filling over candidates for multi path).

use crate::error::CoflowError;
use crate::model::CoflowInstance;
use crate::routing::Routing;
use crate::schedule::{Schedule, SlotTransfer};
use coflow_netgraph::maxflow::Dinic;
use coflow_netgraph::{EdgeId, Graph, GraphBuilder};

/// Volume below which a transfer is considered zero.
const EPS: f64 = 1e-9;

/// Greedily schedules `inst` visiting coflows in `order` (indices into
/// `inst.coflows`; flows within a coflow keep their declared order).
///
/// # Errors
///
/// [`CoflowError::BadRouting`] if routing does not validate, or
/// [`CoflowError::InvalidSchedule`] if the allocator stalls (cannot make
/// progress for an absurd number of slots — indicates an instance whose
/// flows cannot be routed).
pub fn greedy_schedule(
    inst: &CoflowInstance,
    routing: &Routing,
    order: &[usize],
) -> Result<Schedule, CoflowError> {
    assert_eq!(
        order.len(),
        inst.num_coflows(),
        "order must be a permutation"
    );
    let mut alloc = SlotAllocator::new(inst, routing)?;
    while !alloc.is_done() {
        alloc.step(order)?;
    }
    Ok(alloc.finish())
}

/// Slot-by-slot work-conserving allocator with caller-chosen per-slot
/// coflow priorities. [`greedy_schedule`] drives it with a static order;
/// the Terra baseline re-sorts by remaining time before every slot.
pub struct SlotAllocator<'a> {
    inst: &'a CoflowInstance,
    routing: &'a Routing,
    remaining: Vec<Vec<f64>>,
    schedule: Schedule,
    residual: Vec<f64>,
    slot: u32,
    unfinished: usize,
    max_slots: u32,
}

impl<'a> SlotAllocator<'a> {
    /// Prepares an allocator at slot 0 (no slot allocated yet).
    ///
    /// # Errors
    ///
    /// [`CoflowError::BadRouting`] when routing does not validate.
    pub fn new(inst: &'a CoflowInstance, routing: &'a Routing) -> Result<Self, CoflowError> {
        routing.validate(inst)?;
        Ok(SlotAllocator {
            inst,
            routing,
            remaining: inst
                .coflows
                .iter()
                .map(|c| c.flows.iter().map(|f| f.demand).collect())
                .collect(),
            schedule: Schedule {
                flows: inst
                    .coflows
                    .iter()
                    .map(|c| vec![Vec::new(); c.flows.len()])
                    .collect(),
            },
            residual: vec![0.0; inst.graph.edge_count()],
            slot: 0,
            unfinished: inst.num_flows(),
            max_slots: slot_budget(inst, routing),
        })
    }

    /// Whether every flow has moved its demand.
    pub fn is_done(&self) -> bool {
        self.unfinished == 0
    }

    /// The last allocated slot (0 before the first step).
    pub fn current_slot(&self) -> u32 {
        self.slot
    }

    /// Remaining demand of coflow `j` (sum over its flows).
    pub fn coflow_remaining(&self, j: usize) -> f64 {
        self.remaining[j].iter().sum()
    }

    /// Remaining demand of flow `(j, i)`.
    pub fn flow_remaining(&self, j: usize, i: usize) -> f64 {
        self.remaining[j][i]
    }

    /// Allocates the next slot, visiting coflows in `order`. The order
    /// may be a subset of the coflows (batch scheduling); coflows not
    /// listed receive nothing this slot.
    ///
    /// # Errors
    ///
    /// [`CoflowError::InvalidSchedule`] when the allocator stalls or the
    /// slot budget is exhausted (unroutable instance).
    pub fn step(&mut self, order: &[usize]) -> Result<(), CoflowError> {
        debug_assert!(order.iter().all(|&j| j < self.inst.num_coflows()));
        if self.is_done() {
            return Ok(());
        }
        if self.slot >= self.max_slots {
            return Err(CoflowError::InvalidSchedule(format!(
                "greedy allocator exceeded {} slots",
                self.max_slots
            )));
        }
        self.slot += 1;
        let slot = self.slot;
        let g = &self.inst.graph;
        for e in 0..g.edge_count() {
            self.residual[e] = g.capacity(EdgeId::from_index(e));
        }
        let mut progressed = false;
        for &j in order {
            for i in 0..self.inst.coflows[j].flows.len() {
                if self.remaining[j][i] <= EPS {
                    continue;
                }
                let f = &self.inst.coflows[j].flows[i];
                if slot <= f.release {
                    continue;
                }
                let (vol, edges) = allocate(
                    g,
                    self.routing,
                    j,
                    i,
                    f,
                    self.remaining[j][i],
                    &mut self.residual,
                );
                if vol > EPS {
                    progressed = true;
                    self.remaining[j][i] -= vol;
                    if self.remaining[j][i] < EPS {
                        self.remaining[j][i] = 0.0;
                        self.unfinished -= 1;
                    }
                    self.schedule.flows[j][i].push(SlotTransfer {
                        slot,
                        volume: vol,
                        edges,
                    });
                }
            }
        }
        let all_released = self.inst.flows().all(|(_, f)| slot > f.release);
        if !progressed && all_released && !self.is_done() {
            return Err(CoflowError::InvalidSchedule(
                "greedy allocator stalled: some flow cannot be routed".into(),
            ));
        }
        Ok(())
    }

    /// Consumes the allocator and returns the schedule built so far.
    pub fn finish(self) -> Schedule {
        self.schedule
    }
}

/// Allocates up to `want` volume for one flow out of `residual`,
/// returning `(volume, edge volumes)` and decrementing the residuals.
fn allocate(
    g: &Graph,
    routing: &Routing,
    j: usize,
    i: usize,
    f: &crate::model::Flow,
    want: f64,
    residual: &mut [f64],
) -> (f64, Vec<(EdgeId, f64)>) {
    match routing {
        Routing::SinglePath(paths) => {
            let path = &paths[j][i];
            let rate = path
                .edges()
                .iter()
                .map(|&e| residual[e.index()])
                .fold(f64::INFINITY, f64::min);
            let vol = rate.min(want);
            if vol <= EPS {
                return (0.0, Vec::new());
            }
            let edges: Vec<(EdgeId, f64)> = path.edges().iter().map(|&e| (e, vol)).collect();
            for &(e, v) in &edges {
                residual[e.index()] -= v;
            }
            (vol, edges)
        }
        Routing::MultiPath(sets) => {
            // Water-fill candidate paths in order.
            let mut total = 0.0;
            let mut edges: Vec<(EdgeId, f64)> = Vec::new();
            for path in &sets[j][i] {
                if total >= want - EPS {
                    break;
                }
                let rate = path
                    .edges()
                    .iter()
                    .map(|&e| residual[e.index()])
                    .fold(f64::INFINITY, f64::min);
                let vol = rate.min(want - total);
                if vol <= EPS {
                    continue;
                }
                total += vol;
                for &e in path.edges() {
                    residual[e.index()] -= vol;
                    match edges.iter_mut().find(|(ee, _)| *ee == e) {
                        Some((_, v)) => *v += vol,
                        None => edges.push((e, vol)),
                    }
                }
            }
            (total, edges)
        }
        Routing::FreePath => {
            // Max-flow on the residual network, scaled down to `want`.
            let mut b = GraphBuilder::new();
            for v in g.nodes() {
                b.add_node(g.label(v));
            }
            let mut ids = Vec::with_capacity(g.edge_count());
            for e in g.edges() {
                let r = residual[e.id.index()];
                if r > EPS {
                    let ne = b
                        .add_edge(e.src, e.dst, r)
                        .expect("residual copy of a valid graph");
                    ids.push((ne, e.id));
                }
            }
            let rg = b.build();
            let mf = Dinic::new(&rg).run(&rg, f.src, f.dst);
            if mf.value <= EPS {
                return (0.0, Vec::new());
            }
            let scale = (want / mf.value).min(1.0);
            let vol = mf.value * scale;
            let mut edges = Vec::new();
            for (ne, orig) in ids {
                let used = mf.edge_flow[ne.index()] * scale;
                if used > EPS {
                    residual[orig.index()] -= used;
                    edges.push((orig, used));
                }
            }
            (vol, edges)
        }
    }
}

/// Generous slot budget: releases plus sequential solo times plus slack.
fn slot_budget(inst: &CoflowInstance, routing: &Routing) -> u32 {
    let mut total = inst.max_release() as f64;
    for (key, f) in inst.flows() {
        let solo = match routing {
            Routing::SinglePath(paths) => {
                let p = &paths[key.coflow as usize][key.flow as usize];
                f.demand / p.bottleneck(&inst.graph)
            }
            Routing::MultiPath(sets) => {
                // At least the first candidate path's bottleneck.
                let p = &sets[key.coflow as usize][key.flow as usize][0];
                f.demand / p.bottleneck(&inst.graph)
            }
            Routing::FreePath => {
                let mf = coflow_netgraph::maxflow::max_flow(&inst.graph, f.src, f.dst);
                f.demand / mf.value.max(EPS)
            }
        };
        total += solo.ceil() + 1.0;
    }
    (total.ceil() as u32).saturating_add(16)
}

/// Coflow order: ascending total demand (shortest job first).
pub fn sjf_order(inst: &CoflowInstance) -> Vec<usize> {
    let mut order: Vec<usize> = (0..inst.num_coflows()).collect();
    order.sort_by(|&a, &b| {
        inst.coflows[a]
            .total_demand()
            .partial_cmp(&inst.coflows[b].total_demand())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

/// Coflow order: descending weight-per-demand (weighted SJF).
pub fn weighted_sjf_order(inst: &CoflowInstance) -> Vec<usize> {
    let mut order: Vec<usize> = (0..inst.num_coflows()).collect();
    order.sort_by(|&a, &b| {
        let ka = inst.coflows[a].weight / inst.coflows[a].total_demand();
        let kb = inst.coflows[b].weight / inst.coflows[b].total_demand();
        kb.partial_cmp(&ka).unwrap_or(std::cmp::Ordering::Equal)
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coflow, Flow};
    use crate::routing;
    use crate::validate::{validate, Tolerance};
    use coflow_netgraph::topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig2_instance() -> CoflowInstance {
        let topo = topology::fig2_example();
        let g = topo.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let v2 = g.node_by_label("v2").unwrap();
        let v3 = g.node_by_label("v3").unwrap();
        CoflowInstance::new(
            g,
            vec![
                Coflow::new(vec![Flow::new(v1, t, 1.0)]),
                Coflow::new(vec![Flow::new(v2, t, 1.0)]),
                Coflow::new(vec![Flow::new(v3, t, 1.0)]),
                Coflow::new(vec![Flow::new(s, t, 3.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn free_path_greedy_matches_fig4_optimal() {
        let inst = fig2_instance();
        let order = sjf_order(&inst);
        let sched = greedy_schedule(&inst, &Routing::FreePath, &order).unwrap();
        let rep = validate(&inst, &Routing::FreePath, &sched, Tolerance::default()).unwrap();
        // Figure 4: three unit coflows at slot 1, blue spread over slots
        // 2 using all three routes -> completions 1,1,1,2; cost 5.
        assert_eq!(rep.completions.weighted_total, 5.0);
    }

    #[test]
    fn single_path_greedy_is_feasible_and_complete() {
        let inst = fig2_instance();
        let mut rng = StdRng::seed_from_u64(3);
        let r = routing::random_shortest_paths(&inst, &mut rng).unwrap();
        let order = sjf_order(&inst);
        let sched = greedy_schedule(&inst, &r, &order).unwrap();
        let rep = validate(&inst, &r, &sched, Tolerance::default()).unwrap();
        // The blue coflow needs 3 slots on its fixed 2-hop path, possibly
        // one more if it shares the middle hop with a unit coflow.
        assert!(rep.completions.makespan >= 3);
        assert!(rep.completions.makespan <= 5);
    }

    #[test]
    fn multipath_greedy_uses_alternates() {
        let inst = fig2_instance();
        let r = routing::k_shortest_path_sets(&inst, 3).unwrap();
        let order = sjf_order(&inst);
        let sched = greedy_schedule(&inst, &r, &order).unwrap();
        let rep = validate(&inst, &r, &sched, Tolerance::default()).unwrap();
        // With 3 candidate routes, blue finishes by slot 2 as in free path.
        assert_eq!(rep.completions.makespan, 2);
    }

    #[test]
    fn respects_release_times() {
        let topo = topology::line(2, 1.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let inst = CoflowInstance::new(g, vec![Coflow::new(vec![Flow::released(v0, v1, 2.0, 3)])])
            .unwrap();
        let sched = greedy_schedule(&inst, &Routing::FreePath, &[0]).unwrap();
        let rep = validate(&inst, &Routing::FreePath, &sched, Tolerance::default()).unwrap();
        assert_eq!(rep.completions.per_coflow, vec![5]); // slots 4 and 5
    }

    #[test]
    fn orders_are_permutations() {
        let inst = fig2_instance();
        for order in [sjf_order(&inst), weighted_sjf_order(&inst)] {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn sjf_prefers_small_coflows() {
        let inst = fig2_instance();
        let order = sjf_order(&inst);
        // Blue (demand 3) must come last.
        assert_eq!(*order.last().unwrap(), 3);
    }
}
