//! Continuous-time rate plans: the common currency between LP solutions
//! and slotted schedules.
//!
//! Both relaxations (unit-slot time-indexed, §3; geometric intervals,
//! Appendix A) yield, for every flow, a piecewise-constant transmission
//! rate over continuous time together with per-edge rates. The Stretch
//! algorithm is a transformation of this representation: dilate time by
//! `1/λ` (which scales rates by `λ`), truncate once the demand is met,
//! and integrate back into unit slots.
//!
//! Keeping the plan continuous makes the two LPs and the rounding
//! algorithms compose: `lp → RatePlan → stretch(λ) → truncate →
//! discretize → compact`.

use crate::model::CoflowInstance;
use crate::schedule::{Schedule, SlotTransfer};
use coflow_netgraph::EdgeId;

/// Volume tolerance used when truncating at demand.
pub const VOL_EPS: f64 = 1e-9;

/// A constant-rate transmission over `[t0, t1)`.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    /// Segment start (continuous time).
    pub t0: f64,
    /// Segment end.
    pub t1: f64,
    /// Source→sink transfer rate (volume per unit time).
    pub rate: f64,
    /// Per-edge rates; for a single-path flow every path edge carries
    /// `rate`, for free-path flows the rates form a flow of value `rate`.
    pub edges: Vec<(EdgeId, f64)>,
}

impl Segment {
    /// Volume moved by this segment.
    #[inline]
    pub fn volume(&self) -> f64 {
        self.rate * (self.t1 - self.t0)
    }
}

/// Piecewise-constant plan for one flow: sorted, non-overlapping segments.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlowPlan {
    /// The segments in increasing time order.
    pub segments: Vec<Segment>,
}

impl FlowPlan {
    /// Total volume transferred.
    pub fn total_volume(&self) -> f64 {
        self.segments.iter().map(Segment::volume).sum()
    }

    /// Continuous completion time: the earliest time by which `demand`
    /// has been moved, or `None` if the plan never moves that much.
    pub fn completion(&self, demand: f64) -> Option<f64> {
        let mut acc = 0.0;
        for s in &self.segments {
            let v = s.volume();
            if acc + v >= demand - VOL_EPS {
                let need = (demand - acc).max(0.0);
                let frac = if v > 0.0 { need / v } else { 0.0 };
                return Some(s.t0 + frac * (s.t1 - s.t0));
            }
            acc += v;
        }
        None
    }

    /// The plan's tail from `offset` onward, shifted so the tail's
    /// timeline starts at 0. Segments are kept whole (the LP plans this
    /// serves are slot-aligned, so nothing straddles an epoch boundary);
    /// the 1e-9 slack absorbs float drift in the boundary itself. This
    /// is how the online frameworks slice a global-timeline resolver
    /// plan down to one epoch's or batch's residual problem.
    pub fn tail_from(&self, offset: f64) -> FlowPlan {
        FlowPlan {
            segments: self
                .segments
                .iter()
                .filter(|s| s.t0 >= offset - 1e-9)
                .map(|s| Segment {
                    t0: s.t0 - offset,
                    t1: s.t1 - offset,
                    rate: s.rate,
                    edges: s.edges.clone(),
                })
                .collect(),
        }
    }

    /// Truncates the plan at the moment `demand` is met ("once σ units
    /// have been scheduled, leave the remaining slots empty", §4.1).
    pub fn truncate_at(&self, demand: f64) -> FlowPlan {
        let Some(end) = self.completion(demand) else {
            return self.clone();
        };
        let mut out = Vec::new();
        for s in &self.segments {
            if s.t0 >= end {
                break;
            }
            if s.t1 <= end {
                out.push(s.clone());
            } else {
                out.push(Segment {
                    t0: s.t0,
                    t1: end,
                    rate: s.rate,
                    edges: s.edges.clone(),
                });
                break;
            }
        }
        FlowPlan { segments: out }
    }
}

/// A rate plan for every flow of an instance, indexed `[coflow][flow]`.
#[derive(Clone, Debug, Default)]
pub struct RatePlan {
    /// Per-flow plans.
    pub flows: Vec<Vec<FlowPlan>>,
}

impl RatePlan {
    /// An empty plan shaped like `inst`.
    pub fn empty_like(inst: &CoflowInstance) -> RatePlan {
        RatePlan {
            flows: inst
                .coflows
                .iter()
                .map(|c| vec![FlowPlan::default(); c.flows.len()])
                .collect(),
        }
    }

    /// The Stretch transformation (§4.1): "whatever LP schedules in the
    /// interval `[a,b]`, we will schedule in the interval `[a/λ, b/λ]`" —
    /// the *rate profile replays* at dilated times (`rate_new(u) =
    /// rate_old(λu)`), so each instant stays feasible while the flow now
    /// moves `σ/λ ≥ σ` volume in total. Follow with [`RatePlan::truncate`]
    /// to stop each flow once its demand `σ` is met, which happens at
    /// `C*(λ)/λ` — the quantity Lemma 4.3's analysis bounds.
    ///
    /// Requires `0 < λ ≤ 1`.
    pub fn stretch(&self, lambda: f64) -> RatePlan {
        assert!(
            lambda > 0.0 && lambda <= 1.0,
            "stretch factor λ must lie in (0, 1], got {lambda}"
        );
        let map = |fp: &FlowPlan| FlowPlan {
            segments: fp
                .segments
                .iter()
                .map(|s| Segment {
                    t0: s.t0 / lambda,
                    t1: s.t1 / lambda,
                    rate: s.rate,
                    edges: s.edges.clone(),
                })
                .collect(),
        };
        RatePlan {
            flows: self
                .flows
                .iter()
                .map(|row| row.iter().map(map).collect())
                .collect(),
        }
    }

    /// Truncates every flow at its demand (step 4 of Stretch).
    pub fn truncate(&self, inst: &CoflowInstance) -> RatePlan {
        RatePlan {
            flows: self
                .flows
                .iter()
                .enumerate()
                .map(|(j, row)| {
                    row.iter()
                        .enumerate()
                        .map(|(i, fp)| fp.truncate_at(inst.coflows[j].flows[i].demand))
                        .collect()
                })
                .collect(),
        }
    }

    /// Continuous per-coflow completion times (`None` if incomplete).
    pub fn completions(&self, inst: &CoflowInstance) -> Vec<Option<f64>> {
        self.flows
            .iter()
            .enumerate()
            .map(|(j, row)| {
                let mut worst: f64 = 0.0;
                for (i, fp) in row.iter().enumerate() {
                    match fp.completion(inst.coflows[j].flows[i].demand) {
                        Some(c) => worst = worst.max(c),
                        None => return None,
                    }
                }
                Some(worst)
            })
            .collect()
    }

    /// Integrates the continuous plan into unit slots (slot `t` covers
    /// `[t-1, t]`), producing a slotted [`Schedule`].
    ///
    /// Feasibility is preserved: a slot's per-edge volume is the integral
    /// of per-edge rates over a unit-length window, and every instant's
    /// rates were feasible (for stretched plans, the window covers `λ ≤ 1`
    /// time units of the original schedule — the paper's weighted-average
    /// argument in §4.1).
    pub fn discretize(&self) -> Schedule {
        fn upsert(out: &mut Vec<SlotTransfer>, slot: u32) -> usize {
            match out.binary_search_by_key(&slot, |st| st.slot) {
                Ok(idx) => idx,
                Err(idx) => {
                    out.insert(
                        idx,
                        SlotTransfer {
                            slot,
                            volume: 0.0,
                            edges: Vec::new(),
                        },
                    );
                    idx
                }
            }
        }
        let map_flow = |fp: &FlowPlan| -> Vec<SlotTransfer> {
            // Accumulate per-slot volume and edge volumes.
            let mut out: Vec<SlotTransfer> = Vec::new();
            for s in &fp.segments {
                if s.t1 <= s.t0 {
                    continue;
                }
                let first_slot = s.t0.floor() as u32 + 1; // slot covering t0
                let last_slot = (s.t1.ceil() as u32).max(first_slot);
                for slot in first_slot..=last_slot {
                    let lo = (slot - 1) as f64;
                    let hi = slot as f64;
                    let overlap = (s.t1.min(hi) - s.t0.max(lo)).max(0.0);
                    if overlap <= 0.0 {
                        continue;
                    }
                    let idx = upsert(&mut out, slot);
                    out[idx].volume += s.rate * overlap;
                    for &(e, r) in &s.edges {
                        let vol = r * overlap;
                        if vol == 0.0 {
                            continue;
                        }
                        match out[idx].edges.iter_mut().find(|(ee, _)| *ee == e) {
                            Some((_, v)) => *v += vol,
                            None => out[idx].edges.push((e, vol)),
                        }
                    }
                }
            }
            out.retain(|st| st.volume > VOL_EPS || st.edges.iter().any(|&(_, v)| v > VOL_EPS));
            out
        };
        Schedule {
            flows: self
                .flows
                .iter()
                .map(|row| row.iter().map(map_flow).collect())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coflow, CoflowInstance, Flow};
    use coflow_netgraph::topology;

    fn unit_segment(t0: f64, t1: f64, rate: f64) -> Segment {
        Segment {
            t0,
            t1,
            rate,
            edges: vec![(EdgeId::from_index(0), rate)],
        }
    }

    fn two_slot_plan() -> FlowPlan {
        FlowPlan {
            segments: vec![unit_segment(0.0, 1.0, 0.9), unit_segment(9.0, 10.0, 0.1)],
        }
    }

    #[test]
    fn completion_interpolates_within_segment() {
        let fp = two_slot_plan();
        assert_eq!(fp.total_volume(), 1.0);
        // 0.45 units are done at t=0.5.
        assert!((fp.completion(0.45).unwrap() - 0.5).abs() < 1e-9);
        // Full unit completes at t=10.
        assert!((fp.completion(1.0).unwrap() - 10.0).abs() < 1e-9);
        assert!(fp.completion(1.1).is_none());
    }

    #[test]
    fn truncate_cuts_mid_segment() {
        let fp = two_slot_plan();
        let cut = fp.truncate_at(0.45);
        assert_eq!(cut.segments.len(), 1);
        assert!((cut.segments[0].t1 - 0.5).abs() < 1e-9);
        assert!((cut.total_volume() - 0.45).abs() < 1e-9);
        // Truncating at more than the total keeps everything.
        assert_eq!(fp.truncate_at(2.0), fp);
    }

    #[test]
    fn stretch_replays_rates_at_dilated_times() {
        let fp = two_slot_plan();
        let plan = RatePlan {
            flows: vec![vec![fp]],
        };
        let stretched = plan.stretch(0.5);
        let sfp = &stretched.flows[0][0];
        // Rates unchanged, times divided by λ, so pre-truncation volume
        // doubles (1/λ = 2).
        assert!((sfp.total_volume() - 2.0).abs() < 1e-12);
        assert!((sfp.segments[0].t1 - 2.0).abs() < 1e-12);
        assert!((sfp.segments[0].rate - 0.9).abs() < 1e-12);
        assert!((sfp.segments[1].t0 - 18.0).abs() < 1e-12);
        assert!((sfp.segments[0].edges[0].1 - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "stretch factor")]
    fn stretch_rejects_bad_lambda() {
        RatePlan::default().stretch(1.5);
    }

    #[test]
    fn discretize_unit_aligned_roundtrips() {
        let fp = two_slot_plan();
        let plan = RatePlan {
            flows: vec![vec![fp]],
        };
        let sched = plan.discretize();
        let slots = &sched.flows[0][0];
        assert_eq!(slots.len(), 2);
        assert_eq!(slots[0].slot, 1);
        assert!((slots[0].volume - 0.9).abs() < 1e-12);
        assert_eq!(slots[1].slot, 10);
        assert!((slots[1].volume - 0.1).abs() < 1e-12);
    }

    #[test]
    fn discretize_splits_fractional_segments() {
        // One segment [0.5, 2.5) at rate 1: slots get 0.5, 1.0, 0.5.
        let plan = RatePlan {
            flows: vec![vec![FlowPlan {
                segments: vec![unit_segment(0.5, 2.5, 1.0)],
            }]],
        };
        let sched = plan.discretize();
        let slots = &sched.flows[0][0];
        assert_eq!(slots.len(), 3);
        assert!((slots[0].volume - 0.5).abs() < 1e-12);
        assert!((slots[1].volume - 1.0).abs() < 1e-12);
        assert!((slots[2].volume - 0.5).abs() < 1e-12);
        // Edge volumes follow.
        assert!((slots[0].edges[0].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stretched_plan_completes_at_alpha_point_over_lambda() {
        // The stretched+truncated flow completes at C*(λ)/λ, where C*(λ)
        // is the moment the *original* plan had moved a λ fraction. For
        // the 2-segment plan (0.9 by t=1, rest at t=10) and λ=0.5:
        // C*(0.5) = 0.5/0.9 ≈ 0.5556, so completion ≈ 1.1111 — far
        // earlier than the original completion at t=10.
        let fp = two_slot_plan();
        let topo = topology::line(2, 10.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let inst = CoflowInstance::new(g, vec![Coflow::new(vec![Flow::new(v0, v1, 1.0)])]).unwrap();
        let plan = RatePlan {
            flows: vec![vec![fp]],
        };
        let base = plan.completions(&inst)[0].unwrap();
        assert!((base - 10.0).abs() < 1e-9);
        let stretched = plan.stretch(0.5).truncate(&inst).completions(&inst)[0].unwrap();
        let expected = (0.5 / 0.9) / 0.5;
        assert!(
            (stretched - expected).abs() < 1e-9,
            "stretched {stretched} expected {expected}"
        );
    }

    #[test]
    fn incomplete_plans_report_none() {
        let topo = topology::line(2, 10.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let inst = CoflowInstance::new(g, vec![Coflow::new(vec![Flow::new(v0, v1, 5.0)])]).unwrap();
        let plan = RatePlan {
            flows: vec![vec![FlowPlan {
                segments: vec![unit_segment(0.0, 1.0, 1.0)],
            }]],
        };
        assert_eq!(plan.completions(&inst), vec![None]);
    }
}
