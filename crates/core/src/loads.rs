//! Routing-agnostic per-port link loads and bottleneck lower bounds.
//!
//! The LP-free ordering tier (Sincronia, DCoflow — see
//! `coflow-baselines::ordering`) works on a *load matrix* `D[l][j]`: how
//! many slots of link `l`'s capacity coflow `j` needs in isolation. On
//! the paper's big-switch abstraction the links are the 2·P ingress and
//! egress ports; on a general graph the natural analogue is each node's
//! aggregate **egress** capacity (everything it can send per slot) and
//! aggregate **ingress** capacity (everything it can receive per slot).
//! Every flow must cross its source's egress cut and its sink's ingress
//! cut regardless of routing, so
//!
//! ```text
//! D[v][j]     = Σ { σ : flows of j with src = v } / out_capacity(v)
//! D[V + v][j] = Σ { σ : flows of j with dst = v } / in_capacity(v)
//! ```
//!
//! is a valid per-link slot requirement under *any* routing model, and
//! `Γ_j = max_l D[l][j]` is a lower bound on `C_j − r_j` for any
//! schedule. On an I/O-gadget switch (unit port capacity) this reduces
//! exactly to Sincronia's port-load matrix.
//!
//! The same `Γ_j` drives deadline synthesis in `coflow-workloads`:
//! `deadline_j = release_j + max(1, ⌈slack · Γ_j⌉)` gives every coflow a
//! deadline proportional to its own isolation bottleneck, so one `slack`
//! knob spans "impossibly tight" (≈1) to "trivially loose" (≫1)
//! deterministically, with no RNG involved.

use crate::model::CoflowInstance;

/// The per-link load matrix `D[l][j]` of an instance: `2·V` rows (node
/// egress cuts, then node ingress cuts) by `n` coflow columns. Rows for
/// nodes with zero attached capacity (and hence, in a valid instance,
/// zero incident flow demand) are all-zero.
pub fn link_loads(inst: &CoflowInstance) -> Vec<Vec<f64>> {
    let g = &inst.graph;
    let nv = g.node_count();
    let n = inst.num_coflows();
    let out_cap: Vec<f64> = g
        .nodes()
        .map(|v| g.out_edges(v).iter().map(|&e| g.capacity(e)).sum())
        .collect();
    let in_cap: Vec<f64> = g
        .nodes()
        .map(|v| g.in_edges(v).iter().map(|&e| g.capacity(e)).sum())
        .collect();
    let mut d = vec![vec![0.0; n]; 2 * nv];
    for (j, cf) in inst.coflows.iter().enumerate() {
        for f in &cf.flows {
            let (s, t) = (f.src.index(), f.dst.index());
            if out_cap[s] > 0.0 {
                d[s][j] += f.demand / out_cap[s];
            }
            if in_cap[t] > 0.0 {
                d[nv + t][j] += f.demand / in_cap[t];
            }
        }
    }
    d
}

/// Per-coflow bottleneck bound `Γ_j = max_l D[l][j]`: the number of
/// slots coflow `j` needs on its most-loaded cut when it runs alone.
/// `⌈Γ_j⌉ + r_j ≤ C_j` in every feasible schedule and routing model.
pub fn coflow_bottleneck_bounds(inst: &CoflowInstance) -> Vec<f64> {
    let d = link_loads(inst);
    let n = inst.num_coflows();
    (0..n)
        .map(|j| d.iter().map(|row| row[j]).fold(0.0, f64::max))
        .collect()
}

/// Synthesizes a deadline for every coflow:
/// `deadline_j = release_j + max(1, ⌈slack · Γ_j⌉)`.
///
/// Deterministic (no RNG); `slack = 1` is the tightest meetable target
/// (the coflow's own isolation bottleneck), larger values leave
/// headroom for contention. Non-finite or non-positive `slack` is
/// clamped to `1e-9`, which degenerates to `release + 1`.
pub fn apply_deadline_slack(inst: &mut CoflowInstance, slack: f64) {
    let slack = if slack.is_finite() && slack > 0.0 {
        slack
    } else {
        1e-9
    };
    let gamma = coflow_bottleneck_bounds(inst);
    for (cf, g) in inst.coflows.iter_mut().zip(gamma) {
        let need = (slack * g).ceil().max(1.0);
        // Saturate instead of wrapping on absurd slack values.
        let need = if need >= u32::MAX as f64 {
            u32::MAX - cf.release()
        } else {
            need as u32
        };
        cf.deadline = Some(cf.release().saturating_add(need).max(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coflow, Flow};
    use coflow_netgraph::gadget::{with_io_gadget, IoLimit};
    use coflow_netgraph::topology;

    /// 2×2 switch wrapped in the unit-capacity I/O gadget, with
    /// endpoints on the inner (gadget) nodes — the big-switch model.
    /// Returns the instance plus the inner node indices of (ingress 0,
    /// ingress 1, egress 0, egress 1).
    fn switch_inst() -> (CoflowInstance, [usize; 4]) {
        let topo = topology::bipartite_switch(2, 1.0);
        let limits = vec![IoLimit::symmetric(1.0); topo.graph.node_count()];
        let gg = with_io_gadget(&topo.graph, &limits);
        let ports = [
            gg.inner[topo.sources[0].index()],
            gg.inner[topo.sources[1].index()],
            gg.inner[topo.sinks[0].index()],
            gg.inner[topo.sinks[1].index()],
        ];
        // Coflow 0: 2 units ingress port 0 → egress port 1.
        // Coflow 1: 1 unit ingress 0 → egress 0, 1 unit ingress 1 → egress 1.
        let coflows = vec![
            Coflow::new(vec![Flow::new(ports[0], ports[3], 2.0)]),
            Coflow::new(vec![
                Flow::new(ports[0], ports[2], 1.0),
                Flow::new(ports[1], ports[3], 1.0),
            ]),
        ];
        (
            CoflowInstance::new(gg.graph, coflows).unwrap(),
            ports.map(|v| v.index()),
        )
    }

    #[test]
    fn switch_loads_match_port_loads() {
        let (inst, ports) = switch_inst();
        let d = link_loads(&inst);
        let nv = inst.graph.node_count();
        // Ingress port 0 (egress cut of its inner node, capacity 1):
        // coflow 0 sends 2, coflow 1 sends 1.
        assert_eq!(d[ports[0]], vec![2.0, 1.0]);
        assert_eq!(d[ports[1]], vec![0.0, 1.0]);
        // Egress port 1 (ingress cut of its inner node).
        assert_eq!(d[nv + ports[3]], vec![2.0, 1.0]);
        assert_eq!(d[nv + ports[2]], vec![0.0, 1.0]);
        assert_eq!(coflow_bottleneck_bounds(&inst), vec![2.0, 1.0]);
    }

    #[test]
    fn deadline_slack_is_release_plus_scaled_bottleneck() {
        let (mut inst, _) = switch_inst();
        inst.coflows[1].flows[0].release = 3;
        inst.coflows[1].flows[1].release = 5;
        apply_deadline_slack(&mut inst, 2.0);
        // Coflow 0: release 0, Γ = 2 → deadline 4.
        assert_eq!(inst.coflows[0].deadline, Some(4));
        // Coflow 1: release = min(3,5) = 3, Γ = 1 → 3 + 2 = 5.
        assert_eq!(inst.coflows[1].deadline, Some(5));
        // Synthesized deadlines pass instance validation.
        let rebuilt = CoflowInstance::new(inst.graph.clone(), inst.coflows.clone());
        assert!(rebuilt.is_ok());
    }

    #[test]
    fn tiny_slack_degenerates_to_release_plus_one() {
        let (mut inst, _) = switch_inst();
        apply_deadline_slack(&mut inst, f64::NAN);
        assert_eq!(inst.coflows[0].deadline, Some(1));
    }
}
