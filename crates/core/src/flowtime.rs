//! Weighted flow time and the doubling-batch online framework — the
//! paper's §7 directions, made concrete.
//!
//! The conclusion singles out two follow-ups: *online* coflow
//! scheduling, where "prior work \[17\] deals with the problem of
//! minimizing weighted completion time by making use of offline
//! approximation algorithms", and the harder objective of weighted
//! **flow time** `Σ_j w_j (C_j − r_j)`. This module supplies both
//! ingredients:
//!
//! * [`flow_times`] — flow-time accounting for any completion vector
//!   (completion-time algorithms can always be *scored* on flow time);
//! * [`interval_batch_online`] — the classic doubling framework the
//!   cited prior work builds on: collect arrivals up to each boundary
//!   `τ_k = 2^k`, run the offline algorithm on the batch, and append the
//!   batch's schedule after everything already committed. With a
//!   ρ-approximate offline algorithm this is O(ρ)-competitive for
//!   weighted completion time; batches never preempt each other, so the
//!   composed schedule is feasible by construction.
//!
//! The event-driven alternative that re-solves at every arrival lives in
//! [`crate::online`]; benches compare the two (re-solving is greedier
//! and usually wins on cost, the batch framework holds the guarantee and
//! solves exponentially fewer LPs).

use crate::error::CoflowError;
use crate::heuristic::lp_heuristic;
use crate::horizon::{horizon, HorizonMode};
use crate::model::{Coflow, CoflowInstance, Flow};
use crate::rateplan::RatePlan;
use crate::resolver::TimeIndexedResolver;
use crate::routing::Routing;
use crate::schedule::{Completions, Schedule, SlotTransfer};
use crate::stretch::StretchOptions;
use coflow_lp::SolverOptions;

/// Flow-time statistics (`C_j − r_j`, release-relative latency).
#[derive(Clone, Debug)]
pub struct FlowTimes {
    /// Per-coflow flow time, using each coflow's earliest flow release.
    pub per_coflow: Vec<f64>,
    /// `Σ_j w_j (C_j − r_j)`.
    pub weighted_total: f64,
    /// `Σ_j (C_j − r_j)`.
    pub unweighted_total: f64,
    /// Largest single flow time (tail latency).
    pub max: f64,
}

/// Scores a completion vector on the flow-time objective.
///
/// Releases are slot boundaries and completions are slot indices, so a
/// coflow released at `r` finishing in slot `r + 1` (the first slot it
/// may use) has flow time 1 — flow times are always ≥ 1.
pub fn flow_times(inst: &CoflowInstance, completions: &Completions) -> FlowTimes {
    let per_coflow: Vec<f64> = inst
        .coflows
        .iter()
        .zip(&completions.per_coflow)
        .map(|(cf, &c)| f64::from(c) - f64::from(cf.release()))
        .collect();
    let weighted_total = per_coflow
        .iter()
        .zip(&inst.coflows)
        .map(|(&ft, cf)| cf.weight * ft)
        .sum();
    FlowTimes {
        unweighted_total: per_coflow.iter().sum(),
        max: per_coflow.iter().fold(0.0f64, |a, &b| a.max(b)),
        weighted_total,
        per_coflow,
    }
}

/// Result of [`interval_batch_online`].
#[derive(Clone, Debug)]
pub struct BatchedOutcome {
    /// The composed schedule over the original instance (feasible and
    /// complete; validate with [`crate::validate::validate`]).
    pub schedule: Schedule,
    /// Number of non-empty batches = number of offline solves.
    pub batches: usize,
    /// The boundary slot at which each batch was dispatched.
    pub dispatched_at: Vec<u32>,
    /// Total simplex iterations across the per-batch solves.
    pub lp_iterations: usize,
}

/// The batch boundary a coflow with full release `r` joins under the
/// doubling framework: the first element of `0, 1, 2, 4, 8, …` that is
/// `≥ r`. This is the closed form of the boundary assignment inside
/// [`interval_batch_online`], exported so the streaming service can
/// assign arrivals to batches without materializing the boundary list.
pub fn doubling_boundary(r: u32) -> u32 {
    if r == 0 {
        0
    } else {
        r.next_power_of_two()
    }
}

/// The doubling-batch online framework. See module docs.
///
/// Batch boundaries are `0, 1, 2, 4, 8, …`; a coflow joins the first
/// batch whose boundary covers its *full* release (all flows present —
/// coflows are atomic here, matching the offline objective). Each batch
/// is solved offline with the λ=1 LP heuristic and appended after
/// `max(boundary, end of committed work)`.
///
/// # Errors
///
/// Propagates routing and LP errors from the per-batch solves.
pub fn interval_batch_online(
    inst: &CoflowInstance,
    routing: &Routing,
    lp_opts: &SolverOptions,
) -> Result<BatchedOutcome, CoflowError> {
    interval_batch_online_with(inst, routing, lp_opts, true)
}

/// [`interval_batch_online`] with the warm start togglable: each batch
/// *appends* its coflows to one persistent [`TimeIndexedResolver`] model
/// (dispatched work stays frozen in place) and re-solves from the
/// previous batch's basis; `warm = false` re-solves each batch from the
/// all-slack crash basis instead.
///
/// # Errors
///
/// Propagates routing and LP errors from the per-batch solves.
pub fn interval_batch_online_with(
    inst: &CoflowInstance,
    routing: &Routing,
    lp_opts: &SolverOptions,
    warm: bool,
) -> Result<BatchedOutcome, CoflowError> {
    routing.validate(inst)?;
    let max_release = inst
        .coflows
        .iter()
        .map(Coflow::full_release)
        .max()
        .unwrap_or(0);

    // Boundaries 0, 1, 2, 4, … covering every release.
    let mut boundaries: Vec<u32> = vec![0];
    let mut b = 1u32;
    while boundaries.last().copied().expect("nonempty") < max_release {
        boundaries.push(b);
        b = b.saturating_mul(2);
    }

    // Assign each coflow to the first boundary ≥ its full release
    // (equivalently: the boundary is `doubling_boundary(r)`).
    let mut batch_of = Vec::with_capacity(inst.num_coflows());
    for cf in &inst.coflows {
        let r = cf.full_release();
        let k = boundaries.partition_point(|&bd| bd < r);
        let k = k.min(boundaries.len() - 1);
        debug_assert_eq!(boundaries[k], doubling_boundary(r));
        batch_of.push(k);
    }

    let mut schedule = Schedule {
        flows: inst
            .coflows
            .iter()
            .map(|c| vec![Vec::new(); c.flows.len()])
            .collect(),
    };
    let mut committed_end = 0u32; // last slot used by appended batches
    let mut batches = 0;
    let mut dispatched_at = Vec::new();
    let mut rebuilds = 0;

    let t0 = horizon(inst, routing, HorizonMode::Greedy { margin: 1.25 })?;
    let mut resolver = TimeIndexedResolver::new(inst, routing, t0, warm)?;

    for (k, &boundary) in boundaries.iter().enumerate() {
        // Members of this batch, with releases reset (the batch starts
        // from scratch at its dispatch time).
        let mut members: Vec<usize> = Vec::new();
        let mut coflows = Vec::new();
        let mut single_tmp: Vec<Vec<coflow_netgraph::Path>> = Vec::new();
        let mut multi_tmp: Vec<Vec<Vec<coflow_netgraph::Path>>> = Vec::new();
        for (j, cf) in inst.coflows.iter().enumerate() {
            if batch_of[j] != k {
                continue;
            }
            members.push(j);
            coflows.push(Coflow::weighted(
                cf.weight,
                cf.flows
                    .iter()
                    .map(|f| Flow::new(f.src, f.dst, f.demand))
                    .collect(),
            ));
            match routing {
                Routing::SinglePath(p) => single_tmp.push(p[j].clone()),
                Routing::MultiPath(p) => multi_tmp.push(p[j].clone()),
                Routing::FreePath => {}
            }
        }
        if members.is_empty() {
            continue;
        }
        batches += 1;
        let sub_routing = match routing {
            Routing::SinglePath(_) => Routing::SinglePath(single_tmp),
            Routing::MultiPath(_) => Routing::MultiPath(multi_tmp),
            Routing::FreePath => Routing::FreePath,
        };
        let sub_inst = CoflowInstance::new(inst.graph.clone(), coflows)
            .expect("batch of a valid instance is valid");
        let t_batch = horizon(
            &sub_inst,
            &sub_routing,
            HorizonMode::Greedy { margin: 1.25 },
        )?;

        let start = boundary.max(committed_end);
        dispatched_at.push(start);
        // Make sure the persistent model reaches the end of this batch
        // before appending its columns (rebuild replays earlier batches
        // as frozen history).
        let needed = start + t_batch;
        if needed > resolver.horizon() {
            let grown = needed.max(((resolver.horizon() as f64) * 1.5).ceil() as u32);
            resolver.rebuild(grown)?;
        }
        for &j in &members {
            for i in 0..inst.coflows[j].flows.len() {
                resolver.activate_flow(j, i, start + 1)?;
            }
        }
        let lp = loop {
            match resolver.solve(lp_opts)? {
                Some(lp) => break lp,
                None => {
                    rebuilds += 1;
                    if rebuilds > 8 {
                        return Err(CoflowError::Lp(
                            "batch-online resolver: horizon growth did not restore feasibility"
                                .into(),
                        ));
                    }
                    let grown = ((resolver.horizon() as f64) * 1.5).ceil() as u32 + 1;
                    resolver.rebuild(grown)?;
                }
            }
        };
        let sub_plan = batch_plan(&lp.plan, &members, &sub_inst, start);
        let plan = lp_heuristic(&sub_inst, &sub_plan, StretchOptions::default());

        let mut batch_end = start;
        for (sj, row) in plan.flows.iter().enumerate() {
            let j = members[sj];
            for (i, fl) in row.iter().enumerate() {
                let demand = inst.coflows[j].flows[i].demand;
                for st in fl {
                    let slot = start + st.slot;
                    batch_end = batch_end.max(slot);
                    // Freeze the dispatched transfer in the persistent
                    // LP: later batches re-solve around it, not over it.
                    resolver.fix_slot(j, i, slot, st.volume / demand);
                    schedule.flows[j][i].push(SlotTransfer {
                        slot,
                        volume: st.volume,
                        edges: st.edges.clone(),
                    });
                }
            }
        }
        committed_end = batch_end;
    }

    for row in &mut schedule.flows {
        for fl in row {
            fl.sort_by_key(|st| st.slot);
        }
    }
    Ok(BatchedOutcome {
        schedule,
        batches,
        dispatched_at,
        lp_iterations: resolver.total_iterations(),
    })
}

/// Slices the resolver's global-timeline plan down to one batch's
/// sub-instance: the batch's flows only, segments shifted so the batch
/// timeline starts at 0.
fn batch_plan(
    global: &RatePlan,
    members: &[usize],
    sub_inst: &CoflowInstance,
    start: u32,
) -> RatePlan {
    let s0 = start as f64;
    RatePlan {
        flows: members
            .iter()
            .enumerate()
            .map(|(sj, &j)| {
                (0..sub_inst.coflows[sj].flows.len())
                    .map(|i| global.flows[j][i].tail_from(s0))
                    .collect()
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Algorithm, Scheduler};
    use crate::validate::{validate, Tolerance};
    use coflow_netgraph::topology;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn staggered(seed: u64, releases: &[u32]) -> CoflowInstance {
        let topo = topology::swan().scale_capacity(5.0);
        let g = topo.graph;
        let nodes: Vec<_> = g.nodes().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let coflows = releases
            .iter()
            .map(|&r| {
                let a = nodes[rng.gen_range(0..nodes.len())];
                let mut b = nodes[rng.gen_range(0..nodes.len())];
                while b == a {
                    b = nodes[rng.gen_range(0..nodes.len())];
                }
                Coflow::weighted(
                    rng.gen_range(1.0..10.0),
                    vec![Flow::released(a, b, rng.gen_range(20.0..60.0), r)],
                )
            })
            .collect();
        CoflowInstance::new(g, coflows).unwrap()
    }

    #[test]
    fn flow_time_arithmetic_by_hand() {
        let inst = staggered(1, &[0, 4]);
        let completions = Completions {
            per_coflow: vec![3, 9],
            weighted_total: 0.0, // unused here
            unweighted_total: 0.0,
            makespan: 9,
        };
        let ft = flow_times(&inst, &completions);
        assert_eq!(ft.per_coflow, vec![3.0, 5.0]);
        assert_eq!(ft.unweighted_total, 8.0);
        assert_eq!(ft.max, 5.0);
        let expect_weighted = inst.coflows[0].weight * 3.0 + inst.coflows[1].weight * 5.0;
        assert!((ft.weighted_total - expect_weighted).abs() < 1e-12);
    }

    #[test]
    fn all_released_at_zero_is_one_batch_equal_to_offline() {
        let inst = staggered(2, &[0, 0, 0]);
        let out =
            interval_batch_online(&inst, &Routing::FreePath, &SolverOptions::default()).unwrap();
        assert_eq!(out.batches, 1);
        assert_eq!(out.dispatched_at, vec![0]);
        let rep = validate(
            &inst,
            &Routing::FreePath,
            &out.schedule,
            Tolerance::default(),
        )
        .unwrap();
        let offline = Scheduler::new(Algorithm::LpHeuristic)
            .solve(&inst, &Routing::FreePath)
            .unwrap();
        assert!(
            (rep.completions.weighted_total - offline.cost).abs() < 1e-6,
            "batched {} vs offline {}",
            rep.completions.weighted_total,
            offline.cost
        );
    }

    #[test]
    fn doubling_boundary_closed_form() {
        // First element of 0, 1, 2, 4, 8, … that is ≥ r.
        for r in 0..200u32 {
            let mut b = 0u32;
            let mut step = 1u32;
            while b < r {
                b = step;
                step *= 2;
            }
            assert_eq!(doubling_boundary(r), b, "release {r}");
        }
    }

    #[test]
    fn doubling_boundaries_group_arrivals() {
        // Releases 0, 3, 9 → boundaries 0 and 4 and 16 → three batches.
        let inst = staggered(3, &[0, 3, 9]);
        let out =
            interval_batch_online(&inst, &Routing::FreePath, &SolverOptions::default()).unwrap();
        assert_eq!(out.batches, 3);
        // Dispatch slots respect both the boundary and committed work.
        assert_eq!(out.dispatched_at[0], 0);
        assert!(out.dispatched_at[1] >= 4);
        assert!(out.dispatched_at[2] >= 16);
        let rep = validate(
            &inst,
            &Routing::FreePath,
            &out.schedule,
            Tolerance::default(),
        )
        .unwrap();
        // No coflow starts before its release.
        for (j, &c) in rep.completions.per_coflow.iter().enumerate() {
            assert!(c > inst.coflows[j].release());
        }
    }

    #[test]
    fn batched_cost_within_constant_of_event_driven() {
        // The guarantee-holding framework may lose to greedy re-solving,
        // but not unboundedly: the doubling analysis caps the gap.
        let inst = staggered(4, &[0, 2, 2, 5, 11]);
        let opts = SolverOptions::default();
        let batched = interval_batch_online(&inst, &Routing::FreePath, &opts).unwrap();
        let event = crate::online::online_heuristic(&inst, &Routing::FreePath, &opts).unwrap();
        let bat = validate(
            &inst,
            &Routing::FreePath,
            &batched.schedule,
            Tolerance::default(),
        )
        .unwrap()
        .completions
        .weighted_total;
        let evt = validate(
            &inst,
            &Routing::FreePath,
            &event.schedule,
            Tolerance::default(),
        )
        .unwrap()
        .completions
        .weighted_total;
        let offline = Scheduler::new(Algorithm::LpHeuristic)
            .solve(&inst, &Routing::FreePath)
            .unwrap();
        assert!(bat >= offline.lower_bound - 1e-6);
        assert!(evt >= offline.lower_bound - 1e-6);
        assert!(
            bat <= 8.0 * evt,
            "batched {bat} suspiciously far above event-driven {evt}"
        );
        // Exponentially fewer solves: 4 epochs for events vs 4 doubling
        // batches here, but the batch count is O(log max_release).
        assert!(batched.batches <= 4);
    }

    #[test]
    fn flow_time_scores_any_schedule() {
        let inst = staggered(5, &[0, 6]);
        let out =
            interval_batch_online(&inst, &Routing::FreePath, &SolverOptions::default()).unwrap();
        let rep = validate(
            &inst,
            &Routing::FreePath,
            &out.schedule,
            Tolerance::default(),
        )
        .unwrap();
        let ft = flow_times(&inst, &rep.completions);
        // Flow times are at least 1 and releases were subtracted.
        for (j, &f) in ft.per_coflow.iter().enumerate() {
            assert!(f >= 1.0 - 1e-9, "coflow {j} flow time {f}");
            assert!(
                f <= f64::from(rep.completions.per_coflow[j]),
                "flow time exceeds completion time"
            );
        }
        assert!(ft.weighted_total > 0.0);
        assert!(ft.max >= 1.0);
    }

    #[test]
    fn single_path_batches_validate() {
        let inst = staggered(6, &[0, 3, 7]);
        let mut rng = StdRng::seed_from_u64(8);
        let routing = crate::routing::random_shortest_paths(&inst, &mut rng).unwrap();
        let out = interval_batch_online(&inst, &routing, &SolverOptions::default()).unwrap();
        validate(&inst, &routing, &out.schedule, Tolerance::default()).unwrap();
    }
}
