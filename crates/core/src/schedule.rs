//! Slotted schedules and their completion-time accounting.
//!
//! A [`Schedule`] says, for every flow and every time slot, how much
//! volume moves and over which edges. Slot `t ≥ 1` covers the time
//! interval `[t-1, t]`; a coflow's completion time is the index of the
//! earliest slot by which *all* of its flows have moved their demand —
//! exactly the paper's objective currency.

use crate::model::CoflowInstance;
use crate::rateplan::VOL_EPS;
use coflow_netgraph::EdgeId;

/// One flow's transfer within one slot.
#[derive(Clone, Debug, PartialEq)]
pub struct SlotTransfer {
    /// Slot index (1-based).
    pub slot: u32,
    /// Volume moved source→sink during the slot.
    pub volume: f64,
    /// Volume carried per edge during the slot.
    pub edges: Vec<(EdgeId, f64)>,
}

/// A complete slotted schedule, indexed `[coflow][flow] → slot entries`
/// (sorted by slot).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Schedule {
    /// Per-flow slot transfers.
    pub flows: Vec<Vec<Vec<SlotTransfer>>>,
}

/// Completion summary produced by [`Schedule::completions`].
#[derive(Clone, Debug)]
pub struct Completions {
    /// Per-coflow completion slot (1-based).
    pub per_coflow: Vec<u32>,
    /// `Σ_j w_j C_j` — the paper's objective.
    pub weighted_total: f64,
    /// `Σ_j C_j` — used by the unweighted Terra comparisons.
    pub unweighted_total: f64,
    /// Largest completion slot (makespan).
    pub makespan: u32,
}

impl Schedule {
    /// Last slot with any positive transfer, or 0 for an empty schedule.
    pub fn horizon(&self) -> u32 {
        self.flows
            .iter()
            .flatten()
            .flatten()
            .map(|st| st.slot)
            .max()
            .unwrap_or(0)
    }

    /// Total volume moved by flow `(j, i)`.
    pub fn flow_volume(&self, j: usize, i: usize) -> f64 {
        self.flows[j][i].iter().map(|st| st.volume).sum()
    }

    /// Completion slot of flow `(j, i)` for a given demand: the earliest
    /// slot whose cumulative volume reaches the demand.
    pub fn flow_completion(&self, j: usize, i: usize, demand: f64) -> Option<u32> {
        let mut acc = 0.0;
        for st in &self.flows[j][i] {
            acc += st.volume;
            if acc >= demand - VOL_EPS.max(1e-7 * demand) {
                return Some(st.slot);
            }
        }
        None
    }

    /// Computes completion statistics against `inst`.
    ///
    /// Returns `None` when some flow never moves its full demand (the
    /// schedule is incomplete — validation reports *which* flow).
    pub fn completions(&self, inst: &CoflowInstance) -> Option<Completions> {
        let mut per_coflow = Vec::with_capacity(inst.num_coflows());
        for (j, cf) in inst.coflows.iter().enumerate() {
            let mut worst = 0u32;
            for (i, f) in cf.flows.iter().enumerate() {
                worst = worst.max(self.flow_completion(j, i, f.demand)?);
            }
            per_coflow.push(worst);
        }
        let weighted_total = per_coflow
            .iter()
            .zip(&inst.coflows)
            .map(|(&c, cf)| cf.weight * c as f64)
            .sum();
        let unweighted_total = per_coflow.iter().map(|&c| c as f64).sum();
        let makespan = per_coflow.iter().copied().max().unwrap_or(0);
        Some(Completions {
            per_coflow,
            weighted_total,
            unweighted_total,
            makespan,
        })
    }

    /// Aggregated per-slot, per-edge volume across all flows. Used by the
    /// validator and by utilization reporting. Returns `(slot, edge) →
    /// volume` as a sorted vector.
    pub fn edge_loads(&self) -> Vec<((u32, EdgeId), f64)> {
        let mut loads: std::collections::BTreeMap<(u32, EdgeId), f64> =
            std::collections::BTreeMap::new();
        for row in &self.flows {
            for fl in row {
                for st in fl {
                    for &(e, v) in &st.edges {
                        *loads.entry((st.slot, e)).or_insert(0.0) += v;
                    }
                }
            }
        }
        loads.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coflow, CoflowInstance, Flow};
    use coflow_netgraph::topology;

    fn line_instance(demands: &[f64]) -> CoflowInstance {
        let topo = topology::line(2, 10.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let coflows = demands
            .iter()
            .map(|&d| Coflow::new(vec![Flow::new(v0, v1, d)]))
            .collect();
        CoflowInstance::new(g, coflows).unwrap()
    }

    fn transfer(slot: u32, volume: f64) -> SlotTransfer {
        SlotTransfer {
            slot,
            volume,
            edges: vec![(EdgeId::from_index(0), volume)],
        }
    }

    #[test]
    fn completions_are_earliest_demand_slot() {
        let inst = line_instance(&[2.0]);
        // Demand met at slot 3 even though a stray slot-5 entry exists.
        let sched = Schedule {
            flows: vec![vec![vec![
                transfer(1, 1.0),
                transfer(3, 1.0),
                transfer(5, 0.0),
            ]]],
        };
        let c = sched.completions(&inst).unwrap();
        assert_eq!(c.per_coflow, vec![3]);
        assert_eq!(c.makespan, 3);
        assert_eq!(c.weighted_total, 3.0);
    }

    #[test]
    fn incomplete_schedule_is_none() {
        let inst = line_instance(&[2.0]);
        let sched = Schedule {
            flows: vec![vec![vec![transfer(1, 1.0)]]],
        };
        assert!(sched.completions(&inst).is_none());
    }

    #[test]
    fn weighted_totals() {
        let topo = topology::line(2, 10.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let inst = CoflowInstance::new(
            g,
            vec![
                Coflow::weighted(2.0, vec![Flow::new(v0, v1, 1.0)]),
                Coflow::weighted(5.0, vec![Flow::new(v0, v1, 1.0)]),
            ],
        )
        .unwrap();
        let sched = Schedule {
            flows: vec![vec![vec![transfer(2, 1.0)]], vec![vec![transfer(1, 1.0)]]],
        };
        let c = sched.completions(&inst).unwrap();
        assert_eq!(c.per_coflow, vec![2, 1]);
        assert_eq!(c.weighted_total, 2.0 * 2.0 + 5.0 * 1.0);
        assert_eq!(c.unweighted_total, 3.0);
    }

    #[test]
    fn coflow_completion_is_max_over_flows() {
        let topo = topology::line(3, 10.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let v2 = g.node_by_label("v2").unwrap();
        let inst = CoflowInstance::new(
            g,
            vec![Coflow::new(vec![
                Flow::new(v0, v1, 1.0),
                Flow::new(v1, v2, 1.0),
            ])],
        )
        .unwrap();
        let sched = Schedule {
            flows: vec![vec![
                vec![transfer(1, 1.0)],
                vec![SlotTransfer {
                    slot: 4,
                    volume: 1.0,
                    edges: vec![(EdgeId::from_index(1), 1.0)],
                }],
            ]],
        };
        let c = sched.completions(&inst).unwrap();
        assert_eq!(c.per_coflow, vec![4]);
    }

    #[test]
    fn edge_loads_aggregate_across_flows() {
        let sched = Schedule {
            flows: vec![vec![vec![transfer(1, 0.6)]], vec![vec![transfer(1, 0.3)]]],
        };
        let loads = sched.edge_loads();
        assert_eq!(loads.len(), 1);
        assert!((loads[0].1 - 0.9).abs() < 1e-12);
        assert_eq!(sched.horizon(), 1);
    }
}
