//! The geometric-interval LP relaxation (paper Appendix A).
//!
//! When the horizon `T` is super-polynomial (large demands or releases),
//! the unit-slot LP of §3 is too big. The appendix replaces slots with
//! geometrically growing intervals `l_k = [τ_{k-1}, τ_k]`, `τ_0 = 0`,
//! `τ_k = (1+ε)^{k-1}`, shrinking the LP to `O(log_{1+ε} T)` periods at
//! the cost of a `(1+ε)` factor — Theorem 4.5's (2+ε)-approximation.
//!
//! Constraints mirror §3 with interval lengths woven in: capacity rows
//! scale by `τ_k − τ_{k-1}` (eqs. (19)/(23)) and the completion bound
//! becomes `C_j ≥ 1 + Σ_k (τ_k − τ_{k-1})(1 − X_j(k))` (eq. (16),
//! Proposition A.1).
//!
//! Release handling follows the paper's §6 implementation note: *"we
//! will not start a job until the whole current interval is after its
//! release time"* — flow `f` gets variables only for intervals with
//! `τ_{k-1} ≥ r_f`. Inside each interval the extracted schedule runs at
//! uniform rate (Appendix A: "we just schedule each flow at uniform
//! speed"), which keeps every instant's rates feasible and hence every
//! discretized slot feasible.
//!
//! This module also serves the Jahanjou et al. baseline, which solves
//! the same interval LP and rounds by α-points; see
//! `coflow-baselines::jahanjou`.

use crate::error::CoflowError;
use crate::model::CoflowInstance;
use crate::rateplan::{FlowPlan, RatePlan, Segment};
use crate::routing::Routing;
use crate::timeidx::{LpRelaxation, LpSize};
use coflow_lp::{Basis, BasisStatus, Cmp, Model, Sense, SolverOptions, VarId};
use coflow_netgraph::EdgeId;
use std::collections::HashMap;

const X_EPS: f64 = 1e-9;

/// Logical identity of one variable or row of the interval LP,
/// independent of the ε that produced it: `(kind, a, b, c, d)` where the
/// payload fields are flow/coflow indices, path or mask positions,
/// node/edge indices, and the *global interval ordinal* `k`. Two LPs
/// built at different ε share keys for structurally-corresponding
/// entities (early intervals map to early intervals), which is what lets
/// a basis crash across the sweep.
type LayoutKey = (u8, u32, u32, u32, u32);

const KV_X: u8 = 0;
const KV_PATH: u8 = 1;
const KV_S: u8 = 2;
const KV_EDGE: u8 = 3;
const KV_XCOFLOW: u8 = 4;
const KV_C: u8 = 5;
const KR_CHAIN: u8 = 10;
const KR_DEMAND: u8 = 11;
const KR_PROGRESS: u8 = 12;
const KR_COMPLETION: u8 = 13;
const KR_CONSERVE: u8 = 14;
const KR_CAPACITY: u8 = 15;

/// Warm-start state carried across an ε sweep: the final basis of the
/// previous interval solve plus the layout keys that give its statuses
/// ε-independent identities. Produced and consumed by
/// [`solve_interval_chained`]; [`crate::solve::SolveContext`] threads it
/// through registry shoot-outs automatically.
#[derive(Clone, Debug)]
pub struct IntervalChain {
    /// The ε whose solve produced this state.
    pub epsilon: f64,
    var_keys: Vec<LayoutKey>,
    row_keys: Vec<LayoutKey>,
    basis: Basis,
}

impl IntervalChain {
    /// Crashes a basis for a model with the given layout from this
    /// chain's statuses: matching keys copy their status, new variables
    /// start nonbasic at their lower bound, new rows contribute their
    /// slack (the warm installer repairs cardinality).
    fn remap(&self, var_keys: &[LayoutKey], row_keys: &[LayoutKey]) -> Basis {
        let vmap: HashMap<LayoutKey, BasisStatus> = self
            .var_keys
            .iter()
            .copied()
            .zip(self.basis.vars.iter().copied())
            .collect();
        let rmap: HashMap<LayoutKey, BasisStatus> = self
            .row_keys
            .iter()
            .copied()
            .zip(self.basis.rows.iter().copied())
            .collect();
        Basis {
            vars: var_keys
                .iter()
                .map(|k| vmap.get(k).copied().unwrap_or(BasisStatus::Lower))
                .collect(),
            rows: row_keys
                .iter()
                .map(|k| rmap.get(k).copied().unwrap_or(BasisStatus::Basic))
                .collect(),
        }
    }
}

/// Result of the interval relaxation: the generic LP outcome plus the
/// interval structure (needed by α-point rounding).
#[derive(Clone, Debug)]
pub struct IntervalRelaxation {
    /// Objective, completions, and the uniform-rate plan.
    pub lp: LpRelaxation,
    /// Interval boundaries `τ_0 … τ_K` (length `K+1`).
    pub boundaries: Vec<f64>,
    /// The ε used to build the intervals.
    pub epsilon: f64,
    /// Per-flow fraction scheduled in each interval, `[coflow][flow][k]`
    /// with `k` in `0..K` (0 for intervals before the flow's start).
    pub flow_fractions: Vec<Vec<Vec<f64>>>,
}

/// Builds the boundaries `τ_0 = 0, τ_1 = 1, τ_k = (1+ε)^{k-1}` until the
/// horizon is covered.
pub fn geometric_boundaries(horizon: u32, epsilon: f64) -> Vec<f64> {
    geometric_boundaries_with_release(horizon, epsilon, 0)
}

/// Like [`geometric_boundaries`] but also guarantees that every release
/// up to `max_release` has a full interval starting at or after it (the
/// §6 start rule needs `τ_{k-1} ≥ r` for some interval `k`), plus one
/// spare interval of slack for the capacity lost to the rule.
pub fn geometric_boundaries_with_release(horizon: u32, epsilon: f64, max_release: u32) -> Vec<f64> {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(horizon >= 1);
    let mut tau = vec![0.0, 1.0];
    let grow = |tau: &mut Vec<f64>| {
        let next = *tau.last().expect("non-empty") * (1.0 + epsilon);
        tau.push(next);
    };
    while *tau.last().expect("non-empty") < horizon as f64 {
        grow(&mut tau);
    }
    // Second-to-last boundary must reach the last release.
    while tau[tau.len() - 2] < max_release as f64 {
        grow(&mut tau);
    }
    // One spare interval: the start rule denies each flow the interval
    // containing its release, so give the LP room to push work later.
    grow(&mut tau);
    tau
}

/// Builds and solves the geometric-interval LP.
///
/// # Errors
///
/// Mirrors [`crate::timeidx::solve_time_indexed`]; additionally
/// [`CoflowError::BadInstance`] when a flow's release leaves it no
/// interval within the horizon.
pub fn solve_interval(
    inst: &CoflowInstance,
    routing: &Routing,
    horizon: u32,
    epsilon: f64,
    opts: &SolverOptions,
) -> Result<IntervalRelaxation, CoflowError> {
    Ok(solve_interval_impl(inst, routing, horizon, epsilon, opts, None)?.0)
}

/// Like [`solve_interval`], but warm-started from (and producing) an
/// [`IntervalChain`]: adjacent ε points of a sweep crash from the
/// previous optimal basis instead of the all-slack start. Passing
/// `chain: None` still returns a chain (seeded from a cold no-presolve
/// solve) so the *next* point can warm-start.
///
/// The objective is the same optimum [`solve_interval`] finds — warm
/// starts change the pivot path, never the value (beyond LP tolerance).
///
/// # Errors
///
/// Mirrors [`solve_interval`].
pub fn solve_interval_chained(
    inst: &CoflowInstance,
    routing: &Routing,
    horizon: u32,
    epsilon: f64,
    opts: &SolverOptions,
    chain: Option<&IntervalChain>,
) -> Result<(IntervalRelaxation, IntervalChain), CoflowError> {
    let (rel, chain) = solve_interval_impl(inst, routing, horizon, epsilon, opts, Some(chain))?;
    Ok((rel, chain.expect("chained mode always returns a chain")))
}

fn solve_interval_impl(
    inst: &CoflowInstance,
    routing: &Routing,
    horizon: u32,
    epsilon: f64,
    opts: &SolverOptions,
    warm: Option<Option<&IntervalChain>>,
) -> Result<(IntervalRelaxation, Option<IntervalChain>), CoflowError> {
    routing.validate(inst)?;
    let tau = geometric_boundaries_with_release(horizon, epsilon, inst.max_release());
    let nk = tau.len() - 1; // intervals 1..=nk, index k-1 internally
    let g = &inst.graph;

    // First usable interval per flow: smallest k with τ_{k-1} >= release.
    let mut first_k: Vec<Vec<usize>> = Vec::with_capacity(inst.num_coflows());
    for cf in &inst.coflows {
        let mut row = Vec::with_capacity(cf.flows.len());
        for f in &cf.flows {
            let r = f.release as f64;
            let k = (1..=nk).find(|&k| tau[k - 1] >= r);
            match k {
                Some(k) => row.push(k),
                None => {
                    return Err(CoflowError::BadInstance(format!(
                        "release {} beyond interval horizon {horizon}",
                        f.release
                    )))
                }
            }
        }
        first_k.push(row);
    }

    let mut model = Model::new(Sense::Minimize);
    let mut var_keys: Vec<LayoutKey> = Vec::new();
    let mut row_keys: Vec<LayoutKey> = Vec::new();

    struct FlowVars {
        first: usize,
        x: Vec<VarId>,
        s: Vec<VarId>,
        paths: Vec<Vec<VarId>>,
        edges: Vec<(EdgeId, Vec<VarId>)>,
    }

    // Free-path edge masks, cached per (src, dst).
    let mut mask_cache: std::collections::HashMap<
        (coflow_netgraph::NodeId, coflow_netgraph::NodeId),
        Vec<EdgeId>,
    > = std::collections::HashMap::new();

    let mut flow_vars: Vec<Vec<FlowVars>> = Vec::with_capacity(inst.num_coflows());
    for (j, cf) in inst.coflows.iter().enumerate() {
        let mut row = Vec::with_capacity(cf.flows.len());
        for (i, f) in cf.flows.iter().enumerate() {
            let first = first_k[j][i];
            let nvars = nk - first + 1;
            let mut fv = FlowVars {
                first,
                x: Vec::new(),
                s: Vec::new(),
                paths: Vec::new(),
                edges: Vec::new(),
            };
            match routing {
                Routing::SinglePath(_) | Routing::FreePath => {
                    for idx in 0..nvars {
                        fv.x.push(model.add_var("", 0.0, 1.0, 0.0));
                        var_keys.push((KV_X, j as u32, i as u32, (first + idx) as u32, 0));
                    }
                }
                Routing::MultiPath(sets) => {
                    for (p, _) in sets[j][i].iter().enumerate() {
                        let mut col = Vec::with_capacity(nvars);
                        for idx in 0..nvars {
                            col.push(model.add_var("", 0.0, 1.0, 0.0));
                            var_keys.push((
                                KV_PATH,
                                j as u32,
                                i as u32,
                                p as u32,
                                (first + idx) as u32,
                            ));
                        }
                        fv.paths.push(col);
                    }
                }
            }
            for idx in 0..nvars {
                fv.s.push(model.add_var("", 0.0, 1.0, 0.0));
                var_keys.push((KV_S, j as u32, i as u32, (first + idx) as u32, 0));
            }
            if matches!(routing, Routing::FreePath) {
                let mask = mask_cache
                    .entry((f.src, f.dst))
                    .or_insert_with(|| crate::timeidx::free_path_mask(g, f.src, f.dst));
                for (pos, &e) in mask.iter().enumerate() {
                    let mut col = Vec::with_capacity(nvars);
                    for idx in 0..nvars {
                        col.push(model.add_var("", 0.0, 1.0, 0.0));
                        var_keys.push((
                            KV_EDGE,
                            j as u32,
                            i as u32,
                            pos as u32,
                            (first + idx) as u32,
                        ));
                    }
                    fv.edges.push((e, col));
                }
            }
            row.push(fv);
        }
        flow_vars.push(row);
    }

    // Coflow X_j(k) from the latest flow start; C_j.
    let total_len: f64 = tau[nk] - tau[0];
    let mut x_coflow: Vec<(usize, Vec<VarId>)> = Vec::with_capacity(inst.num_coflows());
    let mut c_vars = Vec::with_capacity(inst.num_coflows());
    for (j, cf) in inst.coflows.iter().enumerate() {
        let kj = (0..cf.flows.len())
            .map(|i| first_k[j][i])
            .max()
            .expect("non-empty");
        let mut vars: Vec<VarId> = Vec::with_capacity(nk + 1 - kj);
        for k in kj..=nk {
            vars.push(model.add_var("", 0.0, 1.0, 0.0));
            var_keys.push((KV_XCOFLOW, j as u32, k as u32, 0, 0));
        }
        x_coflow.push((kj, vars));
        c_vars.push(model.add_var("", 1.0, f64::INFINITY, cf.weight));
        var_keys.push((KV_C, j as u32, 0, 0, 0));
    }

    // Prefix chains and totals.
    for (j, cf) in inst.coflows.iter().enumerate() {
        for i in 0..cf.flows.len() {
            let fv = &flow_vars[j][i];
            let nvars = fv.s.len();
            for idx in 0..nvars {
                let mut terms: Vec<(VarId, f64)> = vec![(fv.s[idx], 1.0)];
                if idx > 0 {
                    terms.push((fv.s[idx - 1], -1.0));
                }
                match routing {
                    Routing::MultiPath(_) => {
                        for pv in &fv.paths {
                            terms.push((pv[idx], -1.0));
                        }
                    }
                    _ => terms.push((fv.x[idx], -1.0)),
                }
                model.add_constraint(terms, Cmp::Eq, 0.0);
                row_keys.push((KR_CHAIN, j as u32, i as u32, (fv.first + idx) as u32, 0));
            }
            model.add_constraint([(fv.s[nvars - 1], 1.0)], Cmp::Eq, 1.0);
            row_keys.push((KR_DEMAND, j as u32, i as u32, 0, 0));
        }
    }

    // X_j(k) ≤ S_f(k); completion bound (16).
    for (j, cf) in inst.coflows.iter().enumerate() {
        let (kj, ref xvars) = x_coflow[j];
        for (off, &xv) in xvars.iter().enumerate() {
            let k = kj + off;
            for i in 0..cf.flows.len() {
                let fv = &flow_vars[j][i];
                let sidx = k - fv.first;
                model.add_constraint([(fv.s[sidx], 1.0), (xv, -1.0)], Cmp::Ge, 0.0);
                row_keys.push((KR_PROGRESS, j as u32, k as u32, i as u32, 0));
            }
        }
        // C_j + Σ_k len_k X_j(k) ≥ 1 + Σ_k len_k (skipped X treated as 0).
        let mut terms: Vec<(VarId, f64)> = vec![(c_vars[j], 1.0)];
        for (off, &xv) in xvars.iter().enumerate() {
            let k = kj + off;
            terms.push((xv, tau[k] - tau[k - 1]));
        }
        model.add_constraint(terms, Cmp::Ge, 1.0 + total_len);
        row_keys.push((KR_COMPLETION, j as u32, 0, 0, 0));
    }

    // Capacity (and conservation for free path), scaled by interval length.
    match routing {
        Routing::SinglePath(paths) => {
            let mut buckets: std::collections::BTreeMap<(usize, EdgeId), Vec<(VarId, f64)>> =
                std::collections::BTreeMap::new();
            for (j, cf) in inst.coflows.iter().enumerate() {
                for (i, f) in cf.flows.iter().enumerate() {
                    let fv = &flow_vars[j][i];
                    for (idx, &xv) in fv.x.iter().enumerate() {
                        let k = fv.first + idx;
                        for &e in paths[j][i].edges() {
                            buckets.entry((k, e)).or_default().push((xv, f.demand));
                        }
                    }
                }
            }
            for ((k, e), terms) in buckets {
                let len = tau[k] - tau[k - 1];
                model.add_constraint(terms, Cmp::Le, len * g.capacity(e));
                row_keys.push((KR_CAPACITY, k as u32, e.index() as u32, 0, 0));
            }
        }
        Routing::MultiPath(sets) => {
            let mut buckets: std::collections::BTreeMap<(usize, EdgeId), Vec<(VarId, f64)>> =
                std::collections::BTreeMap::new();
            for (j, cf) in inst.coflows.iter().enumerate() {
                for (i, f) in cf.flows.iter().enumerate() {
                    let fv = &flow_vars[j][i];
                    for (kp, path) in sets[j][i].iter().enumerate() {
                        for (idx, &pv) in fv.paths[kp].iter().enumerate() {
                            let k = fv.first + idx;
                            for &e in path.edges() {
                                buckets.entry((k, e)).or_default().push((pv, f.demand));
                            }
                        }
                    }
                }
            }
            for ((k, e), terms) in buckets {
                let len = tau[k] - tau[k - 1];
                model.add_constraint(terms, Cmp::Le, len * g.capacity(e));
                row_keys.push((KR_CAPACITY, k as u32, e.index() as u32, 0, 0));
            }
        }
        Routing::FreePath => {
            let mut buckets: std::collections::BTreeMap<(usize, EdgeId), Vec<(VarId, f64)>> =
                std::collections::BTreeMap::new();
            for (j, cf) in inst.coflows.iter().enumerate() {
                for (i, f) in cf.flows.iter().enumerate() {
                    let fv = &flow_vars[j][i];
                    let mut incident: std::collections::BTreeMap<
                        coflow_netgraph::NodeId,
                        (Vec<usize>, Vec<usize>),
                    > = std::collections::BTreeMap::new();
                    for (pos, &(e, _)) in fv.edges.iter().enumerate() {
                        incident.entry(g.src(e)).or_default().1.push(pos);
                        incident.entry(g.dst(e)).or_default().0.push(pos);
                    }
                    for idx in 0..fv.s.len() {
                        let k = fv.first + idx;
                        for (&v, (ins, outs)) in &incident {
                            let mut terms: Vec<(VarId, f64)> = Vec::new();
                            if v == f.src {
                                for &pos in outs {
                                    terms.push((fv.edges[pos].1[idx], 1.0));
                                }
                                terms.push((fv.x[idx], -1.0));
                            } else if v == f.dst {
                                for &pos in ins {
                                    terms.push((fv.edges[pos].1[idx], 1.0));
                                }
                                terms.push((fv.x[idx], -1.0));
                            } else {
                                for &pos in ins {
                                    terms.push((fv.edges[pos].1[idx], 1.0));
                                }
                                for &pos in outs {
                                    terms.push((fv.edges[pos].1[idx], -1.0));
                                }
                            }
                            model.add_constraint(terms, Cmp::Eq, 0.0);
                            row_keys.push((
                                KR_CONSERVE,
                                j as u32,
                                i as u32,
                                k as u32,
                                v.index() as u32,
                            ));
                        }
                        for &(e, ref vars) in &fv.edges {
                            buckets
                                .entry((k, e))
                                .or_default()
                                .push((vars[idx], f.demand));
                        }
                    }
                }
            }
            for ((k, e), terms) in buckets {
                let len = tau[k] - tau[k - 1];
                model.add_constraint(terms, Cmp::Le, len * g.capacity(e));
                row_keys.push((KR_CAPACITY, k as u32, e.index() as u32, 0, 0));
            }
        }
    }

    let size = LpSize {
        rows: model.num_constraints(),
        cols: model.num_vars(),
        nonzeros: model.num_nonzeros(),
    };
    debug_assert_eq!(var_keys.len(), model.num_vars(), "layout keys drifted");
    debug_assert_eq!(
        row_keys.len(),
        model.num_constraints(),
        "layout keys drifted"
    );
    let (sol, chain_out) = match warm {
        // Plain path: presolved cold solve, bit-identical to the
        // pre-chaining behavior; no basis comes out.
        None => (model.solve_with(opts)?, None),
        Some(chain) => {
            let crash = chain.map(|c| c.remap(&var_keys, &row_keys));
            let (sol, basis) = model.solve_warm(crash.as_ref(), opts)?;
            (
                sol,
                Some(IntervalChain {
                    epsilon,
                    var_keys,
                    row_keys,
                    basis,
                }),
            )
        }
    };

    // ---- Extraction: uniform rate per interval. ----
    let mut plan = RatePlan::empty_like(inst);
    let mut flow_fractions: Vec<Vec<Vec<f64>>> = Vec::with_capacity(inst.num_coflows());
    for (j, cf) in inst.coflows.iter().enumerate() {
        let mut fr_row = Vec::with_capacity(cf.flows.len());
        for (i, f) in cf.flows.iter().enumerate() {
            let fv = &flow_vars[j][i];
            let mut fractions = vec![0.0; nk];
            let mut segments = Vec::new();
            for idx in 0..fv.s.len() {
                let k = fv.first + idx;
                let len = tau[k] - tau[k - 1];
                let (frac, edges): (f64, Vec<(EdgeId, f64)>) = match routing {
                    Routing::SinglePath(paths) => {
                        let frac = sol.value(fv.x[idx]);
                        let rate = frac * f.demand / len;
                        (
                            frac,
                            paths[j][i].edges().iter().map(|&e| (e, rate)).collect(),
                        )
                    }
                    Routing::MultiPath(sets) => {
                        let mut frac = 0.0;
                        let mut edges: Vec<(EdgeId, f64)> = Vec::new();
                        for (kp, path) in sets[j][i].iter().enumerate() {
                            let pf = sol.value(fv.paths[kp][idx]);
                            if pf <= X_EPS {
                                continue;
                            }
                            frac += pf;
                            let rate = pf * f.demand / len;
                            for &e in path.edges() {
                                match edges.iter_mut().find(|(ee, _)| *ee == e) {
                                    Some((_, r)) => *r += rate,
                                    None => edges.push((e, rate)),
                                }
                            }
                        }
                        (frac, edges)
                    }
                    Routing::FreePath => {
                        let frac = sol.value(fv.x[idx]);
                        let edges = fv
                            .edges
                            .iter()
                            .filter_map(|&(e, ref vars)| {
                                let v = sol.value(vars[idx]);
                                (v > X_EPS).then(|| (e, v * f.demand / len))
                            })
                            .collect();
                        (frac, edges)
                    }
                };
                fractions[k - 1] = frac;
                if frac > X_EPS {
                    segments.push(Segment {
                        t0: tau[k - 1],
                        t1: tau[k],
                        rate: frac * f.demand / len,
                        edges,
                    });
                }
            }
            plan.flows[j][i] = FlowPlan { segments };
            fr_row.push(fractions);
        }
        flow_fractions.push(fr_row);
    }

    let completions = c_vars.iter().map(|&c| sol.value(c)).collect();
    Ok((
        IntervalRelaxation {
            lp: LpRelaxation {
                objective: sol.objective,
                completions,
                plan,
                horizon,
                lp_iterations: sol.iterations,
                stats: sol.stats,
                size,
            },
            boundaries: tau,
            epsilon,
            flow_fractions,
        },
        chain_out,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coflow, Flow};
    use crate::validate::{validate, Tolerance};
    use coflow_netgraph::topology;

    fn fig2_instance() -> CoflowInstance {
        let topo = topology::fig2_example();
        let g = topo.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let v2 = g.node_by_label("v2").unwrap();
        let v3 = g.node_by_label("v3").unwrap();
        CoflowInstance::new(
            g,
            vec![
                Coflow::new(vec![Flow::new(v1, t, 1.0)]),
                Coflow::new(vec![Flow::new(v2, t, 1.0)]),
                Coflow::new(vec![Flow::new(v3, t, 1.0)]),
                Coflow::new(vec![Flow::new(s, t, 3.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn boundaries_are_geometric() {
        let tau = geometric_boundaries(10, 0.5);
        assert_eq!(tau[0], 0.0);
        assert_eq!(tau[1], 1.0);
        for k in 2..tau.len() {
            assert!((tau[k] - 1.5 * tau[k - 1]).abs() < 1e-12);
        }
        assert!(*tau.last().unwrap() >= 10.0);
    }

    #[test]
    fn interval_lp_bounds_and_discretizes() {
        let inst = fig2_instance();
        let rel =
            solve_interval(&inst, &Routing::FreePath, 6, 0.5, &SolverOptions::default()).unwrap();
        // Coarser relaxation, still at most the optimal 5 plus the
        // coarsening slack; and at least the trivial 4.
        assert!(rel.lp.objective >= 4.0 - 1e-6);
        // Extracted plan moves full demands and is feasible.
        let sched = rel.lp.plan.discretize();
        let rep = validate(&inst, &Routing::FreePath, &sched, Tolerance::default()).unwrap();
        assert!(rep.peak_utilization <= 1.0 + 1e-6);
    }

    #[test]
    fn fractions_sum_to_one() {
        let inst = fig2_instance();
        let rel =
            solve_interval(&inst, &Routing::FreePath, 6, 0.3, &SolverOptions::default()).unwrap();
        for row in &rel.flow_fractions {
            for fr in row {
                let total: f64 = fr.iter().sum();
                assert!((total - 1.0).abs() < 1e-6, "fractions {total}");
            }
        }
    }

    #[test]
    fn smaller_epsilon_gives_stronger_bound() {
        // Coarser intervals weaken the relaxation: with ε large, a coflow
        // can mark a whole fat interval complete and the completion bound
        // `C_j ≥ 1 + Σ len_k (1 - X_j(k))` loses resolution. So the LP
        // value (a lower bound) is non-increasing in ε — the effect the
        // paper studies in Figure 8.
        let inst = fig2_instance();
        let coarse =
            solve_interval(&inst, &Routing::FreePath, 8, 1.0, &SolverOptions::default()).unwrap();
        let fine =
            solve_interval(&inst, &Routing::FreePath, 8, 0.1, &SolverOptions::default()).unwrap();
        assert!(
            fine.lp.objective >= coarse.lp.objective - 1e-6,
            "fine {} vs coarse {}",
            fine.lp.objective,
            coarse.lp.objective
        );
        // And the fine bound stays below the true optimum 5 plus the
        // interval-granularity slack.
        assert!(fine.lp.objective <= 5.0 + 1.0, "fine {}", fine.lp.objective);
    }

    #[test]
    fn chained_epsilon_sweep_matches_cold_objectives() {
        // Warm-chaining across an ε sweep must land on the same optima
        // the presolved cold path finds, for every routing-free point.
        let inst = fig2_instance();
        let opts = SolverOptions::default();
        let mut chain: Option<IntervalChain> = None;
        for k in 1..=6 {
            let epsilon = k as f64 * 0.15;
            let cold = solve_interval(&inst, &Routing::FreePath, 8, epsilon, &opts).unwrap();
            let (warm, next) = solve_interval_chained(
                &inst,
                &Routing::FreePath,
                8,
                epsilon,
                &opts,
                chain.as_ref(),
            )
            .unwrap();
            assert!(
                (warm.lp.objective - cold.lp.objective).abs()
                    < 1e-6 * (1.0 + cold.lp.objective.abs()),
                "ε={epsilon}: warm {} vs cold {}",
                warm.lp.objective,
                cold.lp.objective
            );
            assert_eq!(next.epsilon, epsilon);
            chain = Some(next);
        }
    }

    #[test]
    fn release_pushes_flow_to_later_intervals() {
        let topo = topology::line(2, 1.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let inst = CoflowInstance::new(g, vec![Coflow::new(vec![Flow::released(v0, v1, 1.0, 3)])])
            .unwrap();
        let rel = solve_interval(
            &inst,
            &Routing::FreePath,
            12,
            0.5,
            &SolverOptions::default(),
        )
        .unwrap();
        // No transmission before τ_{k-1} >= 3.
        for row in &rel.lp.plan.flows {
            for fp in row {
                for seg in &fp.segments {
                    assert!(seg.t0 >= 3.0 - 1e-9, "segment starts at {}", seg.t0);
                }
            }
        }
        assert!(rel.lp.completions[0] >= 4.0 - 1e-6);
    }
}
