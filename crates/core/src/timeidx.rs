//! The time-indexed LP relaxation (paper §3) for all three transmission
//! models.
//!
//! Variables (slot `t` ranges over `release+1 ..= T` per flow):
//!
//! * `x_f(t) ∈ [0,1]` — fraction of flow `f` scheduled in slot `t`
//!   (constraint (4) is enforced structurally: variables before the
//!   release simply do not exist);
//! * `S_f(t) ∈ [0,1]` — running prefix `Σ_{ℓ≤t} x_f(ℓ)`, introduced so
//!   constraint (2) has O(1) nonzeros per row instead of O(T);
//! * `X_j(t) ∈ [0,1]` — fraction of coflow `j` complete by slot `t`;
//! * `C_j ≥ 1` — the relaxed completion time.
//!
//! Constraints:
//!
//! * (1) `S_f(T) = 1` with the chain `S_f(t) = S_f(t-1) + x_f(t)`;
//! * (2) `X_j(t) ≤ S_f(t)` for every flow `f ∈ F_j`;
//! * (3) `C_j + Σ_t X_j(t) ≥ 1 + T` (the paper's bound rearranged);
//! * (6) single path: `Σ_{f: e ∈ p_f} σ_f x_f(t) ≤ c(e)`;
//! * (7)–(10) free path: per-edge variables `x_f(t,e)` with flow
//!   conservation and capacity rows;
//! * multi path (§2's intermediate model): per-path variables summed into
//!   the prefix chain, with capacity rows over path memberships.
//!
//! The LP optimum `Σ_j w_j C*_j` lower-bounds the optimal weighted
//! completion time (inequality (11)); the solution's rates form a
//! [`RatePlan`] consumed by Stretch and the λ=1 heuristic.

use crate::error::CoflowError;
use crate::model::CoflowInstance;
use crate::rateplan::{FlowPlan, RatePlan, Segment};
use crate::routing::Routing;
use coflow_lp::{Cmp, ConstraintId, Model, Sense, Solution, SolverOptions, VarId};
use coflow_netgraph::EdgeId;

/// Fraction below which an LP value is treated as zero during extraction.
const X_EPS: f64 = 1e-9;

/// Size statistics of a built LP (reported by the bench harness).
#[derive(Clone, Copy, Debug, Default)]
pub struct LpSize {
    /// Constraint rows.
    pub rows: usize,
    /// Variables.
    pub cols: usize,
    /// Nonzero coefficients.
    pub nonzeros: usize,
}

/// Result of solving a relaxation: the lower bound and the fractional
/// schedule.
#[derive(Clone, Debug)]
pub struct LpRelaxation {
    /// `Σ_j w_j C*_j` — the paper's "LP (lower bound)" series.
    pub objective: f64,
    /// Per-coflow `C*_j`.
    pub completions: Vec<f64>,
    /// The fractional schedule as piecewise-constant rates.
    pub plan: RatePlan,
    /// Horizon `T` used.
    pub horizon: u32,
    /// Simplex iterations.
    pub lp_iterations: usize,
    /// Sparse-engine effort counters (FTRAN/BTRAN solves and nonzeros,
    /// peak workspace bytes); all zero under `LpEngine::Dense`.
    pub stats: coflow_lp::SolveStats,
    /// Model dimensions.
    pub size: LpSize,
}

/// Per-flow variable bookkeeping. Shared with [`crate::resolver`], which
/// appends more of these to an already-solved model.
pub(crate) struct FlowVars {
    /// First slot with variables (`release + 1` for offline builds; the
    /// activation slot + 1 for resolver-appended flows).
    pub(crate) start: u32,
    /// Total-fraction vars per slot; empty in the multi-path model.
    pub(crate) x: Vec<VarId>,
    /// Prefix vars per slot.
    pub(crate) s: Vec<VarId>,
    /// Multi-path: per candidate path, per slot.
    pub(crate) paths: Vec<Vec<VarId>>,
    /// Free path: per masked edge, per slot.
    pub(crate) edges: Vec<(EdgeId, Vec<VarId>)>,
}

impl FlowVars {
    /// A placeholder for a flow that has no variables (not yet activated
    /// in a resolver build). Extraction skips it (`s` is empty).
    pub(crate) fn inactive() -> FlowVars {
        FlowVars {
            start: u32::MAX,
            x: Vec::new(),
            s: Vec::new(),
            paths: Vec::new(),
            edges: Vec::new(),
        }
    }
}

/// Builds and solves the time-indexed LP.
///
/// # Errors
///
/// * [`CoflowError::BadRouting`] when routing does not match the instance;
/// * [`CoflowError::BadInstance`] when the horizon leaves some flow no
///   slot (`release + 1 > T`);
/// * [`CoflowError::Lp`] when the LP solve fails.
pub fn solve_time_indexed(
    inst: &CoflowInstance,
    routing: &Routing,
    horizon: u32,
    opts: &SolverOptions,
) -> Result<LpRelaxation, CoflowError> {
    let built = build(inst, routing, horizon)?;
    let size = LpSize {
        rows: built.model.num_constraints(),
        cols: built.model.num_vars(),
        nonzeros: built.model.num_nonzeros(),
    };
    let sol = built.model.solve_with(opts)?;
    Ok(extract(inst, routing, &built, &sol, horizon, size))
}

/// Free-path edge mask for a `(src, dst)` pair: edges on some
/// src→dst path (forward-reachable tail, backward-reachable head),
/// excluding edges into the source or out of the destination. Shared by
/// the offline builder and the incremental resolver so appended flows
/// see exactly the mask a from-scratch build would.
pub(crate) fn free_path_mask(
    g: &coflow_netgraph::Graph,
    src: coflow_netgraph::NodeId,
    dst: coflow_netgraph::NodeId,
) -> Vec<EdgeId> {
    let fwd = g.reachable_from(src);
    let mut bwd = vec![false; g.node_count()];
    let mut q = std::collections::VecDeque::new();
    bwd[dst.index()] = true;
    q.push_back(dst);
    while let Some(v) = q.pop_front() {
        for &e in g.in_edges(v) {
            let u = g.src(e);
            if !bwd[u.index()] {
                bwd[u.index()] = true;
                q.push_back(u);
            }
        }
    }
    g.edges()
        .filter(|e| fwd[e.src.index()] && bwd[e.dst.index()] && e.dst != src && e.src != dst)
        .map(|e| e.id)
        .collect()
}

pub(crate) struct Built {
    pub(crate) model: Model,
    pub(crate) flow_vars: Vec<Vec<FlowVars>>,
    /// Per-coflow completion variable; `None` when the coflow has no
    /// active flow (resolver builds over a subset).
    pub(crate) c_vars: Vec<Option<VarId>>,
    /// Per-coflow progress variables `X_j(t)` with their first slot;
    /// `None` when the coflow has no active flow.
    pub(crate) x_coflow: Vec<Option<(u32, Vec<VarId>)>>,
    /// Capacity rows, one per `(slot, edge)` bucket; used by
    /// [`crate::sensitivity`] to re-target RHS values and by
    /// [`crate::resolver`] to stitch appended flows into shared rows.
    pub(crate) cap_rows: Vec<(u32, EdgeId, ConstraintId)>,
}

pub(crate) fn build(
    inst: &CoflowInstance,
    routing: &Routing,
    horizon: u32,
) -> Result<Built, CoflowError> {
    let starts: Vec<Vec<Option<u32>>> = inst
        .coflows
        .iter()
        .map(|cf| cf.flows.iter().map(|f| Some(f.release + 1)).collect())
        .collect();
    build_with_starts(inst, routing, horizon, &starts)
}

/// Like [`build`], but over the subset of flows with a `Some(first_slot)`
/// entry in `starts` (first slot with variables, 1-based). This is the
/// shared builder behind the offline relaxation and the incremental
/// [`crate::resolver::TimeIndexedResolver`]: when every flow is active
/// with `first_slot = release + 1`, the produced model is — variable by
/// variable, row by row — the offline build.
pub(crate) fn build_with_starts(
    inst: &CoflowInstance,
    routing: &Routing,
    horizon: u32,
    starts: &[Vec<Option<u32>>],
) -> Result<Built, CoflowError> {
    routing.validate(inst)?;
    let t_max = horizon;
    for (key, f) in inst.flows() {
        let _ = f;
        if let Some(start) = starts[key.coflow as usize][key.flow as usize] {
            if !(1..=t_max).contains(&start) {
                return Err(CoflowError::BadInstance(format!(
                    "horizon {t_max} leaves flow {key:?} (first slot {start}) no slot"
                )));
            }
        }
    }

    let g = &inst.graph;
    let mut model = Model::new(Sense::Minimize);

    // Reachability masks for free-path edge variables, cached by (src,dst).
    let mut mask_cache: std::collections::HashMap<
        (coflow_netgraph::NodeId, coflow_netgraph::NodeId),
        Vec<EdgeId>,
    > = std::collections::HashMap::new();

    // ---- Variables ----
    let mut flow_vars: Vec<Vec<FlowVars>> = Vec::with_capacity(inst.num_coflows());
    for (j, cf) in inst.coflows.iter().enumerate() {
        let mut row = Vec::with_capacity(cf.flows.len());
        for (i, f) in cf.flows.iter().enumerate() {
            let Some(start) = starts[j][i] else {
                row.push(FlowVars::inactive());
                continue;
            };
            let nslots = (t_max + 1 - start) as usize;
            let mut fv = FlowVars {
                start,
                x: Vec::new(),
                s: Vec::new(),
                paths: Vec::new(),
                edges: Vec::new(),
            };
            match routing {
                Routing::SinglePath(_) | Routing::FreePath => {
                    fv.x = (0..nslots)
                        .map(|_| model.add_var("", 0.0, 1.0, 0.0))
                        .collect();
                }
                Routing::MultiPath(sets) => {
                    fv.paths = sets[j][i]
                        .iter()
                        .map(|_| {
                            (0..nslots)
                                .map(|_| model.add_var("", 0.0, 1.0, 0.0))
                                .collect()
                        })
                        .collect();
                }
            }
            fv.s = (0..nslots)
                .map(|_| model.add_var("", 0.0, 1.0, 0.0))
                .collect();
            if matches!(routing, Routing::FreePath) {
                let mask = mask_cache
                    .entry((f.src, f.dst))
                    .or_insert_with(|| free_path_mask(g, f.src, f.dst));
                fv.edges = mask
                    .iter()
                    .map(|&e| {
                        (
                            e,
                            (0..nslots)
                                .map(|_| model.add_var("", 0.0, 1.0, 0.0))
                                .collect(),
                        )
                    })
                    .collect();
            }
            row.push(fv);
        }
        flow_vars.push(row);
    }

    // X_j(t) and C_j (only for coflows with at least one active flow;
    // their X chain starts at the latest active flow's first slot).
    let mut x_coflow: Vec<Option<(u32, Vec<VarId>)>> = Vec::with_capacity(inst.num_coflows());
    let mut c_vars: Vec<Option<VarId>> = Vec::with_capacity(inst.num_coflows());
    for (j, cf) in inst.coflows.iter().enumerate() {
        let Some(kj) = (0..cf.flows.len()).filter_map(|i| starts[j][i]).max() else {
            x_coflow.push(None);
            c_vars.push(None);
            continue;
        };
        let nslots = (t_max + 1 - kj) as usize;
        x_coflow.push(Some((
            kj,
            (0..nslots)
                .map(|_| model.add_var("", 0.0, 1.0, 0.0))
                .collect(),
        )));
        c_vars.push(Some(model.add_var("", 1.0, f64::INFINITY, cf.weight)));
    }

    // ---- Constraints ----
    // Prefix chains + total demand (constraint (1)).
    for (j, cf) in inst.coflows.iter().enumerate() {
        for i in 0..cf.flows.len() {
            let fv = &flow_vars[j][i];
            let nslots = fv.s.len();
            if nslots == 0 {
                continue; // inactive flow
            }
            for idx in 0..nslots {
                // S(t) - S(t-1) - (slot fraction) = 0
                let mut terms: Vec<(VarId, f64)> = vec![(fv.s[idx], 1.0)];
                if idx > 0 {
                    terms.push((fv.s[idx - 1], -1.0));
                }
                match routing {
                    Routing::MultiPath(_) => {
                        for pv in &fv.paths {
                            terms.push((pv[idx], -1.0));
                        }
                    }
                    _ => terms.push((fv.x[idx], -1.0)),
                }
                model.add_constraint(terms, Cmp::Eq, 0.0);
            }
            model.add_constraint([(fv.s[nslots - 1], 1.0)], Cmp::Eq, 1.0);
        }
    }

    // Coflow progress (2) and completion (3).
    for (j, cf) in inst.coflows.iter().enumerate() {
        let Some((kj, ref xj)) = x_coflow[j] else {
            continue;
        };
        for (idx, &xvar) in xj.iter().enumerate() {
            let t = kj + idx as u32;
            for i in 0..cf.flows.len() {
                let fv = &flow_vars[j][i];
                if fv.s.is_empty() {
                    continue;
                }
                let sidx = (t - fv.start) as usize; // t >= start since kj >= start
                debug_assert!(t >= fv.start);
                model.add_constraint([(fv.s[sidx], 1.0), (xvar, -1.0)], Cmp::Ge, 0.0);
            }
        }
        // C_j + Σ X_j(t) >= 1 + T.
        let mut terms: Vec<(VarId, f64)> =
            vec![(c_vars[j].expect("active coflow has a C var"), 1.0)];
        terms.extend(xj.iter().map(|&v| (v, 1.0)));
        model.add_constraint(terms, Cmp::Ge, 1.0 + t_max as f64);
    }

    // Capacity rows.
    let mut cap_rows: Vec<(u32, EdgeId, ConstraintId)> = Vec::new();
    match routing {
        Routing::SinglePath(paths) => {
            // Bucket terms per (t, e).
            let mut buckets: std::collections::BTreeMap<(u32, EdgeId), Vec<(VarId, f64)>> =
                std::collections::BTreeMap::new();
            for (j, cf) in inst.coflows.iter().enumerate() {
                for (i, f) in cf.flows.iter().enumerate() {
                    let fv = &flow_vars[j][i];
                    for (idx, &xv) in fv.x.iter().enumerate() {
                        let t = fv.start + idx as u32;
                        for &e in paths[j][i].edges() {
                            buckets.entry((t, e)).or_default().push((xv, f.demand));
                        }
                    }
                }
            }
            for ((t, e), terms) in buckets {
                cap_rows.push((t, e, model.add_constraint(terms, Cmp::Le, g.capacity(e))));
            }
        }
        Routing::MultiPath(sets) => {
            let mut buckets: std::collections::BTreeMap<(u32, EdgeId), Vec<(VarId, f64)>> =
                std::collections::BTreeMap::new();
            for (j, cf) in inst.coflows.iter().enumerate() {
                for (i, f) in cf.flows.iter().enumerate() {
                    let fv = &flow_vars[j][i];
                    if fv.s.is_empty() {
                        continue;
                    }
                    for (k, path) in sets[j][i].iter().enumerate() {
                        for (idx, &pv) in fv.paths[k].iter().enumerate() {
                            let t = fv.start + idx as u32;
                            for &e in path.edges() {
                                buckets.entry((t, e)).or_default().push((pv, f.demand));
                            }
                        }
                    }
                }
            }
            for ((t, e), terms) in buckets {
                cap_rows.push((t, e, model.add_constraint(terms, Cmp::Le, g.capacity(e))));
            }
        }
        Routing::FreePath => {
            // Conservation per flow/slot/node, then capacity per (t, e).
            let mut buckets: std::collections::BTreeMap<(u32, EdgeId), Vec<(VarId, f64)>> =
                std::collections::BTreeMap::new();
            for (j, cf) in inst.coflows.iter().enumerate() {
                for (i, f) in cf.flows.iter().enumerate() {
                    let fv = &flow_vars[j][i];
                    let nslots = fv.s.len();
                    // Per-node incident masked edge lists.
                    let mut incident: std::collections::BTreeMap<
                        coflow_netgraph::NodeId,
                        (Vec<usize>, Vec<usize>),
                    > = std::collections::BTreeMap::new();
                    for (pos, &(e, _)) in fv.edges.iter().enumerate() {
                        incident.entry(g.src(e)).or_default().1.push(pos); // out
                        incident.entry(g.dst(e)).or_default().0.push(pos); // in
                    }
                    for idx in 0..nslots {
                        let t = fv.start + idx as u32;
                        for (&v, (ins, outs)) in &incident {
                            let mut terms: Vec<(VarId, f64)> = Vec::new();
                            if v == f.src {
                                // (7) Σ out = x
                                for &pos in outs {
                                    terms.push((fv.edges[pos].1[idx], 1.0));
                                }
                                terms.push((fv.x[idx], -1.0));
                            } else if v == f.dst {
                                // (8) Σ in = x
                                for &pos in ins {
                                    terms.push((fv.edges[pos].1[idx], 1.0));
                                }
                                terms.push((fv.x[idx], -1.0));
                            } else {
                                // (9) Σ in = Σ out
                                for &pos in ins {
                                    terms.push((fv.edges[pos].1[idx], 1.0));
                                }
                                for &pos in outs {
                                    terms.push((fv.edges[pos].1[idx], -1.0));
                                }
                            }
                            model.add_constraint(terms, Cmp::Eq, 0.0);
                        }
                        for &(e, ref vars) in &fv.edges {
                            buckets
                                .entry((t, e))
                                .or_default()
                                .push((vars[idx], f.demand));
                        }
                    }
                }
            }
            for ((t, e), terms) in buckets {
                cap_rows.push((t, e, model.add_constraint(terms, Cmp::Le, g.capacity(e))));
            }
        }
    }

    Ok(Built {
        model,
        flow_vars,
        c_vars,
        x_coflow,
        cap_rows,
    })
}

pub(crate) fn extract(
    inst: &CoflowInstance,
    routing: &Routing,
    built: &Built,
    sol: &Solution,
    horizon: u32,
    size: LpSize,
) -> LpRelaxation {
    let mut plan = RatePlan::empty_like(inst);
    for (j, cf) in inst.coflows.iter().enumerate() {
        for (i, f) in cf.flows.iter().enumerate() {
            let fv = &built.flow_vars[j][i];
            let nslots = fv.s.len();
            let mut segments = Vec::new();
            for idx in 0..nslots {
                let t = fv.start + idx as u32;
                let (frac, edges): (f64, Vec<(EdgeId, f64)>) = match routing {
                    Routing::SinglePath(paths) => {
                        let frac = sol.value(fv.x[idx]);
                        let rate = frac * f.demand;
                        let edges = paths[j][i].edges().iter().map(|&e| (e, rate)).collect();
                        (frac, edges)
                    }
                    Routing::MultiPath(sets) => {
                        let mut frac = 0.0;
                        let mut edges: Vec<(EdgeId, f64)> = Vec::new();
                        for (k, path) in sets[j][i].iter().enumerate() {
                            let pf = sol.value(fv.paths[k][idx]);
                            if pf <= X_EPS {
                                continue;
                            }
                            frac += pf;
                            let rate = pf * f.demand;
                            for &e in path.edges() {
                                match edges.iter_mut().find(|(ee, _)| *ee == e) {
                                    Some((_, r)) => *r += rate,
                                    None => edges.push((e, rate)),
                                }
                            }
                        }
                        (frac, edges)
                    }
                    Routing::FreePath => {
                        let frac = sol.value(fv.x[idx]);
                        let edges = fv
                            .edges
                            .iter()
                            .filter_map(|&(e, ref vars)| {
                                let v = sol.value(vars[idx]);
                                (v > X_EPS).then_some((e, v * f.demand))
                            })
                            .collect();
                        (frac, edges)
                    }
                };
                if frac > X_EPS {
                    segments.push(Segment {
                        t0: (t - 1) as f64,
                        t1: t as f64,
                        rate: frac * f.demand,
                        edges,
                    });
                }
            }
            plan.flows[j][i] = FlowPlan { segments };
        }
    }
    let completions = built
        .c_vars
        .iter()
        .map(|&c| c.map_or(0.0, |c| sol.value(c)))
        .collect();
    LpRelaxation {
        objective: sol.objective,
        completions,
        plan,
        horizon,
        lp_iterations: sol.iterations,
        stats: sol.stats,
        size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coflow, Flow};
    use crate::routing;
    use coflow_netgraph::topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig2_instance() -> CoflowInstance {
        let topo = topology::fig2_example();
        let g = topo.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let v2 = g.node_by_label("v2").unwrap();
        let v3 = g.node_by_label("v3").unwrap();
        CoflowInstance::new(
            g,
            vec![
                Coflow::new(vec![Flow::new(v1, t, 1.0)]),
                Coflow::new(vec![Flow::new(v2, t, 1.0)]),
                Coflow::new(vec![Flow::new(v3, t, 1.0)]),
                Coflow::new(vec![Flow::new(s, t, 3.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn free_path_lower_bound_at_most_fig4_optimum() {
        let inst = fig2_instance();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 6, &SolverOptions::default()).unwrap();
        // Figure 4's optimal schedule costs 5; LP must not exceed it.
        assert!(lp.objective <= 5.0 + 1e-6, "LP bound {}", lp.objective);
        // And it cannot be absurdly small: every coflow needs >= 1 slot.
        assert!(lp.objective >= 4.0 - 1e-6);
        // Plan moves full demand for every flow.
        for (key, f) in inst.flows() {
            let vol = lp.plan.flows[key.coflow as usize][key.flow as usize].total_volume();
            assert!(
                (vol - f.demand).abs() < 1e-6,
                "flow {key:?} volume {vol} != demand {}",
                f.demand
            );
        }
    }

    #[test]
    fn lp_plan_is_capacity_feasible() {
        let inst = fig2_instance();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 6, &SolverOptions::default()).unwrap();
        let sched = lp.plan.discretize();
        let rep = crate::validate::validate(
            &inst,
            &Routing::FreePath,
            &sched,
            crate::validate::Tolerance::default(),
        )
        .unwrap();
        assert!(rep.peak_utilization <= 1.0 + 1e-6);
    }

    #[test]
    fn single_path_bound_respects_shared_edges() {
        let inst = fig2_instance();
        // Deterministic paths: blue shares v2 with the green coflow, as
        // in Figure 3.
        let g = &inst.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let v2 = g.node_by_label("v2").unwrap();
        let v3 = g.node_by_label("v3").unwrap();
        let mk = |nodes: &[coflow_netgraph::NodeId]| {
            coflow_netgraph::Path::from_nodes(g, nodes).unwrap()
        };
        let routing = Routing::SinglePath(vec![
            vec![mk(&[v1, t])],
            vec![mk(&[v2, t])],
            vec![mk(&[v3, t])],
            vec![mk(&[s, v2, t])],
        ]);
        let lp = solve_time_indexed(&inst, &routing, 8, &SolverOptions::default()).unwrap();
        // Figure 3's optimum is 7; the LP lower-bounds it. The blue
        // coflow alone needs 3 slots (demand 3, bottleneck 1) and shares
        // an edge with green, so the bound is strictly above 4-ish.
        assert!(lp.objective <= 7.0 + 1e-6, "LP {}", lp.objective);
        assert!(lp.objective >= 5.0, "LP {}", lp.objective);
    }

    #[test]
    fn multipath_matches_free_path_on_fig2() {
        // With all three 2-hop routes as candidates, multi-path should
        // achieve the same bound as free path on this instance.
        let inst = fig2_instance();
        let routing = routing::k_shortest_path_sets(&inst, 3).unwrap();
        let mp = solve_time_indexed(&inst, &routing, 6, &SolverOptions::default()).unwrap();
        let fp =
            solve_time_indexed(&inst, &Routing::FreePath, 6, &SolverOptions::default()).unwrap();
        assert!(
            (mp.objective - fp.objective).abs() < 1e-5,
            "multi {} vs free {}",
            mp.objective,
            fp.objective
        );
    }

    #[test]
    fn release_times_delay_completion() {
        let topo = topology::line(2, 1.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let inst = CoflowInstance::new(g, vec![Coflow::new(vec![Flow::released(v0, v1, 1.0, 3)])])
            .unwrap();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 8, &SolverOptions::default()).unwrap();
        // Released after slot 3 -> earliest completion slot 4.
        assert!(lp.completions[0] >= 4.0 - 1e-6, "C = {}", lp.completions[0]);
    }

    #[test]
    fn horizon_too_small_is_an_error() {
        let inst = fig2_instance();
        // Blue needs 3 slots on one path; T=2 is infeasible for single
        // path but the builder error triggers earlier only for releases.
        // Check the release-based error:
        let topo = topology::line(2, 1.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let late = CoflowInstance::new(g, vec![Coflow::new(vec![Flow::released(v0, v1, 1.0, 9)])])
            .unwrap();
        assert!(matches!(
            solve_time_indexed(&late, &Routing::FreePath, 5, &SolverOptions::default()),
            Err(CoflowError::BadInstance(_))
        ));
        // And an infeasible-capacity horizon surfaces as an LP error.
        assert!(matches!(
            solve_time_indexed(&inst, &Routing::FreePath, 1, &SolverOptions::default()),
            Err(CoflowError::Lp(_))
        ));
    }

    #[test]
    fn weights_steer_the_relaxation() {
        // Two identical coflows on a shared unit edge; the heavy one must
        // get the earlier (smaller) completion variable.
        let topo = topology::line(2, 1.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let inst = CoflowInstance::new(
            g,
            vec![
                Coflow::weighted(1.0, vec![Flow::new(v0, v1, 1.0)]),
                Coflow::weighted(10.0, vec![Flow::new(v0, v1, 1.0)]),
            ],
        )
        .unwrap();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 4, &SolverOptions::default()).unwrap();
        assert!(
            lp.completions[1] < lp.completions[0],
            "heavy coflow should finish first: {:?}",
            lp.completions
        );
    }

    #[test]
    fn random_shortest_single_path_solves_on_swan() {
        let topo = topology::swan();
        let g = topo.graph;
        let nodes: Vec<_> = g.nodes().collect();
        let mut rng = StdRng::seed_from_u64(42);
        use rand::Rng;
        let mut coflows = Vec::new();
        for _ in 0..4 {
            let a = nodes[rng.gen_range(0..nodes.len())];
            let mut b = nodes[rng.gen_range(0..nodes.len())];
            while b == a {
                b = nodes[rng.gen_range(0..nodes.len())];
            }
            coflows.push(Coflow::weighted(
                rng.gen_range(1.0..10.0),
                vec![Flow::new(a, b, rng.gen_range(5.0..40.0))],
            ));
        }
        let inst = CoflowInstance::new(g, coflows).unwrap();
        let routing = routing::random_shortest_paths(&inst, &mut rng).unwrap();
        let t = crate::horizon::horizon(
            &inst,
            &routing,
            crate::horizon::HorizonMode::Greedy { margin: 1.5 },
        )
        .unwrap();
        let lp = solve_time_indexed(&inst, &routing, t, &SolverOptions::default()).unwrap();
        assert!(lp.objective > 0.0);
        let sched = lp.plan.discretize();
        crate::validate::validate(
            &inst,
            &routing,
            &sched,
            crate::validate::Tolerance::default(),
        )
        .unwrap();
    }
}
