//! Online coflow scheduling by repeated re-solving — the direction the
//! paper's conclusion (§7) points at ("developing online methods for
//! coflow scheduling"), in the spirit of the offline-to-online
//! frameworks it cites (Khuller et al., LATIN 2018).
//!
//! The scheduler is clairvoyant about *demands* but not arrivals: at
//! every release epoch it re-solves the time-indexed relaxation over the
//! released, unfinished work and follows the λ=1 heuristic schedule
//! until the next arrival. The execution trace is assembled into an
//! ordinary [`Schedule`] over the original instance, so the standard
//! validator and completion accounting apply unchanged — and the
//! offline LP bound remains a valid yardstick.
//!
//! Since the warm-start rework the per-epoch LP is **not** rebuilt: a
//! persistent [`TimeIndexedResolver`] keeps one model on the global
//! timeline, each epoch *appends* the newly released flows' columns and
//! rows, freezes the fractions executed in the window just played, and
//! re-solves warm from the previous basis. Pass
//! [`OnlineOptions::cold`] to re-solve every epoch from the all-slack
//! crash basis instead (the `--cold` A/B escape hatch), and
//! [`OnlineOptions::shadow_cold`] to *additionally* cold-solve each
//! epoch's exact model on the side — the rigorous warm-vs-cold
//! iteration comparison on identical LPs that `perf_report` records.

use crate::error::CoflowError;
use crate::heuristic::lp_heuristic;
use crate::horizon::{horizon, HorizonMode};
use crate::model::{Coflow, CoflowInstance, Flow};
use crate::rateplan::RatePlan;
use crate::resolver::TimeIndexedResolver;
use crate::routing::Routing;
use crate::schedule::{Schedule, SlotTransfer};
use crate::stretch::StretchOptions;
use coflow_lp::SolverOptions;

/// Knobs for [`online_heuristic_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineOptions {
    /// Drop the basis before every epoch re-solve (A/B baseline;
    /// mutation bookkeeping is unchanged, only the warm start is off).
    pub cold: bool,
    /// Additionally solve each epoch's exact model from the all-slack
    /// crash basis, recording its objective and iteration count in
    /// [`OnlineOutcome::cold_objectives`] /
    /// [`OnlineOutcome::cold_iterations`]. This is the apples-to-apples
    /// measurement: same LP sequence, warm vs cold.
    pub shadow_cold: bool,
}

/// Result of an online run.
#[derive(Clone, Debug)]
pub struct OnlineOutcome {
    /// The executed schedule (validates against the original instance).
    pub schedule: Schedule,
    /// Number of LP re-solves performed (one per arrival epoch with
    /// pending work).
    pub resolves: usize,
    /// Total simplex iterations across all epoch re-solves — the LP
    /// effort the run actually spent (plotted by the perf harness).
    pub lp_iterations: usize,
    /// Engine counters summed over the epoch re-solves (FTRAN/BTRAN
    /// solves and nonzeros add; the peak-workspace estimate is the max).
    pub lp_stats: coflow_lp::SolveStats,
    /// Objective of each epoch's LP re-solve, in epoch order.
    pub epoch_objectives: Vec<f64>,
    /// With [`OnlineOptions::shadow_cold`]: total iterations the same
    /// LP sequence costs from the all-slack crash basis.
    pub cold_iterations: Option<usize>,
    /// With [`OnlineOptions::shadow_cold`]: each epoch's cold objective
    /// (must match [`OnlineOutcome::epoch_objectives`] to LP tolerance).
    pub cold_objectives: Option<Vec<f64>>,
    /// Horizon-growth rebuilds the resolver needed (0 in the common
    /// case: the initial greedy estimate covered the whole run).
    pub rebuilds: usize,
}

/// Runs the online re-solving heuristic with default options (warm
/// re-solves). See module docs.
///
/// # Errors
///
/// Propagates LP/routing errors from the per-epoch solves.
pub fn online_heuristic(
    inst: &CoflowInstance,
    routing: &Routing,
    lp_opts: &SolverOptions,
) -> Result<OnlineOutcome, CoflowError> {
    online_heuristic_with(inst, routing, lp_opts, &OnlineOptions::default())
}

/// Runs the online re-solving heuristic. See module docs.
///
/// # Errors
///
/// Propagates LP/routing errors from the per-epoch solves.
pub fn online_heuristic_with(
    inst: &CoflowInstance,
    routing: &Routing,
    lp_opts: &SolverOptions,
    online_opts: &OnlineOptions,
) -> Result<OnlineOutcome, CoflowError> {
    routing.validate(inst)?;

    // Arrival epochs: distinct flow releases, ascending.
    let mut epochs: Vec<u32> = inst.flows().map(|(_, f)| f.release).collect();
    epochs.sort_unstable();
    epochs.dedup();

    let mut remaining: Vec<Vec<f64>> = inst
        .coflows
        .iter()
        .map(|c| c.flows.iter().map(|f| f.demand).collect())
        .collect();
    let mut schedule = Schedule {
        flows: inst
            .coflows
            .iter()
            .map(|c| vec![Vec::new(); c.flows.len()])
            .collect(),
    };
    let mut resolves = 0;
    let mut rebuilds = 0;
    let mut lp_stats = coflow_lp::SolveStats::default();
    let mut epoch_objectives = Vec::with_capacity(epochs.len());
    let mut cold_objectives = Vec::new();
    let mut cold_iterations = 0usize;

    let t0 = horizon(inst, routing, HorizonMode::Greedy { margin: 1.25 })?;
    let mut resolver = TimeIndexedResolver::new(inst, routing, t0, !online_opts.cold)?;

    for (ei, &epoch) in epochs.iter().enumerate() {
        // Reveal this epoch's arrivals to the persistent LP.
        for (key, f) in inst.flows() {
            if f.release == epoch {
                resolver.activate_flow(key.coflow as usize, key.flow as usize, f.release + 1)?;
            }
        }
        // Work available from slot epoch+1 onward.
        let sub = build_residual(inst, routing, &remaining, epoch);
        let Some((sub_inst, _sub_routing, index)) = sub else {
            continue; // nothing pending at this epoch
        };
        resolves += 1;

        // Warm re-solve; on horizon overflow grow and replay (rare).
        let lp = loop {
            match resolver.solve(lp_opts)? {
                Some(lp) => break lp,
                None => {
                    rebuilds += 1;
                    if rebuilds > 8 {
                        return Err(CoflowError::Lp(
                            "online resolver: horizon growth did not restore feasibility".into(),
                        ));
                    }
                    let grown = ((resolver.horizon() as f64) * 1.5).ceil() as u32 + 1;
                    resolver.rebuild(grown)?;
                }
            }
        };
        lp_stats.merge(&lp.stats);
        epoch_objectives.push(lp.objective);
        if online_opts.shadow_cold {
            let (obj, iters) = resolver
                .probe_cold(lp_opts)?
                .expect("warm-feasible model is cold-feasible");
            cold_objectives.push(obj);
            cold_iterations += iters;
        }

        // Local residual plan: the global solution restricted to slots
        // after this epoch, shifted onto the residual timeline.
        let sub_plan = residual_plan(&lp.plan, &index, epoch);
        let plan = lp_heuristic(&sub_inst, &sub_plan, StretchOptions::default());

        // Execute until the next epoch (or to completion after the last).
        let window = match epochs.get(ei + 1) {
            Some(&next) => next - epoch,
            None => u32::MAX,
        };
        let mut executed: std::collections::BTreeMap<(usize, usize, u32), f64> =
            std::collections::BTreeMap::new();
        for (sj, row) in plan.flows.iter().enumerate() {
            for (si, fl) in row.iter().enumerate() {
                let (j, i) = index[sj][si];
                for st in fl {
                    if st.slot > window {
                        continue; // superseded by the next re-solve
                    }
                    let global_slot = epoch + st.slot;
                    remaining[j][i] -= st.volume;
                    if remaining[j][i] < 1e-9 {
                        remaining[j][i] = 0.0;
                    }
                    *executed.entry((j, i, global_slot)).or_insert(0.0) += st.volume;
                    schedule.flows[j][i].push(SlotTransfer {
                        slot: global_slot,
                        volume: st.volume,
                        edges: st.edges.clone(),
                    });
                }
            }
        }
        // Freeze the window in the persistent LP: every pending flow's
        // slots in (epoch, next_epoch] are pinned to what actually ran
        // (including zero), so the next warm re-solve schedules only the
        // remaining work. After the last epoch nothing is pending.
        if window != u32::MAX {
            let next_epoch = epoch + window;
            for idx_row in &index {
                for &(j, i) in idx_row {
                    let demand = inst.coflows[j].flows[i].demand;
                    for slot in epoch + 1..=next_epoch.min(resolver.horizon()) {
                        let vol = executed.get(&(j, i, slot)).copied().unwrap_or(0.0);
                        resolver.fix_slot(j, i, slot, vol / demand);
                    }
                }
            }
        }
    }

    // All work must be done: the final epoch's schedule ran to completion.
    for (j, row) in remaining.iter().enumerate() {
        for (i, &r) in row.iter().enumerate() {
            if r > 1e-6 {
                return Err(CoflowError::InvalidSchedule(format!(
                    "online run left flow ({j},{i}) with {r} unmoved"
                )));
            }
        }
    }
    for row in &mut schedule.flows {
        for fl in row {
            fl.sort_by_key(|st| st.slot);
        }
    }
    Ok(OnlineOutcome {
        schedule,
        resolves,
        lp_iterations: resolver.total_iterations(),
        lp_stats,
        epoch_objectives,
        cold_iterations: online_opts.shadow_cold.then_some(cold_iterations),
        cold_objectives: online_opts.shadow_cold.then_some(cold_objectives),
        rebuilds,
    })
}

/// Slices a resolver's global-timeline plan down to the residual
/// sub-instance: only segments after `epoch`, shifted so the residual
/// timeline starts at 0, indexed like the sub-instance.
///
/// Public for the streaming service (`coflow-service`), whose epoch
/// loop replays exactly this transformation.
pub fn residual_plan(global: &RatePlan, index: &ResidualIndex, epoch: u32) -> RatePlan {
    let e = epoch as f64;
    RatePlan {
        flows: index
            .iter()
            .map(|idx_row| {
                idx_row
                    .iter()
                    .map(|&(j, i)| global.flows[j][i].tail_from(e))
                    .collect()
            })
            .collect(),
    }
}

/// Maps `(sub coflow, sub flow)` of a residual sub-instance back to
/// `(orig coflow, orig flow)` of the full instance: `index[j'][i']`.
pub type ResidualIndex = Vec<Vec<(usize, usize)>>;

/// Builds the residual sub-instance of released, unfinished flows at
/// `epoch`, with releases reset to 0. Returns `None` when nothing is
/// pending. The index maps `(sub coflow, sub flow) → (orig coflow,
/// orig flow)`.
///
/// Public for the streaming service (`coflow-service`), whose epoch
/// loop replays exactly this transformation.
pub fn build_residual(
    inst: &CoflowInstance,
    routing: &Routing,
    remaining: &[Vec<f64>],
    epoch: u32,
) -> Option<(CoflowInstance, Routing, ResidualIndex)> {
    let mut coflows = Vec::new();
    let mut index: ResidualIndex = Vec::new();
    let mut single_tmp: Vec<Vec<coflow_netgraph::Path>> = Vec::new();
    let mut multi_tmp: Vec<Vec<Vec<coflow_netgraph::Path>>> = Vec::new();
    for (j, cf) in inst.coflows.iter().enumerate() {
        let mut flows = Vec::new();
        let mut idx_row = Vec::new();
        let mut srow = Vec::new();
        let mut mrow = Vec::new();
        for (i, f) in cf.flows.iter().enumerate() {
            if f.release <= epoch && remaining[j][i] > 1e-9 {
                flows.push(Flow::new(f.src, f.dst, remaining[j][i]));
                idx_row.push((j, i));
                match routing {
                    Routing::SinglePath(p) => srow.push(p[j][i].clone()),
                    Routing::MultiPath(p) => mrow.push(p[j][i].clone()),
                    Routing::FreePath => {}
                }
            }
        }
        if flows.is_empty() {
            continue;
        }
        coflows.push(Coflow::weighted(cf.weight, flows));
        index.push(idx_row);
        single_tmp.push(srow);
        multi_tmp.push(mrow);
    }
    if coflows.is_empty() {
        return None;
    }
    let sub_routing = match routing {
        Routing::SinglePath(_) => Routing::SinglePath(single_tmp),
        Routing::MultiPath(_) => Routing::MultiPath(multi_tmp),
        Routing::FreePath => Routing::FreePath,
    };
    let sub_inst = CoflowInstance::new(inst.graph.clone(), coflows)
        .expect("residual of a valid instance is valid");
    Some((sub_inst, sub_routing, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Algorithm, Scheduler};
    use crate::validate::{validate, Tolerance};
    use coflow_netgraph::topology;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn staggered_instance(seed: u64, releases: &[u32]) -> CoflowInstance {
        let topo = topology::swan().scale_capacity(5.0);
        let g = topo.graph;
        let nodes: Vec<_> = g.nodes().collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let coflows = releases
            .iter()
            .map(|&r| {
                let a = nodes[rng.gen_range(0..nodes.len())];
                let mut b = nodes[rng.gen_range(0..nodes.len())];
                while b == a {
                    b = nodes[rng.gen_range(0..nodes.len())];
                }
                Coflow::weighted(
                    rng.gen_range(1.0..10.0),
                    vec![Flow::released(a, b, rng.gen_range(20.0..60.0), r)],
                )
            })
            .collect();
        CoflowInstance::new(g, coflows).unwrap()
    }

    #[test]
    fn without_releases_online_equals_offline_heuristic() {
        let inst = staggered_instance(1, &[0, 0, 0]);
        let offline = Scheduler::new(Algorithm::LpHeuristic)
            .solve(&inst, &Routing::FreePath)
            .unwrap();
        let online =
            online_heuristic(&inst, &Routing::FreePath, &SolverOptions::default()).unwrap();
        assert_eq!(online.resolves, 1);
        let rep = validate(
            &inst,
            &Routing::FreePath,
            &online.schedule,
            Tolerance::default(),
        )
        .unwrap();
        assert!(
            (rep.completions.weighted_total - offline.cost).abs() < 1e-6,
            "online {} vs offline {}",
            rep.completions.weighted_total,
            offline.cost
        );
    }

    #[test]
    fn staggered_arrivals_validate_and_respect_the_offline_bound() {
        let inst = staggered_instance(2, &[0, 3, 3, 7]);
        let online =
            online_heuristic(&inst, &Routing::FreePath, &SolverOptions::default()).unwrap();
        assert_eq!(online.resolves, 3, "three distinct arrival epochs");
        let rep = validate(
            &inst,
            &Routing::FreePath,
            &online.schedule,
            Tolerance::default(),
        )
        .unwrap();
        // The offline LP bound is a bound for the online algorithm too.
        let offline = Scheduler::new(Algorithm::LpHeuristic)
            .solve(&inst, &Routing::FreePath)
            .unwrap();
        assert!(rep.completions.weighted_total >= offline.lower_bound - 1e-6);
        // Releases respected is part of validation; completions after
        // releases is implied, re-check explicitly.
        for (j, &c) in rep.completions.per_coflow.iter().enumerate() {
            assert!(c > inst.coflows[j].release());
        }
    }

    #[test]
    fn single_path_online_runs() {
        let inst = staggered_instance(3, &[0, 2, 5]);
        let mut rng = StdRng::seed_from_u64(9);
        let r = crate::routing::random_shortest_paths(&inst, &mut rng).unwrap();
        let online = online_heuristic(&inst, &r, &SolverOptions::default()).unwrap();
        validate(&inst, &r, &online.schedule, Tolerance::default()).unwrap();
    }

    #[test]
    fn late_heavy_arrival_preempts_light_work() {
        // A light coflow starts alone; a heavy-weight one arrives later
        // and the re-solve should not strand it behind the light one.
        let topo = topology::line(2, 1.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let inst = CoflowInstance::new(
            g,
            vec![
                Coflow::weighted(1.0, vec![Flow::new(v0, v1, 10.0)]),
                Coflow::weighted(100.0, vec![Flow::released(v0, v1, 2.0, 2)]),
            ],
        )
        .unwrap();
        let online =
            online_heuristic(&inst, &Routing::FreePath, &SolverOptions::default()).unwrap();
        let rep = validate(
            &inst,
            &Routing::FreePath,
            &online.schedule,
            Tolerance::default(),
        )
        .unwrap();
        // The heavy coflow (2 units, released after slot 2) should finish
        // by ~slot 4-5 rather than waiting for the light one's 10 units.
        assert!(
            rep.completions.per_coflow[1] <= 5,
            "heavy coflow finished at {}",
            rep.completions.per_coflow[1]
        );
    }
}
