//! Transmission models and routing data (paper §2 and §3.1).
//!
//! * **Single path** — every flow ships along one fixed path (the
//!   "circuit-based coflows with paths given" model of Jahanjou et al.).
//! * **Multi path** — the intermediate model the paper sketches in §2:
//!   several candidate paths per flow, with the LP free to split rates
//!   among them.
//! * **Free path** — per-slot transmission is an arbitrary feasible
//!   multi-commodity flow (Terra's model); no path data needed.

use crate::error::CoflowError;
use crate::model::CoflowInstance;
use coflow_netgraph::ksp::{k_shortest_paths, PathCost};
use coflow_netgraph::shortest::ShortestPathDag;
use coflow_netgraph::Path;
use rand::Rng;

/// Routing data for an instance; variants parallel the paper's models.
#[derive(Clone, Debug)]
pub enum Routing {
    /// One fixed path per flow, indexed `[coflow][flow]`.
    SinglePath(Vec<Vec<Path>>),
    /// Candidate path sets per flow, indexed `[coflow][flow][path]`.
    MultiPath(Vec<Vec<Vec<Path>>>),
    /// Free multi-commodity routing; no static paths.
    FreePath,
}

impl Routing {
    /// Short display name matching the paper's terminology.
    pub fn model_name(&self) -> &'static str {
        match self {
            Routing::SinglePath(_) => "single-path",
            Routing::MultiPath(_) => "multi-path",
            Routing::FreePath => "free-path",
        }
    }

    /// Validates routing against an instance: every flow must have its
    /// path(s), with matching endpoints.
    ///
    /// # Errors
    ///
    /// [`CoflowError::BadRouting`] describing the first mismatch.
    pub fn validate(&self, inst: &CoflowInstance) -> Result<(), CoflowError> {
        let check_path = |j: usize, i: usize, p: &Path| -> Result<(), CoflowError> {
            let f = &inst.coflows[j].flows[i];
            if p.source(&inst.graph) != f.src || p.dest(&inst.graph) != f.dst {
                return Err(CoflowError::BadRouting(format!(
                    "path for flow {i} of coflow {j} has wrong endpoints"
                )));
            }
            Ok(())
        };
        match self {
            Routing::FreePath => Ok(()),
            Routing::SinglePath(paths) => {
                if paths.len() != inst.num_coflows() {
                    return Err(CoflowError::BadRouting(
                        "path table size != coflow count".into(),
                    ));
                }
                for (j, cf) in inst.coflows.iter().enumerate() {
                    if paths[j].len() != cf.flows.len() {
                        return Err(CoflowError::BadRouting(format!(
                            "coflow {j}: {} paths for {} flows",
                            paths[j].len(),
                            cf.flows.len()
                        )));
                    }
                    for i in 0..cf.flows.len() {
                        check_path(j, i, &paths[j][i])?;
                    }
                }
                Ok(())
            }
            Routing::MultiPath(sets) => {
                if sets.len() != inst.num_coflows() {
                    return Err(CoflowError::BadRouting(
                        "path-set table size != coflow count".into(),
                    ));
                }
                for (j, cf) in inst.coflows.iter().enumerate() {
                    if sets[j].len() != cf.flows.len() {
                        return Err(CoflowError::BadRouting(format!(
                            "coflow {j}: {} path sets for {} flows",
                            sets[j].len(),
                            cf.flows.len()
                        )));
                    }
                    for i in 0..cf.flows.len() {
                        if sets[j][i].is_empty() {
                            return Err(CoflowError::BadRouting(format!(
                                "empty path set for flow {i} of coflow {j}"
                            )));
                        }
                        for p in &sets[j][i] {
                            check_path(j, i, p)?;
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

/// Assigns each flow a uniformly random shortest path — the paper's §6.2
/// setup for the single-path experiments ("we randomly select one of the
/// shortest paths as the path for flow `f_j^i`").
///
/// # Errors
///
/// [`CoflowError::BadRouting`] when some flow has no path (instance
/// validation normally rules this out).
pub fn random_shortest_paths<R: Rng + ?Sized>(
    inst: &CoflowInstance,
    rng: &mut R,
) -> Result<Routing, CoflowError> {
    let mut table = Vec::with_capacity(inst.num_coflows());
    for cf in &inst.coflows {
        let mut row = Vec::with_capacity(cf.flows.len());
        for f in &cf.flows {
            let dag = ShortestPathDag::new(&inst.graph, f.src, f.dst)
                .map_err(|e| CoflowError::BadRouting(e.to_string()))?;
            row.push(dag.sample_uniform(&inst.graph, rng));
        }
        table.push(row);
    }
    Ok(Routing::SinglePath(table))
}

/// Builds the multi-path model's candidate sets: up to `k` shortest
/// loopless paths per flow (hop metric).
///
/// # Errors
///
/// [`CoflowError::BadRouting`] when some flow has no path.
pub fn k_shortest_path_sets(inst: &CoflowInstance, k: usize) -> Result<Routing, CoflowError> {
    let mut table = Vec::with_capacity(inst.num_coflows());
    for cf in &inst.coflows {
        let mut row = Vec::with_capacity(cf.flows.len());
        for f in &cf.flows {
            let paths = k_shortest_paths(&inst.graph, f.src, f.dst, k, PathCost::Hops)
                .map_err(|e| CoflowError::BadRouting(e.to_string()))?;
            row.push(paths);
        }
        table.push(row);
    }
    Ok(Routing::MultiPath(table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coflow, Flow};
    use coflow_netgraph::topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_instance() -> CoflowInstance {
        let t = topology::gscale();
        let g = t.graph;
        let a = g.node_by_label("Asia-1").unwrap();
        let e = g.node_by_label("EU-2").unwrap();
        let w = g.node_by_label("US-West-1").unwrap();
        CoflowInstance::new(
            g,
            vec![
                Coflow::new(vec![Flow::new(a, e, 10.0), Flow::new(w, e, 5.0)]),
                Coflow::weighted(3.0, vec![Flow::new(e, a, 7.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn random_shortest_paths_are_shortest_and_valid() {
        let inst = small_instance();
        let mut rng = StdRng::seed_from_u64(1);
        let routing = random_shortest_paths(&inst, &mut rng).unwrap();
        routing.validate(&inst).unwrap();
        let Routing::SinglePath(t) = &routing else {
            panic!()
        };
        // Each path length equals the BFS distance.
        for (j, cf) in inst.coflows.iter().enumerate() {
            for (i, f) in cf.flows.iter().enumerate() {
                let d = coflow_netgraph::shortest::bfs_distances(&inst.graph, f.src)[f.dst.index()]
                    .unwrap();
                assert_eq!(t[j][i].len(), d as usize);
            }
        }
    }

    #[test]
    fn k_shortest_sets_validate() {
        let inst = small_instance();
        let routing = k_shortest_path_sets(&inst, 4).unwrap();
        routing.validate(&inst).unwrap();
        let Routing::MultiPath(sets) = &routing else {
            panic!()
        };
        for row in sets {
            for set in row {
                assert!(!set.is_empty() && set.len() <= 4);
            }
        }
        assert_eq!(routing.model_name(), "multi-path");
    }

    #[test]
    fn validation_catches_mismatches() {
        let inst = small_instance();
        // Wrong shape: single path table with too few rows.
        let bad = Routing::SinglePath(vec![]);
        assert!(bad.validate(&inst).is_err());
        // Wrong endpoints: use coflow 1's path for coflow 0's first flow.
        let mut rng = StdRng::seed_from_u64(2);
        let Routing::SinglePath(mut t) = random_shortest_paths(&inst, &mut rng).unwrap() else {
            panic!()
        };
        t[0][0] = t[1][0].clone();
        assert!(Routing::SinglePath(t).validate(&inst).is_err());
        // Free path always validates.
        Routing::FreePath.validate(&inst).unwrap();
    }
}
