//! A persistent, warm-started time-indexed LP that survives across
//! arrival epochs and batch dispatches.
//!
//! The online algorithms solve *sequences* of nearly-identical
//! time-indexed relaxations: each arrival epoch adds a few flows and
//! freezes the slots that were just executed, everything else is
//! unchanged. Rebuilding and cold-solving the LP at every epoch (what
//! [`crate::online`] did before this module) throws the previous basis
//! away exactly when it is most useful. [`TimeIndexedResolver`] keeps
//! one [`Model`] and one [`Basis`] alive instead:
//!
//! * **arrival** — the new flows' columns and rows are *appended* to the
//!   solved model ([`Model::add_var`] / [`Model::add_constraint`] /
//!   [`Model::add_term`] into the shared capacity rows), the basis is
//!   patched up with [`Basis::grow`], and the dual simplex pivots back
//!   to optimality;
//! * **execution** — the fractions actually transmitted in the window
//!   just played are frozen with [`fix_slot`](TimeIndexedResolver::fix_slot)
//!   (bound changes keep the basis dual feasible), so the next re-solve
//!   schedules only the remaining work.
//!
//! The model lives on the *global* timeline of the original instance:
//! flow variables start at the flow's activation slot, and executed
//! history stays in the model as fixed variables. The first solve is
//! built lazily over everything activated so far and goes through the
//! ordinary presolved cold path — when every flow activates at
//! `release + 1` before the first solve, the model (and hence the
//! solution) is bit-for-bit the offline [`crate::timeidx`] relaxation.
//! Later solves use [`Model::solve_warm`]; construct with `warm = false`
//! (the `--cold` escape hatch) to re-solve every epoch from the
//! all-slack crash basis instead, for A/B iteration measurements.
//!
//! When capacity or horizon pressure makes an epoch infeasible (the
//! composed online schedule outgrew the initial horizon estimate), the
//! caller grows the horizon with
//! [`Self::rebuild`](TimeIndexedResolver::rebuild): the activation and fix
//! logs are replayed into a fresh, larger model and solving restarts
//! cold — rare, bounded, and self-healing.

use crate::error::CoflowError;
use crate::model::{Coflow, CoflowInstance};
use crate::routing::Routing;
use crate::timeidx::{self, Built, FlowVars, LpRelaxation, LpSize};
use coflow_lp::{slot_block_crash, Basis, Cmp, ConstraintId, Model, Pricing, SolverOptions, VarId};
use coflow_netgraph::EdgeId;
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Persistent warm-started solver for a growing time-indexed LP.
/// See the module docs for the epoch loop it serves.
///
/// The instance is held as a [`Cow`]: batch callers borrow it
/// ([`new`](Self::new), zero-copy, the historical API), while the
/// streaming service owns it ([`new_owned`](Self::new_owned)) so coflows
/// can be admitted incrementally with
/// [`push_coflow`](Self::push_coflow) while the resolver is alive.
pub struct TimeIndexedResolver<'a> {
    inst: Cow<'a, CoflowInstance>,
    routing: Cow<'a, Routing>,
    horizon: u32,
    warm: bool,
    built: Option<Built>,
    /// `(slot, edge) → capacity row` index mirroring `built.cap_rows`.
    cap_index: BTreeMap<(u32, EdgeId), ConstraintId>,
    basis: Option<Basis>,
    solved_once: bool,
    // Replay logs for `rebuild`.
    activations: Vec<(usize, usize, u32)>,
    fixes: Vec<(usize, usize, u32, f64)>,
    // Instrumentation.
    resolves: usize,
    total_iterations: usize,
    last_iterations: usize,
    last_was_warm: bool,
}

impl<'a> TimeIndexedResolver<'a> {
    /// Creates an empty resolver over `(inst, routing)` with the given
    /// global horizon. Flows contribute nothing until
    /// [`activate_flow`](TimeIndexedResolver::activate_flow)ed.
    ///
    /// `warm = false` keeps every mutation but re-solves from the
    /// all-slack crash basis each time — the measurement baseline.
    ///
    /// # Errors
    ///
    /// [`CoflowError::BadRouting`] when routing does not match the
    /// instance.
    pub fn new(
        inst: &'a CoflowInstance,
        routing: &'a Routing,
        horizon: u32,
        warm: bool,
    ) -> Result<Self, CoflowError> {
        routing.validate(inst)?;
        Ok(Self::from_cows(
            Cow::Borrowed(inst),
            Cow::Borrowed(routing),
            horizon,
            warm,
        ))
    }

    /// Like [`new`](Self::new), but the resolver *owns* instance and
    /// routing — the streaming-service mode. An owned resolver has no
    /// borrow tying it to a caller frame, so it can live in a tenant map
    /// across epochs and move between runtime workers; it also unlocks
    /// [`push_coflow`](Self::push_coflow) for incremental admission.
    ///
    /// # Errors
    ///
    /// [`CoflowError::BadRouting`] when routing does not match the
    /// instance.
    pub fn new_owned(
        inst: CoflowInstance,
        routing: Routing,
        horizon: u32,
        warm: bool,
    ) -> Result<TimeIndexedResolver<'static>, CoflowError> {
        routing.validate(&inst)?;
        Ok(TimeIndexedResolver::from_cows(
            Cow::Owned(inst),
            Cow::Owned(routing),
            horizon,
            warm,
        ))
    }

    fn from_cows(
        inst: Cow<'a, CoflowInstance>,
        routing: Cow<'a, Routing>,
        horizon: u32,
        warm: bool,
    ) -> Self {
        TimeIndexedResolver {
            inst,
            routing,
            horizon,
            warm,
            built: None,
            cap_index: BTreeMap::new(),
            basis: None,
            solved_once: false,
            activations: Vec::new(),
            fixes: Vec::new(),
            resolves: 0,
            total_iterations: 0,
            last_iterations: 0,
            last_was_warm: false,
        }
    }

    /// Admits a new coflow into an *owned* resolver (see
    /// [`new_owned`](Self::new_owned)), returning its index. The coflow
    /// is validated against the graph but contributes nothing to the
    /// model until its flows are
    /// [`activate_flow`](Self::activate_flow)ed — mirroring how the
    /// offline build skips inactive flows, so admission is O(1) on the
    /// LP.
    ///
    /// # Errors
    ///
    /// [`CoflowError::BadInstance`] when the resolver borrows its
    /// instance or the coflow fails validation;
    /// [`CoflowError::BadRouting`] under routing models whose per-flow
    /// path sets are indexed by the original coflow list (admission is
    /// supported for [`Routing::FreePath`] only).
    pub fn push_coflow(&mut self, cf: Coflow) -> Result<usize, CoflowError> {
        if !matches!(&*self.routing, Routing::FreePath) {
            return Err(CoflowError::BadRouting(
                "streaming admission is only supported under free-path routing".into(),
            ));
        }
        let nflows = cf.flows.len();
        let inst = match &mut self.inst {
            Cow::Owned(inst) => inst,
            Cow::Borrowed(_) => {
                return Err(CoflowError::BadInstance(
                    "push_coflow needs an owned instance — construct with new_owned".into(),
                ))
            }
        };
        let j = inst.push_coflow(cf)?;
        if let Some(built) = &mut self.built {
            // Mirror the offline build's placeholder layout: a freshly
            // admitted coflow is all-inactive until activated.
            built
                .flow_vars
                .push((0..nflows).map(|_| FlowVars::inactive()).collect());
            built.c_vars.push(None);
            built.x_coflow.push(None);
        }
        Ok(j)
    }

    /// The instance scheduled by this resolver (grows under
    /// [`push_coflow`](Self::push_coflow)).
    pub fn instance(&self) -> &CoflowInstance {
        &self.inst
    }

    /// The global horizon `T` the model is built over.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// LP re-solves performed so far.
    pub fn resolves(&self) -> usize {
        self.resolves
    }

    /// Simplex iterations across all solves.
    pub fn total_iterations(&self) -> usize {
        self.total_iterations
    }

    /// Iterations of the most recent solve.
    pub fn last_iterations(&self) -> usize {
        self.last_iterations
    }

    /// Whether the most recent solve started from a kept basis.
    pub fn last_was_warm(&self) -> bool {
        self.last_was_warm
    }

    /// Activates flow `(j, i)`: its variables cover slots
    /// `first_slot ..= horizon`. Before the first solve this only
    /// records the activation (the model is built lazily, in offline
    /// build order); afterwards the flow's columns and rows are appended
    /// to the solved model and the kept basis is grown to match.
    ///
    /// # Errors
    ///
    /// [`CoflowError::BadInstance`] when `first_slot` lies outside
    /// `1..=horizon` — grow the horizon with
    /// [`Self::rebuild`](TimeIndexedResolver::rebuild) first.
    pub fn activate_flow(
        &mut self,
        j: usize,
        i: usize,
        first_slot: u32,
    ) -> Result<(), CoflowError> {
        if !(1..=self.horizon).contains(&first_slot) {
            return Err(CoflowError::BadInstance(format!(
                "activation slot {first_slot} outside horizon {} for flow ({j},{i})",
                self.horizon
            )));
        }
        self.activations.push((j, i, first_slot));
        if self.built.is_some() {
            self.append_flow(j, i, first_slot);
        }
        Ok(())
    }

    /// Freezes the transmitted fraction of flow `(j, i)` in global
    /// `slot` (a bound change; the kept basis stays dual feasible).
    /// Fractions are of the flow's *original* demand. Panics when the
    /// flow is inactive or the slot precedes its activation.
    pub fn fix_slot(&mut self, j: usize, i: usize, slot: u32, fraction: f64) {
        assert!(
            self.built.is_some(),
            "fix_slot before the first solve — nothing was executed yet"
        );
        let fraction = fraction.clamp(0.0, 1.0);
        self.fixes.push((j, i, slot, fraction));
        self.apply_fix(j, i, slot, fraction);
    }

    /// The append-only activation log `(coflow, flow, first_slot)` that
    /// [`Self::rebuild`] replays. Exposed so a service-layer journal can
    /// persist resolver state in its native replay shape.
    pub fn activations(&self) -> &[(usize, usize, u32)] {
        &self.activations
    }

    /// The append-only executed-slot fix log
    /// `(coflow, flow, slot, fraction)` that [`Self::rebuild`] replays after
    /// the model is rebuilt.
    pub fn fixes(&self) -> &[(usize, usize, u32, f64)] {
        &self.fixes
    }

    /// Installs journaled activation/fix logs on a resolver that has
    /// never been built, in preparation for a single [`Self::rebuild`] that
    /// replays them — the crash-recovery path. No solves happen here or
    /// in [`Self::rebuild`]; recovery cost is one model build plus the fix
    /// replay, which is why journal recovery is an order of magnitude
    /// cheaper than re-solving every epoch.
    ///
    /// # Panics
    ///
    /// If the resolver already built a model or logged events of its
    /// own — recovery must start from a freshly constructed resolver.
    pub fn restore_logs(
        &mut self,
        activations: Vec<(usize, usize, u32)>,
        fixes: Vec<(usize, usize, u32, f64)>,
    ) {
        assert!(
            self.built.is_none() && self.activations.is_empty() && self.fixes.is_empty(),
            "restore_logs on a resolver that already has state"
        );
        self.activations = activations;
        self.fixes = fixes;
    }

    /// Re-solves the current model, warm-starting from the kept basis
    /// when one exists (and `warm` is on). `Ok(None)` reports
    /// infeasibility — the caller should [`Self::rebuild`] with a larger
    /// horizon.
    ///
    /// [`Self::rebuild`]: TimeIndexedResolver::rebuild
    ///
    /// # Errors
    ///
    /// Any LP failure other than infeasibility.
    pub fn solve(&mut self, opts: &SolverOptions) -> Result<Option<LpRelaxation>, CoflowError> {
        self.ensure_built()?;
        self.resolves += 1;
        let built = self.built.as_ref().expect("ensured above");
        let size = LpSize {
            rows: built.model.num_constraints(),
            cols: built.model.num_vars(),
            nonzeros: built.model.num_nonzeros(),
        };
        if !self.solved_once && self.basis.is_none() {
            // First solve: the ordinary presolved cold path, so a
            // resolver whose flows all activated up front reproduces the
            // offline relaxation exactly. (After a rebuild the slot-block
            // crash may have seeded a basis; that path re-solves warm.)
            self.last_was_warm = false;
            return match built.model.solve_with(opts) {
                Ok(sol) => {
                    self.solved_once = true;
                    if self.warm {
                        // The presolved path captures no basis; crash
                        // one from the optimal point so the next epoch
                        // already re-solves warm.
                        self.basis = Some(Basis::from_point(&built.model, &sol.x));
                    }
                    self.last_iterations = sol.iterations;
                    self.total_iterations += sol.iterations;
                    Ok(Some(timeidx::extract(
                        &self.inst,
                        &self.routing,
                        built,
                        &sol,
                        self.horizon,
                        size,
                    )))
                }
                Err(coflow_lp::LpError::Infeasible) => Ok(None),
                Err(e) => Err(e.into()),
            };
        }
        if let Some(b) = &mut self.basis {
            b.grow(built.model.num_vars(), built.model.num_constraints());
        }
        let warm = if self.warm { self.basis.as_ref() } else { None };
        self.last_was_warm = warm.is_some();
        // Epoch re-solves default to Forrest–Tomlin updates plus dual
        // steepest edge: upgrade the stock Devex pricing, but leave an
        // explicit caller choice (Dantzig, or already SteepestEdge) alone.
        let mut epoch_opts = opts.clone();
        if epoch_opts.pricing == Pricing::Devex {
            epoch_opts.pricing = Pricing::SteepestEdge;
        }
        match built.model.solve_warm(warm, &epoch_opts) {
            Ok((sol, basis)) => {
                self.solved_once = true;
                if self.warm {
                    self.basis = Some(basis);
                }
                self.last_iterations = sol.iterations;
                self.total_iterations += sol.iterations;
                Ok(Some(timeidx::extract(
                    &self.inst,
                    &self.routing,
                    built,
                    &sol,
                    self.horizon,
                    size,
                )))
            }
            Err(coflow_lp::LpError::Infeasible) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Solves the *current* model state from the all-slack crash basis
    /// without touching the resolver's basis or counters — the shadow
    /// measurement behind warm-vs-cold iteration comparisons on
    /// identical LPs. Returns `(objective, iterations)`, or `None` when
    /// infeasible.
    ///
    /// # Errors
    ///
    /// Any LP failure other than infeasibility.
    pub fn probe_cold(&self, opts: &SolverOptions) -> Result<Option<(f64, usize)>, CoflowError> {
        let Some(built) = &self.built else {
            return Err(CoflowError::Lp("probe_cold before the first solve".into()));
        };
        match built.model.solve_warm(None, opts) {
            Ok((sol, _)) => Ok(Some((sol.objective, sol.iterations))),
            Err(coflow_lp::LpError::Infeasible) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Rebuilds the model over a larger horizon, replaying every
    /// activation and executed-slot fix. The basis is dropped (the next
    /// solve is cold). Panics if the horizon shrinks.
    ///
    /// # Errors
    ///
    /// [`CoflowError::BadInstance`] if a replayed activation no longer
    /// fits (cannot happen when the horizon grew).
    pub fn rebuild(&mut self, new_horizon: u32) -> Result<(), CoflowError> {
        assert!(
            new_horizon >= self.horizon,
            "resolver horizon cannot shrink ({} -> {new_horizon})",
            self.horizon
        );
        self.horizon = new_horizon;
        self.built = None;
        self.cap_index.clear();
        self.basis = None;
        self.solved_once = false;
        self.ensure_built()?;
        if self.warm {
            // The rebuilt model re-solves from scratch; instead of the
            // all-slack crash, exploit the per-slot capacity blocks of
            // the time-indexed structure: the slot-block presolve crash
            // point feeds `Basis::from_point`, so the next solve starts
            // dual-feasible per slot and only repairs the coupling rows.
            let built = self.built.as_ref().expect("just built");
            if let Some(x) = slot_block_crash(&built.model) {
                self.basis = Some(Basis::from_point(&built.model, &x));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Builds the model lazily from the activation log (offline build
    /// order), then replays any executed-slot fixes.
    fn ensure_built(&mut self) -> Result<(), CoflowError> {
        if self.built.is_some() {
            return Ok(());
        }
        let mut starts: Vec<Vec<Option<u32>>> = self
            .inst
            .coflows
            .iter()
            .map(|cf| vec![None; cf.flows.len()])
            .collect();
        for &(j, i, first_slot) in &self.activations {
            starts[j][i] = Some(first_slot);
        }
        let built = timeidx::build_with_starts(&self.inst, &self.routing, self.horizon, &starts)?;
        self.cap_index = built
            .cap_rows
            .iter()
            .map(|&(t, e, c)| ((t, e), c))
            .collect();
        self.built = Some(built);
        let fixes = std::mem::take(&mut self.fixes);
        for &(j, i, slot, fraction) in &fixes {
            self.apply_fix(j, i, slot, fraction);
        }
        self.fixes = fixes;
        Ok(())
    }

    /// Appends one flow's columns and rows to the built model, stitching
    /// it into the shared capacity rows and the coflow's completion
    /// structure.
    fn append_flow(&mut self, j: usize, i: usize, first_slot: u32) {
        let t_max = self.horizon;
        let built = self.built.as_mut().expect("append after build");
        let model = &mut built.model;
        let g = &self.inst.graph;
        let f = &self.inst.coflows[j].flows[i];
        let nslots = (t_max + 1 - first_slot) as usize;

        // ---- Variables (same per-flow layout as the offline build) ----
        let mut fv = FlowVars {
            start: first_slot,
            x: Vec::new(),
            s: Vec::new(),
            paths: Vec::new(),
            edges: Vec::new(),
        };
        match &*self.routing {
            Routing::SinglePath(_) | Routing::FreePath => {
                fv.x = (0..nslots)
                    .map(|_| model.add_var("", 0.0, 1.0, 0.0))
                    .collect();
            }
            Routing::MultiPath(sets) => {
                fv.paths = sets[j][i]
                    .iter()
                    .map(|_| {
                        (0..nslots)
                            .map(|_| model.add_var("", 0.0, 1.0, 0.0))
                            .collect()
                    })
                    .collect();
            }
        }
        fv.s = (0..nslots)
            .map(|_| model.add_var("", 0.0, 1.0, 0.0))
            .collect();
        if matches!(&*self.routing, Routing::FreePath) {
            fv.edges = timeidx::free_path_mask(g, f.src, f.dst)
                .into_iter()
                .map(|e| {
                    (
                        e,
                        (0..nslots)
                            .map(|_| model.add_var("", 0.0, 1.0, 0.0))
                            .collect(),
                    )
                })
                .collect();
        }

        // ---- Prefix chain + total demand ----
        for idx in 0..nslots {
            let mut terms: Vec<(VarId, f64)> = vec![(fv.s[idx], 1.0)];
            if idx > 0 {
                terms.push((fv.s[idx - 1], -1.0));
            }
            match &*self.routing {
                Routing::MultiPath(_) => {
                    for pv in &fv.paths {
                        terms.push((pv[idx], -1.0));
                    }
                }
                _ => terms.push((fv.x[idx], -1.0)),
            }
            model.add_constraint(terms, Cmp::Eq, 0.0);
        }
        model.add_constraint([(fv.s[nslots - 1], 1.0)], Cmp::Eq, 1.0);

        // ---- Capacity (and conservation for free path) ----
        match &*self.routing {
            Routing::SinglePath(paths) => {
                for (idx, &xv) in fv.x.iter().enumerate() {
                    let t = first_slot + idx as u32;
                    for &e in paths[j][i].edges() {
                        let row = Self::capacity_row(
                            &mut self.cap_index,
                            &mut built.cap_rows,
                            model,
                            g,
                            t,
                            e,
                        );
                        model.add_term(row, xv, f.demand);
                    }
                }
            }
            Routing::MultiPath(sets) => {
                for (k, path) in sets[j][i].iter().enumerate() {
                    for (idx, &pv) in fv.paths[k].iter().enumerate() {
                        let t = first_slot + idx as u32;
                        for &e in path.edges() {
                            let row = Self::capacity_row(
                                &mut self.cap_index,
                                &mut built.cap_rows,
                                model,
                                g,
                                t,
                                e,
                            );
                            model.add_term(row, pv, f.demand);
                        }
                    }
                }
            }
            Routing::FreePath => {
                let mut incident: BTreeMap<coflow_netgraph::NodeId, (Vec<usize>, Vec<usize>)> =
                    BTreeMap::new();
                for (pos, &(e, _)) in fv.edges.iter().enumerate() {
                    incident.entry(g.src(e)).or_default().1.push(pos); // out
                    incident.entry(g.dst(e)).or_default().0.push(pos); // in
                }
                for idx in 0..nslots {
                    let t = first_slot + idx as u32;
                    for (&v, (ins, outs)) in &incident {
                        let mut terms: Vec<(VarId, f64)> = Vec::new();
                        if v == f.src {
                            for &pos in outs {
                                terms.push((fv.edges[pos].1[idx], 1.0));
                            }
                            terms.push((fv.x[idx], -1.0));
                        } else if v == f.dst {
                            for &pos in ins {
                                terms.push((fv.edges[pos].1[idx], 1.0));
                            }
                            terms.push((fv.x[idx], -1.0));
                        } else {
                            for &pos in ins {
                                terms.push((fv.edges[pos].1[idx], 1.0));
                            }
                            for &pos in outs {
                                terms.push((fv.edges[pos].1[idx], -1.0));
                            }
                        }
                        model.add_constraint(terms, Cmp::Eq, 0.0);
                    }
                    for &(e, ref vars) in &fv.edges {
                        let row = Self::capacity_row(
                            &mut self.cap_index,
                            &mut built.cap_rows,
                            model,
                            g,
                            t,
                            e,
                        );
                        model.add_term(row, vars[idx], f.demand);
                    }
                }
            }
        }

        // ---- Coflow completion structure ----
        match &mut built.x_coflow[j] {
            slot @ None => {
                // First active flow of this coflow: X_j spans its slots.
                let xvars: Vec<VarId> = (0..nslots)
                    .map(|_| model.add_var("", 0.0, 1.0, 0.0))
                    .collect();
                let c = model.add_var("", 1.0, f64::INFINITY, self.inst.coflows[j].weight);
                for (idx, &xv) in xvars.iter().enumerate() {
                    model.add_constraint([(fv.s[idx], 1.0), (xv, -1.0)], Cmp::Ge, 0.0);
                }
                let mut terms: Vec<(VarId, f64)> = vec![(c, 1.0)];
                terms.extend(xvars.iter().map(|&v| (v, 1.0)));
                model.add_constraint(terms, Cmp::Ge, 1.0 + t_max as f64);
                *slot = Some((first_slot, xvars));
                built.c_vars[j] = Some(c);
            }
            Some((xstart, xvars)) => {
                // A later flow joined: the coflow cannot have completed
                // before this flow's first slot — clamp earlier X to 0 —
                // and from then on X is bounded by the new flow's prefix.
                for t in *xstart..first_slot.max(*xstart) {
                    let xi = (t - *xstart) as usize;
                    model.set_bounds(xvars[xi], 0.0, 0.0);
                }
                for t in first_slot.max(*xstart)..=t_max {
                    let xi = (t - *xstart) as usize;
                    let si = (t - first_slot) as usize;
                    model.add_constraint([(fv.s[si], 1.0), (xvars[xi], -1.0)], Cmp::Ge, 0.0);
                }
            }
        }

        built.flow_vars[j][i] = fv;
        if let Some(b) = &mut self.basis {
            b.grow(model.num_vars(), model.num_constraints());
        }
    }

    /// Looks up (or creates, with empty terms) the capacity row of
    /// `(slot, edge)`.
    fn capacity_row(
        cap_index: &mut BTreeMap<(u32, EdgeId), ConstraintId>,
        cap_rows: &mut Vec<(u32, EdgeId, ConstraintId)>,
        model: &mut Model,
        g: &coflow_netgraph::Graph,
        t: u32,
        e: EdgeId,
    ) -> ConstraintId {
        *cap_index.entry((t, e)).or_insert_with(|| {
            let row =
                model.add_constraint(std::iter::empty::<(VarId, f64)>(), Cmp::Le, g.capacity(e));
            cap_rows.push((t, e, row));
            row
        })
    }

    /// Applies one executed-slot fix to the built model.
    fn apply_fix(&mut self, j: usize, i: usize, slot: u32, fraction: f64) {
        let built = self.built.as_mut().expect("fix after build");
        let fv = &built.flow_vars[j][i];
        assert!(
            !fv.s.is_empty() && slot >= fv.start && slot <= self.horizon,
            "fix_slot({j},{i},{slot}): flow inactive or slot outside its variables"
        );
        let idx = (slot - fv.start) as usize;
        match &*self.routing {
            Routing::SinglePath(_) | Routing::FreePath => {
                built.model.set_bounds(fv.x[idx], fraction, fraction);
            }
            Routing::MultiPath(_) => {
                // No aggregate variable: pin the per-slot path sum with
                // an appended equality row instead.
                let terms: Vec<(VarId, f64)> = fv.paths.iter().map(|pv| (pv[idx], 1.0)).collect();
                built.model.add_constraint(terms, Cmp::Eq, fraction);
                if let Some(b) = &mut self.basis {
                    b.grow(built.model.num_vars(), built.model.num_constraints());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::horizon::{horizon, HorizonMode};
    use crate::model::{Coflow, Flow};
    use crate::timeidx::solve_time_indexed;
    use coflow_netgraph::topology;

    fn fig2_instance() -> CoflowInstance {
        let topo = topology::fig2_example();
        let g = topo.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let v2 = g.node_by_label("v2").unwrap();
        CoflowInstance::new(
            g,
            vec![
                Coflow::weighted(2.0, vec![Flow::new(v1, t, 1.0)]),
                Coflow::weighted(1.0, vec![Flow::new(v2, t, 1.0)]),
                Coflow::weighted(3.0, vec![Flow::new(s, t, 3.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn all_at_once_first_solve_matches_offline_bitwise() {
        let inst = fig2_instance();
        let opts = SolverOptions::default();
        let t = 8;
        let offline = solve_time_indexed(&inst, &Routing::FreePath, t, &opts).unwrap();
        let mut r = TimeIndexedResolver::new(&inst, &Routing::FreePath, t, true).unwrap();
        for (key, f) in inst.flows() {
            let _ = f;
            r.activate_flow(key.coflow as usize, key.flow as usize, f.release + 1)
                .unwrap();
        }
        let lp = r.solve(&opts).unwrap().expect("feasible");
        assert_eq!(lp.objective.to_bits(), offline.objective.to_bits());
        assert_eq!(lp.lp_iterations, offline.lp_iterations);
    }

    #[test]
    fn appended_flow_resolves_warm_and_matches_cold() {
        let inst = fig2_instance();
        let opts = SolverOptions::default();
        let t = 8;
        let mut r = TimeIndexedResolver::new(&inst, &Routing::FreePath, t, true).unwrap();
        // Activate the two unit coflows, solve, then append the heavy one.
        r.activate_flow(0, 0, 1).unwrap();
        r.activate_flow(1, 0, 1).unwrap();
        r.solve(&opts).unwrap().expect("feasible");
        r.activate_flow(2, 0, 2).unwrap();
        let warm = r.solve(&opts).unwrap().expect("feasible");
        assert!(r.last_was_warm());
        let (cold_obj, _) = r.probe_cold(&opts).unwrap().expect("feasible");
        assert!(
            (warm.objective - cold_obj).abs() < 1e-6 * (1.0 + cold_obj.abs()),
            "warm {} vs cold probe {cold_obj}",
            warm.objective
        );
    }

    #[test]
    fn fixed_slots_freeze_history() {
        let inst = fig2_instance();
        let opts = SolverOptions::default();
        let mut r = TimeIndexedResolver::new(&inst, &Routing::FreePath, 10, true).unwrap();
        for (key, f) in inst.flows() {
            let _ = f;
            r.activate_flow(key.coflow as usize, key.flow as usize, 1)
                .unwrap();
        }
        r.solve(&opts).unwrap().expect("feasible");
        // Pretend nothing moved in slot 1 for the heavy coflow.
        r.fix_slot(2, 0, 1, 0.0);
        let lp = r.solve(&opts).unwrap().expect("feasible");
        let seg_in_slot1: f64 = lp.plan.flows[2][0]
            .segments
            .iter()
            .filter(|s| s.t1 <= 1.0 + 1e-9)
            .map(|s| s.volume())
            .sum();
        assert!(seg_in_slot1 < 1e-9, "slot 1 still carries {seg_in_slot1}");
    }

    #[test]
    fn pushed_coflow_joins_the_live_model() {
        let inst = fig2_instance();
        let opts = SolverOptions::default();
        // Start from the first two coflows only; the heavy one arrives
        // later through the streaming admission path.
        let late = inst.coflows[2].clone();
        let early = CoflowInstance::new(inst.graph.clone(), inst.coflows[..2].to_vec()).unwrap();
        let mut r = TimeIndexedResolver::new_owned(early, Routing::FreePath, 8, true).unwrap();
        r.activate_flow(0, 0, 1).unwrap();
        r.activate_flow(1, 0, 1).unwrap();
        r.solve(&opts).unwrap().expect("feasible");
        let j = r.push_coflow(late).unwrap();
        assert_eq!(j, 2);
        assert_eq!(r.instance().num_coflows(), 3);
        r.activate_flow(j, 0, 2).unwrap();
        let warm = r.solve(&opts).unwrap().expect("feasible");
        assert!(r.last_was_warm());
        // Same model as activating the pre-declared coflow at slot 2.
        let full = fig2_instance();
        let mut b = TimeIndexedResolver::new(&full, &Routing::FreePath, 8, true).unwrap();
        b.activate_flow(0, 0, 1).unwrap();
        b.activate_flow(1, 0, 1).unwrap();
        b.solve(&opts).unwrap().expect("feasible");
        b.activate_flow(2, 0, 2).unwrap();
        let reference = b.solve(&opts).unwrap().expect("feasible");
        assert_eq!(warm.objective.to_bits(), reference.objective.to_bits());
    }

    #[test]
    fn push_coflow_rejected_on_borrowed_instance() {
        let inst = fig2_instance();
        let extra = inst.coflows[0].clone();
        let mut r = TimeIndexedResolver::new(&inst, &Routing::FreePath, 8, true).unwrap();
        assert!(matches!(
            r.push_coflow(extra),
            Err(CoflowError::BadInstance(_))
        ));
    }

    #[test]
    fn rebuild_grows_the_horizon_and_replays_state() {
        let inst = fig2_instance();
        let opts = SolverOptions::default();
        let t0 = horizon(
            &inst,
            &Routing::FreePath,
            HorizonMode::Greedy { margin: 1.25 },
        )
        .unwrap();
        let mut r = TimeIndexedResolver::new(&inst, &Routing::FreePath, t0, true).unwrap();
        for (key, f) in inst.flows() {
            let _ = f;
            r.activate_flow(key.coflow as usize, key.flow as usize, 1)
                .unwrap();
        }
        let a = r.solve(&opts).unwrap().expect("feasible");
        r.fix_slot(0, 0, 1, 0.5);
        r.rebuild(t0 * 2).unwrap();
        let b = r.solve(&opts).unwrap().expect("feasible after rebuild");
        // The horizon only caps completions, so growing it leaves the
        // optimum in place, while the replayed fix can only restrict.
        assert!(b.objective >= a.objective - 1e-6);
        assert_eq!(r.horizon(), t0 * 2);
    }
}
