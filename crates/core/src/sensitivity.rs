//! What-if analysis on a built time-indexed relaxation, powered by
//! warm-started LP re-solves.
//!
//! WAN operators ask "what happens to coflow completion times if this
//! link degrades to 40%?" or "how much does doubling this tenant's
//! priority cost everyone else?". Both questions perturb an LP that was
//! already solved: capacity changes touch only right-hand sides (the old
//! basis stays *dual* feasible → dual simplex), weight changes touch
//! only objective coefficients (the old basis stays *primal* feasible →
//! phase 2 resumes). [`Sensitivity`] keeps the model and basis alive
//! across a whole sweep, so an n-point sweep costs one cold solve plus
//! n−1 cheap re-solves instead of n cold solves.
//!
//! ```
//! use coflow_core::model::{Coflow, CoflowInstance, Flow};
//! use coflow_core::routing::Routing;
//! use coflow_core::sensitivity::Sensitivity;
//! use coflow_lp::SolverOptions;
//! use coflow_netgraph::topology;
//!
//! let topo = topology::line(2, 1.0);
//! let g = topo.graph;
//! let v0 = g.node_by_label("v0").unwrap();
//! let v1 = g.node_by_label("v1").unwrap();
//! let inst = CoflowInstance::new(
//!     g,
//!     vec![Coflow::new(vec![Flow::new(v0, v1, 2.0)])],
//! ).unwrap();
//!
//! let mut sens = Sensitivity::new(&inst, &Routing::FreePath, 8).unwrap();
//! let base = sens.solve(&SolverOptions::default()).unwrap();
//! sens.scale_all_capacities(0.5); // every link at half speed
//! let degraded = sens.solve(&SolverOptions::default()).unwrap();
//! assert!(degraded.objective >= base.objective - 1e-6);
//! ```

use crate::error::CoflowError;
use crate::model::CoflowInstance;
use crate::routing::Routing;
use crate::timeidx::{self, Built, LpRelaxation, LpSize};
use coflow_lp::{Basis, SolverOptions};
use coflow_netgraph::EdgeId;

/// A reusable what-if solver over one instance/routing/horizon triple.
/// See the module docs for the intended sweep loop.
pub struct Sensitivity<'a> {
    inst: &'a CoflowInstance,
    routing: &'a Routing,
    horizon: u32,
    built: Built,
    /// Baseline capacity per edge index (for factor-based perturbation).
    base_cap: Vec<f64>,
    /// Current multiplicative factor per edge index.
    factor: Vec<f64>,
    basis: Option<Basis>,
    /// Iterations of the most recent [`solve`](Sensitivity::solve).
    last_iterations: usize,
    /// Whether the most recent solve reused a basis.
    last_was_warm: bool,
    /// Row duals from the most recent solve.
    last_duals: Option<Vec<f64>>,
}

impl<'a> Sensitivity<'a> {
    /// Builds the time-indexed LP once. Perturb-and-solve afterwards.
    ///
    /// # Errors
    ///
    /// Same construction errors as
    /// [`solve_time_indexed`](crate::timeidx::solve_time_indexed):
    /// mismatched routing or an impossible horizon.
    pub fn new(
        inst: &'a CoflowInstance,
        routing: &'a Routing,
        horizon: u32,
    ) -> Result<Self, CoflowError> {
        let built = timeidx::build(inst, routing, horizon)?;
        let g = &inst.graph;
        let base_cap: Vec<f64> = (0..g.edge_count())
            .map(|i| g.capacity(EdgeId::from_index(i)))
            .collect();
        let factor = vec![1.0; base_cap.len()];
        Ok(Sensitivity {
            inst,
            routing,
            horizon,
            built,
            base_cap,
            factor,
            basis: None,
            last_iterations: 0,
            last_was_warm: false,
            last_duals: None,
        })
    }

    /// Scales the capacity of every edge to `factor ×` its *baseline*
    /// value (not cumulative: calling with `0.5` twice still means 50%).
    ///
    /// Panics on a non-positive or non-finite factor — a zero-capacity
    /// network can never ship the demands and the LP would just report
    /// infeasible in a less legible way.
    pub fn scale_all_capacities(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "capacity factor must be positive and finite"
        );
        self.factor.iter_mut().for_each(|f| *f = factor);
        self.apply_capacities();
    }

    /// Scales one edge to `factor ×` its baseline capacity. Same
    /// non-cumulative semantics and panics as
    /// [`scale_all_capacities`](Sensitivity::scale_all_capacities).
    pub fn scale_edge_capacity(&mut self, e: EdgeId, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "capacity factor must be positive and finite"
        );
        self.factor[e.index()] = factor;
        self.apply_capacities();
    }

    /// Changes the weight (priority) of coflow `j` in the objective.
    /// The instance itself is untouched; only the LP objective moves.
    pub fn set_weight(&mut self, j: usize, weight: f64) {
        assert!(
            weight.is_finite() && weight >= 0.0,
            "coflow weight must be finite and non-negative"
        );
        let c = self.built.c_vars[j].expect("offline build covers every coflow");
        self.built.model.set_obj(c, weight);
    }

    fn apply_capacities(&mut self) {
        for &(_, e, row) in &self.built.cap_rows {
            let cap = self.base_cap[e.index()] * self.factor[e.index()];
            self.built.model.set_rhs(row, cap);
        }
    }

    /// Re-solves the (possibly perturbed) LP, warm-starting from the
    /// previous basis when one exists.
    ///
    /// # Errors
    ///
    /// [`CoflowError::Lp`] — in particular `Infeasible` when capacities
    /// were cut so far the demands no longer fit in the horizon.
    pub fn solve(&mut self, opts: &SolverOptions) -> Result<LpRelaxation, CoflowError> {
        self.solve_or_infeasible(opts)?
            .ok_or(CoflowError::Lp(coflow_lp::LpError::Infeasible.to_string()))
    }

    /// Like [`solve`](Sensitivity::solve), but reports infeasibility as
    /// `Ok(None)` instead of an error — handy inside sweeps where some
    /// points are expected to starve the network.
    ///
    /// # Errors
    ///
    /// Any LP failure *other* than infeasibility.
    pub fn solve_or_infeasible(
        &mut self,
        opts: &SolverOptions,
    ) -> Result<Option<LpRelaxation>, CoflowError> {
        let size = LpSize {
            rows: self.built.model.num_constraints(),
            cols: self.built.model.num_vars(),
            nonzeros: self.built.model.num_nonzeros(),
        };
        self.last_was_warm = self.basis.is_some();
        match self.built.model.solve_warm(self.basis.as_ref(), opts) {
            Ok((sol, basis)) => {
                self.last_iterations = sol.iterations;
                self.basis = Some(basis);
                self.last_duals = sol.duals.clone();
                Ok(Some(timeidx::extract(
                    self.inst,
                    self.routing,
                    &self.built,
                    &sol,
                    self.horizon,
                    size,
                )))
            }
            Err(coflow_lp::LpError::Infeasible) => {
                self.last_iterations = 0;
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Simplex iterations of the most recent solve.
    pub fn last_iterations(&self) -> usize {
        self.last_iterations
    }

    /// Whether the most recent solve reused a basis.
    pub fn last_was_warm(&self) -> bool {
        self.last_was_warm
    }

    /// Drops the stored basis; the next solve starts cold. Useful for
    /// apples-to-apples iteration-count comparisons.
    pub fn reset_basis(&mut self) {
        self.basis = None;
    }

    /// Per-edge **shadow prices** from the most recent solve: the
    /// marginal decrease in `Σ w_j C_j` per extra unit of capacity on
    /// that edge (summed over the capacity rows of all time slots,
    /// sign-flipped so bigger = more critical; always ≥ 0 up to solver
    /// tolerance).
    ///
    /// This answers "which link is the bottleneck?" from one solve,
    /// where a brute-force answer needs one re-solve per link. Returns
    /// `None` before the first successful solve. At degenerate optima
    /// the prices are one valid subgradient choice — treat near-zero
    /// values as "not binding" rather than exactly zero.
    pub fn shadow_prices(&self) -> Option<Vec<f64>> {
        let duals = self.last_duals.as_ref()?;
        let mut per_edge = vec![0.0; self.base_cap.len()];
        for &(_, e, row) in &self.built.cap_rows {
            per_edge[e.index()] -= duals[row.index()];
        }
        Some(per_edge)
    }
}

/// One point of a [`capacity_sweep`].
#[derive(Clone, Copy, Debug)]
pub struct SweepPoint {
    /// Capacity factor applied to every edge.
    pub factor: f64,
    /// LP lower bound at this factor, `None` when infeasible (demands
    /// no longer fit the horizon at this capacity).
    pub lp_bound: Option<f64>,
    /// Simplex iterations the (warm) re-solve needed.
    pub iterations: usize,
}

/// Sweeps a uniform capacity factor across `factors`, warm-starting
/// every step, and reports the LP lower bound per point.
///
/// Factors are visited in the order given; sorting them (descending
/// capacity loss) usually minimizes total pivots.
///
/// # Errors
///
/// Construction errors from [`Sensitivity::new`]. Per-point
/// infeasibility is *not* an error — it is reported as `lp_bound: None`
/// (the basis is reset so the next point starts cold).
pub fn capacity_sweep(
    inst: &CoflowInstance,
    routing: &Routing,
    horizon: u32,
    factors: &[f64],
    opts: &SolverOptions,
) -> Result<Vec<SweepPoint>, CoflowError> {
    let mut sens = Sensitivity::new(inst, routing, horizon)?;
    let mut out = Vec::with_capacity(factors.len());
    for &factor in factors {
        sens.scale_all_capacities(factor);
        match sens.solve_or_infeasible(opts)? {
            Some(lp) => out.push(SweepPoint {
                factor,
                lp_bound: Some(lp.objective),
                iterations: sens.last_iterations(),
            }),
            None => {
                out.push(SweepPoint {
                    factor,
                    lp_bound: None,
                    iterations: sens.last_iterations(),
                });
                sens.reset_basis();
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coflow, Flow};
    use crate::timeidx::solve_time_indexed;
    use coflow_netgraph::topology;

    fn small_instance() -> CoflowInstance {
        let topo = topology::fig2_example();
        let g = topo.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let v2 = g.node_by_label("v2").unwrap();
        CoflowInstance::new(
            g,
            vec![
                Coflow::weighted(2.0, vec![Flow::new(v1, t, 1.0)]),
                Coflow::weighted(1.0, vec![Flow::new(v2, t, 1.0)]),
                Coflow::weighted(3.0, vec![Flow::new(s, t, 3.0)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn warm_sweep_matches_cold_solves_per_point() {
        let inst = small_instance();
        let opts = SolverOptions::default();
        let factors = [1.0, 0.9, 0.8, 0.7, 0.6];
        let sweep = capacity_sweep(&inst, &Routing::FreePath, 10, &factors, &opts).unwrap();
        for pt in &sweep {
            // Cold reference: rebuild the instance with scaled capacities.
            let topo = topology::fig2_example().scale_capacity(pt.factor);
            let g = topo.graph;
            let s = g.node_by_label("s").unwrap();
            let t = g.node_by_label("t").unwrap();
            let v1 = g.node_by_label("v1").unwrap();
            let v2 = g.node_by_label("v2").unwrap();
            let cold_inst = CoflowInstance::new(
                g,
                vec![
                    Coflow::weighted(2.0, vec![Flow::new(v1, t, 1.0)]),
                    Coflow::weighted(1.0, vec![Flow::new(v2, t, 1.0)]),
                    Coflow::weighted(3.0, vec![Flow::new(s, t, 3.0)]),
                ],
            )
            .unwrap();
            let cold = solve_time_indexed(&cold_inst, &Routing::FreePath, 10, &opts).unwrap();
            let warm = pt.lp_bound.expect("feasible at these factors");
            assert!(
                (warm - cold.objective).abs() < 1e-5 * (1.0 + cold.objective.abs()),
                "factor {}: warm {} cold {}",
                pt.factor,
                warm,
                cold.objective
            );
        }
    }

    #[test]
    fn degrading_capacity_never_improves_the_bound() {
        let inst = small_instance();
        let opts = SolverOptions::default();
        let factors = [1.0, 0.8, 0.6, 0.5];
        let sweep = capacity_sweep(&inst, &Routing::FreePath, 12, &factors, &opts).unwrap();
        let bounds: Vec<f64> = sweep.iter().map(|p| p.lp_bound.unwrap()).collect();
        for w in bounds.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-6,
                "less capacity must not lower the bound: {bounds:?}"
            );
        }
    }

    #[test]
    fn single_edge_degradation_only_hurts_users_of_that_edge() {
        // Cutting an edge no flow can use leaves the bound unchanged.
        let topo = topology::fig2_example();
        let g = topo.graph.clone();
        let v1 = g.node_by_label("v1").unwrap();
        let v3 = g.node_by_label("v3").unwrap();
        let t = g.node_by_label("t").unwrap();
        let inst =
            CoflowInstance::new(g.clone(), vec![Coflow::new(vec![Flow::new(v1, t, 1.0)])]).unwrap();
        let opts = SolverOptions::default();
        let mut sens = Sensitivity::new(&inst, &Routing::FreePath, 6).unwrap();
        let base = sens.solve(&opts).unwrap().objective;
        // v3->t is unusable for a v1->t flow whose mask excludes edges
        // into the source; degrade an edge on the far side.
        let far = g.find_edge(v3, t).expect("edge exists");
        sens.scale_edge_capacity(far, 0.1);
        let after = sens.solve(&opts).unwrap().objective;
        assert!(
            (after - base).abs() < 1e-6,
            "unrelated edge changed the bound: {base} -> {after}"
        );
    }

    #[test]
    fn weight_change_scales_the_objective_contribution() {
        let inst = small_instance();
        let opts = SolverOptions::default();
        let mut sens = Sensitivity::new(&inst, &Routing::FreePath, 10).unwrap();
        let base = sens.solve(&opts).unwrap();
        // Double the heavy coflow's weight; bound grows by at most
        // w_j·C_j (the completion can only be re-balanced, not worsen
        // for free), and at least stays put.
        sens.set_weight(2, 6.0);
        let after = sens.solve(&opts).unwrap();
        assert!(after.objective >= base.objective - 1e-6);
        assert!(after.objective <= base.objective + 3.0 * base.completions[2] + 1e-6);
        // And the re-solve was warm.
        assert!(sens.last_was_warm());
    }

    #[test]
    fn warm_resolves_are_cheaper_than_cold_across_a_sweep() {
        let inst = small_instance();
        let opts = SolverOptions::default();
        let factors = [0.95, 0.9, 0.85, 0.8, 0.75];
        // Warm chain.
        let mut sens = Sensitivity::new(&inst, &Routing::FreePath, 12).unwrap();
        sens.solve(&opts).unwrap();
        let mut warm_total = 0usize;
        for &f in &factors {
            sens.scale_all_capacities(f);
            sens.solve(&opts).unwrap();
            warm_total += sens.last_iterations();
        }
        // Cold chain on the same model (reset basis each step).
        let mut cold = Sensitivity::new(&inst, &Routing::FreePath, 12).unwrap();
        let mut cold_total = 0usize;
        for &f in &factors {
            cold.scale_all_capacities(f);
            cold.reset_basis();
            cold.solve(&opts).unwrap();
            cold_total += cold.last_iterations();
        }
        assert!(
            warm_total <= cold_total,
            "warm sweep {warm_total} pivots vs cold {cold_total}"
        );
    }

    #[test]
    fn shadow_prices_identify_the_binding_bottleneck() {
        // One unit edge carrying 3 units of demand within a tight-ish
        // horizon: its capacity rows must carry all the dual weight.
        let topo = topology::line(2, 1.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let inst = CoflowInstance::new(
            g.clone(),
            vec![Coflow::weighted(2.0, vec![Flow::new(v0, v1, 3.0)])],
        )
        .unwrap();
        let opts = SolverOptions::default();
        let mut sens = Sensitivity::new(&inst, &Routing::FreePath, 6).unwrap();
        assert!(sens.shadow_prices().is_none(), "no solve yet");
        let base = sens.solve(&opts).unwrap().objective;
        let prices = sens.shadow_prices().expect("solved");
        let e = g.find_edge(v0, v1).unwrap();
        assert!(
            prices[e.index()] > 1e-6,
            "bottleneck edge has no shadow price: {prices:?}"
        );
        // Prices are nonnegative up to tolerance.
        for (i, &p) in prices.iter().enumerate() {
            assert!(p >= -1e-6, "edge {i} price {p}");
        }
        // Predictive check: adding capacity to the priced edge lowers
        // the bound.
        sens.scale_edge_capacity(e, 1.5);
        let boosted = sens.solve(&opts).unwrap().objective;
        assert!(
            boosted < base - 1e-6,
            "boosting the priced edge did not help: {base} -> {boosted}"
        );
    }

    #[test]
    fn unused_edges_carry_no_shadow_price() {
        let inst = small_instance(); // flows v1->t, v2->t, s->t
        let opts = SolverOptions::default();
        let mut sens = Sensitivity::new(&inst, &Routing::FreePath, 10).unwrap();
        sens.solve(&opts).unwrap();
        let prices = sens.shadow_prices().unwrap();
        // The v3->t direction is reachable, but t->v3 (into a relay,
        // away from every sink) can never carry useful flow.
        let g = &inst.graph;
        let t = g.node_by_label("t").unwrap();
        let v3 = g.node_by_label("v3").unwrap();
        let back = g.find_edge(t, v3).unwrap();
        assert!(
            prices[back.index()].abs() < 1e-9,
            "unusable edge priced: {}",
            prices[back.index()]
        );
    }

    #[test]
    fn starving_capacity_reports_infeasible_points() {
        let inst = small_instance();
        let opts = SolverOptions::default();
        // Demand 3 through a unit edge in horizon 6; factor 0.01 cannot
        // fit (needs 300 slots).
        let sweep = capacity_sweep(&inst, &Routing::FreePath, 6, &[1.0, 0.01, 1.0], &opts).unwrap();
        assert!(sweep[0].lp_bound.is_some());
        assert!(
            sweep[1].lp_bound.is_none(),
            "1% capacity must be infeasible"
        );
        // Recovery after the infeasible point.
        let a = sweep[0].lp_bound.unwrap();
        let b = sweep[2].lp_bound.unwrap();
        assert!((a - b).abs() < 1e-6, "factor 1.0 twice: {a} vs {b}");
    }
}
