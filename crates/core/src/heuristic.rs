//! The LP-based heuristic (paper §6.2): take the LP schedule directly.
//!
//! "Recall in Section 4.1, we mentioned that the LP solution itself is a
//! valid schedule. We can use this solution as a heuristic, for both the
//! single path and free path models. […] This implies that the solution
//! from the heuristic can be arbitrarily bad in the worst case. In
//! practice, however, this proves to be a very effective algorithm that
//! can be quite close to the lower bound we get from LP."
//!
//! Equivalent to Stretch with `λ = 1` — no dilation, demand truncation
//! and idle-slot compaction still applied. Across all of the paper's
//! experiments λ = 1 "seems the best choice of λ".

use crate::model::CoflowInstance;
use crate::rateplan::RatePlan;
use crate::schedule::Schedule;
use crate::stretch::{stretch_schedule, StretchOptions};

/// Rounds the LP plan with λ = 1 (the paper's "Heuristic(λ = 1.0)").
pub fn lp_heuristic(inst: &CoflowInstance, plan: &RatePlan, opts: StretchOptions) -> Schedule {
    stretch_schedule(inst, plan, 1.0, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coflow, Flow};
    use crate::routing::Routing;
    use crate::timeidx::solve_time_indexed;
    use crate::validate::{validate, Tolerance};
    use coflow_lp::SolverOptions;
    use coflow_netgraph::topology;

    #[test]
    fn heuristic_equals_stretch_at_lambda_one() {
        let topo = topology::fig2_example();
        let g = topo.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let inst = CoflowInstance::new(g, vec![Coflow::new(vec![Flow::new(s, t, 3.0)])]).unwrap();
        let lp =
            solve_time_indexed(&inst, &Routing::FreePath, 4, &SolverOptions::default()).unwrap();
        let h = lp_heuristic(&inst, &lp.plan, StretchOptions::default());
        let s1 = stretch_schedule(&inst, &lp.plan, 1.0, StretchOptions::default());
        assert_eq!(h, s1);
        let rep = validate(&inst, &Routing::FreePath, &h, Tolerance::default()).unwrap();
        // Demand 3 over max-flow 3: one slot suffices and the LP should
        // find it.
        assert_eq!(rep.completions.per_coflow, vec![1]);
    }
}
