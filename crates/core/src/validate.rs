//! Schedule feasibility validation.
//!
//! Every rounding path in this crate ends in a [`Schedule`]; this module
//! is the independent referee that checks it against the instance and
//! routing model:
//!
//! 1. **Demand** — each flow moves exactly its demand (within tolerance).
//! 2. **Release** — nothing moves in a slot `t ≤ release`.
//! 3. **Capacity** — per slot, per edge, aggregated volume `≤ c(e)`.
//! 4. **Conservation** — per flow and slot, the edge volumes form a valid
//!    `src → dst` flow of value equal to the slot volume (splitting
//!    allowed in the free-path model).
//! 5. **Routing** — single-path flows use exactly their path's edges;
//!    multi-path flows only use edges from their candidate paths.

use crate::error::CoflowError;
use crate::model::CoflowInstance;
use crate::routing::Routing;
use crate::schedule::{Completions, Schedule};
use coflow_netgraph::EdgeId;

/// Relative/absolute tolerance for validation comparisons.
#[derive(Clone, Copy, Debug)]
pub struct Tolerance {
    /// Absolute slack.
    pub abs: f64,
    /// Relative slack (scaled by the magnitude being compared).
    pub rel: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            abs: 1e-6,
            rel: 1e-6,
        }
    }
}

impl Tolerance {
    #[inline]
    fn slack(&self, scale: f64) -> f64 {
        self.abs + self.rel * scale.abs()
    }
}

/// Successful validation summary.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// Completion statistics.
    pub completions: Completions,
    /// Peak edge utilization (volume / capacity) over all slots/edges.
    pub peak_utilization: f64,
}

/// Validates `schedule` against instance + routing; see module docs.
///
/// # Errors
///
/// [`CoflowError::InvalidSchedule`] naming the first violated property.
pub fn validate(
    inst: &CoflowInstance,
    routing: &Routing,
    schedule: &Schedule,
    tol: Tolerance,
) -> Result<ValidationReport, CoflowError> {
    if schedule.flows.len() != inst.num_coflows() {
        return Err(CoflowError::InvalidSchedule(format!(
            "schedule has {} coflows, instance has {}",
            schedule.flows.len(),
            inst.num_coflows()
        )));
    }

    for (j, cf) in inst.coflows.iter().enumerate() {
        if schedule.flows[j].len() != cf.flows.len() {
            return Err(CoflowError::InvalidSchedule(format!(
                "coflow {j}: schedule has {} flows, instance has {}",
                schedule.flows[j].len(),
                cf.flows.len()
            )));
        }
        for (i, f) in cf.flows.iter().enumerate() {
            let entries = &schedule.flows[j][i];
            // Sortedness + uniqueness of slots.
            for w in entries.windows(2) {
                if w[0].slot >= w[1].slot {
                    return Err(CoflowError::InvalidSchedule(format!(
                        "flow ({j},{i}): slots out of order"
                    )));
                }
            }
            let mut total = 0.0;
            for st in entries {
                if st.slot == 0 {
                    return Err(CoflowError::InvalidSchedule(format!(
                        "flow ({j},{i}): slot 0 does not exist (slots are 1-based)"
                    )));
                }
                if st.slot <= f.release {
                    return Err(CoflowError::InvalidSchedule(format!(
                        "flow ({j},{i}): transfers in slot {} before release {}",
                        st.slot, f.release
                    )));
                }
                if st.volume < -tol.slack(f.demand) {
                    return Err(CoflowError::InvalidSchedule(format!(
                        "flow ({j},{i}): negative volume in slot {}",
                        st.slot
                    )));
                }
                for &(e, v) in &st.edges {
                    if e.index() >= inst.graph.edge_count() {
                        return Err(CoflowError::InvalidSchedule(format!(
                            "flow ({j},{i}): unknown edge {e:?}"
                        )));
                    }
                    if v < -tol.slack(f.demand) {
                        return Err(CoflowError::InvalidSchedule(format!(
                            "flow ({j},{i}): negative edge volume in slot {}",
                            st.slot
                        )));
                    }
                }
                conservation_check(inst, routing, j, i, st.slot, st.volume, &st.edges, tol)?;
                total += st.volume;
            }
            if (total - f.demand).abs() > tol.slack(f.demand) {
                return Err(CoflowError::InvalidSchedule(format!(
                    "flow ({j},{i}): moved {total} of demand {}",
                    f.demand
                )));
            }
        }
    }

    // Capacity per (slot, edge).
    let mut peak = 0.0f64;
    for ((slot, e), load) in schedule.edge_loads() {
        let cap = inst.graph.capacity(e);
        if load > cap + tol.slack(cap) {
            return Err(CoflowError::InvalidSchedule(format!(
                "edge {e:?} overloaded in slot {slot}: {load} > capacity {cap}"
            )));
        }
        peak = peak.max(load / cap);
    }

    let completions = schedule
        .completions(inst)
        .ok_or_else(|| CoflowError::InvalidSchedule("some flow never completes".into()))?;
    Ok(ValidationReport {
        completions,
        peak_utilization: peak,
    })
}

/// Per-slot conservation and routing-model conformance for one flow.
#[allow(clippy::too_many_arguments)]
fn conservation_check(
    inst: &CoflowInstance,
    routing: &Routing,
    j: usize,
    i: usize,
    slot: u32,
    volume: f64,
    edges: &[(EdgeId, f64)],
    tol: Tolerance,
) -> Result<(), CoflowError> {
    let f = &inst.coflows[j].flows[i];
    let g = &inst.graph;
    let slack = tol.slack(f.demand.max(volume));

    match routing {
        Routing::SinglePath(paths) => {
            // Exactly the path's edges, each carrying `volume`.
            let path = &paths[j][i];
            for &pe in path.edges() {
                let carried = edges
                    .iter()
                    .find(|&&(e, _)| e == pe)
                    .map_or(0.0, |&(_, v)| v);
                if (carried - volume).abs() > slack {
                    return Err(CoflowError::InvalidSchedule(format!(
                        "flow ({j},{i}) slot {slot}: path edge {pe:?} carries {carried}, expected {volume}"
                    )));
                }
            }
            for &(e, v) in edges {
                if v.abs() > slack && !path.contains_edge(e) {
                    return Err(CoflowError::InvalidSchedule(format!(
                        "flow ({j},{i}) slot {slot}: volume on off-path edge {e:?}"
                    )));
                }
            }
            Ok(())
        }
        Routing::MultiPath(sets) => {
            // Only candidate-path edges, plus generic conservation.
            let allowed: std::collections::HashSet<EdgeId> = sets[j][i]
                .iter()
                .flat_map(|p| p.edges().iter().copied())
                .collect();
            for &(e, v) in edges {
                if v.abs() > slack && !allowed.contains(&e) {
                    return Err(CoflowError::InvalidSchedule(format!(
                        "flow ({j},{i}) slot {slot}: volume on non-candidate edge {e:?}"
                    )));
                }
            }
            generic_conservation(g, f.src, f.dst, volume, edges, slack, j, i, slot)
        }
        Routing::FreePath => {
            generic_conservation(g, f.src, f.dst, volume, edges, slack, j, i, slot)
        }
    }
}

/// Checks that `edges` form a flow of value `volume` from `src` to `dst`:
/// net outflow at src = volume, net inflow at dst = volume, zero net flow
/// elsewhere (paper constraints (7)–(9)).
#[allow(clippy::too_many_arguments)]
fn generic_conservation(
    g: &coflow_netgraph::Graph,
    src: coflow_netgraph::NodeId,
    dst: coflow_netgraph::NodeId,
    volume: f64,
    edges: &[(EdgeId, f64)],
    slack: f64,
    j: usize,
    i: usize,
    slot: u32,
) -> Result<(), CoflowError> {
    let mut net = vec![0.0f64; g.node_count()];
    for &(e, v) in edges {
        net[g.src(e).index()] += v;
        net[g.dst(e).index()] -= v;
    }
    for v in g.nodes() {
        let expect = if v == src {
            volume
        } else if v == dst {
            -volume
        } else {
            0.0
        };
        if (net[v.index()] - expect).abs() > slack * (1.0 + g.out_degree(v) as f64) {
            return Err(CoflowError::InvalidSchedule(format!(
                "flow ({j},{i}) slot {slot}: conservation violated at {v:?} (net {}, expected {expect})",
                net[v.index()]
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coflow, Flow};
    use crate::schedule::SlotTransfer;
    use coflow_netgraph::{topology, Path};

    /// Fig-2 instance: blue coflow s->t demand 3 only.
    fn fig2_blue() -> (CoflowInstance, Routing) {
        let topo = topology::fig2_example();
        let g = topo.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let v2 = g.node_by_label("v2").unwrap();
        let path = Path::from_nodes(&g, &[s, v2, t]).unwrap();
        let inst = CoflowInstance::new(g, vec![Coflow::new(vec![Flow::new(s, t, 3.0)])]).unwrap();
        (inst, Routing::SinglePath(vec![vec![path]]))
    }

    fn edge(inst: &CoflowInstance, a: &str, b: &str) -> EdgeId {
        let g = &inst.graph;
        g.find_edge(g.node_by_label(a).unwrap(), g.node_by_label(b).unwrap())
            .unwrap()
    }

    #[test]
    fn valid_single_path_schedule_passes() {
        let (inst, routing) = fig2_blue();
        let sv2 = edge(&inst, "s", "v2");
        let v2t = edge(&inst, "v2", "t");
        let sched = Schedule {
            flows: vec![vec![(1..=3)
                .map(|t| SlotTransfer {
                    slot: t,
                    volume: 1.0,
                    edges: vec![(sv2, 1.0), (v2t, 1.0)],
                })
                .collect()]],
        };
        let rep = validate(&inst, &routing, &sched, Tolerance::default()).unwrap();
        assert_eq!(rep.completions.per_coflow, vec![3]);
        assert!((rep.peak_utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_violation_detected() {
        let (inst, routing) = fig2_blue();
        let sv2 = edge(&inst, "s", "v2");
        let v2t = edge(&inst, "v2", "t");
        let sched = Schedule {
            flows: vec![vec![vec![SlotTransfer {
                slot: 1,
                volume: 3.0, // capacity is 1 per slot
                edges: vec![(sv2, 3.0), (v2t, 3.0)],
            }]]],
        };
        let err = validate(&inst, &routing, &sched, Tolerance::default()).unwrap_err();
        assert!(err.to_string().contains("overloaded"), "{err}");
    }

    #[test]
    fn off_path_edge_detected() {
        let (inst, routing) = fig2_blue();
        let sv1 = edge(&inst, "s", "v1");
        let v1t = edge(&inst, "v1", "t");
        let sv2 = edge(&inst, "s", "v2");
        let v2t = edge(&inst, "v2", "t");
        let mut entries: Vec<SlotTransfer> = (1..=2)
            .map(|t| SlotTransfer {
                slot: t,
                volume: 1.0,
                edges: vec![(sv2, 1.0), (v2t, 1.0)],
            })
            .collect();
        entries.push(SlotTransfer {
            slot: 3,
            volume: 1.0,
            edges: vec![(sv1, 1.0), (v1t, 1.0)], // wrong path
        });
        let sched = Schedule {
            flows: vec![vec![entries]],
        };
        let err = validate(&inst, &routing, &sched, Tolerance::default()).unwrap_err();
        // The validator may flag this either as the path edge carrying
        // the wrong volume or as off-path usage; both are correct.
        let msg = err.to_string();
        assert!(
            msg.contains("off-path") || msg.contains("path edge"),
            "{msg}"
        );
    }

    #[test]
    fn free_path_split_flow_passes_and_conservation_fails_when_broken() {
        let (inst, _) = fig2_blue();
        let routing = Routing::FreePath;
        // Slot 1: split 3 units over the three parallel 2-hop routes.
        let names = [("s", "v1", "t"), ("s", "v2", "t"), ("s", "v3", "t")];
        let mut edges = Vec::new();
        for (a, b, c) in names {
            edges.push((edge(&inst, a, b), 1.0));
            edges.push((edge(&inst, b, c), 1.0));
        }
        let sched = Schedule {
            flows: vec![vec![vec![SlotTransfer {
                slot: 1,
                volume: 3.0,
                edges: edges.clone(),
            }]]],
        };
        let rep = validate(&inst, &routing, &sched, Tolerance::default()).unwrap();
        assert_eq!(rep.completions.per_coflow, vec![1]);

        // Break conservation: drop one middle-hop edge.
        let broken: Vec<_> = edges
            .iter()
            .copied()
            .filter(|&(e, _)| e != edge(&inst, "v2", "t"))
            .collect();
        let sched = Schedule {
            flows: vec![vec![vec![SlotTransfer {
                slot: 1,
                volume: 3.0,
                edges: broken,
            }]]],
        };
        let err = validate(&inst, &routing, &sched, Tolerance::default()).unwrap_err();
        assert!(err.to_string().contains("conservation"), "{err}");
    }

    #[test]
    fn demand_shortfall_detected() {
        let (inst, routing) = fig2_blue();
        let sv2 = edge(&inst, "s", "v2");
        let v2t = edge(&inst, "v2", "t");
        let sched = Schedule {
            flows: vec![vec![vec![SlotTransfer {
                slot: 1,
                volume: 1.0,
                edges: vec![(sv2, 1.0), (v2t, 1.0)],
            }]]],
        };
        let err = validate(&inst, &routing, &sched, Tolerance::default()).unwrap_err();
        assert!(err.to_string().contains("moved"), "{err}");
    }

    #[test]
    fn release_violation_detected() {
        let topo = topology::line(2, 5.0);
        let g = topo.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let e = g.find_edge(v0, v1).unwrap();
        let inst = CoflowInstance::new(g, vec![Coflow::new(vec![Flow::released(v0, v1, 1.0, 3)])])
            .unwrap();
        let routing = Routing::FreePath;
        let sched = Schedule {
            flows: vec![vec![vec![SlotTransfer {
                slot: 2,
                volume: 1.0,
                edges: vec![(e, 1.0)],
            }]]],
        };
        let err = validate(&inst, &routing, &sched, Tolerance::default()).unwrap_err();
        assert!(err.to_string().contains("release"), "{err}");
    }

    #[test]
    fn multipath_candidate_edges_enforced() {
        let (inst, _) = fig2_blue();
        let g = &inst.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        let v2 = g.node_by_label("v2").unwrap();
        let p1 = Path::from_nodes(g, &[s, v1, t]).unwrap();
        let p2 = Path::from_nodes(g, &[s, v2, t]).unwrap();
        let routing = Routing::MultiPath(vec![vec![vec![p1, p2]]]);
        // Uses v3 route: not a candidate.
        let sched = Schedule {
            flows: vec![vec![vec![SlotTransfer {
                slot: 1,
                volume: 3.0,
                edges: vec![
                    (edge(&inst, "s", "v1"), 1.0),
                    (edge(&inst, "v1", "t"), 1.0),
                    (edge(&inst, "s", "v2"), 1.0),
                    (edge(&inst, "v2", "t"), 1.0),
                    (edge(&inst, "s", "v3"), 1.0),
                    (edge(&inst, "v3", "t"), 1.0),
                ],
            }]]],
        };
        let err = validate(&inst, &routing, &sched, Tolerance::default()).unwrap_err();
        assert!(err.to_string().contains("non-candidate"), "{err}");
    }
}
