//! The coflow scheduling instance model (paper §2).
//!
//! An instance is a capacitated digraph `G = (V, E)` plus a set of coflows
//! `J = {F_1, …, F_n}`. Coflow `F_j` has weight `w_j` and consists of
//! flows `f_j^i = (s_j^i, t_j^i, σ_j^i)` — source, sink, demand. A coflow
//! completes at the earliest (slotted) time by which every one of its
//! flows has moved its full demand; the objective is `min Σ_j w_j C_j`.
//!
//! **Units.** Time is slotted: slot `t ≥ 1` covers the interval
//! `[t-1, t]`. Edge capacities are *volume per slot*; demands are volume.
//! Release times are slot indices: a flow with release `r` may transmit
//! in slots `t > r` (constraint (4) of the paper: `r ≥ t ⇒ x(t) = 0`).

use crate::error::CoflowError;
use coflow_netgraph::{Graph, NodeId};

/// One flow: move `demand` units from `src` to `dst`, available after
/// slot `release`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Flow {
    /// Source node `s_j^i`.
    pub src: NodeId,
    /// Sink node `t_j^i`.
    pub dst: NodeId,
    /// Demand `σ_j^i` (volume units, > 0).
    pub demand: f64,
    /// Release slot `r_j^i`: transmission allowed only in slots `> release`.
    pub release: u32,
}

impl Flow {
    /// A flow with release time 0 (available immediately).
    pub fn new(src: NodeId, dst: NodeId, demand: f64) -> Self {
        Flow {
            src,
            dst,
            demand,
            release: 0,
        }
    }

    /// A flow released after slot `release`.
    pub fn released(src: NodeId, dst: NodeId, demand: f64, release: u32) -> Self {
        Flow {
            src,
            dst,
            demand,
            release,
        }
    }
}

/// A coflow: a weighted set of flows that completes when all complete.
#[derive(Clone, Debug, PartialEq)]
pub struct Coflow {
    /// Priority weight `w_j > 0`.
    pub weight: f64,
    /// The flows `f_j^1 … f_j^{n_j}`.
    pub flows: Vec<Flow>,
    /// Optional completion deadline `T_j` (slot index, ≥ 1): the coflow
    /// *wants* `C_j ≤ T_j`. Deadlines are advisory for the Σ w_j C_j
    /// pipeline (the LP ignores them) but drive admission control in
    /// deadline-aware solvers and the deadline-miss accounting in
    /// [`crate::solve::SolveOutcome`].
    pub deadline: Option<u32>,
}

impl Coflow {
    /// A unit-weight coflow.
    pub fn new(flows: Vec<Flow>) -> Self {
        Coflow {
            weight: 1.0,
            flows,
            deadline: None,
        }
    }

    /// A weighted coflow.
    pub fn weighted(weight: f64, flows: Vec<Flow>) -> Self {
        Coflow {
            weight,
            flows,
            deadline: None,
        }
    }

    /// Attaches a completion deadline (slot index, ≥ 1).
    #[must_use]
    pub fn with_deadline(mut self, deadline: u32) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Earliest release among this coflow's flows.
    pub fn release(&self) -> u32 {
        self.flows.iter().map(|f| f.release).min().unwrap_or(0)
    }

    /// Latest release among this coflow's flows — the first slot
    /// boundary at which the *whole* coflow is available.
    pub fn full_release(&self) -> u32 {
        self.flows.iter().map(|f| f.release).max().unwrap_or(0)
    }

    /// Total demand over all flows.
    pub fn total_demand(&self) -> f64 {
        self.flows.iter().map(|f| f.demand).sum()
    }
}

/// Identifies flow `flow` within coflow `coflow`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Coflow index in `CoflowInstance::coflows`.
    pub coflow: u32,
    /// Flow index within the coflow.
    pub flow: u32,
}

impl FlowKey {
    /// Convenience constructor.
    pub fn new(coflow: usize, flow: usize) -> Self {
        FlowKey {
            coflow: coflow as u32,
            flow: flow as u32,
        }
    }
}

/// A complete problem instance: network plus coflows.
#[derive(Clone, Debug)]
pub struct CoflowInstance {
    /// The datacenter/WAN network.
    pub graph: Graph,
    /// The coflows to schedule.
    pub coflows: Vec<Coflow>,
}

impl CoflowInstance {
    /// Builds and validates an instance.
    ///
    /// # Errors
    ///
    /// [`CoflowError::BadInstance`] when a coflow is empty, a weight or
    /// demand is non-positive or non-finite, a flow's endpoints coincide
    /// or fall outside the graph, or a sink is unreachable from its
    /// source (such a flow can never complete in any model).
    pub fn new(graph: Graph, coflows: Vec<Coflow>) -> Result<Self, CoflowError> {
        // Reachability cache per distinct source actually used.
        let mut reach_cache: std::collections::HashMap<NodeId, Vec<bool>> =
            std::collections::HashMap::new();
        for (j, cf) in coflows.iter().enumerate() {
            validate_coflow(&graph, j, cf, &mut reach_cache)?;
        }
        Ok(CoflowInstance { graph, coflows })
    }

    /// Validates and appends a coflow to an existing instance, returning
    /// its index. This is the admission path of the streaming service:
    /// the graph is fixed at construction, coflows arrive one at a time.
    ///
    /// # Errors
    ///
    /// [`CoflowError::BadInstance`] under the same rules as [`Self::new`].
    pub fn push_coflow(&mut self, cf: Coflow) -> Result<usize, CoflowError> {
        let j = self.coflows.len();
        let mut reach_cache = std::collections::HashMap::new();
        validate_coflow(&self.graph, j, &cf, &mut reach_cache)?;
        self.coflows.push(cf);
        Ok(j)
    }

    /// Number of coflows `n`.
    pub fn num_coflows(&self) -> usize {
        self.coflows.len()
    }

    /// Total number of flows `Σ_j n_j`.
    pub fn num_flows(&self) -> usize {
        self.coflows.iter().map(|c| c.flows.len()).sum()
    }

    /// Iterates `(key, &flow)` over all flows in coflow order.
    pub fn flows(&self) -> impl Iterator<Item = (FlowKey, &Flow)> {
        self.coflows.iter().enumerate().flat_map(|(j, cf)| {
            cf.flows
                .iter()
                .enumerate()
                .map(move |(i, f)| (FlowKey::new(j, i), f))
        })
    }

    /// The flow addressed by `key`.
    pub fn flow(&self, key: FlowKey) -> &Flow {
        &self.coflows[key.coflow as usize].flows[key.flow as usize]
    }

    /// Largest release slot across all flows.
    pub fn max_release(&self) -> u32 {
        self.flows().map(|(_, f)| f.release).max().unwrap_or(0)
    }

    /// `Σ_j w_j · r_j` — useful normalization constant in experiments.
    pub fn weighted_release_sum(&self) -> f64 {
        self.coflows
            .iter()
            .map(|c| c.weight * c.release() as f64)
            .sum()
    }
}

/// Shared validation between [`CoflowInstance::new`] (whole batch) and
/// [`CoflowInstance::push_coflow`] (streaming admission).
fn validate_coflow(
    graph: &Graph,
    j: usize,
    cf: &Coflow,
    reach_cache: &mut std::collections::HashMap<NodeId, Vec<bool>>,
) -> Result<(), CoflowError> {
    let n = graph.node_count();
    if cf.flows.is_empty() {
        return Err(CoflowError::BadInstance(format!("coflow {j} has no flows")));
    }
    if !(cf.weight.is_finite() && cf.weight > 0.0) {
        return Err(CoflowError::BadInstance(format!(
            "coflow {j} has weight {}",
            cf.weight
        )));
    }
    if let Some(d) = cf.deadline {
        // Completion slots are ≥ 1, and a deadline at or before the
        // coflow's earliest release can never be met by any schedule.
        if d == 0 || d <= cf.release() {
            return Err(CoflowError::BadInstance(format!(
                "coflow {j} has deadline {d} not after its release {}",
                cf.release()
            )));
        }
    }
    for (i, f) in cf.flows.iter().enumerate() {
        if f.src.index() >= n || f.dst.index() >= n {
            return Err(CoflowError::BadInstance(format!(
                "flow {i} of coflow {j} references a node outside the graph"
            )));
        }
        if f.src == f.dst {
            return Err(CoflowError::BadInstance(format!(
                "flow {i} of coflow {j} has equal source and sink"
            )));
        }
        if !(f.demand.is_finite() && f.demand > 0.0) {
            return Err(CoflowError::BadInstance(format!(
                "flow {i} of coflow {j} has demand {}",
                f.demand
            )));
        }
        let reach = reach_cache
            .entry(f.src)
            .or_insert_with(|| graph.reachable_from(f.src));
        if !reach[f.dst.index()] {
            return Err(CoflowError::BadInstance(format!(
                "flow {i} of coflow {j}: sink unreachable from source"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_netgraph::topology;

    fn fig2() -> (Graph, NodeId, NodeId, [NodeId; 3]) {
        let t = topology::fig2_example();
        let g = t.graph;
        let s = g.node_by_label("s").unwrap();
        let tt = g.node_by_label("t").unwrap();
        let vs = [
            g.node_by_label("v1").unwrap(),
            g.node_by_label("v2").unwrap(),
            g.node_by_label("v3").unwrap(),
        ];
        (g, s, tt, vs)
    }

    #[test]
    fn valid_instance_builds() {
        let (g, s, t, vs) = fig2();
        let coflows = vec![
            Coflow::new(vec![Flow::new(vs[0], t, 1.0)]),
            Coflow::new(vec![Flow::new(vs[1], t, 1.0)]),
            Coflow::new(vec![Flow::new(vs[2], t, 1.0)]),
            Coflow::new(vec![Flow::new(s, t, 3.0)]),
        ];
        let inst = CoflowInstance::new(g, coflows).unwrap();
        assert_eq!(inst.num_coflows(), 4);
        assert_eq!(inst.num_flows(), 4);
        assert_eq!(inst.max_release(), 0);
        let keys: Vec<_> = inst.flows().map(|(k, _)| k).collect();
        assert_eq!(keys[3], FlowKey::new(3, 0));
    }

    #[test]
    fn rejects_bad_instances() {
        let (g, s, t, _) = fig2();
        // Empty coflow.
        assert!(CoflowInstance::new(g.clone(), vec![Coflow::new(vec![])]).is_err());
        // Zero demand.
        assert!(
            CoflowInstance::new(g.clone(), vec![Coflow::new(vec![Flow::new(s, t, 0.0)])]).is_err()
        );
        // Equal endpoints.
        assert!(
            CoflowInstance::new(g.clone(), vec![Coflow::new(vec![Flow::new(s, s, 1.0)])]).is_err()
        );
        // Non-positive weight.
        assert!(CoflowInstance::new(
            g.clone(),
            vec![Coflow::weighted(0.0, vec![Flow::new(s, t, 1.0)])]
        )
        .is_err());
        // NaN demand.
        assert!(
            CoflowInstance::new(g, vec![Coflow::new(vec![Flow::new(s, t, f64::NAN)])]).is_err()
        );
    }

    #[test]
    fn rejects_unreachable_sink() {
        let line = topology::line(3, 1.0);
        let g = line.graph;
        let v0 = g.node_by_label("v0").unwrap();
        let v2 = g.node_by_label("v2").unwrap();
        // Backwards on a directed line: unreachable.
        assert!(
            CoflowInstance::new(g.clone(), vec![Coflow::new(vec![Flow::new(v2, v0, 1.0)])])
                .is_err()
        );
        assert!(CoflowInstance::new(g, vec![Coflow::new(vec![Flow::new(v0, v2, 1.0)])]).is_ok());
    }

    #[test]
    fn release_and_demand_aggregates() {
        let (g, s, t, vs) = fig2();
        let cf = Coflow::weighted(
            2.5,
            vec![
                Flow::released(s, t, 3.0, 4),
                Flow::released(vs[0], t, 2.0, 2),
            ],
        );
        assert_eq!(cf.release(), 2);
        assert_eq!(cf.total_demand(), 5.0);
        let inst = CoflowInstance::new(g, vec![cf]).unwrap();
        assert_eq!(inst.max_release(), 4);
        assert_eq!(inst.weighted_release_sum(), 5.0);
    }
}
