//! Time-horizon selection for the time-indexed LP.
//!
//! The LP needs an upper bound `T` on the schedule length. Two modes:
//!
//! * [`HorizonMode::Safe`] — the paper's analytical bound (Appendix A):
//!   the sum of all release times plus every flow's standalone processing
//!   time. Always a valid horizon for an optimal schedule, but yields
//!   large LPs.
//! * [`HorizonMode::Greedy`] — the makespan of a feasible greedy schedule
//!   times a margin. This is what a practical implementation (including
//!   the paper's experiments, which pick a slot length that makes the LP
//!   "tractable") uses. The greedy schedule is feasible within `T`, so
//!   the LP always has a feasible point; the margin leaves room for the
//!   LP to rearrange work. With a margin ≥ 1 the LP objective is a valid
//!   lower bound whenever some optimal schedule fits in `T` — which the
//!   `Safe` mode guarantees and experiments at margin 1.25 corroborate.

use crate::error::CoflowError;
use crate::greedy::{greedy_schedule, sjf_order};
use crate::model::CoflowInstance;
use crate::routing::Routing;

/// How to pick the LP horizon `T`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HorizonMode {
    /// Paper-faithful analytical bound (Appendix A).
    Safe,
    /// Greedy makespan scaled by `margin` (≥ 1.0).
    Greedy {
        /// Multiplier applied to the greedy makespan.
        margin: f64,
    },
    /// A caller-pinned horizon. Use when several solves must share one
    /// `T` (sensitivity sweeps, cross-algorithm comparisons); the caller
    /// is responsible for `T` being large enough — too small surfaces as
    /// an infeasible LP or a `BadInstance` error, never a silent bias.
    Fixed(
        /// The horizon `T` in slots.
        u32,
    ),
}

impl Default for HorizonMode {
    fn default() -> Self {
        HorizonMode::Greedy { margin: 1.25 }
    }
}

/// Computes a horizon for `inst` under `routing`.
///
/// # Errors
///
/// Propagates routing/scheduling errors from the greedy witness.
pub fn horizon(
    inst: &CoflowInstance,
    routing: &Routing,
    mode: HorizonMode,
) -> Result<u32, CoflowError> {
    match mode {
        HorizonMode::Safe => Ok(safe_horizon(inst, routing)),
        HorizonMode::Greedy { margin } => {
            assert!(margin >= 1.0, "horizon margin must be >= 1");
            let sched = greedy_schedule(inst, routing, &sjf_order(inst))?;
            let makespan = sched
                .completions(inst)
                .map(|c| c.makespan)
                .unwrap_or_else(|| sched.horizon());
            Ok(((makespan as f64 * margin).ceil() as u32).max(makespan + 1))
        }
        HorizonMode::Fixed(t) => Ok(t),
    }
}

/// The paper's analytical bound: `Σ releases + Σ standalone slots`.
pub fn safe_horizon(inst: &CoflowInstance, routing: &Routing) -> u32 {
    let mut total: f64 = 0.0;
    for (key, f) in inst.flows() {
        total += f.release as f64;
        let bottleneck = match routing {
            Routing::SinglePath(paths) => {
                paths[key.coflow as usize][key.flow as usize].bottleneck(&inst.graph)
            }
            Routing::MultiPath(sets) => sets[key.coflow as usize][key.flow as usize]
                .iter()
                .map(|p| p.bottleneck(&inst.graph))
                .fold(0.0, f64::max),
            Routing::FreePath => {
                coflow_netgraph::maxflow::max_flow(&inst.graph, f.src, f.dst).value
            }
        };
        total += (f.demand / bottleneck).ceil() + 1.0;
    }
    total.ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coflow, Flow};
    use coflow_netgraph::topology;

    fn two_coflow_instance() -> CoflowInstance {
        let topo = topology::fig2_example();
        let g = topo.graph;
        let s = g.node_by_label("s").unwrap();
        let t = g.node_by_label("t").unwrap();
        let v1 = g.node_by_label("v1").unwrap();
        CoflowInstance::new(
            g,
            vec![
                Coflow::new(vec![Flow::new(s, t, 3.0)]),
                Coflow::new(vec![Flow::released(v1, t, 2.0, 2)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn safe_bound_dominates_greedy() {
        let inst = two_coflow_instance();
        let r = Routing::FreePath;
        let safe = horizon(&inst, &r, HorizonMode::Safe).unwrap();
        let greedy = horizon(&inst, &r, HorizonMode::Greedy { margin: 1.0 }).unwrap();
        assert!(safe >= greedy, "safe {safe} < greedy {greedy}");
    }

    #[test]
    fn greedy_margin_scales() {
        let inst = two_coflow_instance();
        let r = Routing::FreePath;
        let h1 = horizon(&inst, &r, HorizonMode::Greedy { margin: 1.0 }).unwrap();
        let h2 = horizon(&inst, &r, HorizonMode::Greedy { margin: 2.0 }).unwrap();
        assert!(h2 >= 2 * h1 - 2);
        assert!(h2 > h1);
    }

    #[test]
    fn safe_accounts_for_releases() {
        let inst = two_coflow_instance();
        let r = Routing::FreePath;
        // Flow 1: demand 3, maxflow 3 -> 2 slots; flow 2: demand 2,
        // maxflow 1 (v1 out-capacity... v1->t and v1->s) -> maxflow 2?
        // v1 has edges to s and t with capacity 1 each; v1->t direct plus
        // v1->s->v2->t etc. Just check release contributes.
        let h = safe_horizon(&inst, &r);
        assert!(h >= 2 + 2); // at least release 2 + some processing
    }

    #[test]
    fn fixed_horizon_is_passed_through() {
        let inst = two_coflow_instance();
        let h = horizon(&inst, &Routing::FreePath, HorizonMode::Fixed(17)).unwrap();
        assert_eq!(h, 17);
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn rejects_sub_unit_margin() {
        let inst = two_coflow_instance();
        let _ = horizon(
            &inst,
            &Routing::FreePath,
            HorizonMode::Greedy { margin: 0.5 },
        );
    }
}
