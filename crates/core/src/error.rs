//! Error taxonomy for coflow scheduling.

use std::fmt;

/// Errors raised while building instances, formulating LPs, or validating
/// schedules.
#[derive(Clone, Debug, PartialEq)]
pub enum CoflowError {
    /// An instance failed validation (bad demand, unknown node, …).
    BadInstance(String),
    /// Routing information is inconsistent with the instance (wrong path
    /// endpoints, missing path sets, …).
    BadRouting(String),
    /// The LP relaxation could not be solved.
    Lp(String),
    /// A schedule failed feasibility validation.
    InvalidSchedule(String),
    /// Reading or writing an instance file failed.
    Io(String),
}

impl fmt::Display for CoflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoflowError::BadInstance(m) => write!(f, "bad instance: {m}"),
            CoflowError::BadRouting(m) => write!(f, "bad routing: {m}"),
            CoflowError::Lp(m) => write!(f, "LP failure: {m}"),
            CoflowError::InvalidSchedule(m) => write!(f, "invalid schedule: {m}"),
            CoflowError::Io(m) => write!(f, "I/O: {m}"),
        }
    }
}

impl std::error::Error for CoflowError {}

impl From<coflow_lp::LpError> for CoflowError {
    fn from(e: coflow_lp::LpError) -> Self {
        CoflowError::Lp(e.to_string())
    }
}
