//! Plain-text instance serialization — the `.coflow` format.
//!
//! A downstream user needs a way to hand instances between tools
//! (generator → solver → plotting scripts) without linking every crate
//! together. The format is deliberately boring: line-oriented,
//! whitespace-separated, `#` comments, fully round-trippable:
//!
//! ```text
//! coflow-instance v1
//! # topology
//! node US-West
//! node US-East
//! edge US-West US-East 40          # src dst capacity
//! edge US-East US-West 40
//! # jobs
//! coflow 3.5                       # weight; flows follow
//! coflow 2 deadline=12             # optional advisory deadline slot
//! flow US-West US-East 120 0       # src dst demand release
//! ```
//!
//! Node labels are the identifiers, so they must be unique and must not
//! contain whitespace (every topology in [`coflow_netgraph::topology`]
//! already complies). Edges are directed; write both directions for a
//! bi-directed WAN link. Routing is not serialized — paths are derived
//! data (regenerate with [`crate::routing`]'s helpers and a seed).

use crate::error::CoflowError;
use crate::model::{Coflow, CoflowInstance, Flow};
use coflow_netgraph::GraphBuilder;
use std::fmt::Write as _;

/// Serializes an instance to the v1 text format.
///
/// # Errors
///
/// [`CoflowError::BadInstance`] when a node label is empty or contains
/// whitespace (such labels cannot be parsed back).
pub fn write_instance(inst: &CoflowInstance) -> Result<String, CoflowError> {
    let g = &inst.graph;
    for v in g.nodes() {
        let label = g.label(v);
        if label.is_empty() || label.chars().any(|c| c.is_whitespace() || c == '#') {
            return Err(CoflowError::BadInstance(format!(
                "node label {label:?} cannot be serialized \
                 (empty, contains whitespace, or contains the comment character '#')"
            )));
        }
    }
    let mut out = String::new();
    out.push_str("coflow-instance v1\n");
    let _ = writeln!(out, "# {} nodes, {} edges", g.node_count(), g.edge_count());
    for v in g.nodes() {
        let _ = writeln!(out, "node {}", g.label(v));
    }
    for e in g.edges() {
        let _ = writeln!(
            out,
            "edge {} {} {}",
            g.label(e.src),
            g.label(e.dst),
            e.capacity
        );
    }
    let _ = writeln!(
        out,
        "# {} coflows, {} flows",
        inst.num_coflows(),
        inst.num_flows()
    );
    for cf in &inst.coflows {
        match cf.deadline {
            Some(d) => {
                let _ = writeln!(out, "coflow {} deadline={d}", cf.weight);
            }
            None => {
                let _ = writeln!(out, "coflow {}", cf.weight);
            }
        }
        for f in &cf.flows {
            let _ = writeln!(
                out,
                "flow {} {} {} {}",
                g.label(f.src),
                g.label(f.dst),
                f.demand,
                f.release
            );
        }
    }
    Ok(out)
}

/// Parses the v1 text format back into a validated instance.
///
/// # Errors
///
/// [`CoflowError::BadInstance`] with the offending line number on any
/// syntax problem, plus the usual instance-validation errors.
pub fn read_instance(text: &str) -> Result<CoflowInstance, CoflowError> {
    let mut lines = text.lines().enumerate();
    // Header.
    let header = loop {
        match lines.next() {
            Some((_, l)) => {
                let l = strip(l);
                if !l.is_empty() {
                    break l.to_string();
                }
            }
            None => return Err(bad(0, "empty input")),
        }
    };
    if header != "coflow-instance v1" {
        return Err(bad(1, &format!("unknown header {header:?}")));
    }

    let mut b = GraphBuilder::new();
    let mut labels: std::collections::HashMap<String, coflow_netgraph::NodeId> =
        std::collections::HashMap::new();
    let mut coflows: Vec<Coflow> = Vec::new();
    let mut graph: Option<coflow_netgraph::Graph> = None;
    // Edge specs buffered until the first coflow line freezes the graph.
    let mut pending_edges: Vec<(String, String, f64, usize)> = Vec::new();

    for (idx, raw) in lines {
        let line = strip(raw);
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let mut it = line.split_whitespace();
        let kw = it.next().expect("nonempty line");
        match kw {
            "node" => {
                if graph.is_some() {
                    return Err(bad(lineno, "node after the first coflow"));
                }
                let label = it.next().ok_or_else(|| bad(lineno, "node needs a label"))?;
                if labels.contains_key(label) {
                    return Err(bad(lineno, &format!("duplicate node {label:?}")));
                }
                labels.insert(label.to_string(), b.add_node(label));
            }
            "edge" => {
                if graph.is_some() {
                    return Err(bad(lineno, "edge after the first coflow"));
                }
                let src = it.next().ok_or_else(|| bad(lineno, "edge needs src"))?;
                let dst = it.next().ok_or_else(|| bad(lineno, "edge needs dst"))?;
                let cap: f64 = parse(it.next(), lineno, "edge capacity")?;
                pending_edges.push((src.to_string(), dst.to_string(), cap, lineno));
            }
            "coflow" => {
                if graph.is_none() {
                    // Freeze the graph.
                    for (src, dst, cap, eline) in pending_edges.drain(..) {
                        let (su, sv) = (
                            *labels
                                .get(&src)
                                .ok_or_else(|| bad(eline, &format!("unknown node {src:?}")))?,
                            *labels
                                .get(&dst)
                                .ok_or_else(|| bad(eline, &format!("unknown node {dst:?}")))?,
                        );
                        b.add_edge(su, sv, cap)
                            .map_err(|e| bad(eline, &format!("invalid edge: {e}")))?;
                    }
                    graph = Some(std::mem::take(&mut b).build());
                }
                let weight: f64 = parse(it.next(), lineno, "coflow weight")?;
                let mut cf = Coflow::weighted(weight, Vec::new());
                // Optional `deadline=N` token (format extension; absent
                // in files written before deadlines existed).
                if let Some(tok) = it.next() {
                    let d = tok
                        .strip_prefix("deadline=")
                        .and_then(|v| v.parse::<u32>().ok())
                        .ok_or_else(|| bad(lineno, &format!("expected deadline=N, got {tok:?}")))?;
                    cf = cf.with_deadline(d);
                }
                coflows.push(cf);
            }
            "flow" => {
                let cf = coflows
                    .last_mut()
                    .ok_or_else(|| bad(lineno, "flow before any coflow"))?;
                let src = it.next().ok_or_else(|| bad(lineno, "flow needs src"))?;
                let dst = it.next().ok_or_else(|| bad(lineno, "flow needs dst"))?;
                let demand: f64 = parse(it.next(), lineno, "flow demand")?;
                let release: u32 = parse(it.next(), lineno, "flow release")?;
                let (su, sv) = (
                    *labels
                        .get(src)
                        .ok_or_else(|| bad(lineno, &format!("unknown node {src:?}")))?,
                    *labels
                        .get(dst)
                        .ok_or_else(|| bad(lineno, &format!("unknown node {dst:?}")))?,
                );
                cf.flows.push(Flow::released(su, sv, demand, release));
            }
            other => return Err(bad(lineno, &format!("unknown keyword {other:?}"))),
        }
        if it.next().is_some() {
            return Err(bad(lineno, "trailing tokens"));
        }
    }

    let graph = match graph {
        Some(g) => g,
        None => {
            // Instance with no coflows: still freeze the graph so the
            // error below is about coflows, not parsing.
            for (src, dst, cap, eline) in pending_edges.drain(..) {
                let (su, sv) = (
                    *labels
                        .get(&src)
                        .ok_or_else(|| bad(eline, &format!("unknown node {src:?}")))?,
                    *labels
                        .get(&dst)
                        .ok_or_else(|| bad(eline, &format!("unknown node {dst:?}")))?,
                );
                b.add_edge(su, sv, cap)
                    .map_err(|e| bad(eline, &format!("invalid edge: {e}")))?;
            }
            b.build()
        }
    };
    CoflowInstance::new(graph, coflows)
}

/// Reads and parses an instance from a file path; `-` reads stdin.
/// This is the one-call entry every tool (CLI subcommands, scripts,
/// doctests) should use instead of hand-rolling `fs::read_to_string` +
/// [`read_instance`].
///
/// # Errors
///
/// [`CoflowError::Io`] with the path on read failures, plus everything
/// [`read_instance`] reports.
pub fn read_instance_path(path: &str) -> Result<CoflowInstance, CoflowError> {
    let text = if path == "-" {
        use std::io::Read as _;
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| CoflowError::Io(format!("<stdin>: {e}")))?;
        s
    } else {
        std::fs::read_to_string(path).map_err(|e| CoflowError::Io(format!("{path}: {e}")))?
    };
    read_instance(&text)
}

/// Serializes an instance to a file path; `-` writes stdout.
///
/// # Errors
///
/// [`CoflowError::Io`] with the path on write failures, plus everything
/// [`write_instance`] reports.
pub fn write_instance_path(inst: &CoflowInstance, path: &str) -> Result<(), CoflowError> {
    let text = write_instance(inst)?;
    if path == "-" {
        print!("{text}");
        Ok(())
    } else {
        std::fs::write(path, text).map_err(|e| CoflowError::Io(format!("{path}: {e}")))
    }
}

/// Strips a trailing `#` comment and surrounding whitespace.
fn strip(line: &str) -> &str {
    match line.find('#') {
        Some(i) => line[..i].trim(),
        None => line.trim(),
    }
}

fn bad(lineno: usize, msg: &str) -> CoflowError {
    CoflowError::BadInstance(format!("line {lineno}: {msg}"))
}

fn parse<T: std::str::FromStr>(
    tok: Option<&str>,
    lineno: usize,
    what: &str,
) -> Result<T, CoflowError> {
    tok.ok_or_else(|| bad(lineno, &format!("missing {what}")))?
        .parse()
        .map_err(|_| bad(lineno, &format!("unparsable {what}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use coflow_netgraph::topology;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn sample_instance() -> CoflowInstance {
        let topo = topology::swan();
        let g = topo.graph;
        let nodes: Vec<_> = g.nodes().collect();
        CoflowInstance::new(
            g,
            vec![
                Coflow::weighted(
                    2.5,
                    vec![
                        Flow::new(nodes[0], nodes[1], 12.0),
                        Flow::released(nodes[2], nodes[4], 7.25, 3),
                    ],
                )
                .with_deadline(12),
                Coflow::new(vec![Flow::new(nodes[3], nodes[0], 100.5)]),
            ],
        )
        .unwrap()
    }

    fn assert_instances_equal(a: &CoflowInstance, b: &CoflowInstance) {
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        for (ea, eb) in a.graph.edges().zip(b.graph.edges()) {
            assert_eq!(a.graph.label(ea.src), b.graph.label(eb.src));
            assert_eq!(a.graph.label(ea.dst), b.graph.label(eb.dst));
            assert_eq!(ea.capacity, eb.capacity);
        }
        assert_eq!(a.coflows.len(), b.coflows.len());
        for (ca, cb) in a.coflows.iter().zip(&b.coflows) {
            assert_eq!(ca.weight, cb.weight);
            assert_eq!(ca.deadline, cb.deadline);
            assert_eq!(ca.flows.len(), cb.flows.len());
            for (fa, fb) in ca.flows.iter().zip(&cb.flows) {
                assert_eq!(a.graph.label(fa.src), b.graph.label(fb.src));
                assert_eq!(a.graph.label(fa.dst), b.graph.label(fb.dst));
                assert_eq!(fa.demand, fb.demand);
                assert_eq!(fa.release, fb.release);
            }
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let inst = sample_instance();
        let text = write_instance(&inst).unwrap();
        let back = read_instance(&text).unwrap();
        assert_instances_equal(&inst, &back);
        // Idempotent: serialize again, byte-identical.
        assert_eq!(text, write_instance(&back).unwrap());
    }

    #[test]
    fn roundtrip_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let topo = topology::random_connected(
                rng.gen_range(3..10),
                rng.gen_range(0..6),
                (0.5, 20.0),
                &mut rng,
            );
            let g = topo.graph;
            let nodes: Vec<_> = g.nodes().collect();
            let coflows = (0..rng.gen_range(1..5))
                .map(|_| {
                    let flows = (0..rng.gen_range(1..4))
                        .map(|_| {
                            let a = nodes[rng.gen_range(0..nodes.len())];
                            let mut c = nodes[rng.gen_range(0..nodes.len())];
                            while c == a {
                                c = nodes[rng.gen_range(0..nodes.len())];
                            }
                            Flow::released(a, c, rng.gen_range(0.1..50.0), rng.gen_range(0..9))
                        })
                        .collect();
                    Coflow::weighted(rng.gen_range(0.5..100.0), flows)
                })
                .collect();
            let inst = CoflowInstance::new(g, coflows).unwrap();
            let text = write_instance(&inst).unwrap();
            let back = read_instance(&text).unwrap();
            assert_instances_equal(&inst, &back);
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# preamble\ncoflow-instance v1\n\nnode a # the source\nnode b\nedge a b 2.5\ncoflow 1 # unit weight\nflow a b 3 0\n";
        let inst = read_instance(text).unwrap();
        assert_eq!(inst.graph.node_count(), 2);
        assert_eq!(inst.num_coflows(), 1);
        assert_eq!(inst.coflows[0].flows[0].demand, 3.0);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases = [
            ("coflow-instance v2\n", "unknown header"),
            ("coflow-instance v1\nnode a\nnode a\n", "duplicate node"),
            (
                "coflow-instance v1\nnode a\nedge a zzz 1\ncoflow 1\nflow a a 1 0\n",
                "unknown node",
            ),
            (
                "coflow-instance v1\nnode a\nflow a a 1 0\n",
                "flow before any coflow",
            ),
            ("coflow-instance v1\nbogus x\n", "unknown keyword"),
            (
                "coflow-instance v1\nnode a\nnode b\nedge a b oops\n",
                "unparsable edge capacity",
            ),
            (
                "coflow-instance v1\nnode a\nnode b\nedge a b 1\ncoflow 1\nflow a b 1 0 extra\n",
                "trailing tokens",
            ),
            (
                "coflow-instance v1\nnode a\nnode b\nedge a b 1\ncoflow 1\nnode c\n",
                "node after the first coflow",
            ),
        ];
        for (text, expect) in cases {
            let err = read_instance(text).unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains(expect),
                "for {text:?}: error {msg:?} missing {expect:?}"
            );
            assert!(msg.contains("line "), "no line number in {msg:?}");
        }
    }

    #[test]
    fn path_helpers_round_trip_through_files() {
        let inst = sample_instance();
        let mut p = std::env::temp_dir();
        p.push(format!("coflow-io-test-{}.coflow", std::process::id()));
        let path = p.to_str().unwrap();
        write_instance_path(&inst, path).unwrap();
        let back = read_instance_path(path).unwrap();
        assert_instances_equal(&inst, &back);
        std::fs::remove_file(&p).unwrap();
        let err = read_instance_path(path).unwrap_err();
        assert!(matches!(err, CoflowError::Io(_)), "{err}");
    }

    #[test]
    fn whitespace_labels_are_rejected_on_write() {
        let mut b = GraphBuilder::new();
        let a = b.add_node("a node");
        let c = b.add_node("c");
        b.add_edge(a, c, 1.0).unwrap();
        let inst =
            CoflowInstance::new(b.build(), vec![Coflow::new(vec![Flow::new(a, c, 1.0)])]).unwrap();
        assert!(write_instance(&inst).is_err());
    }

    #[test]
    fn comment_character_labels_are_rejected_on_write() {
        // `#` starts a comment in the text format; a label containing it
        // would silently truncate on re-parse.
        let mut b = GraphBuilder::new();
        let a = b.add_node("a#inner");
        let c = b.add_node("c");
        b.add_edge(a, c, 1.0).unwrap();
        let inst =
            CoflowInstance::new(b.build(), vec![Coflow::new(vec![Flow::new(a, c, 1.0)])]).unwrap();
        assert!(write_instance(&inst).is_err());
    }

    #[test]
    fn validation_still_applies_after_parse() {
        // Syntactically fine, semantically broken: unreachable sink.
        let text = "coflow-instance v1\nnode a\nnode b\nedge a b 1\ncoflow 1\nflow b a 1 0\n";
        assert!(read_instance(text).is_err());
    }
}
